//! Descriptor study: compares RS-BRIEF against the original BRIEF
//! steering strategies (§2.2) on rotation-robustness and steering cost,
//! and dumps the Fig. 2 pattern visualization.
//!
//! ```text
//! cargo run --release -p eslam-core --example descriptor_study
//! ```

use eslam_dataset::sequence::SequenceSpec;
use eslam_features::brief::{OriginalBrief, RsBrief};
use eslam_features::orientation::angle_to_label;
use eslam_features::pattern::{BriefPattern, PATCH_RADIUS};
use eslam_image::draw::{draw_circle, draw_line};
use eslam_image::filter::gaussian_blur_7x7_fixed;
use eslam_image::RgbImage;
use std::error::Error;
use std::path::PathBuf;

/// Renders a pattern as a Fig. 2-style plot: a line per test pair.
fn render_pattern(pattern: &BriefPattern, path: &std::path::Path) -> Result<(), Box<dyn Error>> {
    let size = 512;
    let mut img = RgbImage::filled(size, size, [255, 255, 255]);
    let scale = (size as f64 / 2.0 - 10.0) / PATCH_RADIUS;
    let centre = size as i64 / 2;
    let to_px = |v: f64| (v * scale) as i64 + centre;
    draw_circle(
        &mut img,
        centre,
        centre,
        (PATCH_RADIUS * scale) as i64,
        [0, 0, 0],
    );
    for pair in pattern.pairs() {
        draw_line(
            &mut img,
            to_px(pair.s.x),
            to_px(pair.s.y),
            to_px(pair.d.x),
            to_px(pair.d.y),
            [60, 60, 200],
        );
    }
    img.save_ppm(path)?;
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    let out_dir = PathBuf::from("target/eslam-out");
    std::fs::create_dir_all(&out_dir)?;

    // Fig. 2: the two patterns.
    let rs = RsBrief::new(42);
    let orig = OriginalBrief::new(42);
    render_pattern(rs.pattern(), &out_dir.join("fig2_rs_brief.ppm"))?;
    render_pattern(orig.pattern(), &out_dir.join("fig2_brief.ppm"))?;
    println!(
        "wrote fig2_rs_brief.ppm and fig2_brief.ppm to {}",
        out_dir.display()
    );

    // Steering-cost comparison (the §2.2 argument):
    println!("\n== Steering cost per feature ==");
    println!(
        "  direct rotation (Eq. 2): 512 locations x (4 mul + 2 add) = {} ops",
        512 * 6
    );
    println!(
        "  30-angle LUT [8]       : 0 ops, but {} stored locations",
        orig.lut().storage_locations()
    );
    println!("  RS-BRIEF rotator       : one 256-bit rotate by 8xN bits (0 extra storage)");

    // Rotation robustness: descriptors of the same physical patch under
    // in-plane rotation, steered by the discretized orientation label.
    println!("\n== Rotation robustness on a rendered frame ==");
    let frame = SequenceSpec::paper_sequences(1, 0.5)[3].build().frame(0);
    let smoothed = gaussian_blur_7x7_fixed(&frame.gray);
    let (cx, cy) = (frame.gray.width() / 2, frame.gray.height() / 2);
    let base = rs.compute(&smoothed, cx, cy, 0);
    println!("  label | Hamming(RS steered, base)");
    for label in [0u8, 4, 8, 16, 24, 31] {
        // Steering the *same* patch by a label models a feature whose
        // orientation estimate moved by label steps: distance to the base
        // descriptor measures how much steering changes the code.
        let steered = rs.compute(&smoothed, cx, cy, label);
        println!("  {:>5} | {:>3}", label, base.hamming(&steered));
    }

    // Label discretization error (§2.2's accuracy argument).
    println!("\n== Orientation discretization ==");
    for degrees in [0.0f64, 5.0, 11.25, 20.0, 45.0, 170.0, 350.0] {
        let label = angle_to_label(degrees.to_radians());
        println!(
            "  {:>6.2} deg -> label {:>2} (represents {:>6.2} deg)",
            degrees,
            label,
            label as f64 * 11.25
        );
    }
    Ok(())
}
