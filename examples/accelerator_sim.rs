//! Accelerator simulation tour: runs the cycle-approximate eSLAM
//! hardware model end to end — extraction timing breakdown, matcher
//! latency, FPGA resources (Table 1), platform comparison (Tables 2/3)
//! and the Fig. 7 pipeline timeline.
//!
//! ```text
//! cargo run --release -p eslam-core --example accelerator_sim
//! ```

use eslam_dataset::sequence::SequenceSpec;
use eslam_features::orb::Workflow;
use eslam_hw::extractor::{ExtractionWorkload, ExtractorModel};
use eslam_hw::matcher::{MatcherModel, NOMINAL_MAP_POINTS};
use eslam_hw::resource::{eslam_total, DEFAULT_MATCHER_PARALLELISM, XCZ7045};
use eslam_hw::simulate_extraction;
use eslam_hw::stream::StreamModel;
use eslam_hw::system::{eslam_stage_times, pipeline_timeline, platform_reports};

fn main() {
    println!("== ORB Extractor timing (nominal VGA workload) ==");
    let model = ExtractorModel::default();
    let workload = ExtractionWorkload::vga_nominal();
    let t = model.extraction_timing(&workload, Workflow::Rescheduled);
    println!("  pixels        : {:>9} cycles", t.pixel_cycles.0);
    println!("  row overhead  : {:>9} cycles", t.row_overhead_cycles.0);
    println!("  cache prefill : {:>9} cycles", t.prefill_cycles.0);
    println!("  candidates    : {:>9} cycles", t.candidate_cycles.0);
    println!("  heap drain    : {:>9} cycles", t.drain_cycles.0);
    println!("  axi writeback : {:>9} cycles", t.writeback_cycles.0);
    println!("  pipeline flush: {:>9} cycles", t.flush_cycles.0);
    println!(
        "  TOTAL         : {:>9} cycles = {:.2} ms @100MHz",
        t.total.0,
        t.total_ms()
    );

    println!("\n== BRIEF Matcher timing (1024 × {NOMINAL_MAP_POINTS}) ==");
    let m = MatcherModel::default().matching_timing(1024, NOMINAL_MAP_POINTS);
    println!("  query load    : {:>9} cycles", m.query_load_cycles.0);
    println!("  compute       : {:>9} cycles", m.compute_cycles.0);
    println!("  writeback     : {:>9} cycles", m.writeback_cycles.0);
    println!(
        "  TOTAL         : {:>9} cycles = {:.2} ms @100MHz",
        m.total.0,
        m.total_ms()
    );

    println!("\n== FPGA resources (Table 1) ==");
    let total = eslam_total(DEFAULT_MATCHER_PARALLELISM);
    let util = XCZ7045.utilization(total);
    println!(
        "  LUT {} ({:.1}%) · FF {} ({:.1}%) · DSP {} ({:.1}%) · BRAM {} ({:.1}%)",
        total.lut,
        util.percent[0],
        total.ff,
        util.percent[1],
        total.dsp,
        util.percent[2],
        total.bram,
        util.percent[3],
    );

    println!("\n== Platform comparison (Tables 2/3) ==");
    for report in platform_reports() {
        println!(
            "  {:<10} N-frame {:>7.1} ms ({:>6.2} fps, {:>7.1} mJ) · K-frame {:>7.1} ms ({:>6.2} fps, {:>7.1} mJ) @ {:.3} W",
            report.name,
            report.frames.normal_ms,
            report.frames.normal_fps,
            report.energy_normal_mj,
            report.frames.keyframe_ms,
            report.frames.keyframe_fps,
            report.energy_keyframe_mj,
            report.power_w,
        );
    }

    println!("\n== Fig. 7 pipeline timeline (key frame) ==");
    let stages = eslam_stage_times();
    for entry in pipeline_timeline(&stages, true) {
        println!(
            "  {:<4} {:<2} {:>6.1} → {:>6.1} ms",
            entry.lane, entry.stage, entry.start_ms, entry.end_ms
        );
    }

    println!("\n== Block-level streaming simulation (stripe/refill overlap) ==");
    let stream = StreamModel::default();
    for (level, t) in stream.simulate_pyramid(640, 480, 4).iter().enumerate() {
        println!(
            "  level {level}: {:>7} cycles ({} stripes, prefill {}, stalls {})",
            t.total.0, t.stripes, t.prefill.0, t.stall.0
        );
    }
    let stream_total = stream.pyramid_total(640, 480, 4);
    println!(
        "  idealized pyramid total: {} cycles = {:.2} ms (coarse calibrated model: 9.10 ms)",
        stream_total.0,
        stream_total.to_millis(eslam_hw::FPGA_CLOCK_HZ)
    );

    println!("\n== Simulated extraction on a rendered frame ==");
    let frame = SequenceSpec::paper_sequences(1, 0.5)[2].build().frame(0);
    let sim = simulate_extraction(&frame.gray, &ExtractorModel::default());
    println!(
        "  {}x{} frame: {} candidates -> {} kept · modelled FE {:.2} ms",
        frame.gray.width(),
        frame.gray.height(),
        sim.features.stats.candidates,
        sim.features.stats.kept,
        sim.timing.total_ms()
    );
}
