//! Quickstart: run the eSLAM pipeline on a synthetic TUM-like sequence
//! and print the per-frame tracking reports plus the final trajectory
//! error.
//!
//! ```text
//! cargo run --release -p eslam-core --example quickstart
//! ```

use eslam_core::{Slam, SlamConfig};
use eslam_dataset::absolute_trajectory_error;
use eslam_dataset::sequence::SequenceSpec;
use eslam_dataset::Trajectory;

fn main() {
    // Half-resolution fr1/desk stand-in: 30 frames of a desk sweep.
    let image_scale = 0.5;
    let spec = &SequenceSpec::paper_sequences(30, image_scale)[2];
    let sequence = spec.build();
    println!(
        "sequence {} · {} frames · camera {}x{}",
        sequence.name,
        sequence.len(),
        sequence.camera.width,
        sequence.camera.height
    );

    let config = SlamConfig::scaled_for_tests(1.0 / image_scale);
    let mut slam = Slam::builder().config(config).build();

    // Stream through one recycled frame buffer: after the first frame
    // the dataset layer allocates nothing (`run_sequence` does the same
    // internally, plus optional async prefetch — see ESLAM_PREFETCH).
    let mut frame = eslam_dataset::Frame::buffer();
    let mut wait_ms = 0.0;
    let mut track_ms = 0.0;
    println!("frame  kf  matches  inliers  map    FE(model)  FM(model)");
    for index in 0..sequence.len() {
        let t0 = std::time::Instant::now();
        sequence.frame_into(index, &mut frame);
        wait_ms += t0.elapsed().as_secs_f64() * 1e3;
        let r = slam.process(frame.timestamp, &frame.gray, &frame.depth);
        track_ms += r.track_ms;
        let hw = r.hw_timing.unwrap_or_default();
        println!(
            "{:>5}  {}  {:>7}  {:>7}  {:>5}  {:>7.2}ms  {:>7.2}ms{}",
            r.index,
            if r.is_keyframe { "K" } else { "·" },
            r.raw_matches,
            r.inliers,
            r.map_size,
            hw.fe_ms,
            hw.fm_ms,
            if r.tracking_ok {
                ""
            } else {
                "   <-- tracking lost"
            },
        );
    }

    // Evaluate against ground truth (rebased to the first frame, which
    // the SLAM run uses as its world origin).
    let first = sequence.trajectory.poses()[0].pose;
    let mut truth = Trajectory::new();
    for tp in sequence.trajectory.poses() {
        truth.push(tp.timestamp, first.inverse().compose(&tp.pose));
    }
    match absolute_trajectory_error(slam.trajectory(), &truth) {
        Some(ate) => println!(
            "\nATE over {} poses: rmse {:.2} cm · mean {:.2} cm · max {:.2} cm",
            ate.stats.count,
            ate.stats.rmse * 100.0,
            ate.stats.mean * 100.0,
            ate.stats.max * 100.0
        ),
        None => println!("\nATE not computable (too few poses)"),
    }
    println!("keyframes: {}", slam.keyframes());
    println!(
        "wall split: {wait_ms:.1} ms waiting for pixels, {track_ms:.1} ms tracking \
         (run_sequence with prefetch overlaps the two)"
    );
}
