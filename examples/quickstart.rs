//! Quickstart: run the eSLAM pipeline on a synthetic TUM-like sequence
//! and print the per-frame tracking reports plus the final trajectory
//! error.
//!
//! ```text
//! cargo run --release -p eslam-core --example quickstart
//! ```

use eslam_core::{Slam, SlamConfig};
use eslam_dataset::absolute_trajectory_error;
use eslam_dataset::sequence::SequenceSpec;
use eslam_dataset::Trajectory;

fn main() {
    // Half-resolution fr1/desk stand-in: 30 frames of a desk sweep.
    let image_scale = 0.5;
    let spec = &SequenceSpec::paper_sequences(30, image_scale)[2];
    let sequence = spec.build();
    println!(
        "sequence {} · {} frames · camera {}x{}",
        sequence.name,
        sequence.len(),
        sequence.camera.width,
        sequence.camera.height
    );

    let config = SlamConfig::scaled_for_tests(1.0 / image_scale);
    let mut slam = Slam::new(config);

    println!("frame  kf  matches  inliers  map    FE(model)  FM(model)");
    for frame in sequence.frames() {
        let r = slam.process(frame.timestamp, &frame.gray, &frame.depth);
        let hw = r.hw_timing.unwrap_or_default();
        println!(
            "{:>5}  {}  {:>7}  {:>7}  {:>5}  {:>7.2}ms  {:>7.2}ms{}",
            r.index,
            if r.is_keyframe { "K" } else { "·" },
            r.raw_matches,
            r.inliers,
            r.map_size,
            hw.fe_ms,
            hw.fm_ms,
            if r.tracking_ok {
                ""
            } else {
                "   <-- tracking lost"
            },
        );
    }

    // Evaluate against ground truth (rebased to the first frame, which
    // the SLAM run uses as its world origin).
    let first = sequence.trajectory.poses()[0].pose;
    let mut truth = Trajectory::new();
    for tp in sequence.trajectory.poses() {
        truth.push(tp.timestamp, first.inverse().compose(&tp.pose));
    }
    match absolute_trajectory_error(slam.trajectory(), &truth) {
        Some(ate) => println!(
            "\nATE over {} poses: rmse {:.2} cm · mean {:.2} cm · max {:.2} cm",
            ate.stats.count,
            ate.stats.rmse * 100.0,
            ate.stats.mean * 100.0,
            ate.stats.max * 100.0
        ),
        None => println!("\nATE not computable (too few poses)"),
    }
    println!("keyframes: {}", slam.keyframes());
}
