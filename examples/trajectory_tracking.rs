//! Trajectory tracking demo: runs eSLAM on the fr1/desk stand-in, writes
//! the estimated and ground-truth trajectories in TUM format, and renders
//! a Fig. 9-style overlay plot as a PPM image.
//!
//! ```text
//! cargo run --release -p eslam-core --example trajectory_tracking
//! ```
//!
//! Outputs land in `target/eslam-out/`.

use eslam_core::{run_sequence, SlamConfig};
use eslam_dataset::sequence::SequenceSpec;
use eslam_image::draw::plot_polyline;
use eslam_image::RgbImage;
use std::error::Error;
use std::fs::File;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn Error>> {
    let out_dir = PathBuf::from("target/eslam-out");
    std::fs::create_dir_all(&out_dir)?;

    let image_scale = 0.5;
    let spec = &SequenceSpec::paper_sequences(40, image_scale)[2]; // fr1/desk
    let sequence = spec.build();

    // One call runs the whole `FrameSource`: frames stream through a
    // recycled buffer pair (async-prefetched when the host has the
    // cores for it — force with ESLAM_PREFETCH=on|off), ground truth is
    // rebased to the first camera frame, and the wall-clock wait/track
    // split comes back measured.
    let result = run_sequence(&sequence, SlamConfig::scaled_for_tests(1.0 / image_scale));
    let truth = &result.ground_truth;

    // TUM-format dumps.
    result
        .estimate
        .write_tum(File::create(out_dir.join("estimate.tum"))?)?;
    truth.write_tum(File::create(out_dir.join("groundtruth.tum"))?)?;

    // Fig. 9-style x/z overlay plot.
    let mut canvas = RgbImage::filled(800, 600, [255, 255, 255]);
    let gt_points: Vec<(f64, f64)> = truth
        .poses()
        .iter()
        .map(|p| (p.pose.translation.x, p.pose.translation.z))
        .collect();
    let est_points: Vec<(f64, f64)> = result
        .estimate
        .poses()
        .iter()
        .map(|p| (p.pose.translation.x, p.pose.translation.z))
        .collect();
    // Plot both with the same scaling by plotting the union extents
    // first (ground truth covers the same range as the estimate here).
    plot_polyline(&mut canvas, &gt_points, [0, 0, 0], 40); // black: truth
    plot_polyline(&mut canvas, &est_points, [220, 30, 30], 40); // red: estimate
    canvas.save_ppm(out_dir.join("fig9_trajectory.ppm"))?;

    let ate = result.ate.ok_or("trajectory too short for ATE")?;
    println!(
        "wrote {}/estimate.tum, groundtruth.tum, fig9_trajectory.ppm",
        out_dir.display()
    );
    println!(
        "ATE rmse {:.2} cm over {} poses ({} keyframes)",
        ate.stats.rmse * 100.0,
        ate.stats.count,
        result.stats.keyframes
    );
    // Drift before vs after the keyframe backend's local BA: the raw
    // trajectory is the poses exactly as tracked, the estimate carries
    // the refined keyframe poses swapped in at frame boundaries.
    if let (Some(raw), Some(stats)) = (result.raw_ate_rmse_cm(), result.backend) {
        println!(
            "local BA: drift {raw:.2} cm as tracked -> {:.2} cm refined \
             ({} solves, {} LM iterations, {:.2} ms total solve time, \
             {} keyframe poses + {} landmarks refined)",
            ate.stats.rmse * 100.0,
            stats.runs,
            stats.iterations,
            stats.solve_ms,
            stats.refined_keyframes,
            stats.refined_landmarks,
        );
    }
    println!(
        "frames {} · prefetched: {} · waited {:.1} ms for pixels vs {:.1} ms tracking",
        result.stats.frames, result.prefetched, result.wall.frame_wait_ms, result.wall.track_ms
    );
    Ok(())
}
