//! Trajectory tracking demo: runs eSLAM on the fr1/desk stand-in, writes
//! the estimated and ground-truth trajectories in TUM format, and renders
//! a Fig. 9-style overlay plot as a PPM image.
//!
//! ```text
//! cargo run --release -p eslam-core --example trajectory_tracking
//! ```
//!
//! Outputs land in `target/eslam-out/`.

use eslam_core::{run_sequence, SlamConfig, Stage};
use eslam_dataset::sequence::SequenceSpec;
use eslam_image::draw::plot_polyline;
use eslam_image::RgbImage;
use std::error::Error;
use std::fs::File;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn Error>> {
    let out_dir = PathBuf::from("target/eslam-out");
    std::fs::create_dir_all(&out_dir)?;

    let image_scale = 0.5;
    let spec = &SequenceSpec::paper_sequences(40, image_scale)[2]; // fr1/desk
    let sequence = spec.build();

    // One call runs the whole `FrameSource`: frames stream through a
    // recycled buffer pair (async-prefetched when the host has the
    // cores for it — force with ESLAM_PREFETCH=on|off), ground truth is
    // rebased to the first camera frame, and the wall-clock wait/track
    // split comes back measured.
    let result = run_sequence(&sequence, SlamConfig::scaled_for_tests(1.0 / image_scale));
    let truth = &result.ground_truth;

    // TUM-format dumps.
    result
        .trajectory(Stage::Closed)
        .write_tum(File::create(out_dir.join("estimate.tum"))?)?;
    truth.write_tum(File::create(out_dir.join("groundtruth.tum"))?)?;

    // Fig. 9-style x/z overlay plot.
    let mut canvas = RgbImage::filled(800, 600, [255, 255, 255]);
    let gt_points: Vec<(f64, f64)> = truth
        .poses()
        .iter()
        .map(|p| (p.pose.translation.x, p.pose.translation.z))
        .collect();
    let est_points: Vec<(f64, f64)> = result
        .trajectory(Stage::Closed)
        .poses()
        .iter()
        .map(|p| (p.pose.translation.x, p.pose.translation.z))
        .collect();
    // Plot both with the same scaling by plotting the union extents
    // first (ground truth covers the same range as the estimate here).
    plot_polyline(&mut canvas, &gt_points, [0, 0, 0], 40); // black: truth
    plot_polyline(&mut canvas, &est_points, [220, 30, 30], 40); // red: estimate
    canvas.save_ppm(out_dir.join("fig9_trajectory.ppm"))?;

    let ate = result.ate.ok_or("trajectory too short for ATE")?;
    println!(
        "wrote {}/estimate.tum, groundtruth.tum, fig9_trajectory.ppm",
        out_dir.display()
    );
    println!(
        "ATE rmse {:.2} cm over {} poses ({} keyframes)",
        ate.stats.rmse * 100.0,
        ate.stats.count,
        result.stats.keyframes
    );
    // Drift split: raw (as tracked) → local BA (windowed refinement) →
    // loop closure (pose-graph correction). The BA-only reference
    // trajectory withholds loop corrections, so the two backend stages
    // report their shares separately.
    if let (Some(raw), Some(ba), Some(stats)) = (
        result.ate_rmse_cm(Stage::Raw),
        result.ate_rmse_cm(Stage::Ba),
        result.backend,
    ) {
        println!(
            "local BA: drift {raw:.2} cm as tracked -> {ba:.2} cm refined \
             ({} solves, {} LM iterations, {:.2} ms total solve time, \
             {} keyframe poses + {} landmarks refined)",
            stats.runs,
            stats.iterations,
            stats.solve_ms,
            stats.refined_keyframes,
            stats.refined_landmarks,
        );
        if stats.loops_closed > 0 {
            println!(
                "loop closure: drift {ba:.2} cm pre-closure -> {:.2} cm corrected \
                 ({} closures of {} candidates, {} pose-graph iterations, \
                 last verification {} matches / {} inliers, {:.2} ms total)",
                ate.stats.rmse * 100.0,
                stats.loops_closed,
                stats.loop_candidates,
                stats.pose_graph_iterations,
                stats.last_loop_matches,
                stats.last_loop_inliers,
                stats.loop_solve_ms,
            );
        } else {
            println!(
                "loop closure: no loop detected ({} candidates verified and rejected) \
                 -> corrected drift equals the BA split at {:.2} cm",
                stats.loops_rejected,
                ate.stats.rmse * 100.0,
            );
        }
    }
    println!(
        "frames {} · prefetched: {} · waited {:.1} ms for pixels vs {:.1} ms tracking",
        result.stats.frames, result.prefetched, result.wall.frame_wait_ms, result.wall.track_ms
    );
    Ok(())
}
