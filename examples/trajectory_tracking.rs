//! Trajectory tracking demo: runs eSLAM on the fr1/desk stand-in, writes
//! the estimated and ground-truth trajectories in TUM format, and renders
//! a Fig. 9-style overlay plot as a PPM image.
//!
//! ```text
//! cargo run --release -p eslam-core --example trajectory_tracking
//! ```
//!
//! Outputs land in `target/eslam-out/`.

use eslam_core::{Slam, SlamConfig};
use eslam_dataset::sequence::SequenceSpec;
use eslam_dataset::{absolute_trajectory_error, Trajectory};
use eslam_image::draw::plot_polyline;
use eslam_image::RgbImage;
use std::error::Error;
use std::fs::File;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn Error>> {
    let out_dir = PathBuf::from("target/eslam-out");
    std::fs::create_dir_all(&out_dir)?;

    let image_scale = 0.5;
    let spec = &SequenceSpec::paper_sequences(40, image_scale)[2]; // fr1/desk
    let sequence = spec.build();
    let mut slam = Slam::new(SlamConfig::scaled_for_tests(1.0 / image_scale));

    for frame in sequence.frames() {
        slam.process(frame.timestamp, &frame.gray, &frame.depth);
    }

    // Ground truth rebased to the first camera frame.
    let first = sequence.trajectory.poses()[0].pose;
    let mut truth = Trajectory::new();
    for tp in sequence.trajectory.poses() {
        truth.push(tp.timestamp, first.inverse().compose(&tp.pose));
    }

    // TUM-format dumps.
    slam.trajectory()
        .write_tum(File::create(out_dir.join("estimate.tum"))?)?;
    truth.write_tum(File::create(out_dir.join("groundtruth.tum"))?)?;

    // Fig. 9-style x/z overlay plot.
    let mut canvas = RgbImage::filled(800, 600, [255, 255, 255]);
    let gt_points: Vec<(f64, f64)> = truth
        .poses()
        .iter()
        .map(|p| (p.pose.translation.x, p.pose.translation.z))
        .collect();
    let est_points: Vec<(f64, f64)> = slam
        .trajectory()
        .poses()
        .iter()
        .map(|p| (p.pose.translation.x, p.pose.translation.z))
        .collect();
    // Plot both with the same scaling by plotting the union extents
    // first (ground truth covers the same range as the estimate here).
    plot_polyline(&mut canvas, &gt_points, [0, 0, 0], 40); // black: truth
    plot_polyline(&mut canvas, &est_points, [220, 30, 30], 40); // red: estimate
    canvas.save_ppm(out_dir.join("fig9_trajectory.ppm"))?;

    let ate = absolute_trajectory_error(slam.trajectory(), &truth)
        .ok_or("trajectory too short for ATE")?;
    println!(
        "wrote {}/estimate.tum, groundtruth.tum, fig9_trajectory.ppm",
        out_dir.display()
    );
    println!(
        "ATE rmse {:.2} cm over {} poses ({} keyframes)",
        ate.stats.rmse * 100.0,
        ate.stats.count,
        slam.keyframes()
    );
    Ok(())
}
