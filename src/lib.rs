//! Umbrella crate for the eSLAM reproduction workspace.
//!
//! The actual implementation lives in the `crates/` members; this crate
//! re-exports them under one roof and hosts the repo-level integration
//! tests (`tests/`) and examples (`examples/`).

#![warn(missing_docs)]

pub use eslam_core as core;
pub use eslam_dataset as dataset;
pub use eslam_features as features;
pub use eslam_geometry as geometry;
pub use eslam_hw as hw;
pub use eslam_image as image;
