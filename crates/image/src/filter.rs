//! Gaussian smoothing.
//!
//! The paper's Image Smoother applies a Gaussian blur on 7×7 pixel patches
//! of the original image (§3.1); the smoothened image feeds descriptor and
//! orientation computation, exactly as in the original ORB where BRIEF
//! tests are made on a blurred image.
//!
//! Two variants are provided:
//! * [`gaussian_blur_7x7_fixed`] — the integer-arithmetic kernel the
//!   hardware datapath uses (power-of-two denominator, bit-exact with the
//!   `eslam-hw` smoother unit);
//! * [`gaussian_blur`] — a floating-point separable blur for software
//!   baselines.

use crate::image::GrayImage;

/// The 7-tap integer kernel used by the hardware smoother. Approximates a
/// σ = 2 Gaussian; weights sum to 64 so normalization is a 6-bit shift per
/// axis (12 bits for the separable 2-D pass).
pub const KERNEL_7_FIXED: [u32; 7] = [2, 6, 12, 24, 12, 6, 2];

/// Denominator of [`KERNEL_7_FIXED`] (sum of the weights).
pub const KERNEL_7_FIXED_SUM: u32 = 64;

/// Applies the fixed-point separable 7×7 Gaussian blur, replicating the
/// border. This is the reference model of the hardware Image Smoother: the
/// `eslam-hw` smoother unit must produce bit-identical output.
///
/// Production code path: allocates fresh output/scratch buffers and
/// delegates to [`gaussian_blur_7x7_fixed_into`]. Pipelines that smooth
/// every frame should hold the buffers and call the `_into` variant
/// directly.
pub fn gaussian_blur_7x7_fixed(src: &GrayImage) -> GrayImage {
    let mut out = GrayImage::new(src.width(), src.height());
    let mut scratch = Vec::new();
    gaussian_blur_7x7_fixed_into(src, &mut out, &mut scratch);
    out
}

/// Scalar reference of the fixed-point blur (per-pixel clamped
/// addressing). Kept as the bit-exact oracle for the row-sliced
/// [`gaussian_blur_7x7_fixed_into`]; prefer the production variants.
pub fn gaussian_blur_7x7_fixed_reference(src: &GrayImage) -> GrayImage {
    let w = src.width();
    let h = src.height();

    // Horizontal pass into 16-bit intermediates (max 255 * 64 = 16320).
    let mut horizontal: Vec<u16> = vec![0; w as usize * h as usize];
    for y in 0..h {
        for x in 0..w {
            let mut acc: u32 = 0;
            for (k, &weight) in KERNEL_7_FIXED.iter().enumerate() {
                let sx = x as i64 + k as i64 - 3;
                acc += weight * src.get_clamped(sx, y as i64) as u32;
            }
            horizontal[(y * w + x) as usize] = acc as u16;
        }
    }

    // Vertical pass with a single rounding shift at the end.
    GrayImage::from_fn(w, h, |x, y| {
        let mut acc: u64 = 0;
        for (k, &weight) in KERNEL_7_FIXED.iter().enumerate() {
            let sy = (y as i64 + k as i64 - 3).clamp(0, h as i64 - 1) as u32;
            acc += weight as u64 * horizontal[(sy * w + x) as usize] as u64;
        }
        // Round-to-nearest on the 4096 denominator.
        ((acc + (KERNEL_7_FIXED_SUM as u64 * KERNEL_7_FIXED_SUM as u64 / 2))
            / (KERNEL_7_FIXED_SUM as u64 * KERNEL_7_FIXED_SUM as u64))
            .min(255) as u8
    })
}

/// Horizontal 7-tap pass over one image row: `out[x]` is the weighted
/// sum `Σ KERNEL_7_FIXED[k] · row[clamp(x + k − 3)]` (border pixels
/// replicate; max 255 × 64 = 16320, exact in `u16`).
///
/// This is the row-band producer of the streaming extraction front-end:
/// the full-frame [`gaussian_blur_7x7_fixed_into`] and the per-band
/// line-buffer path both build on it, so the two are bit-identical at
/// every border by construction.
///
/// # Panics
/// Panics if `out.len() != row.len()` or the row is empty.
pub fn blur_hrow_7x7_into(row: &[u8], out: &mut [u16]) {
    let w = row.len();
    assert_eq!(out.len(), w, "output row length mismatch");
    assert!(w > 0, "empty row");
    let clamped_tap = |x: usize| -> u16 {
        let mut acc: u32 = 0;
        for (k, &weight) in KERNEL_7_FIXED.iter().enumerate() {
            let sx = (x as i64 + k as i64 - 3).clamp(0, w as i64 - 1) as usize;
            acc += weight * row[sx] as u32;
        }
        acc as u16
    };
    let interior_end = w.saturating_sub(3);
    // Left border (clamped).
    for (x, o) in out.iter_mut().enumerate().take(w.min(3)) {
        *o = clamped_tap(x);
    }
    // Interior: direct 7-tap window (empty when w < 7).
    let interior = 3.min(w)..interior_end.max(3).min(w);
    for (win, o) in row.windows(7).zip(out[interior].iter_mut()) {
        let acc = KERNEL_7_FIXED[0] * win[0] as u32
            + KERNEL_7_FIXED[1] * win[1] as u32
            + KERNEL_7_FIXED[2] * win[2] as u32
            + KERNEL_7_FIXED[3] * win[3] as u32
            + KERNEL_7_FIXED[4] * win[4] as u32
            + KERNEL_7_FIXED[5] * win[5] as u32
            + KERNEL_7_FIXED[6] * win[6] as u32;
        *o = acc as u16;
    }
    // Right border (clamped).
    for (x, o) in out.iter_mut().enumerate().skip(interior_end.max(w.min(3))) {
        *o = clamped_tap(x);
    }
}

/// Vertical 7-tap combine of one output row from the seven horizontal
/// rows the kernel touches (callers pass the same row slice several
/// times to replicate the border, exactly like the full-frame pass
/// clamps `y + k − 3`). The single rounding shift of the separable
/// fixed-point blur happens here.
///
/// Companion band producer to [`blur_hrow_7x7_into`]; together they are
/// the single source of truth for the 7×7 blur arithmetic.
///
/// # Panics
/// Panics if any input row's length differs from `out.len()`.
pub fn blur_vrow_7x7_into(hrows: &[&[u16]; 7], out: &mut [u8]) {
    const ROUND: u32 = (KERNEL_7_FIXED_SUM * KERNEL_7_FIXED_SUM) / 2;
    const DENOM: u32 = KERNEL_7_FIXED_SUM * KERNEL_7_FIXED_SUM;
    for r in hrows {
        assert_eq!(r.len(), out.len(), "horizontal row length mismatch");
    }
    for (x, o) in out.iter_mut().enumerate() {
        // Max 16320 * 64 = 1 044 480 < u32::MAX: exact in u32.
        let acc = KERNEL_7_FIXED[0] * hrows[0][x] as u32
            + KERNEL_7_FIXED[1] * hrows[1][x] as u32
            + KERNEL_7_FIXED[2] * hrows[2][x] as u32
            + KERNEL_7_FIXED[3] * hrows[3][x] as u32
            + KERNEL_7_FIXED[4] * hrows[4][x] as u32
            + KERNEL_7_FIXED[5] * hrows[5][x] as u32
            + KERNEL_7_FIXED[6] * hrows[6][x] as u32;
        *o = ((acc + ROUND) / DENOM).min(255) as u8;
    }
}

/// Fixed-point 7×7 blur into caller-owned buffers: `dst` receives the
/// smoothed image, `scratch` holds the 16-bit horizontal intermediates.
/// Both are reshaped/resized as needed and reused across calls, so
/// steady-state frame smoothing performs **zero heap allocations**.
///
/// Interior pixels use row-sliced direct addressing; only the 3-pixel
/// borders take the clamped path. Output is bit-identical to
/// [`gaussian_blur_7x7_fixed_reference`] (the sums are exact integer
/// arithmetic, so only addressing differs). Both passes delegate to the
/// per-row band producers ([`blur_hrow_7x7_into`] /
/// [`blur_vrow_7x7_into`]), which the streaming extraction front-end
/// drives row by row through its line-buffer rings.
pub fn gaussian_blur_7x7_fixed_into(src: &GrayImage, dst: &mut GrayImage, scratch: &mut Vec<u16>) {
    let w = src.width() as usize;
    let h = src.height() as usize;
    dst.reshape(src.width(), src.height());
    scratch.resize(w * h, 0);
    if w == 0 || h == 0 {
        return;
    }
    let data = src.as_raw();

    // Horizontal pass.
    for y in 0..h {
        blur_hrow_7x7_into(&data[y * w..(y + 1) * w], &mut scratch[y * w..(y + 1) * w]);
    }

    // Vertical pass: for each output row, combine the 7 (clamped)
    // horizontal rows column-wise.
    let out = dst.as_raw_mut();
    for y in 0..h {
        let rows: [&[u16]; 7] = std::array::from_fn(|k| {
            let sy = (y as i64 + k as i64 - 3).clamp(0, h as i64 - 1) as usize;
            &scratch[sy * w..(sy + 1) * w]
        });
        blur_vrow_7x7_into(&rows, &mut out[y * w..(y + 1) * w]);
    }
}

/// Floating-point separable Gaussian blur with the given σ and a kernel
/// radius of `⌈3σ⌉`, replicating the border.
///
/// # Panics
/// Panics if `sigma` is not strictly positive.
pub fn gaussian_blur(src: &GrayImage, sigma: f64) -> GrayImage {
    assert!(sigma > 0.0, "sigma must be positive");
    let radius = (3.0 * sigma).ceil() as i64;
    let mut kernel = Vec::with_capacity((2 * radius + 1) as usize);
    let denom = 2.0 * sigma * sigma;
    for k in -radius..=radius {
        kernel.push((-((k * k) as f64) / denom).exp());
    }
    let sum: f64 = kernel.iter().sum();
    for v in kernel.iter_mut() {
        *v /= sum;
    }

    let w = src.width();
    let h = src.height();
    let mut horizontal = vec![0.0f64; w as usize * h as usize];
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (i, &kv) in kernel.iter().enumerate() {
                let sx = x as i64 + i as i64 - radius;
                acc += kv * src.get_clamped(sx, y as i64) as f64;
            }
            horizontal[(y * w + x) as usize] = acc;
        }
    }
    GrayImage::from_fn(w, h, |x, y| {
        let mut acc = 0.0;
        for (i, &kv) in kernel.iter().enumerate() {
            let sy = (y as i64 + i as i64 - radius).clamp(0, h as i64 - 1) as u32;
            acc += kv * horizontal[(sy * w + x) as usize];
        }
        acc.round().clamp(0.0, 255.0) as u8
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_sums_to_declared_denominator() {
        assert_eq!(KERNEL_7_FIXED.iter().sum::<u32>(), KERNEL_7_FIXED_SUM);
    }

    #[test]
    fn constant_image_unchanged_fixed() {
        let img = GrayImage::from_fn(20, 20, |_, _| 131);
        let out = gaussian_blur_7x7_fixed(&img);
        assert!(out.as_raw().iter().all(|&v| v == 131));
    }

    #[test]
    fn constant_image_unchanged_float() {
        let img = GrayImage::from_fn(20, 20, |_, _| 77);
        let out = gaussian_blur(&img, 2.0);
        assert!(out.as_raw().iter().all(|&v| v == 77));
    }

    #[test]
    fn impulse_spreads_symmetrically() {
        let mut img = GrayImage::new(15, 15);
        img.set(7, 7, 255);
        let out = gaussian_blur_7x7_fixed(&img);
        // Centre keeps the highest value.
        let centre = out.get(7, 7);
        assert!(centre > 0);
        for (x, y, v) in out.pixels() {
            assert!(v <= centre, "({x},{y})");
        }
        // Horizontal/vertical symmetry.
        for d in 1..=3u32 {
            assert_eq!(out.get(7 - d, 7), out.get(7 + d, 7));
            assert_eq!(out.get(7, 7 - d), out.get(7, 7 + d));
            assert_eq!(out.get(7 - d, 7), out.get(7, 7 - d));
        }
    }

    #[test]
    fn impulse_energy_outside_radius_is_zero() {
        let mut img = GrayImage::new(21, 21);
        img.set(10, 10, 255);
        let out = gaussian_blur_7x7_fixed(&img);
        for (x, y, v) in out.pixels() {
            let dx = (x as i64 - 10).abs();
            let dy = (y as i64 - 10).abs();
            if dx > 3 || dy > 3 {
                assert_eq!(v, 0, "leakage at ({x},{y})");
            }
        }
    }

    #[test]
    fn blur_reduces_gradient_magnitude() {
        // A step edge: blurring must soften the transition.
        let img = GrayImage::from_fn(32, 8, |x, _| if x < 16 { 0 } else { 255 });
        let out = gaussian_blur_7x7_fixed(&img);
        let sharp_step = img.get(16, 4) as i32 - img.get(15, 4) as i32;
        let soft_step = out.get(16, 4) as i32 - out.get(15, 4) as i32;
        assert!(soft_step.abs() < sharp_step.abs());
        // Values in the transition band are intermediate.
        assert!(out.get(15, 4) > 0 && out.get(16, 4) < 255);
    }

    #[test]
    fn fixed_and_float_blur_agree_approximately() {
        let img = GrayImage::from_fn(40, 30, |x, y| ((x * 13 + y * 29) % 251) as u8);
        let fixed = gaussian_blur_7x7_fixed(&img);
        let float = gaussian_blur(&img, 1.5);
        // Different kernels, same qualitative smoothing: mean abs diff is
        // small on the interior.
        let mut total = 0i64;
        let mut count = 0i64;
        for y in 4..26 {
            for x in 4..36 {
                total += (fixed.get(x, y) as i64 - float.get(x, y) as i64).abs();
                count += 1;
            }
        }
        let mad = total as f64 / count as f64;
        assert!(mad < 12.0, "mean abs diff {mad}");
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn non_positive_sigma_panics() {
        let img = GrayImage::new(4, 4);
        gaussian_blur(&img, 0.0);
    }

    #[test]
    fn fast_blur_matches_reference_on_textures() {
        for seed in 0..5u64 {
            for (w, h) in [(1u32, 1u32), (2, 9), (6, 6), (7, 7), (40, 31), (65, 9)] {
                let img = GrayImage::from_fn(w, h, |x, y| {
                    ((x as u64 * 31 + y as u64 * 17 + seed * 101) % 256) as u8
                });
                assert_eq!(
                    gaussian_blur_7x7_fixed(&img),
                    gaussian_blur_7x7_fixed_reference(&img),
                    "seed {seed} size {w}x{h}"
                );
            }
        }
    }

    #[test]
    fn blur_into_reuses_buffers_without_reallocating() {
        let a = GrayImage::from_fn(30, 20, |x, y| (x * y) as u8);
        let b = GrayImage::from_fn(28, 18, |x, y| (x + y) as u8);
        let mut out = GrayImage::new(30, 20);
        let mut scratch = Vec::new();
        gaussian_blur_7x7_fixed_into(&a, &mut out, &mut scratch);
        let cap = scratch.capacity();
        let ptr = out.as_raw().as_ptr();
        // Smaller image must reuse both allocations.
        gaussian_blur_7x7_fixed_into(&b, &mut out, &mut scratch);
        assert_eq!(out, gaussian_blur_7x7_fixed_reference(&b));
        assert_eq!(scratch.capacity(), cap);
        assert_eq!(out.as_raw().as_ptr(), ptr);
    }

    #[test]
    fn border_rule_exhaustive_small_sizes_match_reference() {
        // Satellite audit: the optimized blur vs the scalar reference at
        // every size where the 7-tap halo interacts with a border —
        // every width and height from 1 to 16 covers all partial-window
        // layouts (w < 3, 3 ≤ w < 7, w ≥ 7; same for h), pinning the
        // edge-replication rule the band pass must reproduce bit-exactly.
        for h in 1..=16u32 {
            for w in 1..=16u32 {
                let img = GrayImage::from_fn(w, h, |x, y| {
                    ((x as u64 * 151 + y as u64 * 83 + (x * y) as u64) % 256) as u8
                });
                assert_eq!(
                    gaussian_blur_7x7_fixed(&img),
                    gaussian_blur_7x7_fixed_reference(&img),
                    "size {w}x{h}"
                );
            }
        }
    }

    #[test]
    fn band_producers_match_full_frame_blur() {
        // The streaming front-end drives blur_hrow/blur_vrow through a
        // line-buffer ring; assembling a frame from the row producers
        // with explicitly clamped row indices must equal the full-frame
        // pass (and hence the reference) bit-exactly, including top and
        // bottom rows where the vertical window is clamped.
        for (w, h) in [(1u32, 1u32), (5, 3), (7, 7), (9, 4), (33, 11), (40, 31)] {
            let img = GrayImage::from_fn(w, h, |x, y| {
                ((x as u64 * 31 + y as u64 * 17 + 5) % 256) as u8
            });
            let wz = w as usize;
            let hz = h as usize;
            let data = img.as_raw();
            let mut hrows = vec![0u16; wz * hz];
            for y in 0..hz {
                blur_hrow_7x7_into(
                    &data[y * wz..(y + 1) * wz],
                    &mut hrows[y * wz..(y + 1) * wz],
                );
            }
            let mut assembled = GrayImage::new(w, h);
            let out = assembled.as_raw_mut();
            for y in 0..hz {
                let rows: [&[u16]; 7] = std::array::from_fn(|k| {
                    let sy = (y as i64 + k as i64 - 3).clamp(0, hz as i64 - 1) as usize;
                    &hrows[sy * wz..(sy + 1) * wz]
                });
                blur_vrow_7x7_into(&rows, &mut out[y * wz..(y + 1) * wz]);
            }
            assert_eq!(
                assembled,
                gaussian_blur_7x7_fixed_reference(&img),
                "size {w}x{h}"
            );
        }
    }

    #[test]
    fn border_replication_no_darkening() {
        // With replication, a constant image stays constant at corners too
        // (checked above); also a bright border pixel must not be dimmed
        // by out-of-bounds zeros.
        let img = GrayImage::from_fn(10, 10, |_, _| 255);
        let out = gaussian_blur_7x7_fixed(&img);
        assert_eq!(out.get(0, 0), 255);
        assert_eq!(out.get(9, 9), 255);
    }
}
