//! Image pyramid generation.
//!
//! The paper's Image Resizing module (§3) generates the scale pyramid
//! "layer by layer" with **nearest-neighbour downsampling**: while the ORB
//! Extractor processes one layer, the resizer produces the next from it.
//! eSLAM uses a 4-layer pyramid (§4.4 notes that two extra layers over \[4\]
//! cost 48% more pixels, which pins the scale factor at the ORB-standard
//! 1.2).

use crate::image::GrayImage;

/// Standard ORB inter-layer scale factor.
pub const DEFAULT_SCALE_FACTOR: f64 = 1.2;
/// Number of pyramid layers used by eSLAM (§2.1: "a 4-layer pyramid").
pub const DEFAULT_LEVELS: usize = 4;

/// Configuration of the pyramid builder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PyramidConfig {
    /// Number of layers, including the base image. Must be ≥ 1.
    pub levels: usize,
    /// Scale between consecutive layers. Must be > 1.
    pub scale_factor: f64,
}

impl Default for PyramidConfig {
    fn default() -> Self {
        PyramidConfig {
            levels: DEFAULT_LEVELS,
            scale_factor: DEFAULT_SCALE_FACTOR,
        }
    }
}

impl PyramidConfig {
    /// The cumulative scale of layer `level` relative to the base image.
    pub fn scale_of(&self, level: usize) -> f64 {
        self.scale_factor.powi(level as i32)
    }

    /// Total number of pixels across all layers for a `width`×`height`
    /// base image; the quantity behind the paper's "48% more pixels"
    /// comparison (§4.4).
    pub fn total_pixels(&self, width: u32, height: u32) -> u64 {
        let mut total = 0u64;
        let mut w = width;
        let mut h = height;
        for level in 0..self.levels {
            total += w as u64 * h as u64;
            if level + 1 < self.levels {
                let s = self.scale_of(level + 1);
                w = ((width as f64) / s).round() as u32;
                h = ((height as f64) / s).round() as u32;
            }
        }
        total
    }
}

/// A multi-scale image pyramid.
///
/// # Examples
///
/// ```
/// use eslam_image::{GrayImage, pyramid::{ImagePyramid, PyramidConfig}};
/// let base = GrayImage::from_fn(640, 480, |x, y| ((x + y) % 256) as u8);
/// let pyr = ImagePyramid::build(&base, &PyramidConfig::default());
/// assert_eq!(pyr.levels(), 4);
/// assert_eq!(pyr.level(0).width(), 640);
/// assert_eq!(pyr.level(1).width(), 533); // 640 / 1.2
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ImagePyramid {
    layers: Vec<GrayImage>,
    config: PyramidConfig,
}

impl Default for ImagePyramid {
    /// An empty pyramid, ready to be filled by
    /// [`ImagePyramid::build_into`].
    fn default() -> Self {
        ImagePyramid {
            layers: Vec::new(),
            config: PyramidConfig::default(),
        }
    }
}

/// Caller-owned scratch for [`ImagePyramid::build_into`]: holds the
/// nearest-neighbour source-column map so steady-state pyramid builds
/// allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct PyramidScratch {
    xmap: Vec<u32>,
}

impl ImagePyramid {
    /// Builds a pyramid by repeated nearest-neighbour downsampling of the
    /// base image, mirroring the streaming Image Resizing hardware (each
    /// layer is produced from the *previous layer*, not from the base).
    ///
    /// # Panics
    /// Panics if `config.levels == 0` or `config.scale_factor <= 1.0`.
    pub fn build(base: &GrayImage, config: &PyramidConfig) -> Self {
        let mut pyramid = ImagePyramid {
            layers: Vec::new(),
            config: *config,
        };
        pyramid.build_into(base, config, &mut PyramidScratch::default());
        pyramid
    }

    /// Rebuilds this pyramid in place for a new base frame, reusing the
    /// existing layer buffers and `scratch`. After the first call with a
    /// given frame geometry, subsequent calls perform **zero heap
    /// allocations** — the steady-state path of the frame loop.
    ///
    /// Results are identical to [`ImagePyramid::build`].
    ///
    /// # Panics
    /// Panics if `config.levels == 0` or `config.scale_factor <= 1.0`.
    pub fn build_into(
        &mut self,
        base: &GrayImage,
        config: &PyramidConfig,
        scratch: &mut PyramidScratch,
    ) {
        assert!(config.levels >= 1, "pyramid needs at least one level");
        assert!(config.scale_factor > 1.0, "scale factor must exceed 1");
        self.config = *config;
        self.layers.truncate(config.levels);
        while self.layers.len() < config.levels {
            self.layers.push(GrayImage::new(0, 0));
        }
        self.layers[0].copy_from(base);
        for level in 1..config.levels {
            // Target size derives from the *base* to avoid compounding
            // rounding, but pixels are sampled from the previous layer as
            // the hardware does.
            let s = config.scale_of(level);
            let w = ((base.width() as f64) / s).round().max(1.0) as u32;
            let h = ((base.height() as f64) / s).round().max(1.0) as u32;
            let (prev, rest) = self.layers[level - 1..].split_first_mut().expect("levels");
            resize_nearest_into(prev, &mut rest[0], w, h, &mut scratch.xmap);
        }
    }

    /// Number of layers.
    pub fn levels(&self) -> usize {
        self.layers.len()
    }

    /// The configuration the pyramid was built with.
    pub fn config(&self) -> &PyramidConfig {
        &self.config
    }

    /// The image at `level` (0 = full resolution).
    ///
    /// # Panics
    /// Panics if `level` is out of range.
    pub fn level(&self, level: usize) -> &GrayImage {
        &self.layers[level]
    }

    /// Cumulative scale of `level` relative to the base.
    pub fn scale_of(&self, level: usize) -> f64 {
        self.config.scale_of(level)
    }

    /// Iterates over `(level, image)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &GrayImage)> {
        self.layers.iter().enumerate()
    }

    /// Total pixel count across all layers.
    pub fn total_pixels(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.width() as u64 * l.height() as u64)
            .sum()
    }
}

/// Nearest-neighbour resize, the downsampling the paper's Image Resizing
/// module applies (§3).
pub fn resize_nearest(src: &GrayImage, width: u32, height: u32) -> GrayImage {
    let mut out = GrayImage::new(width, height);
    resize_nearest_into(src, &mut out, width, height, &mut Vec::new());
    out
}

/// Scalar reference resize (per-pixel coordinate math through
/// [`GrayImage::get`]); the oracle for [`resize_nearest_into`].
pub fn resize_nearest_reference(src: &GrayImage, width: u32, height: u32) -> GrayImage {
    let sx = src.width() as f64 / width as f64;
    let sy = src.height() as f64 / height as f64;
    GrayImage::from_fn(width, height, |x, y| {
        let src_x = ((x as f64 + 0.5) * sx - 0.5)
            .round()
            .clamp(0.0, src.width() as f64 - 1.0) as u32;
        let src_y = ((y as f64 + 0.5) * sy - 0.5)
            .round()
            .clamp(0.0, src.height() as f64 - 1.0) as u32;
        src.get(src_x, src_y)
    })
}

/// Fills `xmap` with the nearest-neighbour source column for each of the
/// `width` output columns (same centre-aligned rounding as
/// [`resize_nearest_reference`]). Computed once per resize and shared by
/// every row the band producer emits.
pub fn resize_nearest_xmap_into(src_width: u32, width: u32, xmap: &mut Vec<u32>) {
    let sx = src_width as f64 / width as f64;
    xmap.clear();
    xmap.extend((0..width).map(|x| {
        ((x as f64 + 0.5) * sx - 0.5)
            .round()
            .clamp(0.0, src_width as f64 - 1.0) as u32
    }));
}

/// The nearest-neighbour source row for output row `y` of a resize to
/// `height` rows — the row-coordinate half of the reference math.
pub fn resize_nearest_src_row(src_height: u32, height: u32, y: u32) -> u32 {
    let sy = src_height as f64 / height as f64;
    ((y as f64 + 0.5) * sy - 0.5)
        .round()
        .clamp(0.0, src_height as f64 - 1.0) as u32
}

/// Produces one output row of a nearest-neighbour resize: gathers from
/// the source row [`resize_nearest_src_row`] selects, through the column
/// map built by [`resize_nearest_xmap_into`].
///
/// This is the row-band producer the streaming front-end tiles levels
/// through; the full-frame [`resize_nearest_into`] loops over it, so the
/// two are bit-identical by construction.
///
/// # Panics
/// Panics if `out.len() != xmap.len()` or `y >= height`.
pub fn resize_nearest_row_into(src: &GrayImage, height: u32, y: u32, xmap: &[u32], out: &mut [u8]) {
    assert_eq!(out.len(), xmap.len(), "output row / column map mismatch");
    assert!(y < height, "row {y} out of range for height {height}");
    let sw = src.width() as usize;
    let src_y = resize_nearest_src_row(src.height(), height, y) as usize;
    let srow = &src.as_raw()[src_y * sw..src_y * sw + sw];
    for (o, &sx_idx) in out.iter_mut().zip(xmap.iter()) {
        *o = srow[sx_idx as usize];
    }
}

/// Nearest-neighbour resize into a caller-owned image, with the
/// source-column map kept in `xmap` scratch: the per-pixel coordinate
/// math of the reference runs once per row/column instead of once per
/// pixel, and row gathers use direct slices. Bit-identical to
/// [`resize_nearest_reference`]. Implemented as a loop over the
/// [`resize_nearest_row_into`] band producer.
pub fn resize_nearest_into(
    src: &GrayImage,
    dst: &mut GrayImage,
    width: u32,
    height: u32,
    xmap: &mut Vec<u32>,
) {
    dst.reshape(width, height);
    resize_nearest_xmap_into(src.width(), width, xmap);
    let out = dst.as_raw_mut();
    let w = width as usize;
    for y in 0..height {
        resize_nearest_row_into(src, height, y, xmap, &mut out[y as usize * w..][..w]);
    }
}

/// Bilinear resize, provided as the software-quality baseline for the
/// nearest-vs-bilinear ablation.
pub fn resize_bilinear(src: &GrayImage, width: u32, height: u32) -> GrayImage {
    let sx = src.width() as f64 / width as f64;
    let sy = src.height() as f64 / height as f64;
    GrayImage::from_fn(width, height, |x, y| {
        let fx = ((x as f64 + 0.5) * sx - 0.5).max(0.0);
        let fy = ((y as f64 + 0.5) * sy - 0.5).max(0.0);
        let x0 = fx.floor() as i64;
        let y0 = fy.floor() as i64;
        let dx = fx - x0 as f64;
        let dy = fy - y0 as f64;
        let p00 = src.get_clamped(x0, y0) as f64;
        let p10 = src.get_clamped(x0 + 1, y0) as f64;
        let p01 = src.get_clamped(x0, y0 + 1) as f64;
        let p11 = src.get_clamped(x0 + 1, y0 + 1) as f64;
        let top = p00 * (1.0 - dx) + p10 * dx;
        let bottom = p01 * (1.0 - dx) + p11 * dx;
        (top * (1.0 - dy) + bottom * dy).round().clamp(0.0, 255.0) as u8
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_level_pyramid_sizes() {
        let base = GrayImage::new(640, 480);
        let pyr = ImagePyramid::build(&base, &PyramidConfig::default());
        let sizes: Vec<_> = pyr.iter().map(|(_, l)| (l.width(), l.height())).collect();
        assert_eq!(sizes[0], (640, 480));
        assert_eq!(sizes[1], (533, 400));
        assert_eq!(sizes[2], (444, 333));
        assert_eq!(sizes[3], (370, 278));
    }

    #[test]
    fn pyramid_pixel_count_matches_paper_48_percent_claim() {
        // §4.4: 4 layers process ~48% more pixels than 2 layers.
        let four = PyramidConfig {
            levels: 4,
            scale_factor: 1.2,
        };
        let two = PyramidConfig {
            levels: 2,
            scale_factor: 1.2,
        };
        let p4 = four.total_pixels(640, 480) as f64;
        let p2 = two.total_pixels(640, 480) as f64;
        let ratio = p4 / p2;
        assert!(
            (ratio - 1.48).abs() < 0.02,
            "pixel ratio {ratio} should be ≈ 1.48"
        );
    }

    #[test]
    fn scale_of_level() {
        let cfg = PyramidConfig::default();
        assert!((cfg.scale_of(0) - 1.0).abs() < 1e-12);
        assert!((cfg.scale_of(2) - 1.44).abs() < 1e-12);
    }

    #[test]
    fn constant_image_stays_constant() {
        let base = GrayImage::from_fn(100, 80, |_, _| 77);
        let pyr = ImagePyramid::build(&base, &PyramidConfig::default());
        for (_, layer) in pyr.iter() {
            assert!(layer.as_raw().iter().all(|&v| v == 77));
        }
    }

    #[test]
    fn nearest_resize_identity() {
        let img = GrayImage::from_fn(10, 10, |x, y| (x * 10 + y) as u8);
        let same = resize_nearest(&img, 10, 10);
        assert_eq!(img, same);
    }

    #[test]
    fn nearest_resize_half() {
        let img = GrayImage::from_fn(4, 4, |x, y| (y * 4 + x) as u8 * 10);
        let half = resize_nearest(&img, 2, 2);
        assert_eq!(half.width(), 2);
        assert_eq!(half.height(), 2);
        // Each output pixel picks one source pixel (no averaging).
        for (_, _, v) in half.pixels() {
            assert!(img.as_raw().contains(&v));
        }
    }

    #[test]
    fn bilinear_resize_smooths() {
        let img = GrayImage::from_fn(4, 1, |x, _| if x < 2 { 0 } else { 200 });
        let out = resize_bilinear(&img, 2, 1);
        // The downsampled edge pixel blends black and white.
        assert!(out.get(0, 0) < 100);
        assert!(out.get(1, 0) > 100);
    }

    #[test]
    fn bilinear_identity_preserves_pixels() {
        let img = GrayImage::from_fn(7, 5, |x, y| ((x * 31 + y * 17) % 256) as u8);
        let same = resize_bilinear(&img, 7, 5);
        assert_eq!(img, same);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        let base = GrayImage::new(10, 10);
        ImagePyramid::build(
            &base,
            &PyramidConfig {
                levels: 0,
                scale_factor: 1.2,
            },
        );
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn bad_scale_panics() {
        let base = GrayImage::new(10, 10);
        ImagePyramid::build(
            &base,
            &PyramidConfig {
                levels: 2,
                scale_factor: 1.0,
            },
        );
    }

    #[test]
    fn total_pixels_consistent() {
        let base = GrayImage::new(640, 480);
        let cfg = PyramidConfig::default();
        let pyr = ImagePyramid::build(&base, &cfg);
        assert_eq!(pyr.total_pixels(), cfg.total_pixels(640, 480));
    }

    #[test]
    fn resize_into_matches_reference() {
        for seed in 0..4u64 {
            let img = GrayImage::from_fn(37, 23, |x, y| {
                ((x as u64 * 31 + y as u64 * 17 + seed * 7) % 256) as u8
            });
            for (w, h) in [(37u32, 23u32), (31, 19), (18, 11), (5, 3), (1, 1), (74, 46)] {
                assert_eq!(
                    resize_nearest(&img, w, h),
                    resize_nearest_reference(&img, w, h),
                    "seed {seed} target {w}x{h}"
                );
            }
        }
    }

    #[test]
    fn build_into_matches_build_and_reuses_buffers() {
        let cfg = PyramidConfig::default();
        let frame_a = GrayImage::from_fn(160, 120, |x, y| ((x * 13 + y * 7) % 256) as u8);
        let frame_b = GrayImage::from_fn(160, 120, |x, y| ((x * 5 + y * 29) % 256) as u8);

        let mut pyr = ImagePyramid::build(&frame_a, &cfg);
        assert_eq!(pyr, ImagePyramid::build(&frame_a, &cfg));

        let ptrs: Vec<*const u8> = pyr.layers.iter().map(|l| l.as_raw().as_ptr()).collect();
        let mut scratch = PyramidScratch::default();
        pyr.build_into(&frame_b, &cfg, &mut scratch);
        assert_eq!(pyr, ImagePyramid::build(&frame_b, &cfg));
        // Same geometry ⇒ every layer buffer was reused in place.
        let ptrs_after: Vec<*const u8> = pyr.layers.iter().map(|l| l.as_raw().as_ptr()).collect();
        assert_eq!(ptrs, ptrs_after);
    }

    #[test]
    fn build_into_handles_level_count_changes() {
        let frame = GrayImage::from_fn(100, 80, |x, y| ((x ^ y) % 256) as u8);
        let mut scratch = PyramidScratch::default();
        let mut pyr = ImagePyramid::build(
            &frame,
            &PyramidConfig {
                levels: 2,
                scale_factor: 1.2,
            },
        );
        pyr.build_into(
            &frame,
            &PyramidConfig {
                levels: 5,
                scale_factor: 1.3,
            },
            &mut scratch,
        );
        assert_eq!(
            pyr,
            ImagePyramid::build(
                &frame,
                &PyramidConfig {
                    levels: 5,
                    scale_factor: 1.3
                }
            )
        );
        pyr.build_into(
            &frame,
            &PyramidConfig {
                levels: 1,
                scale_factor: 1.2,
            },
            &mut scratch,
        );
        assert_eq!(pyr.levels(), 1);
    }
}
