//! Simple rasterized drawing primitives for figure generation.
//!
//! Used by the benchmark harness to render the pattern visualization
//! (Fig. 2) and trajectory plots (Fig. 9) as PPM files.

use crate::io::RgbImage;

/// Draws a line with Bresenham's algorithm; endpoints outside the image
/// are clipped pixel-by-pixel.
pub fn draw_line(img: &mut RgbImage, x0: i64, y0: i64, x1: i64, y1: i64, colour: [u8; 3]) {
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    let (mut x, mut y) = (x0, y0);
    loop {
        img.set(x, y, colour);
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
}

/// Draws a circle outline (midpoint algorithm).
pub fn draw_circle(img: &mut RgbImage, cx: i64, cy: i64, radius: i64, colour: [u8; 3]) {
    if radius < 0 {
        return;
    }
    let mut x = radius;
    let mut y = 0;
    let mut err = 1 - radius;
    while x >= y {
        for (px, py) in [
            (cx + x, cy + y),
            (cx - x, cy + y),
            (cx + x, cy - y),
            (cx - x, cy - y),
            (cx + y, cy + x),
            (cx - y, cy + x),
            (cx + y, cy - x),
            (cx - y, cy - x),
        ] {
            img.set(px, py, colour);
        }
        y += 1;
        if err < 0 {
            err += 2 * y + 1;
        } else {
            x -= 1;
            err += 2 * (y - x) + 1;
        }
    }
}

/// Fills a small axis-aligned square centred at `(cx, cy)`; handy for
/// marking keypoints.
pub fn draw_marker(img: &mut RgbImage, cx: i64, cy: i64, half: i64, colour: [u8; 3]) {
    for y in (cy - half)..=(cy + half) {
        for x in (cx - half)..=(cx + half) {
            img.set(x, y, colour);
        }
    }
}

/// Plots a 2-D polyline (e.g. a trajectory) into an image, auto-scaling
/// the data to fit with a margin. Returns the scale used
/// (pixels per data unit).
pub fn plot_polyline(
    img: &mut RgbImage,
    points: &[(f64, f64)],
    colour: [u8; 3],
    margin: u32,
) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let (min_x, max_x) = points
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.0), hi.max(p.0))
        });
    let (min_y, max_y) = points
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.1), hi.max(p.1))
        });
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    let avail_x = (img.width().saturating_sub(2 * margin)) as f64;
    let avail_y = (img.height().saturating_sub(2 * margin)) as f64;
    let scale = (avail_x / span_x).min(avail_y / span_y);

    let img_height = img.height() as f64;
    let to_px = move |p: &(f64, f64)| -> (i64, i64) {
        (
            (margin as f64 + (p.0 - min_x) * scale) as i64,
            // Flip the vertical axis: data "up" is image "up".
            (img_height - margin as f64 - (p.1 - min_y) * scale) as i64,
        )
    };
    for pair in points.windows(2) {
        let (x0, y0) = to_px(&pair[0]);
        let (x1, y1) = to_px(&pair[1]);
        draw_line(img, x0, y0, x1, y1, colour);
    }
    scale
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_coloured(img: &RgbImage, colour: [u8; 3]) -> usize {
        let mut n = 0;
        for y in 0..img.height() {
            for x in 0..img.width() {
                if img.get(x, y) == colour {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn horizontal_line() {
        let mut img = RgbImage::filled(10, 10, [0; 3]);
        draw_line(&mut img, 1, 5, 8, 5, [255, 0, 0]);
        for x in 1..=8 {
            assert_eq!(img.get(x, 5), [255, 0, 0]);
        }
        assert_eq!(count_coloured(&img, [255, 0, 0]), 8);
    }

    #[test]
    fn diagonal_line_hits_endpoints() {
        let mut img = RgbImage::filled(10, 10, [0; 3]);
        draw_line(&mut img, 0, 0, 9, 9, [0, 255, 0]);
        assert_eq!(img.get(0, 0), [0, 255, 0]);
        assert_eq!(img.get(9, 9), [0, 255, 0]);
        assert_eq!(img.get(4, 4), [0, 255, 0]);
    }

    #[test]
    fn line_clips_out_of_bounds() {
        let mut img = RgbImage::filled(5, 5, [0; 3]);
        // Must not panic even though coordinates leave the canvas.
        draw_line(&mut img, -10, 2, 20, 2, [1, 2, 3]);
        assert_eq!(count_coloured(&img, [1, 2, 3]), 5);
    }

    #[test]
    fn circle_radius_zero_is_point() {
        let mut img = RgbImage::filled(5, 5, [0; 3]);
        draw_circle(&mut img, 2, 2, 0, [9, 9, 9]);
        assert_eq!(img.get(2, 2), [9, 9, 9]);
    }

    #[test]
    fn circle_is_symmetric() {
        let mut img = RgbImage::filled(21, 21, [0; 3]);
        draw_circle(&mut img, 10, 10, 6, [255, 255, 255]);
        for y in 0..21 {
            for x in 0..21 {
                let mirrored = img.get(20 - x, y);
                assert_eq!(img.get(x, y), mirrored, "x-symmetry at ({x},{y})");
            }
        }
        // Circle pixels lie near the ideal radius.
        for y in 0..21i64 {
            for x in 0..21i64 {
                if img.get(x as u32, y as u32) == [255, 255, 255] {
                    let r = (((x - 10).pow(2) + (y - 10).pow(2)) as f64).sqrt();
                    assert!((r - 6.0).abs() < 1.0, "pixel ({x},{y}) at radius {r}");
                }
            }
        }
    }

    #[test]
    fn marker_fills_square() {
        let mut img = RgbImage::filled(10, 10, [0; 3]);
        draw_marker(&mut img, 5, 5, 1, [7, 7, 7]);
        assert_eq!(count_coloured(&img, [7, 7, 7]), 9);
    }

    #[test]
    fn polyline_scales_into_canvas() {
        let mut img = RgbImage::filled(100, 100, [0; 3]);
        let pts = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];
        let scale = plot_polyline(&mut img, &pts, [255, 0, 0], 10);
        assert!(scale > 0.0);
        // Everything stays inside the margin box.
        for y in 0..100 {
            for x in 0..100 {
                if img.get(x, y) == [255, 0, 0] {
                    assert!((9..=91).contains(&x), "x={x}");
                    assert!((9..=91).contains(&y), "y={y}");
                }
            }
        }
    }

    #[test]
    fn polyline_with_one_point_is_noop() {
        let mut img = RgbImage::filled(10, 10, [0; 3]);
        let scale = plot_polyline(&mut img, &[(1.0, 1.0)], [255, 0, 0], 1);
        assert_eq!(scale, 0.0);
        assert_eq!(count_coloured(&img, [255, 0, 0]), 0);
    }
}
