//! Grayscale and depth image containers.
//!
//! The eSLAM pipeline operates on 8-bit grayscale images (ORB works on
//! intensity only) and 16-bit depth maps in the TUM convention
//! (5000 units per metre). Storage is row-major, matching the raster order
//! the streaming hardware consumes.

use std::fmt;

/// Scale factor of TUM depth images: raw `u16` value / 5000 = metres.
pub const TUM_DEPTH_SCALE: f64 = 5000.0;

/// An 8-bit grayscale image in row-major layout.
///
/// # Examples
///
/// ```
/// use eslam_image::GrayImage;
/// let mut img = GrayImage::new(4, 3);
/// img.set(2, 1, 200);
/// assert_eq!(img.get(2, 1), 200);
/// assert_eq!(img.width(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl GrayImage {
    /// Creates a black image of the given size.
    ///
    /// # Panics
    /// Panics if `width * height` overflows `usize`.
    pub fn new(width: u32, height: u32) -> Self {
        let len = (width as usize)
            .checked_mul(height as usize)
            .expect("image dimensions overflow");
        GrayImage {
            width,
            height,
            data: vec![0; len],
        }
    }

    /// Builds an image by evaluating `f(x, y)` for every pixel.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> u8) -> Self {
        let mut img = GrayImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let idx = (y as usize) * width as usize + x as usize;
                img.data[idx] = f(x, y);
            }
        }
        img
    }

    /// Wraps an existing row-major pixel buffer.
    ///
    /// Returns `None` when `data.len() != width * height`.
    pub fn from_raw(width: u32, height: u32, data: Vec<u8>) -> Option<Self> {
        if data.len() == width as usize * height as usize {
            Some(GrayImage {
                width,
                height,
                data,
            })
        } else {
            None
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The raw row-major pixel buffer.
    #[inline]
    pub fn as_raw(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the raw row-major pixel buffer.
    #[inline]
    pub fn as_raw_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Resizes the image to `width × height` in place, reusing the
    /// existing allocation when its capacity suffices. Pixel contents
    /// after the call are unspecified; callers are expected to overwrite
    /// them. This is the zero-steady-state-allocation primitive behind
    /// [`crate::pyramid::ImagePyramid::build_into`].
    ///
    /// # Panics
    /// Panics if `width * height` overflows `usize`.
    pub fn reshape(&mut self, width: u32, height: u32) {
        let len = (width as usize)
            .checked_mul(height as usize)
            .expect("image dimensions overflow");
        self.data.resize(len, 0);
        self.width = width;
        self.height = height;
    }

    /// Copies `src` into `self`, reusing the allocation when possible.
    pub fn copy_from(&mut self, src: &GrayImage) {
        self.reshape(src.width, src.height);
        self.data.copy_from_slice(&src.data);
    }

    /// Consumes the image, returning the pixel buffer.
    pub fn into_raw(self) -> Vec<u8> {
        self.data
    }

    /// Pixel intensity at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> u8 {
        debug_assert!(x < self.width && y < self.height);
        self.data[(y as usize) * self.width as usize + x as usize]
    }

    /// Pixel intensity at `(x, y)`, or `None` when out of bounds.
    #[inline]
    pub fn try_get(&self, x: i64, y: i64) -> Option<u8> {
        if x >= 0 && y >= 0 && (x as u32) < self.width && (y as u32) < self.height {
            Some(self.data[(y as usize) * self.width as usize + x as usize])
        } else {
            None
        }
    }

    /// Pixel intensity with the coordinates clamped into bounds (border
    /// replication, the behaviour of the hardware line buffers at image
    /// edges).
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> u8 {
        let cx = x.clamp(0, self.width as i64 - 1) as u32;
        let cy = y.clamp(0, self.height as i64 - 1) as u32;
        self.get(cx, cy)
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, value: u8) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[(y as usize) * self.width as usize + x as usize] = value;
    }

    /// One row of pixels.
    ///
    /// # Panics
    /// Panics if `y` is out of bounds.
    pub fn row(&self, y: u32) -> &[u8] {
        assert!(y < self.height);
        let start = (y as usize) * self.width as usize;
        &self.data[start..start + self.width as usize]
    }

    /// Iterates over `(x, y, intensity)` triples in raster order.
    pub fn pixels(&self) -> impl Iterator<Item = (u32, u32, u8)> + '_ {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| ((i as u32) % w, (i as u32) / w, v))
    }

    /// Mean intensity (0 for an empty image).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&v| v as u64).sum::<u64>() as f64 / self.data.len() as f64
    }
}

impl Default for GrayImage {
    /// An empty 0×0 image (useful as reusable scratch storage).
    fn default() -> Self {
        GrayImage::new(0, 0)
    }
}

impl fmt::Display for GrayImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GrayImage {}x{}", self.width, self.height)
    }
}

/// A 16-bit depth image in the TUM convention (value / 5000 = metres,
/// 0 = missing measurement).
///
/// # Examples
///
/// ```
/// use eslam_image::DepthImage;
/// let mut d = DepthImage::new(2, 2);
/// d.set_metres(0, 0, 2.0);
/// assert_eq!(d.get(0, 0), 10000);
/// assert!((d.metres(0, 0).unwrap() - 2.0).abs() < 1e-4);
/// assert!(d.metres(1, 1).is_none()); // missing depth
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepthImage {
    width: u32,
    height: u32,
    data: Vec<u16>,
}

impl DepthImage {
    /// Creates a depth image with all measurements missing (zero).
    pub fn new(width: u32, height: u32) -> Self {
        DepthImage {
            width,
            height,
            data: vec![0; width as usize * height as usize],
        }
    }

    /// Builds a depth image by evaluating `f(x, y)` (raw units) per pixel.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> u16) -> Self {
        let mut img = DepthImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let idx = (y as usize) * width as usize + x as usize;
                img.data[idx] = f(x, y);
            }
        }
        img
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw depth value at `(x, y)` (TUM units, 0 = missing).
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> u16 {
        debug_assert!(x < self.width && y < self.height);
        self.data[(y as usize) * self.width as usize + x as usize]
    }

    /// Sets the raw depth value at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, value: u16) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[(y as usize) * self.width as usize + x as usize] = value;
    }

    /// Depth in metres at `(x, y)`, or `None` for missing measurements.
    #[inline]
    pub fn metres(&self, x: u32, y: u32) -> Option<f64> {
        let raw = self.get(x, y);
        if raw == 0 {
            None
        } else {
            Some(raw as f64 / TUM_DEPTH_SCALE)
        }
    }

    /// Sets the depth in metres (clamped to the representable range).
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    pub fn set_metres(&mut self, x: u32, y: u32, metres: f64) {
        let raw = (metres * TUM_DEPTH_SCALE)
            .round()
            .clamp(0.0, u16::MAX as f64) as u16;
        self.set(x, y, raw);
    }

    /// The raw row-major depth buffer.
    #[inline]
    pub fn as_raw(&self) -> &[u16] {
        &self.data
    }

    /// Mutable access to the raw row-major depth buffer.
    #[inline]
    pub fn as_raw_mut(&mut self) -> &mut [u16] {
        &mut self.data
    }

    /// Resizes the depth map to `width × height` in place, reusing the
    /// existing allocation when its capacity suffices. Pixel contents
    /// after the call are unspecified; callers are expected to overwrite
    /// them (the depth-map counterpart of [`GrayImage::reshape`]).
    ///
    /// # Panics
    /// Panics if `width * height` overflows `usize`.
    pub fn reshape(&mut self, width: u32, height: u32) {
        let len = (width as usize)
            .checked_mul(height as usize)
            .expect("image dimensions overflow");
        self.data.resize(len, 0);
        self.width = width;
        self.height = height;
    }

    /// Copies `src` into `self`, reusing the allocation when possible.
    pub fn copy_from(&mut self, src: &DepthImage) {
        self.reshape(src.width, src.height);
        self.data.copy_from_slice(&src.data);
    }

    /// Fraction of pixels carrying a valid (non-zero) measurement.
    pub fn coverage(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|&&v| v != 0).count() as f64 / self.data.len() as f64
    }
}

impl Default for DepthImage {
    /// An empty 0×0 depth map (useful as reusable scratch storage).
    fn default() -> Self {
        DepthImage::new(0, 0)
    }
}

impl fmt::Display for DepthImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DepthImage {}x{}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_image_is_black() {
        let img = GrayImage::new(8, 4);
        assert!(img.as_raw().iter().all(|&v| v == 0));
        assert_eq!(img.as_raw().len(), 32);
    }

    #[test]
    fn from_fn_raster_order() {
        let img = GrayImage::from_fn(3, 2, |x, y| (y * 10 + x) as u8);
        assert_eq!(img.as_raw(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(img.get(2, 1), 12);
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(GrayImage::from_raw(2, 2, vec![1, 2, 3, 4]).is_some());
        assert!(GrayImage::from_raw(2, 2, vec![1, 2, 3]).is_none());
    }

    #[test]
    fn try_get_bounds() {
        let img = GrayImage::from_fn(2, 2, |x, y| (x + y) as u8);
        assert_eq!(img.try_get(1, 1), Some(2));
        assert_eq!(img.try_get(-1, 0), None);
        assert_eq!(img.try_get(2, 0), None);
        assert_eq!(img.try_get(0, 2), None);
    }

    #[test]
    fn get_clamped_replicates_border() {
        let img = GrayImage::from_fn(3, 3, |x, y| (y * 3 + x) as u8);
        assert_eq!(img.get_clamped(-5, -5), 0);
        assert_eq!(img.get_clamped(10, 10), 8);
        assert_eq!(img.get_clamped(-1, 1), 3);
    }

    #[test]
    fn rows_and_pixels_iterate() {
        let img = GrayImage::from_fn(3, 2, |x, y| (y * 3 + x) as u8);
        assert_eq!(img.row(1), &[3, 4, 5]);
        let collected: Vec<_> = img.pixels().collect();
        assert_eq!(collected.len(), 6);
        assert_eq!(collected[4], (1, 1, 4));
    }

    #[test]
    fn mean_intensity() {
        let img = GrayImage::from_fn(2, 2, |x, _| if x == 0 { 0 } else { 100 });
        assert_eq!(img.mean(), 50.0);
        assert_eq!(GrayImage::new(0, 0).mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_out_of_bounds_panics() {
        let mut img = GrayImage::new(2, 2);
        img.set(2, 0, 1);
    }

    #[test]
    fn reshape_reuses_capacity() {
        let mut img = GrayImage::new(8, 8);
        let cap_before = img.data.capacity();
        let ptr_before = img.data.as_ptr();
        img.reshape(4, 4);
        assert_eq!(img.width(), 4);
        assert_eq!(img.as_raw().len(), 16);
        assert_eq!(img.data.capacity(), cap_before);
        assert_eq!(img.data.as_ptr(), ptr_before);
        img.reshape(8, 8);
        assert_eq!(img.data.as_ptr(), ptr_before);
    }

    #[test]
    fn copy_from_matches_source() {
        let src = GrayImage::from_fn(5, 3, |x, y| (x * 7 + y) as u8);
        let mut dst = GrayImage::new(50, 50);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn depth_round_trip_metres() {
        let mut d = DepthImage::new(4, 4);
        d.set_metres(1, 2, 1.5);
        assert_eq!(d.get(1, 2), 7500);
        assert!((d.metres(1, 2).unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn depth_zero_is_missing() {
        let d = DepthImage::new(2, 2);
        assert!(d.metres(0, 0).is_none());
        assert_eq!(d.coverage(), 0.0);
    }

    #[test]
    fn depth_coverage_counts_valid() {
        let d = DepthImage::from_fn(2, 2, |x, y| if x == 0 && y == 0 { 0 } else { 100 });
        assert!((d.coverage() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn depth_reshape_reuses_capacity() {
        let mut d = DepthImage::new(8, 8);
        let ptr_before = d.data.as_ptr();
        d.reshape(4, 4);
        assert_eq!(d.width(), 4);
        assert_eq!(d.as_raw().len(), 16);
        assert_eq!(d.data.as_ptr(), ptr_before);
        d.reshape(8, 8);
        assert_eq!(d.data.as_ptr(), ptr_before);
    }

    #[test]
    fn depth_copy_from_matches_source() {
        let src = DepthImage::from_fn(5, 3, |x, y| (x * 1000 + y) as u16);
        let mut dst = DepthImage::new(50, 50);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn depth_set_metres_clamps() {
        let mut d = DepthImage::new(1, 1);
        d.set_metres(0, 0, 1e9);
        assert_eq!(d.get(0, 0), u16::MAX);
        d.set_metres(0, 0, -1.0);
        assert_eq!(d.get(0, 0), 0);
    }
}
