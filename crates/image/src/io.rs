//! Minimal PGM/PPM image I/O.
//!
//! The reproduction avoids external image codecs; binary PGM (P5) covers
//! grayscale input/output and binary PPM (P6) covers the colour plots
//! (trajectory figures, pattern visualizations) emitted by the benchmark
//! harness.

use crate::image::GrayImage;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors arising from image file I/O.
#[derive(Debug)]
pub enum ImageIoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file is not a valid PGM/PPM of the expected flavour.
    Format(String),
}

impl fmt::Display for ImageIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageIoError::Io(e) => write!(f, "i/o failure: {e}"),
            ImageIoError::Format(msg) => write!(f, "invalid image format: {msg}"),
        }
    }
}

impl std::error::Error for ImageIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageIoError::Io(e) => Some(e),
            ImageIoError::Format(_) => None,
        }
    }
}

impl From<io::Error> for ImageIoError {
    fn from(e: io::Error) -> Self {
        ImageIoError::Io(e)
    }
}

/// An 8-bit RGB image used only for figure output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgbImage {
    width: u32,
    height: u32,
    data: Vec<[u8; 3]>,
}

impl RgbImage {
    /// Creates an image filled with the given colour.
    pub fn filled(width: u32, height: u32, colour: [u8; 3]) -> Self {
        RgbImage {
            width,
            height,
            data: vec![colour; width as usize * height as usize],
        }
    }

    /// Converts a grayscale image to RGB.
    pub fn from_gray(gray: &GrayImage) -> Self {
        RgbImage {
            width: gray.width(),
            height: gray.height(),
            data: gray.as_raw().iter().map(|&v| [v, v, v]).collect(),
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Colour at `(x, y)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn get(&self, x: u32, y: u32) -> [u8; 3] {
        assert!(x < self.width && y < self.height);
        self.data[(y * self.width + x) as usize]
    }

    /// Sets the colour at `(x, y)`; out-of-bounds writes are ignored so
    /// drawing code can clip implicitly.
    pub fn set(&mut self, x: i64, y: i64, colour: [u8; 3]) {
        if x >= 0 && y >= 0 && (x as u32) < self.width && (y as u32) < self.height {
            self.data[(y as u32 * self.width + x as u32) as usize] = colour;
        }
    }

    /// Writes a binary PPM (P6) file.
    ///
    /// # Errors
    /// Returns an error if the file cannot be created or written.
    pub fn save_ppm(&self, path: impl AsRef<Path>) -> Result<(), ImageIoError> {
        let mut w = BufWriter::new(File::create(path)?);
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        for px in &self.data {
            w.write_all(px)?;
        }
        Ok(())
    }
}

/// Writes a [`GrayImage`] as binary PGM (P5).
///
/// # Errors
/// Returns an error if the file cannot be created or written.
pub fn save_pgm(img: &GrayImage, path: impl AsRef<Path>) -> Result<(), ImageIoError> {
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "P5\n{} {}\n255\n", img.width(), img.height())?;
    w.write_all(img.as_raw())?;
    Ok(())
}

/// Reads a binary PGM (P5) file into a [`GrayImage`].
///
/// # Errors
/// Returns an error for missing files, non-P5 magic numbers, maxval other
/// than 255 or truncated pixel data.
pub fn load_pgm(path: impl AsRef<Path>) -> Result<GrayImage, ImageIoError> {
    let mut reader = BufReader::new(File::open(path)?);
    let magic = read_token(&mut reader)?;
    if magic != "P5" {
        return Err(ImageIoError::Format(format!(
            "expected P5, found {magic:?}"
        )));
    }
    let width: u32 = parse_token(&mut reader)?;
    let height: u32 = parse_token(&mut reader)?;
    let maxval: u32 = parse_token(&mut reader)?;
    if maxval != 255 {
        return Err(ImageIoError::Format(format!("unsupported maxval {maxval}")));
    }
    let mut data = vec![0u8; width as usize * height as usize];
    reader.read_exact(&mut data)?;
    GrayImage::from_raw(width, height, data)
        .ok_or_else(|| ImageIoError::Format("pixel buffer size mismatch".into()))
}

/// Reads one whitespace-delimited token, skipping `#` comment lines.
fn read_token<R: BufRead>(reader: &mut R) -> Result<String, ImageIoError> {
    let mut token = String::new();
    let mut byte = [0u8; 1];
    // Skip leading whitespace and comments.
    loop {
        if reader.read(&mut byte)? == 0 {
            return Err(ImageIoError::Format("unexpected end of file".into()));
        }
        match byte[0] {
            b'#' => {
                let mut line = String::new();
                reader.read_line(&mut line)?;
            }
            c if c.is_ascii_whitespace() => {}
            c => {
                token.push(c as char);
                break;
            }
        }
    }
    loop {
        if reader.read(&mut byte)? == 0 {
            break;
        }
        if byte[0].is_ascii_whitespace() {
            break;
        }
        token.push(byte[0] as char);
    }
    Ok(token)
}

fn parse_token<R: BufRead, T: std::str::FromStr>(reader: &mut R) -> Result<T, ImageIoError> {
    let token = read_token(reader)?;
    token
        .parse()
        .map_err(|_| ImageIoError::Format(format!("bad numeric token {token:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("eslam_image_io_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn pgm_round_trip() {
        let img = GrayImage::from_fn(13, 7, |x, y| ((x * 19 + y * 7) % 256) as u8);
        let path = temp_path("round_trip.pgm");
        save_pgm(&img, &path).unwrap();
        let loaded = load_pgm(&path).unwrap();
        assert_eq!(img, loaded);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn pgm_with_comment_header() {
        let path = temp_path("comment.pgm");
        let mut f = File::create(&path).unwrap();
        f.write_all(b"P5\n# a comment line\n2 2\n255\n\x01\x02\x03\x04")
            .unwrap();
        drop(f);
        let img = load_pgm(&path).unwrap();
        assert_eq!(img.as_raw(), &[1, 2, 3, 4]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = temp_path("bad_magic.pgm");
        std::fs::write(&path, b"P2\n2 2\n255\n1 2 3 4\n").unwrap();
        let err = load_pgm(&path).unwrap_err();
        assert!(matches!(err, ImageIoError::Format(_)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_truncated_data() {
        let path = temp_path("truncated.pgm");
        std::fs::write(&path, b"P5\n4 4\n255\n\x01\x02").unwrap();
        assert!(load_pgm(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_pgm("/nonexistent/definitely/missing.pgm").unwrap_err();
        assert!(matches!(err, ImageIoError::Io(_)));
    }

    #[test]
    fn rgb_set_clips_out_of_bounds() {
        let mut img = RgbImage::filled(4, 4, [0, 0, 0]);
        img.set(-1, 0, [255, 0, 0]);
        img.set(0, 100, [255, 0, 0]);
        img.set(2, 2, [9, 8, 7]);
        assert_eq!(img.get(2, 2), [9, 8, 7]);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
    }

    #[test]
    fn rgb_from_gray_replicates_channels() {
        let g = GrayImage::from_fn(2, 1, |x, _| (x * 100) as u8);
        let rgb = RgbImage::from_gray(&g);
        assert_eq!(rgb.get(0, 0), [0, 0, 0]);
        assert_eq!(rgb.get(1, 0), [100, 100, 100]);
    }

    #[test]
    fn ppm_write_produces_header_and_payload() {
        let img = RgbImage::filled(2, 2, [10, 20, 30]);
        let path = temp_path("out.ppm");
        img.save_ppm(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(bytes.len(), b"P6\n2 2\n255\n".len() + 12);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let err = ImageIoError::Format("boom".into());
        assert!(err.to_string().contains("boom"));
    }
}
