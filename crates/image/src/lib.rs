//! Image substrate for the eSLAM reproduction.
//!
//! Provides the image containers and per-pixel operations the paper's
//! front-end consumes:
//!
//! * [`GrayImage`] / [`DepthImage`] — 8-bit intensity and TUM-convention
//!   16-bit depth rasters;
//! * [`pyramid`] — the 4-layer nearest-neighbour image pyramid produced by
//!   the paper's Image Resizing module (§3);
//! * [`filter`] — the 7×7 Gaussian Image Smoother (§3.1), in both the
//!   fixed-point form the hardware datapath uses and a floating-point
//!   reference;
//! * [`io`] — dependency-free PGM/PPM reading and writing;
//! * [`draw`] — rasterized primitives for regenerating the paper's
//!   figures.
//!
//! # Examples
//!
//! ```
//! use eslam_image::{GrayImage, pyramid::{ImagePyramid, PyramidConfig}, filter};
//!
//! let frame = GrayImage::from_fn(640, 480, |x, y| ((x ^ y) % 256) as u8);
//! let smooth = filter::gaussian_blur_7x7_fixed(&frame);
//! let pyramid = ImagePyramid::build(&smooth, &PyramidConfig::default());
//! assert_eq!(pyramid.levels(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod draw;
pub mod filter;
pub mod image;
pub mod io;
pub mod pyramid;

pub use image::{DepthImage, GrayImage, TUM_DEPTH_SCALE};
pub use io::RgbImage;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn pyramid_layers_shrink_monotonically(
            w in 32u32..200, h in 32u32..200, levels in 1usize..6,
        ) {
            let base = GrayImage::new(w, h);
            let cfg = pyramid::PyramidConfig { levels, scale_factor: 1.2 };
            let pyr = pyramid::ImagePyramid::build(&base, &cfg);
            prop_assert_eq!(pyr.levels(), levels);
            for lvl in 1..levels {
                prop_assert!(pyr.level(lvl).width() <= pyr.level(lvl - 1).width());
                prop_assert!(pyr.level(lvl).height() <= pyr.level(lvl - 1).height());
            }
        }

        #[test]
        fn blur_preserves_intensity_range(seed in 0u64..50) {
            let img = GrayImage::from_fn(24, 24, |x, y| {
                ((x as u64 * 31 + y as u64 * 17 + seed * 13) % 256) as u8
            });
            let lo = *img.as_raw().iter().min().unwrap();
            let hi = *img.as_raw().iter().max().unwrap();
            let out = filter::gaussian_blur_7x7_fixed(&img);
            for &v in out.as_raw() {
                prop_assert!(v >= lo && v <= hi);
            }
        }

        #[test]
        fn blur_border_rule_matches_reference(
            w in 1u32..48, h in 1u32..48, seed in 0u64..1000,
        ) {
            // Pins the edge-replication rule of the fixed-point blur
            // (clamp-to-border taps, single final rounding shift) across
            // arbitrary sizes, including rows/columns below the 7-tap
            // halo where every window is partial.
            let img = GrayImage::from_fn(w, h, |x, y| {
                ((x as u64).wrapping_mul(2654435761)
                    ^ (y as u64).wrapping_mul(40503)
                    ^ seed.wrapping_mul(11400714819323198485)) as u8
            });
            prop_assert_eq!(
                filter::gaussian_blur_7x7_fixed(&img),
                filter::gaussian_blur_7x7_fixed_reference(&img)
            );
        }

        #[test]
        fn nearest_resize_rows_match_reference(
            w in 1u32..40, h in 1u32..40, ow in 1u32..48, oh in 1u32..48, seed in 0u64..100,
        ) {
            // The row-band producer assembled over all rows must equal
            // the per-pixel reference for arbitrary up/down-scales.
            let img = GrayImage::from_fn(w, h, |x, y| {
                ((x as u64 * 7 + y as u64 * 11 + seed) % 256) as u8
            });
            let mut xmap = Vec::new();
            pyramid::resize_nearest_xmap_into(w, ow, &mut xmap);
            let mut assembled = GrayImage::new(ow, oh);
            let out = assembled.as_raw_mut();
            for y in 0..oh {
                pyramid::resize_nearest_row_into(
                    &img, oh, y, &xmap,
                    &mut out[y as usize * ow as usize..][..ow as usize],
                );
            }
            prop_assert_eq!(assembled, pyramid::resize_nearest_reference(&img, ow, oh));
        }

        #[test]
        fn nearest_resize_only_emits_source_values(
            w in 4u32..40, h in 4u32..40, seed in 0u64..20,
        ) {
            let img = GrayImage::from_fn(w, h, |x, y| {
                ((x as u64 * 7 + y as u64 * 11 + seed) % 256) as u8
            });
            let out = pyramid::resize_nearest(&img, (w / 2).max(1), (h / 2).max(1));
            for (_, _, v) in out.pixels() {
                prop_assert!(img.as_raw().contains(&v));
            }
        }
    }
}
