//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! numeric-range / `any::<T>()` / tuple / `prop_map` / `collection::vec`
//! strategies, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` assertion macros.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test PRNG (seeded from the test name), there is **no shrinking**,
//! and failures report the case index instead of a minimized input. That
//! is enough for the equivalence/property suites here, which exist to
//! sweep many random inputs rather than to minimize counterexamples.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic xoshiro256++ generator driving input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates the RNG for `(test_name, case_index)`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut state = h ^ ((case as u64) << 32) ^ 0x9e3779b97f4a7c15;
        let mut next = || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Error raised by a failing or rejected test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The case's assumptions did not hold (`prop_assume!`).
    Reject(String),
}

impl TestCaseError {
    /// A failed case.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (the `ProptestConfig` of upstream).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the 1-core CI budget sane
        // while still sweeping a meaningful input volume.
        ProptestConfig { cases: 64 }
    }
}

/// Generation strategies (simplified: a strategy samples a value).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_strategy_impl {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

int_strategy_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
    }
}

macro_rules! tuple_strategy_impl {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy_impl!(A);
tuple_strategy_impl!(A, B);
tuple_strategy_impl!(A, B, C);
tuple_strategy_impl!(A, B, C, D);
tuple_strategy_impl!(A, B, C, D, E);
tuple_strategy_impl!(A, B, C, D, E, F);
tuple_strategy_impl!(A, B, C, D, E, F, G);
tuple_strategy_impl!(A, B, C, D, E, F, G, H);
tuple_strategy_impl!(A, B, C, D, E, F, G, H, I);

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int_impl {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (the `proptest::collection` module).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, len_range)`: vectors of `element` samples.
    ///
    /// # Panics
    /// Panics (at sample time) if the length range is empty.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }
}

/// Test-runner internals used by the [`proptest!`] expansion.
pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};

    /// Drives the per-case loop of one property test.
    #[derive(Debug)]
    pub struct Runner {
        config: ProptestConfig,
        name: &'static str,
        rejects: u32,
    }

    impl Runner {
        /// Creates a runner for the named test.
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            Runner {
                config,
                name,
                rejects: 0,
            }
        }

        /// Number of cases to attempt.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// RNG for case `case`.
        pub fn rng(&self, case: u32) -> TestRng {
            TestRng::for_case(self.name, case)
        }

        /// Handles one case outcome; panics on failure.
        pub fn handle(&mut self, case: u32, result: TestCaseResult) {
            match result {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {
                    self.rejects += 1;
                    let limit = self.config.cases.saturating_mul(16).max(256);
                    assert!(
                        self.rejects <= limit,
                        "{}: too many rejected cases ({})",
                        self.name,
                        self.rejects
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{} failed at case {case}: {msg}", self.name)
                }
            }
        }
    }
}

/// The proptest prelude: everything the `proptest!` grammar needs.
pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// The `prop` module alias of the upstream prelude
    /// (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal muncher behind [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::Runner::new($cfg, stringify!($name));
            let mut case = 0u32;
            let mut done = 0u32;
            while done < runner.cases() {
                let mut rng = runner.rng(case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                let rejected = matches!(
                    &outcome,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_))
                );
                runner.handle(case, outcome);
                if !rejected {
                    done += 1;
                }
                case += 1;
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = crate::Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = crate::Strategy::sample(&(-1.0..1.0f64), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::TestRng::for_case("vecs", 0);
        for _ in 0..100 {
            let v = crate::Strategy::sample(&prop::collection::vec(any::<u64>(), 2..9), &mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }

    proptest! {
        #[test]
        fn macro_basic(a in 0u32..100, b in 0u32..100) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn macro_assume_rejects(v in 0u32..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }

        #[test]
        fn macro_map_and_tuple(
            pair in (any::<u64>(), 1u64..5).prop_map(|(a, b)| (a % b, b)),
        ) {
            prop_assert!(pair.0 < pair.1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_with_config(x in 0u8..4) {
            prop_assert!(x < 4);
        }
    }
}
