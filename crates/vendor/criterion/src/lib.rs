//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple warmup + sampled wall-clock measurement loop. Statistical
//! machinery (outlier analysis, HTML reports) is intentionally absent;
//! output is one line per benchmark:
//!
//! ```text
//! bench_id                time:   [min median max]   (N samples x M iters)
//! ```
//!
//! Environment knobs:
//! * `BENCH_SAMPLE_MS` — target milliseconds per sample (default 10);
//! * `BENCH_WARMUP_MS` — warmup milliseconds per benchmark (default 100).

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form (the group name provides the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the measured closure; drives the timing loop.
#[derive(Debug)]
pub struct Bencher {
    sample_count: usize,
    /// Per-iteration sample durations collected by [`Bencher::iter`].
    samples: Vec<f64>,
    iters_per_sample: u64,
}

fn env_ms(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            sample_count,
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Measures `f`, recording per-iteration wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warmup = Duration::from_millis(env_ms("BENCH_WARMUP_MS", 100));
        let sample_target = Duration::from_millis(env_ms("BENCH_SAMPLE_MS", 10));

        // Warmup, also estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < warmup || warm_iters < 3 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((sample_target.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64)
            .clamp(1, 1_000_000_000);

        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters as f64);
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.3} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.3} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

fn run_and_report(id: &str, sample_count: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new(sample_count);
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<48} time:   [no samples]");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let max = sorted[sorted.len() - 1];
    println!(
        "{id:<48} time:   [{} {} {}]   ({} samples x {} iters)",
        format_time(min),
        format_time(median),
        format_time(max),
        sorted.len(),
        bencher.iters_per_sample,
    );
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 20 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_and_report(&id.into().id, self.sample_count, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_count = self.sample_count;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_count,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for subsequent benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        run_and_report(&id, self.sample_count, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        run_and_report(&id, self.sample_count, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (formatting no-op in this stand-in).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. --bench); ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        std::env::set_var("BENCH_WARMUP_MS", "1");
        std::env::set_var("BENCH_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn group_runs_with_input() {
        std::env::set_var("BENCH_WARMUP_MS", "1");
        std::env::set_var("BENCH_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2e-9).contains("ns"));
        assert!(format_time(2e-6).contains("µs"));
        assert!(format_time(2e-3).contains("ms"));
        assert!(format_time(2.0).contains(" s"));
    }
}
