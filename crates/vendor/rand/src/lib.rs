//! Offline stand-in for the `rand` crate.
//!
//! The eSLAM workspace builds in a container without network access, so
//! the subset of the `rand 0.8` API the code actually uses is
//! reimplemented here: [`rngs::SmallRng`] (xoshiro256++ under the hood),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`. Streams are deterministic for a
//! given seed but are **not** bit-compatible with the upstream crate —
//! nothing in this workspace depends on upstream streams.

#![warn(missing_docs)]

use std::ops::Range;

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (kept for API compatibility).
    type Seed;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG by expanding a 64-bit seed (SplitMix64 expansion,
    /// as upstream does for xoshiro-family generators).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (the `SampleRange` trait of
/// upstream `rand`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny bias
                // for astronomically large spans is irrelevant here.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample with success probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    0x3c6ef372fe94f82b,
                ];
            }
            SmallRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.5f64);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
