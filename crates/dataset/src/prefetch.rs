//! Double-buffered asynchronous frame prefetch.
//!
//! eSLAM's headline gain is a pipeline that overlaps stages so no unit
//! ever stalls waiting for pixels (Fig. 7). The software pipeline had
//! the same stall in its dataset layer: `run_sequence` blocked on the
//! synchronous ray-caster (~2 ms per quarter-scale frame, ~30 ms at
//! VGA) before every `Slam::process` call. [`PrefetchSource`] removes
//! the stall by rendering frame `k + 1` on the persistent
//! [`WorkerPool`] while the pipeline consumes frame `k`.
//!
//! Two owned [`Frame`] buffers are recycled for the whole run — one
//! being consumed, one being rendered into — so the steady state
//! allocates nothing, exactly the way `OrbScratch` recycles extraction
//! scratch. Because every [`FrameSource`] is deterministic and the
//! prefetcher renders each index exactly once, in order, through the
//! same `frame_into` entry point, the streamed frames are bit-identical
//! to pull-on-demand rendering — proven by
//! `tests/prefetch_equivalence.rs`.
//!
//! # Scoped lifetime
//!
//! The background job borrows the source, so the adapter is only
//! reachable inside [`with_prefetch`], which guarantees (even on
//! unwind) that no job outlives the borrow — the same structured-
//! concurrency contract as `std::thread::scope` and
//! [`WorkerPool::scope_run`].
//!
//! # Examples
//!
//! ```
//! use eslam_dataset::prefetch::with_prefetch;
//! use eslam_dataset::sequence::SequenceSpec;
//! use eslam_features::pool::WorkerPool;
//!
//! let seq = SequenceSpec::paper_sequences(3, 0.25)[0].build();
//! let pool = WorkerPool::new(2);
//! let mut timestamps = Vec::new();
//! with_prefetch(&seq, &pool, |stream| {
//!     while let Some(frame) = stream.next_frame() {
//!         timestamps.push(frame.timestamp);
//!     }
//! });
//! assert_eq!(timestamps.len(), 3);
//! ```

use crate::sequence::Frame;
use crate::source::FrameSource;
use eslam_features::pool::{TaskHandle, WorkerPool};
use eslam_telemetry::{Stage, Telemetry};
use std::sync::Arc;

/// A streaming view of a [`FrameSource`] that renders one frame ahead
/// of the consumer on a background worker.
///
/// Only obtainable inside [`with_prefetch`]; see the [module
/// docs](self) for the lifetime contract.
#[derive(Debug)]
pub struct PrefetchSource<'env, S: FrameSource + Sync> {
    source: &'env S,
    pool: &'env WorkerPool,
    /// Telemetry sink background renders record into.
    telemetry: Option<Arc<Telemetry>>,
    /// Render of the next frame to yield, already in flight.
    inflight: Option<TaskHandle<Frame>>,
    /// Index the in-flight render (if any) will produce.
    next_yield: usize,
    /// Buffer holding the frame currently borrowed by the consumer.
    current: Frame,
    /// Spare buffer, present only at the tail when nothing is in flight.
    spare: Option<Frame>,
}

impl<'env, S: FrameSource + Sync> PrefetchSource<'env, S> {
    fn new(source: &'env S, pool: &'env WorkerPool, telemetry: Option<Arc<Telemetry>>) -> Self {
        let mut stream = PrefetchSource {
            source,
            pool,
            telemetry,
            inflight: None,
            next_yield: 0,
            current: Frame::buffer(),
            spare: Some(Frame::buffer()),
        };
        if !source.is_empty() {
            let buf = stream.spare.take().expect("fresh spare");
            stream.inflight = Some(stream.submit_render(0, buf));
        }
        stream
    }

    /// Queues an asynchronous render of frame `index` into `buf`.
    fn submit_render(&self, index: usize, mut buf: Frame) -> TaskHandle<Frame> {
        let source = self.source;
        // The `Arc` clone is `'static`, so the telemetry capture needs
        // no part in the lifetime transmute below.
        let telemetry = self
            .telemetry
            .as_ref()
            .filter(|t| t.timing())
            .map(Arc::clone);
        let job: Box<dyn FnOnce() -> Frame + Send + 'env> = Box::new(move || {
            let _span = Telemetry::span_opt(telemetry.as_deref(), Stage::PrefetchRender);
            source.frame_into(index, &mut buf);
            buf
        });
        // SAFETY: the job borrows `source` (lifetime 'env) but is queued
        // as a 'static closure. Soundness is structural, exactly as in
        // `WorkerPool::scope_run`: a `PrefetchSource` is only reachable
        // inside `with_prefetch`, which joins or drains every in-flight
        // job before returning or unwinding, so no job — and therefore
        // no `'env` borrow inside one — survives the scope.
        let job: Box<dyn FnOnce() -> Frame + Send + 'static> = unsafe {
            std::mem::transmute::<
                Box<dyn FnOnce() -> Frame + Send + 'env>,
                Box<dyn FnOnce() -> Frame + Send + 'static>,
            >(job)
        };
        self.pool.submit(job)
    }

    /// Yields the next frame of the sequence, or `None` past the end.
    ///
    /// Blocks only when the background render has not finished yet (on
    /// a 1-thread pool it runs the render inline here); the returned
    /// reference stays valid until the next call.
    pub fn next_frame(&mut self) -> Option<&Frame> {
        let handle = self.inflight.take()?;
        let rendered = handle.join();
        // The buffer the consumer just finished with becomes the render
        // target for the following frame.
        let freed = std::mem::replace(&mut self.current, rendered);
        self.next_yield += 1;
        if self.next_yield < self.source.len() {
            self.inflight = Some(self.submit_render(self.next_yield, freed));
        } else {
            self.spare = Some(freed);
        }
        Some(&self.current)
    }

    /// Number of frames the underlying source produces.
    pub fn len(&self) -> usize {
        self.source.len()
    }

    /// Whether the underlying source has no frames.
    pub fn is_empty(&self) -> bool {
        self.source.is_empty()
    }

    /// Index of the frame the next [`PrefetchSource::next_frame`] call
    /// will yield (equals [`PrefetchSource::len`] once exhausted).
    pub fn position(&self) -> usize {
        self.next_yield
    }

    /// Joins any in-flight render, discarding the result. Must complete
    /// before the scope returns; panics from the render job are
    /// swallowed here because `drain` also runs while an earlier panic
    /// is already unwinding (the consumer's panic wins).
    fn drain(&mut self) {
        if let Some(handle) = self.inflight.take() {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.join()));
        }
    }
}

/// Runs `consume` with a [`PrefetchSource`] streaming `source`'s frames
/// through `pool`, returning whatever `consume` returns.
///
/// The double-buffered overlap: frame `k + 1` renders on a pool worker
/// while `consume` processes frame `k`. All in-flight work is joined
/// before this function returns — including when `consume` unwinds —
/// which is what makes handing the borrowed `source` to background jobs
/// sound. A render-job panic surfaces on the consuming thread at the
/// `next_frame` call that joins it.
pub fn with_prefetch<S: FrameSource + Sync, R>(
    source: &S,
    pool: &WorkerPool,
    consume: impl FnOnce(&mut PrefetchSource<'_, S>) -> R,
) -> R {
    with_prefetch_telemetry(source, pool, None, consume)
}

/// [`with_prefetch`] with a telemetry sink: each background render is
/// recorded as a `prefetch_render` span (full mode only), making the
/// compute/IO overlap visible in the Chrome trace. Streamed frames are
/// bit-identical with or without a sink.
pub fn with_prefetch_telemetry<S: FrameSource + Sync, R>(
    source: &S,
    pool: &WorkerPool,
    telemetry: Option<Arc<Telemetry>>,
    consume: impl FnOnce(&mut PrefetchSource<'_, S>) -> R,
) -> R {
    let mut stream = PrefetchSource::new(source, pool, telemetry);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| consume(&mut stream)));
    stream.drain();
    match result {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;
    use crate::sequence::SequenceSpec;
    use crate::trajectory::{TrajectoryKind, TrajectoryParams};
    use eslam_geometry::PinholeCamera;

    fn tiny(frames: usize) -> crate::sequence::SyntheticSequence {
        SequenceSpec {
            name: "test/prefetch".into(),
            kind: TrajectoryKind::Desk,
            params: TrajectoryParams {
                frames,
                fps: 30.0,
                amplitude: 1.0,
            },
            camera: PinholeCamera::new(60.0, 60.0, 32.0, 24.0, 64, 48),
            seed: 13,
            noise: NoiseModel::default(),
        }
        .build()
    }

    #[test]
    fn streams_every_frame_in_order() {
        let seq = tiny(5);
        let pool = WorkerPool::new(2);
        with_prefetch(&seq, &pool, |stream| {
            assert_eq!(stream.len(), 5);
            let mut seen = 0;
            while let Some(frame) = stream.next_frame() {
                assert_eq!(frame, &seq.frame(seen), "frame {seen}");
                seen += 1;
                assert_eq!(stream.position(), seen);
            }
            assert_eq!(seen, 5);
            // Exhausted: stays exhausted.
            assert!(stream.next_frame().is_none());
        });
    }

    #[test]
    fn one_thread_pool_degenerates_to_inline_rendering() {
        let seq = tiny(3);
        let pool = WorkerPool::new(1);
        with_prefetch(&seq, &pool, |stream| {
            for i in 0..3 {
                assert_eq!(stream.next_frame().unwrap(), &seq.frame(i));
            }
            assert!(stream.next_frame().is_none());
        });
    }

    #[test]
    fn empty_source_yields_nothing() {
        // `TrajectoryParams::frames` is clamped to ≥ 1, so empty a
        // built sequence by hand.
        let mut seq = tiny(1);
        seq.trajectory = crate::trajectory::Trajectory::new();
        let pool = WorkerPool::new(2);
        with_prefetch(&seq, &pool, |stream| {
            assert!(stream.is_empty());
            assert!(stream.next_frame().is_none());
        });
    }

    #[test]
    fn consumer_panic_still_drains_inflight_render() {
        // The scope must join the background job before unwinding out —
        // otherwise the job would outlive the borrow of `seq`.
        let seq = tiny(4);
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_prefetch(&seq, &pool, |stream| {
                let _ = stream.next_frame();
                panic!("consumer bailed");
            })
        }));
        assert!(caught.is_err());
        // The pool and source remain fully usable.
        with_prefetch(&seq, &pool, |stream| {
            assert_eq!(stream.next_frame().unwrap(), &seq.frame(0));
        });
    }

    #[test]
    fn early_return_mid_stream_is_clean() {
        let seq = tiny(6);
        let pool = WorkerPool::new(2);
        let first_two: Vec<f64> = with_prefetch(&seq, &pool, |stream| {
            (0..2)
                .map(|_| stream.next_frame().unwrap().timestamp)
                .collect()
        });
        assert_eq!(first_two.len(), 2);
        assert_eq!(first_two[0], seq.frame(0).timestamp);
    }

    #[test]
    fn telemetry_records_one_render_span_per_frame() {
        use eslam_telemetry::{TelemetryConfig, TelemetryMode};
        let seq = tiny(4);
        let pool = WorkerPool::new(2);
        let telemetry =
            Telemetry::new(TelemetryConfig::default().with_mode(TelemetryMode::Full)).unwrap();
        let plain: Vec<Frame> = (0..4).map(|i| seq.frame(i)).collect();
        with_prefetch_telemetry(&seq, &pool, Some(telemetry.clone()), |stream| {
            let mut n = 0;
            while let Some(frame) = stream.next_frame() {
                assert_eq!(frame, &plain[n], "telemetry must not change frames");
                n += 1;
            }
            assert_eq!(n, 4);
        });
        assert_eq!(telemetry.histogram(Stage::PrefetchRender).count(), 4);
    }

    #[test]
    fn global_pool_works_as_substrate() {
        let seq = tiny(3);
        with_prefetch(&seq, WorkerPool::global(), |stream| {
            let mut n = 0;
            while let Some(frame) = stream.next_frame() {
                assert_eq!(frame, &seq.frame(n));
                n += 1;
            }
            assert_eq!(n, 3);
        });
    }
}
