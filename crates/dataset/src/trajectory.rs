//! Camera trajectories: generators mimicking the TUM sequences used in
//! the paper's evaluation (§4.1) and TUM-format ground-truth I/O.
//!
//! The five evaluation sequences are modelled by their motion profiles:
//!
//! | paper sequence | generator | motion |
//! |---|---|---|
//! | `fr1/xyz` | [`TrajectoryKind::Xyz`] | translation-only oscillation |
//! | `fr2/xyz` | [`TrajectoryKind::Xyz`] (slower, fr2 intrinsics) | idem |
//! | `fr1/desk` | [`TrajectoryKind::Desk`] | arc sweep over a desk |
//! | `fr1/room` | [`TrajectoryKind::Room`] | loop through the room |
//! | `fr2/rpy` | [`TrajectoryKind::Rpy`] | rotation-only roll/pitch/yaw |

use eslam_geometry::{Quaternion, Se3, Vec3};
use std::fmt;
use std::io::{BufRead, Write};

/// A timestamped camera-to-world pose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedPose {
    /// Timestamp in seconds.
    pub timestamp: f64,
    /// Camera-to-world transform (position = `pose.translation`).
    pub pose: Se3,
}

/// A camera trajectory (ordered by timestamp).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trajectory {
    poses: Vec<TimedPose>,
}

/// Motion profile of a generated trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrajectoryKind {
    /// Translation-only sinusoidal motion along all three axes
    /// (TUM `xyz` sequences).
    Xyz,
    /// Rotation-only roll/pitch/yaw oscillation (TUM `fr2/rpy`).
    Rpy,
    /// An arc sweep over a desk area with the camera fixating the desk
    /// (TUM `fr1/desk`).
    Desk,
    /// A slow loop through the room (TUM `fr1/room`).
    Room,
    /// A full circle around the room centre, camera looking radially
    /// outward, **returning exactly to the start pose** on the last
    /// frame — the canonical loop-closure scenario: mid-run views face
    /// other walls, so the revisit is covisibility-disconnected.
    Circle,
    /// A figure-eight (lemniscate) through the room, returning exactly
    /// to the start pose — two lobes, so the trajectory revisits the
    /// crossing region with reversed heading before closing the loop.
    FigureEight,
}

impl TrajectoryKind {
    /// Whether the profile returns to its start pose on the last frame
    /// (the loop-closure scenarios).
    pub fn is_loop(self) -> bool {
        matches!(self, TrajectoryKind::Circle | TrajectoryKind::FigureEight)
    }
}

impl fmt::Display for TrajectoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TrajectoryKind::Xyz => "xyz",
            TrajectoryKind::Rpy => "rpy",
            TrajectoryKind::Desk => "desk",
            TrajectoryKind::Room => "room",
            TrajectoryKind::Circle => "circle",
            TrajectoryKind::FigureEight => "figure8",
        };
        write!(f, "{name}")
    }
}

/// Parameters for trajectory generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryParams {
    /// Number of frames.
    pub frames: usize,
    /// Frame rate in Hz (TUM Kinect: 30).
    pub fps: f64,
    /// Overall motion amplitude scale (1.0 = TUM-like).
    pub amplitude: f64,
}

impl Default for TrajectoryParams {
    fn default() -> Self {
        TrajectoryParams {
            frames: 60,
            fps: 30.0,
            amplitude: 1.0,
        }
    }
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Trajectory { poses: Vec::new() }
    }

    /// Wraps a pose list (must be timestamp-ordered for evaluation).
    pub fn from_poses(poses: Vec<TimedPose>) -> Self {
        Trajectory { poses }
    }

    /// Appends a pose.
    pub fn push(&mut self, timestamp: f64, pose: Se3) {
        self.poses.push(TimedPose { timestamp, pose });
    }

    /// The poses in order.
    pub fn poses(&self) -> &[TimedPose] {
        &self.poses
    }

    /// Overwrites the pose at `index`, keeping its timestamp — how the
    /// SLAM backend swaps BA-refined keyframe poses into an estimate
    /// that was pushed frame by frame.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn set_pose(&mut self, index: usize, pose: Se3) {
        self.poses[index].pose = pose;
    }

    /// Number of poses.
    pub fn len(&self) -> usize {
        self.poses.len()
    }

    /// Whether the trajectory is empty.
    pub fn is_empty(&self) -> bool {
        self.poses.is_empty()
    }

    /// Camera positions as 3-D points (for alignment/plotting).
    pub fn positions(&self) -> Vec<Vec3> {
        self.poses.iter().map(|p| p.pose.translation).collect()
    }

    /// Total path length (sum of inter-frame position deltas).
    pub fn path_length(&self) -> f64 {
        self.poses
            .windows(2)
            .map(|w| (w[1].pose.translation - w[0].pose.translation).norm())
            .sum()
    }

    /// Generates a trajectory of the given kind.
    ///
    /// All generators keep the camera inside the standard room scene and
    /// looking at textured geometry.
    pub fn generate(kind: TrajectoryKind, params: &TrajectoryParams) -> Trajectory {
        let mut out = Trajectory::new();
        let n = params.frames.max(1);
        let a = params.amplitude;
        for i in 0..n {
            let t = i as f64 / params.fps;
            let s = i as f64 / n as f64; // normalized progress 0..1
                                         // Closed progress: the last frame wraps to exactly 0, so
                                         // the loop profiles return to their start pose bit-exactly
                                         // (sin(2π) is not a bit-exact 0 in floating point).
            let sc = if n > 1 && i + 1 < n {
                i as f64 / (n - 1) as f64
            } else {
                0.0
            };
            let pose = match kind {
                TrajectoryKind::Xyz => {
                    // Sinusoidal translation, fixed orientation facing +z.
                    let p = Vec3::new(
                        0.35 * a * (2.0 * std::f64::consts::PI * 0.45 * t).sin(),
                        0.22 * a * (2.0 * std::f64::consts::PI * 0.30 * t).sin(),
                        0.28 * a * (2.0 * std::f64::consts::PI * 0.20 * t).sin() - 1.0,
                    );
                    Se3::from_translation(p)
                }
                TrajectoryKind::Rpy => {
                    // Pure rotation about a fixed position.
                    let roll = 0.14 * a * (2.0 * std::f64::consts::PI * 0.40 * t).sin();
                    let pitch = 0.12 * a * (2.0 * std::f64::consts::PI * 0.27 * t).sin();
                    let yaw = 0.20 * a * (2.0 * std::f64::consts::PI * 0.18 * t).sin();
                    let q = Quaternion::from_axis_angle(Vec3::Z, roll)
                        .mul(&Quaternion::from_axis_angle(Vec3::X, pitch))
                        .mul(&Quaternion::from_axis_angle(Vec3::Y, yaw));
                    Se3::from_quaternion_translation(&q, Vec3::new(0.0, 0.0, -1.2))
                }
                TrajectoryKind::Desk => {
                    // Arc around the desk centre at (0, 0.2, 1.2), looking
                    // at it, with mild bobbing.
                    let target = Vec3::new(0.0, 0.2, 1.2);
                    let angle = -0.5 + 1.0 * s;
                    let radius = 1.6 - 0.2 * s;
                    let p = Vec3::new(
                        target.x + radius * a * angle.sin(),
                        -0.1 + 0.08 * a * (7.0 * s).sin(),
                        target.z - radius * a * angle.cos(),
                    );
                    look_at(p, target)
                }
                TrajectoryKind::Room => {
                    // A loop around the room centre, camera tangent to the
                    // path, sweeping all four walls.
                    let angle = 2.0 * std::f64::consts::PI * s;
                    let p = Vec3::new(
                        1.1 * a * angle.cos(),
                        0.15 * a * (3.0 * angle).sin(),
                        1.1 * a * angle.sin(),
                    );
                    let target = Vec3::new(
                        2.4 * angle.cos() - 0.4 * angle.sin(),
                        0.0,
                        2.4 * angle.sin() + 0.4 * angle.cos(),
                    );
                    look_at(p, target)
                }
                TrajectoryKind::Circle => {
                    // A full circle looking radially outward at the
                    // walls; the closed progress puts the last frame
                    // exactly back on the first pose.
                    let angle = 2.0 * std::f64::consts::PI * sc;
                    let p = Vec3::new(1.1 * a * angle.cos(), -0.05, 1.1 * a * angle.sin());
                    let target = Vec3::new(2.6 * angle.cos(), 0.0, 2.6 * angle.sin());
                    look_at(p, target)
                }
                TrajectoryKind::FigureEight => {
                    // A Gerono lemniscate through the room, camera
                    // looking along the direction of travel; start and
                    // end poses coincide exactly.
                    let u = 2.0 * std::f64::consts::PI * sc;
                    let p = Vec3::new(1.4 * a * u.sin(), -0.05, 1.1 * a * (2.0 * u).sin());
                    let tangent = Vec3::new(1.4 * a * u.cos(), 0.0, 2.2 * a * (2.0 * u).cos());
                    let target = Vec3::new(p.x + tangent.x * 1.8, 0.0, p.z + tangent.z * 1.8);
                    look_at(p, target)
                }
            };
            out.push(t, pose);
        }
        out
    }

    /// Writes the trajectory in TUM format
    /// (`timestamp tx ty tz qx qy qz qw` per line).
    ///
    /// # Errors
    /// Propagates writer failures.
    pub fn write_tum<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "# timestamp tx ty tz qx qy qz qw")?;
        for tp in &self.poses {
            let q = tp.pose.rotation_quaternion();
            writeln!(
                w,
                "{:.6} {:.6} {:.6} {:.6} {:.6} {:.6} {:.6} {:.6}",
                tp.timestamp,
                tp.pose.translation.x,
                tp.pose.translation.y,
                tp.pose.translation.z,
                q.x,
                q.y,
                q.z,
                q.w
            )?;
        }
        Ok(())
    }

    /// Reads a TUM-format trajectory (`#` lines are comments).
    ///
    /// # Errors
    /// Returns `Err` with a line description for malformed rows, or I/O
    /// failures from the reader.
    pub fn read_tum<R: BufRead>(r: R) -> Result<Trajectory, TrajectoryParseError> {
        let mut out = Trajectory::new();
        for (lineno, line) in r.lines().enumerate() {
            let line = line.map_err(TrajectoryParseError::Io)?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            if fields.len() != 8 {
                return Err(TrajectoryParseError::Malformed {
                    line: lineno + 1,
                    reason: format!("expected 8 fields, found {}", fields.len()),
                });
            }
            let nums: Result<Vec<f64>, _> = fields.iter().map(|f| f.parse::<f64>()).collect();
            let nums = nums.map_err(|e| TrajectoryParseError::Malformed {
                line: lineno + 1,
                reason: e.to_string(),
            })?;
            let q = Quaternion::new(nums[7], nums[4], nums[5], nums[6]);
            out.push(
                nums[0],
                Se3::from_quaternion_translation(&q, Vec3::new(nums[1], nums[2], nums[3])),
            );
        }
        Ok(out)
    }
}

/// Builds a camera-to-world pose at `position` looking toward `target`
/// with the image "up" aligned to world −y (the TUM camera convention:
/// +y is down in the image).
pub fn look_at(position: Vec3, target: Vec3) -> Se3 {
    let forward = (target - position).normalized().unwrap_or(Vec3::Z);
    // Camera z = forward, camera y = down, camera x = right.
    let world_down = Vec3::new(0.0, 1.0, 0.0);
    let right = world_down.cross(forward).normalized().unwrap_or(Vec3::X);
    let down = forward.cross(right);
    let rotation = eslam_geometry::Mat3::from_cols(right, down, forward);
    Se3::new(rotation, position)
}

/// Errors from parsing a TUM trajectory file.
#[derive(Debug)]
pub enum TrajectoryParseError {
    /// Underlying reader failure.
    Io(std::io::Error),
    /// A malformed data row.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Human-readable cause.
        reason: String,
    },
}

impl fmt::Display for TrajectoryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajectoryParseError::Io(e) => write!(f, "i/o failure: {e}"),
            TrajectoryParseError::Malformed { line, reason } => {
                write!(f, "malformed trajectory line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TrajectoryParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_requested_length() {
        for kind in [
            TrajectoryKind::Xyz,
            TrajectoryKind::Rpy,
            TrajectoryKind::Desk,
            TrajectoryKind::Room,
            TrajectoryKind::Circle,
            TrajectoryKind::FigureEight,
        ] {
            let t = Trajectory::generate(kind, &TrajectoryParams::default());
            assert_eq!(t.len(), 60, "{kind}");
            // Timestamps strictly increasing at 30 Hz.
            for w in t.poses().windows(2) {
                assert!((w[1].timestamp - w[0].timestamp - 1.0 / 30.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn xyz_is_translation_only() {
        let t = Trajectory::generate(TrajectoryKind::Xyz, &TrajectoryParams::default());
        for tp in t.poses() {
            assert!(tp.pose.rotation_angle() < 1e-9);
        }
        assert!(t.path_length() > 0.05);
    }

    #[test]
    fn rpy_is_rotation_only() {
        let t = Trajectory::generate(TrajectoryKind::Rpy, &TrajectoryParams::default());
        let p0 = t.poses()[0].pose.translation;
        let mut max_rot = 0.0f64;
        for tp in t.poses() {
            assert!((tp.pose.translation - p0).norm() < 1e-9);
            max_rot = max_rot.max(tp.pose.rotation_angle());
        }
        assert!(max_rot > 0.05, "rotation amplitude {max_rot}");
    }

    #[test]
    fn desk_keeps_target_in_view() {
        let t = Trajectory::generate(TrajectoryKind::Desk, &TrajectoryParams::default());
        let target = Vec3::new(0.0, 0.2, 1.2);
        for tp in t.poses() {
            // The target projects to positive camera z.
            let cam_pt = tp.pose.inverse().transform(target);
            assert!(cam_pt.z > 0.5, "target behind camera: z = {}", cam_pt.z);
            // And close to the optical axis.
            let off_axis = (cam_pt.x * cam_pt.x + cam_pt.y * cam_pt.y).sqrt() / cam_pt.z;
            assert!(off_axis < 0.2, "target off-axis by {off_axis}");
        }
    }

    #[test]
    fn loop_kinds_return_exactly_to_start() {
        for kind in [TrajectoryKind::Circle, TrajectoryKind::FigureEight] {
            assert!(kind.is_loop());
            let t = Trajectory::generate(
                kind,
                &TrajectoryParams {
                    frames: 48,
                    ..Default::default()
                },
            );
            let first = t.poses().first().unwrap().pose;
            let last = t.poses().last().unwrap().pose;
            assert_eq!(first, last, "{kind} must close bit-exactly");
            // The middle of the run is a genuinely different view —
            // elsewhere (circle) or the lemniscate crossing with
            // reversed heading (figure-eight) — so the loop ends are
            // only connectable by place recognition.
            let mid = t.poses()[24].pose;
            let moved = (mid.translation - first.translation).norm() > 0.5;
            let turned = first.relative_to(&mid).rotation_angle() > 1.0;
            assert!(moved || turned, "{kind} midpoint view too close to start");
            // And the camera stays inside the room.
            for tp in t.poses() {
                let p = tp.pose.translation;
                assert!(
                    p.x.abs() < 3.0 && p.y.abs() < 2.2 && p.z.abs() < 3.0,
                    "{kind}"
                );
            }
        }
        assert!(!TrajectoryKind::Room.is_loop());
    }

    #[test]
    fn room_stays_inside_room() {
        let t = Trajectory::generate(TrajectoryKind::Room, &TrajectoryParams::default());
        for tp in t.poses() {
            let p = tp.pose.translation;
            assert!(p.x.abs() < 3.0 && p.y.abs() < 2.2 && p.z.abs() < 3.0);
        }
    }

    #[test]
    fn look_at_points_camera_at_target() {
        let pose = look_at(Vec3::new(1.0, 0.5, -2.0), Vec3::new(0.0, 0.0, 1.0));
        let cam_target = pose.inverse().transform(Vec3::new(0.0, 0.0, 1.0));
        assert!(cam_target.x.abs() < 1e-9);
        assert!(cam_target.y.abs() < 1e-9);
        assert!(cam_target.z > 0.0);
        // Proper rotation.
        assert!((pose.rotation.determinant() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tum_round_trip() {
        let t = Trajectory::generate(
            TrajectoryKind::Desk,
            &TrajectoryParams {
                frames: 10,
                ..Default::default()
            },
        );
        let mut buf = Vec::new();
        t.write_tum(&mut buf).unwrap();
        let parsed = Trajectory::read_tum(buf.as_slice()).unwrap();
        assert_eq!(parsed.len(), t.len());
        for (a, b) in t.poses().iter().zip(parsed.poses()) {
            assert!((a.timestamp - b.timestamp).abs() < 1e-5);
            assert!((a.pose.translation - b.pose.translation).norm() < 1e-5);
            assert!(
                (a.pose.rotation - b.pose.rotation).frobenius_norm() < 1e-4,
                "rotation mismatch"
            );
        }
    }

    #[test]
    fn tum_parser_skips_comments_and_blanks() {
        let text = "# header\n\n0.0 1 2 3 0 0 0 1\n# trailing comment\n";
        let t = Trajectory::read_tum(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.poses()[0].pose.translation, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn tum_parser_rejects_bad_rows() {
        let text = "0.0 1 2 3\n";
        let err = Trajectory::read_tum(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let text = "0.0 a b c 0 0 0 1\n";
        assert!(Trajectory::read_tum(text.as_bytes()).is_err());
    }

    #[test]
    fn amplitude_scales_motion() {
        let small = Trajectory::generate(
            TrajectoryKind::Xyz,
            &TrajectoryParams {
                amplitude: 0.5,
                ..Default::default()
            },
        );
        let large = Trajectory::generate(
            TrajectoryKind::Xyz,
            &TrajectoryParams {
                amplitude: 2.0,
                ..Default::default()
            },
        );
        assert!(large.path_length() > small.path_length() * 2.0);
    }

    #[test]
    fn set_pose_overwrites_in_place() {
        let mut t = Trajectory::new();
        t.push(0.0, Se3::identity());
        t.push(0.033, Se3::identity());
        let refined = Se3::from_translation(Vec3::new(0.1, -0.2, 0.3));
        t.set_pose(1, refined);
        assert_eq!(t.poses()[1].pose, refined);
        assert_eq!(t.poses()[1].timestamp, 0.033);
        assert_eq!(t.poses()[0].pose, Se3::identity());
    }

    #[test]
    fn path_length_of_straight_line() {
        let mut t = Trajectory::new();
        t.push(0.0, Se3::from_translation(Vec3::ZERO));
        t.push(1.0, Se3::from_translation(Vec3::new(3.0, 0.0, 0.0)));
        t.push(2.0, Se3::from_translation(Vec3::new(3.0, 4.0, 0.0)));
        assert!((t.path_length() - 7.0).abs() < 1e-12);
    }
}
