//! Trajectory evaluation: absolute trajectory error (ATE) and relative
//! pose error (RPE).
//!
//! ATE is the metric of the paper's Fig. 8 ("average trajectory error"):
//! the estimated trajectory is rigidly aligned to ground truth (Horn's
//! method) and the residual translational errors are aggregated. RPE
//! measures drift over a fixed frame interval.

use crate::trajectory::Trajectory;
use eslam_geometry::align::align_rigid;
use eslam_geometry::Se3;

/// Aggregate error statistics in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats {
    /// Root mean square error.
    pub rmse: f64,
    /// Mean error.
    pub mean: f64,
    /// Median error.
    pub median: f64,
    /// Maximum error.
    pub max: f64,
    /// Number of pose pairs evaluated.
    pub count: usize,
}

impl ErrorStats {
    fn from_errors(mut errors: Vec<f64>) -> ErrorStats {
        if errors.is_empty() {
            return ErrorStats::default();
        }
        let count = errors.len();
        let mean = errors.iter().sum::<f64>() / count as f64;
        let rmse = (errors.iter().map(|e| e * e).sum::<f64>() / count as f64).sqrt();
        let max = errors.iter().cloned().fold(0.0, f64::max);
        errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = if count % 2 == 1 {
            errors[count / 2]
        } else {
            0.5 * (errors[count / 2 - 1] + errors[count / 2])
        };
        ErrorStats {
            rmse,
            mean,
            median,
            max,
            count,
        }
    }
}

/// Result of an ATE evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AteResult {
    /// Translational error statistics after rigid alignment.
    pub stats: ErrorStats,
    /// The alignment applied to the estimate.
    pub alignment: Se3,
}

/// Associates two trajectories by timestamp (nearest neighbour within
/// `max_dt` seconds) and returns index pairs `(estimate_idx, truth_idx)`.
pub fn associate(estimate: &Trajectory, truth: &Trajectory, max_dt: f64) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let truth_poses = truth.poses();
    if truth_poses.is_empty() {
        return pairs;
    }
    for (ei, ep) in estimate.poses().iter().enumerate() {
        // Truth timestamps are ordered: binary search for the closest.
        let idx = truth_poses
            .binary_search_by(|tp| tp.timestamp.partial_cmp(&ep.timestamp).unwrap())
            .unwrap_or_else(|i| i);
        let mut best: Option<(usize, f64)> = None;
        for cand in [
            idx.saturating_sub(1),
            idx,
            (idx + 1).min(truth_poses.len() - 1),
        ] {
            let dt = (truth_poses[cand].timestamp - ep.timestamp).abs();
            if dt <= max_dt && best.is_none_or(|(_, bd)| dt < bd) {
                best = Some((cand, dt));
            }
        }
        if let Some((ti, _)) = best {
            pairs.push((ei, ti));
        }
    }
    pairs
}

/// Computes the absolute trajectory error of `estimate` against `truth`.
///
/// Poses are associated by timestamp (within 20 ms), the estimate is
/// rigidly aligned to the ground truth, and translational residuals are
/// aggregated. Returns `None` when fewer than 3 poses associate or the
/// alignment is degenerate (e.g. a perfectly stationary trajectory, where
/// ATE reduces to the unaligned residual — in that case a fallback
/// identity alignment is used instead of failing).
pub fn absolute_trajectory_error(estimate: &Trajectory, truth: &Trajectory) -> Option<AteResult> {
    let pairs = associate(estimate, truth, 0.02);
    if pairs.len() < 3 {
        return None;
    }
    let est_pts: Vec<_> = pairs
        .iter()
        .map(|&(e, _)| estimate.poses()[e].pose.translation)
        .collect();
    let truth_pts: Vec<_> = pairs
        .iter()
        .map(|&(_, t)| truth.poses()[t].pose.translation)
        .collect();

    let (alignment, errors) = match align_rigid(&est_pts, &truth_pts) {
        Some(a) => {
            let errors = est_pts
                .iter()
                .zip(&truth_pts)
                .map(|(e, t)| (a.transform.transform(*e) - *t).norm())
                .collect();
            (a.transform, errors)
        }
        // Degenerate geometry (collinear/stationary): evaluate unaligned.
        None => {
            let errors = est_pts
                .iter()
                .zip(&truth_pts)
                .map(|(e, t)| (*e - *t).norm())
                .collect();
            (Se3::identity(), errors)
        }
    };
    Some(AteResult {
        stats: ErrorStats::from_errors(errors),
        alignment,
    })
}

/// Computes the translational relative pose error over a window of
/// `delta` frames: compares the estimated relative motion between frames
/// `i` and `i+delta` with the ground-truth relative motion.
///
/// Returns `None` if fewer than `delta + 1` poses associate.
pub fn relative_pose_error(
    estimate: &Trajectory,
    truth: &Trajectory,
    delta: usize,
) -> Option<ErrorStats> {
    let pairs = associate(estimate, truth, 0.02);
    if pairs.len() <= delta || delta == 0 {
        return None;
    }
    let mut errors = Vec::new();
    for w in pairs.windows(delta + 1) {
        let (e0, t0) = w[0];
        let (e1, t1) = w[delta];
        let est_rel = estimate.poses()[e0]
            .pose
            .relative_to(&estimate.poses()[e1].pose);
        let truth_rel = truth.poses()[t0].pose.relative_to(&truth.poses()[t1].pose);
        let err = est_rel.compose(&truth_rel.inverse());
        errors.push(err.translation.norm());
    }
    Some(ErrorStats::from_errors(errors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::{TrajectoryKind, TrajectoryParams};
    use eslam_geometry::{Quaternion, Vec3};

    fn gt() -> Trajectory {
        Trajectory::generate(TrajectoryKind::Desk, &TrajectoryParams::default())
    }

    #[test]
    fn perfect_estimate_has_zero_ate() {
        let truth = gt();
        let result = absolute_trajectory_error(&truth, &truth).unwrap();
        assert!(result.stats.rmse < 1e-10);
        assert!(result.stats.max < 1e-10);
        assert_eq!(result.stats.count, truth.len());
    }

    #[test]
    fn rigidly_displaced_estimate_aligns_to_zero() {
        // ATE must be invariant to a global rigid offset of the estimate.
        let truth = gt();
        let offset = Se3::from_quaternion_translation(
            &Quaternion::from_axis_angle(Vec3::Y, 0.8),
            Vec3::new(5.0, -2.0, 1.0),
        );
        let mut est = Trajectory::new();
        for tp in truth.poses() {
            est.push(tp.timestamp, offset.compose(&tp.pose));
        }
        let result = absolute_trajectory_error(&est, &truth).unwrap();
        assert!(result.stats.rmse < 1e-9, "rmse {}", result.stats.rmse);
    }

    #[test]
    fn noisy_estimate_measures_noise_level() {
        let truth = gt();
        let mut est = Trajectory::new();
        for (i, tp) in truth.poses().iter().enumerate() {
            let jitter = Vec3::new(
                ((i * 37 % 13) as f64 / 13.0 - 0.5) * 0.04,
                ((i * 53 % 11) as f64 / 11.0 - 0.5) * 0.04,
                ((i * 71 % 7) as f64 / 7.0 - 0.5) * 0.04,
            );
            est.push(
                tp.timestamp,
                Se3::new(tp.pose.rotation, tp.pose.translation + jitter),
            );
        }
        let result = absolute_trajectory_error(&est, &truth).unwrap();
        assert!(result.stats.rmse > 0.001);
        assert!(result.stats.rmse < 0.05);
        assert!(result.stats.mean <= result.stats.rmse + 1e-12);
        assert!(result.stats.median <= result.stats.max);
    }

    #[test]
    fn too_few_poses_returns_none() {
        let mut a = Trajectory::new();
        let mut b = Trajectory::new();
        a.push(0.0, Se3::identity());
        b.push(0.0, Se3::identity());
        assert!(absolute_trajectory_error(&a, &b).is_none());
    }

    #[test]
    fn association_respects_max_dt() {
        let mut a = Trajectory::new();
        let mut b = Trajectory::new();
        a.push(0.0, Se3::identity());
        a.push(1.0, Se3::identity());
        b.push(0.005, Se3::identity());
        b.push(2.0, Se3::identity());
        let pairs = associate(&a, &b, 0.02);
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn association_picks_nearest() {
        let mut a = Trajectory::new();
        a.push(0.10, Se3::identity());
        let mut b = Trajectory::new();
        b.push(0.0, Se3::identity());
        b.push(0.09, Se3::identity());
        b.push(0.12, Se3::identity());
        let pairs = associate(&a, &b, 0.05);
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn rpe_zero_for_perfect_estimate() {
        let truth = gt();
        let stats = relative_pose_error(&truth, &truth, 1).unwrap();
        assert!(stats.rmse < 1e-10);
        assert_eq!(stats.count, truth.len() - 1);
    }

    #[test]
    fn rpe_detects_drift() {
        // An estimate drifting linearly in x: relative error per frame is
        // the per-frame drift, regardless of global alignment.
        let truth = gt();
        let mut est = Trajectory::new();
        for (i, tp) in truth.poses().iter().enumerate() {
            let drift = Vec3::new(0.001 * i as f64, 0.0, 0.0);
            est.push(
                tp.timestamp,
                Se3::new(tp.pose.rotation, tp.pose.translation + drift),
            );
        }
        let stats = relative_pose_error(&est, &truth, 1).unwrap();
        assert!(
            stats.mean > 0.0005 && stats.mean < 0.002,
            "per-frame drift {}",
            stats.mean
        );
    }

    #[test]
    fn rpe_rejects_bad_delta() {
        let truth = gt();
        assert!(relative_pose_error(&truth, &truth, 0).is_none());
        assert!(relative_pose_error(&truth, &truth, truth.len() + 1).is_none());
    }

    #[test]
    fn stats_of_empty_error_list() {
        let s = ErrorStats::from_errors(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.rmse, 0.0);
    }

    #[test]
    fn stats_median_even_count() {
        let s = ErrorStats::from_errors(vec![1.0, 3.0, 2.0, 4.0]);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
    }
}
