//! Synthetic 3-D scenes rendered by ray casting.
//!
//! Stand-in for the TUM RGB-D recordings (see DESIGN.md, substitution
//! table): a textured room box plus optional furniture quads, ray-cast to
//! grayscale + depth at 640×480. The blocky procedural textures are rich
//! in FAST corners, exercising the identical feature/matching/PnP code
//! paths the real dataset would.

use eslam_geometry::{PinholeCamera, Se3, Vec2, Vec3};
use eslam_image::{DepthImage, GrayImage};

/// A textured axis-aligned rectangle.
///
/// The rectangle spans `origin + s·edge_u + t·edge_v` for `s, t ∈ [0, 1]`;
/// `edge_u` and `edge_v` must be orthogonal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quad {
    /// One corner of the rectangle.
    pub origin: Vec3,
    /// First edge vector.
    pub edge_u: Vec3,
    /// Second edge vector (orthogonal to `edge_u`).
    pub edge_v: Vec3,
    /// Texture seed; different seeds give independent textures.
    pub texture_seed: u64,
    /// Texture cell size in metres (smaller = finer detail).
    pub cell_size: f64,
}

impl Quad {
    /// Intersects a ray `o + t·d` with the rectangle.
    ///
    /// Returns `(t, u, v)` for the hit point with `t > t_min`, or `None`.
    pub fn intersect(&self, o: Vec3, d: Vec3, t_min: f64) -> Option<(f64, f64, f64)> {
        let normal = self.edge_u.cross(self.edge_v);
        let denom = normal.dot(d);
        if denom.abs() < 1e-12 {
            return None;
        }
        let t = normal.dot(self.origin - o) / denom;
        if t <= t_min {
            return None;
        }
        let hit = o + d * t;
        let rel = hit - self.origin;
        let u = rel.dot(self.edge_u) / self.edge_u.norm_squared();
        let v = rel.dot(self.edge_v) / self.edge_v.norm_squared();
        if (0.0..=1.0).contains(&u) && (0.0..=1.0).contains(&v) {
            Some((t, u, v))
        } else {
            None
        }
    }
}

/// A synthetic scene: a room box interior plus furniture quads.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    /// Half-extents of the room box along x, y, z.
    pub half_extents: Vec3,
    /// Extra textured rectangles inside the room.
    pub quads: Vec<Quad>,
    /// Global texture seed mixed into all faces.
    pub seed: u64,
}

impl Scene {
    /// A bare textured room, roughly the size of the TUM `fr1` office
    /// (6 m × 4.4 m × 6 m).
    pub fn room(seed: u64) -> Self {
        Scene {
            half_extents: Vec3::new(3.0, 2.2, 3.0),
            quads: Vec::new(),
            seed,
        }
    }

    /// A room containing a desk-like slab and a panel, mimicking the
    /// cluttered `fr1/desk` scene.
    pub fn desk(seed: u64) -> Self {
        let mut scene = Scene::room(seed);
        // Desk top: a horizontal slab at y = 0.4 (y grows downward in the
        // camera convention, but the scene is in world coordinates where
        // the exact sign only changes which face is seen).
        scene.quads.push(Quad {
            origin: Vec3::new(-1.0, 0.4, 0.6),
            edge_u: Vec3::new(2.0, 0.0, 0.0),
            edge_v: Vec3::new(0.0, 0.0, 1.2),
            texture_seed: seed ^ 0xdeadbeef,
            cell_size: 0.045,
        });
        // A monitor-like vertical panel on the desk.
        scene.quads.push(Quad {
            origin: Vec3::new(-0.5, -0.25, 1.5),
            edge_u: Vec3::new(1.0, 0.0, 0.0),
            edge_v: Vec3::new(0.0, 0.65, 0.0),
            texture_seed: seed ^ 0xcafebabe,
            cell_size: 0.03,
        });
        // A side shelf.
        scene.quads.push(Quad {
            origin: Vec3::new(1.6, -0.8, -0.5),
            edge_u: Vec3::new(0.0, 1.4, 0.0),
            edge_v: Vec3::new(0.0, 0.0, 1.6),
            texture_seed: seed ^ 0x5eed5eed,
            cell_size: 0.06,
        });
        scene
    }

    /// Casts a ray from `origin` along `direction` (world frame, not
    /// necessarily unit length) and returns `(t, intensity)` of the
    /// nearest hit with `t > t_min`, or `None` if the ray escapes (which
    /// cannot happen from inside the room).
    pub fn cast(&self, origin: Vec3, direction: Vec3, t_min: f64) -> Option<(f64, u8)> {
        let mut best: Option<(f64, u8)> = None;

        // Furniture quads.
        for quad in &self.quads {
            if let Some((t, u, v)) = quad.intersect(origin, direction, t_min) {
                if best.is_none_or(|(bt, _)| t < bt) {
                    let intensity = blocky_texture(
                        quad.texture_seed ^ self.seed,
                        u * quad.edge_u.norm() / quad.cell_size,
                        v * quad.edge_v.norm() / quad.cell_size,
                    );
                    best = Some((t, intensity));
                }
            }
        }

        // Room walls: six axis-aligned planes at ±half_extents.
        for axis in 0..3 {
            for side in [-1.0f64, 1.0] {
                let bound = self.half_extents[axis] * side;
                let d_axis = direction[axis];
                if d_axis.abs() < 1e-12 {
                    continue;
                }
                let t = (bound - origin[axis]) / d_axis;
                if t <= t_min {
                    continue;
                }
                let hit = origin + direction * t;
                // Accept hits on or within the other two bounds.
                let (a1, a2) = other_axes(axis);
                if hit[a1].abs() <= self.half_extents[a1] + 1e-9
                    && hit[a2].abs() <= self.half_extents[a2] + 1e-9
                    && best.is_none_or(|(bt, _)| t < bt)
                {
                    let face_seed =
                        self.seed ^ ((axis as u64 * 2 + (side > 0.0) as u64) * 0x9e3779b9);
                    let cell = 0.08;
                    let intensity = blocky_texture(face_seed, hit[a1] / cell, hit[a2] / cell);
                    best = Some((t, intensity));
                }
            }
        }
        best
    }

    /// Renders the scene from a camera at `pose_c2w` (camera-to-world).
    ///
    /// Returns the grayscale image and z-depth map. Ray parameterization
    /// uses unit-z camera bearings, so the ray parameter *is* the z-depth.
    pub fn render(&self, camera: &PinholeCamera, pose_c2w: &Se3) -> (GrayImage, DepthImage) {
        let mut gray = GrayImage::default();
        let mut depth = DepthImage::default();
        self.render_into(camera, pose_c2w, &mut gray, &mut depth);
        (gray, depth)
    }

    /// Renders into caller-owned buffers, reusing their allocations when
    /// the capacity suffices (zero steady-state allocation — the render
    /// counterpart of `ImagePyramid::build_into`). Bit-identical to
    /// [`Scene::render`], which is now a thin wrapper over this.
    pub fn render_into(
        &self,
        camera: &PinholeCamera,
        pose_c2w: &Se3,
        gray: &mut GrayImage,
        depth: &mut DepthImage,
    ) {
        gray.reshape(camera.width, camera.height);
        depth.reshape(camera.width, camera.height);
        gray.as_raw_mut().fill(0);
        depth.as_raw_mut().fill(0);
        let origin = pose_c2w.translation;
        for y in 0..camera.height {
            for x in 0..camera.width {
                let bearing = camera.bearing(Vec2::new(x as f64, y as f64));
                let dir_world = pose_c2w.rotation * bearing;
                if let Some((t, intensity)) = self.cast(origin, dir_world, 1e-6) {
                    gray.set(x, y, intensity);
                    depth.set_metres(x, y, t);
                }
            }
        }
    }

    /// Whether a world point lies strictly inside the room.
    pub fn contains(&self, p: Vec3) -> bool {
        p.x.abs() < self.half_extents.x
            && p.y.abs() < self.half_extents.y
            && p.z.abs() < self.half_extents.z
    }
}

fn other_axes(axis: usize) -> (usize, usize) {
    match axis {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    }
}

/// Two-octave blocky hash texture: large cells with strong contrast plus a
/// finer modulation layer. Corner-rich by construction.
fn blocky_texture(seed: u64, u: f64, v: f64) -> u8 {
    let coarse = cell_hash(seed, u.floor() as i64, v.floor() as i64);
    let fine = cell_hash(
        seed ^ 0xabcdef,
        (u * 3.0).floor() as i64,
        (v * 3.0).floor() as i64,
    );
    // 70% coarse, 30% fine, mapped into [25, 230].
    let mix = 0.7 * (coarse % 256) as f64 + 0.3 * (fine % 256) as f64;
    (25.0 + mix * (205.0 / 255.0)) as u8
}

/// Deterministic 2-D integer hash (splitmix-style).
fn cell_hash(seed: u64, x: i64, y: i64) -> u64 {
    let mut h = seed
        .wrapping_add((x as u64).wrapping_mul(0x9e3779b97f4a7c15))
        .wrapping_add((y as u64).wrapping_mul(0xbf58476d1ce4e5b9));
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eslam_geometry::Quaternion;

    #[test]
    fn ray_from_centre_hits_wall() {
        let scene = Scene::room(1);
        let hit = scene
            .cast(Vec3::ZERO, Vec3::Z, 1e-6)
            .expect("must hit +z wall");
        assert!((hit.0 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ray_parameter_is_distance_for_unit_dir() {
        let scene = Scene::room(2);
        let hit = scene.cast(Vec3::new(1.0, 0.0, 0.0), Vec3::X, 1e-6).unwrap();
        assert!((hit.0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn all_directions_hit_from_inside() {
        let scene = Scene::desk(3);
        for k in 0..200 {
            let theta = k as f64 * 0.7;
            let phi = k as f64 * 0.37;
            let d = Vec3::new(
                theta.sin() * phi.cos(),
                theta.sin() * phi.sin(),
                theta.cos(),
            );
            if d.norm() < 1e-6 {
                continue;
            }
            assert!(
                scene.cast(Vec3::new(0.2, -0.3, 0.1), d, 1e-6).is_some(),
                "ray {k} escaped the room"
            );
        }
    }

    #[test]
    fn quad_intersection_basic() {
        let quad = Quad {
            origin: Vec3::new(-1.0, -1.0, 2.0),
            edge_u: Vec3::new(2.0, 0.0, 0.0),
            edge_v: Vec3::new(0.0, 2.0, 0.0),
            texture_seed: 0,
            cell_size: 0.1,
        };
        // Ray down +z through the middle.
        let hit = quad.intersect(Vec3::ZERO, Vec3::Z, 1e-6).expect("hit");
        assert!((hit.0 - 2.0).abs() < 1e-12);
        assert!((hit.1 - 0.5).abs() < 1e-12);
        assert!((hit.2 - 0.5).abs() < 1e-12);
        // Ray missing the rectangle.
        assert!(quad
            .intersect(Vec3::new(5.0, 5.0, 0.0), Vec3::Z, 1e-6)
            .is_none());
        // Ray behind.
        assert!(quad.intersect(Vec3::ZERO, -Vec3::Z, 1e-6).is_none());
        // Parallel ray.
        assert!(quad.intersect(Vec3::ZERO, Vec3::X, 1e-6).is_none());
    }

    #[test]
    fn desk_quad_occludes_wall() {
        let scene = Scene::desk(4);
        // A ray toward the monitor panel (z ≈ 1.5) must hit before the
        // z = 3 wall.
        let (t, _) = scene.cast(Vec3::new(0.0, 0.1, 0.0), Vec3::Z, 1e-6).unwrap();
        assert!(t < 2.9, "expected furniture hit, got t = {t}");
    }

    #[test]
    fn render_produces_full_depth_coverage() {
        let scene = Scene::room(5);
        let camera = PinholeCamera::new(100.0, 100.0, 40.0, 30.0, 80, 60);
        let (gray, depth) = scene.render(&camera, &Se3::identity());
        assert_eq!(gray.width(), 80);
        assert!(depth.coverage() > 0.999, "coverage {}", depth.coverage());
        // Depth along the optical axis equals the wall distance.
        let centre_depth = depth.metres(40, 30).unwrap();
        assert!((centre_depth - 3.0).abs() < 0.01, "depth {centre_depth}");
    }

    #[test]
    fn render_depth_is_z_depth_not_ray_length() {
        let scene = Scene::room(6);
        let camera = PinholeCamera::new(100.0, 100.0, 40.0, 30.0, 80, 60);
        let (_, depth) = scene.render(&camera, &Se3::identity());
        // A corner pixel's ray is oblique: its Euclidean hit distance
        // exceeds the stored z-depth.
        let d_corner = depth.metres(0, 0).unwrap();
        let bearing = camera.bearing(Vec2::new(0.0, 0.0));
        let ray_len = d_corner * bearing.norm();
        assert!(ray_len > d_corner);
        assert!(d_corner <= 3.0 + 1e-6);
    }

    #[test]
    fn render_is_view_dependent() {
        let scene = Scene::desk(7);
        let camera = PinholeCamera::new(100.0, 100.0, 40.0, 30.0, 80, 60);
        let (a, _) = scene.render(&camera, &Se3::identity());
        let q = Quaternion::from_axis_angle(Vec3::Y, 0.3);
        let pose = Se3::from_quaternion_translation(&q, Vec3::new(0.3, 0.0, 0.0));
        let (b, _) = scene.render(&camera, &pose);
        assert_ne!(a, b);
    }

    #[test]
    fn render_into_matches_render_and_reuses_buffers() {
        let scene = Scene::desk(8);
        let camera = PinholeCamera::new(100.0, 100.0, 40.0, 30.0, 80, 60);
        let pose = Se3::from_quaternion_translation(
            &Quaternion::from_axis_angle(Vec3::Y, 0.2),
            Vec3::new(0.1, -0.2, 0.3),
        );
        let (gray, depth) = scene.render(&camera, &pose);
        // Dirty, differently-sized buffers must come out identical.
        let mut g2 = GrayImage::from_fn(200, 10, |x, _| x as u8);
        let mut d2 = DepthImage::from_fn(3, 3, |_, _| 42);
        scene.render_into(&camera, &pose, &mut g2, &mut d2);
        assert_eq!(g2, gray);
        assert_eq!(d2, depth);
        // A second render into the same buffers reuses the allocation.
        let ptr = g2.as_raw().as_ptr();
        scene.render_into(&camera, &pose, &mut g2, &mut d2);
        assert_eq!(g2.as_raw().as_ptr(), ptr);
        assert_eq!(g2, gray);
    }

    #[test]
    fn texture_is_deterministic_and_varied() {
        let a = blocky_texture(1, 3.7, 9.2);
        let b = blocky_texture(1, 3.7, 9.2);
        assert_eq!(a, b);
        // Sample variety across cells.
        let samples: Vec<u8> = (0..100).map(|i| blocky_texture(1, i as f64, 0.0)).collect();
        let distinct: std::collections::HashSet<_> = samples.iter().collect();
        assert!(
            distinct.len() > 30,
            "texture too uniform: {} levels",
            distinct.len()
        );
    }

    #[test]
    fn contains_checks_bounds() {
        let scene = Scene::room(0);
        assert!(scene.contains(Vec3::ZERO));
        assert!(!scene.contains(Vec3::new(4.0, 0.0, 0.0)));
        assert!(!scene.contains(Vec3::new(0.0, -3.0, 0.0)));
    }
}
