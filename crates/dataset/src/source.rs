//! The [`FrameSource`] abstraction: anything that can produce the
//! RGB-D frames of a sequence by index.
//!
//! The SLAM pipeline used to be hard-wired to
//! [`SyntheticSequence`]; this trait
//! decouples *what* produces pixels (ray-cast synthetic scenes, TUM-style
//! disk datasets, noise-augmented wrappers) from *how* the pipeline
//! consumes them (pull-on-demand, or streamed ahead of the tracker by
//! [`crate::prefetch::PrefetchSource`]). The contract is deliberately
//! renderer-shaped rather than iterator-shaped: [`FrameSource::frame_into`]
//! fills a caller-owned [`Frame`] buffer, so consumers can recycle a
//! fixed set of buffers and render with zero steady-state allocation —
//! the software analogue of the paper's streaming line buffers, which
//! never re-allocate between frames.
//!
//! All implementations must be deterministic: `frame_into(k)` must
//! produce bit-identical pixels no matter how often, in what order, or
//! from which thread it is called. That property is what lets the
//! prefetcher move rendering onto a background thread while the
//! equivalence tests (`tests/prefetch_equivalence.rs`) prove the async
//! path indistinguishable from the synchronous one.

use crate::disk::DiskSequence;
use crate::noise::NoiseModel;
use crate::sequence::{Frame, SyntheticSequence};
use crate::trajectory::Trajectory;

/// An indexed producer of RGB-D frames.
///
/// See the [module docs](self) for the determinism contract. `&self`
/// methods take shared references so a `Sync` source can be rendered
/// from a background thread while the pipeline consumes earlier frames.
pub trait FrameSource {
    /// Number of frames the source can produce.
    fn len(&self) -> usize;

    /// Whether the source has no frames.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces frame `index` into `out`, reusing its image allocations
    /// when their capacity suffices (zero steady-state allocation for
    /// in-memory sources).
    ///
    /// # Panics
    /// Panics if `index` is out of range, or — for disk-backed sources —
    /// if the underlying frame data cannot be loaded (use the source's
    /// inherent fallible accessors when I/O errors must be handled).
    fn frame_into(&self, index: usize, out: &mut Frame);

    /// Produces frame `index` as an owned [`Frame`] (a fresh buffer per
    /// call; prefer [`FrameSource::frame_into`] in loops).
    ///
    /// # Panics
    /// Panics under the same conditions as [`FrameSource::frame_into`].
    fn source_frame(&self, index: usize) -> Frame {
        let mut out = Frame::buffer();
        self.frame_into(index, &mut out);
        out
    }

    /// The ground-truth camera-to-world trajectory, when the source
    /// knows it (synthetic sequences always do; disk datasets only when
    /// `groundtruth.txt` is present).
    fn ground_truth(&self) -> Option<Trajectory>;
}

/// Shared references delegate, so `run_sequence(&seq, ..)`-style callers
/// and wrappers holding `&S` both work unchanged.
impl<S: FrameSource + ?Sized> FrameSource for &S {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn frame_into(&self, index: usize, out: &mut Frame) {
        (**self).frame_into(index, out)
    }

    fn ground_truth(&self) -> Option<Trajectory> {
        (**self).ground_truth()
    }
}

impl FrameSource for SyntheticSequence {
    fn len(&self) -> usize {
        SyntheticSequence::len(self)
    }

    fn frame_into(&self, index: usize, out: &mut Frame) {
        SyntheticSequence::frame_into(self, index, out)
    }

    fn ground_truth(&self) -> Option<Trajectory> {
        Some(self.trajectory.clone())
    }
}

impl FrameSource for DiskSequence {
    fn len(&self) -> usize {
        DiskSequence::len(self)
    }

    /// # Panics
    /// Panics when the frame's image files are missing or malformed;
    /// use [`DiskSequence::frame`] directly to handle I/O errors.
    fn frame_into(&self, index: usize, out: &mut Frame) {
        // The PGM loaders allocate the images regardless, so move them
        // into place rather than copying into `out`'s buffers.
        match DiskSequence::frame(self, index) {
            Ok(frame) => *out = frame,
            Err(e) => panic!("disk frame {index} failed to load: {e}"),
        }
    }

    fn ground_truth(&self) -> Option<Trajectory> {
        self.ground_truth.clone()
    }
}

/// A [`FrameSource`] decorator applying an extra [`NoiseModel`] pass on
/// top of whatever the inner source produces — e.g. stress-testing the
/// tracker with heavier sensor noise than a recorded dataset carries,
/// without re-rendering or re-exporting it.
///
/// The extra pass is keyed by `tag` and the frame index, so it is as
/// deterministic as the inner source and safe to prefetch.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisySource<S> {
    inner: S,
    noise: NoiseModel,
    tag: String,
}

impl<S: FrameSource> NoisySource<S> {
    /// Wraps `inner`, applying `noise` (keyed by `tag`) to every frame.
    pub fn new(inner: S, noise: NoiseModel, tag: impl Into<String>) -> Self {
        NoisySource {
            inner,
            noise,
            tag: tag.into(),
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: FrameSource> FrameSource for NoisySource<S> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn frame_into(&self, index: usize, out: &mut Frame) {
        self.inner.frame_into(index, out);
        self.noise.apply(
            &mut out.gray,
            &mut out.depth,
            self.tag.as_bytes(),
            index as u64,
        );
    }

    fn ground_truth(&self) -> Option<Trajectory> {
        self.inner.ground_truth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::SequenceSpec;
    use crate::trajectory::{TrajectoryKind, TrajectoryParams};
    use eslam_geometry::PinholeCamera;

    fn tiny() -> SyntheticSequence {
        SequenceSpec {
            name: "test/source".into(),
            kind: TrajectoryKind::Xyz,
            params: TrajectoryParams {
                frames: 3,
                fps: 30.0,
                amplitude: 1.0,
            },
            camera: PinholeCamera::new(60.0, 60.0, 32.0, 24.0, 64, 48),
            seed: 5,
            noise: NoiseModel::none(),
        }
        .build()
    }

    #[test]
    fn synthetic_sequence_is_a_frame_source() {
        let seq = tiny();
        let src: &dyn FrameSource = &seq;
        assert_eq!(src.len(), 3);
        assert!(!src.is_empty());
        assert_eq!(src.source_frame(1), seq.frame(1));
        let gt = src.ground_truth().expect("synthetic gt always known");
        assert_eq!(gt.len(), 3);
    }

    #[test]
    fn reference_delegation_matches_value() {
        let seq = tiny();
        let by_ref = &&seq; // &&SyntheticSequence exercises the blanket impl
        assert_eq!(FrameSource::len(by_ref), 3);
        assert_eq!(by_ref.source_frame(2), seq.frame(2));
    }

    #[test]
    fn disk_sequence_is_a_frame_source() {
        let root = std::env::temp_dir().join(format!("eslam_source_{}", std::process::id()));
        let seq = tiny();
        crate::disk::export_sequence(&seq, &root).unwrap();
        let disk = DiskSequence::open(&root).unwrap();
        let src: &dyn FrameSource = &disk;
        assert_eq!(src.len(), 3);
        let mut buf = Frame::buffer();
        for i in 0..3 {
            src.frame_into(i, &mut buf);
            let direct = seq.frame(i);
            assert_eq!(buf.gray, direct.gray, "frame {i}");
            assert_eq!(buf.depth, direct.depth, "frame {i}");
        }
        assert!(src.ground_truth().is_some());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn noisy_source_perturbs_deterministically() {
        let seq = tiny();
        let noisy = NoisySource::new(
            &seq,
            NoiseModel {
                intensity_sigma: 4.0,
                ..NoiseModel::default()
            },
            "aug",
        );
        assert_eq!(noisy.len(), 3);
        let a = noisy.source_frame(1);
        let b = noisy.source_frame(1);
        assert_eq!(a, b, "augmentation must be reproducible");
        assert_ne!(a.gray, seq.frame(1).gray, "augmentation must perturb");
        assert_eq!(a.ground_truth, seq.frame(1).ground_truth);
        // A pass-through noise model is the identity.
        let silent = NoisySource::new(&seq, NoiseModel::none(), "aug");
        assert_eq!(silent.source_frame(1), seq.frame(1));
        assert_eq!(silent.inner().len(), 3);
    }
}
