//! Sensor noise models for the synthetic RGB-D frames.
//!
//! The Kinect-like model adds Gaussian intensity noise to the grayscale
//! channel and quadratically depth-dependent noise plus dropout to the
//! depth channel, so the SLAM pipeline faces the same nuisances it would
//! on real TUM data.

use eslam_image::{DepthImage, GrayImage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Noise parameters applied at render time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Standard deviation of additive grayscale noise (intensity levels).
    pub intensity_sigma: f64,
    /// Depth noise coefficient: σ_z = `depth_sigma_at_1m` · z² (metres).
    pub depth_sigma_at_1m: f64,
    /// Probability that a depth pixel drops out (reads 0 / missing).
    pub depth_dropout: f64,
    /// Base RNG seed (mixed with the frame index for decorrelation).
    pub seed: u64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            intensity_sigma: 2.0,
            depth_sigma_at_1m: 0.002,
            depth_dropout: 0.01,
            seed: 0xD01,
        }
    }
}

impl NoiseModel {
    /// A silent model (no noise at all), for deterministic unit tests.
    pub fn none() -> Self {
        NoiseModel {
            intensity_sigma: 0.0,
            depth_sigma_at_1m: 0.0,
            depth_dropout: 0.0,
            seed: 0,
        }
    }

    /// Whether this model perturbs anything.
    pub fn is_none(&self) -> bool {
        self.intensity_sigma == 0.0 && self.depth_sigma_at_1m == 0.0 && self.depth_dropout == 0.0
    }

    /// Applies the model in place. `tag` and `frame_index` decorrelate the
    /// noise across sequences and frames while keeping it reproducible.
    pub fn apply(
        &self,
        gray: &mut GrayImage,
        depth: &mut DepthImage,
        tag: &[u8],
        frame_index: u64,
    ) {
        if self.is_none() {
            return;
        }
        let tag_hash = tag
            .iter()
            .fold(0u64, |h, &b| h.wrapping_mul(131).wrapping_add(b as u64));
        let mut rng = SmallRng::seed_from_u64(
            self.seed ^ tag_hash ^ frame_index.wrapping_mul(0x9e3779b97f4a7c15),
        );

        if self.intensity_sigma > 0.0 {
            for y in 0..gray.height() {
                for x in 0..gray.width() {
                    let n = gaussian(&mut rng) * self.intensity_sigma;
                    let v = (gray.get(x, y) as f64 + n).round().clamp(0.0, 255.0) as u8;
                    gray.set(x, y, v);
                }
            }
        }

        if self.depth_sigma_at_1m > 0.0 || self.depth_dropout > 0.0 {
            for y in 0..depth.height() {
                for x in 0..depth.width() {
                    if let Some(z) = depth.metres(x, y) {
                        if self.depth_dropout > 0.0 && rng.gen::<f64>() < self.depth_dropout {
                            depth.set(x, y, 0);
                            continue;
                        }
                        if self.depth_sigma_at_1m > 0.0 {
                            let sigma = self.depth_sigma_at_1m * z * z;
                            let noisy = (z + gaussian(&mut rng) * sigma).max(0.0);
                            depth.set_metres(x, y, noisy);
                        }
                    }
                }
            }
        }
    }
}

/// Standard normal sample (Box-Muller).
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_frame() -> (GrayImage, DepthImage) {
        let gray = GrayImage::from_fn(64, 64, |_, _| 128);
        let mut depth = DepthImage::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                depth.set_metres(x, y, 2.0);
            }
        }
        (gray, depth)
    }

    #[test]
    fn none_model_is_identity() {
        let (mut gray, mut depth) = flat_frame();
        let before_g = gray.clone();
        let before_d = depth.clone();
        NoiseModel::none().apply(&mut gray, &mut depth, b"seq", 0);
        assert_eq!(gray, before_g);
        assert_eq!(depth, before_d);
    }

    #[test]
    fn intensity_noise_perturbs_with_zero_mean() {
        let (mut gray, mut depth) = flat_frame();
        let model = NoiseModel {
            intensity_sigma: 3.0,
            depth_sigma_at_1m: 0.0,
            depth_dropout: 0.0,
            seed: 1,
        };
        model.apply(&mut gray, &mut depth, b"seq", 0);
        let mean = gray.mean();
        assert!((mean - 128.0).abs() < 1.0, "mean drifted to {mean}");
        // Something actually changed.
        assert!(gray.as_raw().iter().any(|&v| v != 128));
    }

    #[test]
    fn depth_noise_scales_with_distance() {
        let model = NoiseModel {
            intensity_sigma: 0.0,
            depth_sigma_at_1m: 0.01,
            depth_dropout: 0.0,
            seed: 7,
        };
        let spread = |z: f64| -> f64 {
            let gray = GrayImage::new(64, 64);
            let mut depth = DepthImage::new(64, 64);
            for y in 0..64 {
                for x in 0..64 {
                    depth.set_metres(x, y, z);
                }
            }
            let mut g = gray;
            model.apply(&mut g, &mut depth, b"x", 3);
            let vals: Vec<f64> = (0..64u32)
                .flat_map(|y| (0..64u32).map(move |x| (x, y)))
                .filter_map(|(x, y)| depth.metres(x, y))
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt()
        };
        let near = spread(1.0);
        let far = spread(4.0);
        assert!(far > near * 4.0, "near {near}, far {far}");
    }

    #[test]
    fn dropout_zeroes_pixels() {
        let (mut gray, mut depth) = flat_frame();
        let model = NoiseModel {
            intensity_sigma: 0.0,
            depth_sigma_at_1m: 0.0,
            depth_dropout: 0.25,
            seed: 11,
        };
        model.apply(&mut gray, &mut depth, b"seq", 0);
        let coverage = depth.coverage();
        assert!((coverage - 0.75).abs() < 0.05, "coverage {coverage}");
    }

    #[test]
    fn noise_is_reproducible_per_frame() {
        let (mut g1, mut d1) = flat_frame();
        let (mut g2, mut d2) = flat_frame();
        let model = NoiseModel::default();
        model.apply(&mut g1, &mut d1, b"seq", 5);
        model.apply(&mut g2, &mut d2, b"seq", 5);
        assert_eq!(g1, g2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn different_frames_get_different_noise() {
        let (mut g1, mut d1) = flat_frame();
        let (mut g2, mut d2) = flat_frame();
        let model = NoiseModel::default();
        model.apply(&mut g1, &mut d1, b"seq", 1);
        model.apply(&mut g2, &mut d2, b"seq", 2);
        assert_ne!(g1, g2);
    }
}
