//! On-disk TUM-style datasets.
//!
//! The TUM RGB-D benchmark distributes sequences as a directory of
//! per-frame image files plus index files (`rgb.txt`, `depth.txt`) and a
//! `groundtruth.txt` trajectory. This module reads and writes that
//! layout (with PGM images for intensity and 16-bit big-endian PGM for
//! depth), so that
//!
//! * synthetic sequences can be exported once and re-loaded cheaply, and
//! * *real* TUM sequences, converted to PGM, can be fed to the pipeline
//!   unchanged.
//!
//! Layout produced by [`export_sequence`]:
//!
//! ```text
//! <root>/
//!   rgb.txt           # "timestamp rgb/<t>.pgm" per line
//!   depth.txt         # "timestamp depth/<t>.pgm" per line
//!   groundtruth.txt   # TUM trajectory format
//!   rgb/*.pgm         # 8-bit grayscale
//!   depth/*.pgm       # 16-bit (maxval 65535), TUM depth units
//! ```

use crate::sequence::{Frame, SyntheticSequence};
use crate::trajectory::Trajectory;
use eslam_image::io::{load_pgm, save_pgm, ImageIoError};
use eslam_image::{DepthImage, GrayImage};
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Errors from reading/writing disk datasets.
#[derive(Debug)]
pub enum DiskDatasetError {
    /// Filesystem or image codec failure.
    Io(std::io::Error),
    /// Image file failure.
    Image(ImageIoError),
    /// Structural problem (missing index, mismatched counts, bad row).
    Format(String),
}

impl fmt::Display for DiskDatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskDatasetError::Io(e) => write!(f, "i/o failure: {e}"),
            DiskDatasetError::Image(e) => write!(f, "image failure: {e}"),
            DiskDatasetError::Format(m) => write!(f, "invalid dataset: {m}"),
        }
    }
}

impl std::error::Error for DiskDatasetError {}

impl From<std::io::Error> for DiskDatasetError {
    fn from(e: std::io::Error) -> Self {
        DiskDatasetError::Io(e)
    }
}

impl From<ImageIoError> for DiskDatasetError {
    fn from(e: ImageIoError) -> Self {
        DiskDatasetError::Image(e)
    }
}

/// Writes a 16-bit PGM (maxval 65535, big-endian payload per the PGM
/// specification) holding raw TUM depth units.
fn save_depth_pgm(depth: &DepthImage, path: &Path) -> Result<(), DiskDatasetError> {
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "P5\n{} {}\n65535\n", depth.width(), depth.height())?;
    for &v in depth.as_raw() {
        w.write_all(&v.to_be_bytes())?;
    }
    Ok(())
}

/// Reads a 16-bit PGM depth image written by [`save_depth_pgm`].
fn load_depth_pgm(path: &Path) -> Result<DepthImage, DiskDatasetError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut header = Vec::new();
    // Read the three header tokens (magic, dims, maxval) byte-wise.
    let mut tokens = Vec::new();
    let mut token = String::new();
    while tokens.len() < 4 {
        let mut byte = [0u8; 1];
        if reader.read(&mut byte)? == 0 {
            return Err(DiskDatasetError::Format("truncated depth header".into()));
        }
        header.push(byte[0]);
        if byte[0].is_ascii_whitespace() {
            if !token.is_empty() {
                tokens.push(std::mem::take(&mut token));
            }
        } else {
            token.push(byte[0] as char);
        }
    }
    if tokens[0] != "P5" {
        return Err(DiskDatasetError::Format(format!(
            "expected P5, got {:?}",
            tokens[0]
        )));
    }
    let width: u32 = tokens[1]
        .parse()
        .map_err(|_| DiskDatasetError::Format("bad width".into()))?;
    let height: u32 = tokens[2]
        .parse()
        .map_err(|_| DiskDatasetError::Format("bad height".into()))?;
    if tokens[3] != "65535" {
        return Err(DiskDatasetError::Format(
            "depth PGM must have maxval 65535".into(),
        ));
    }
    let mut payload = vec![0u8; width as usize * height as usize * 2];
    reader.read_exact(&mut payload)?;
    let mut depth = DepthImage::new(width, height);
    for y in 0..height {
        for x in 0..width {
            let i = ((y * width + x) * 2) as usize;
            depth.set(x, y, u16::from_be_bytes([payload[i], payload[i + 1]]));
        }
    }
    Ok(depth)
}

/// Exports a synthetic sequence to a TUM-style directory. Returns the
/// number of frames written.
///
/// # Errors
/// Fails on filesystem errors.
pub fn export_sequence(seq: &SyntheticSequence, root: &Path) -> Result<usize, DiskDatasetError> {
    std::fs::create_dir_all(root.join("rgb"))?;
    std::fs::create_dir_all(root.join("depth"))?;

    let mut rgb_index = BufWriter::new(File::create(root.join("rgb.txt"))?);
    let mut depth_index = BufWriter::new(File::create(root.join("depth.txt"))?);
    writeln!(rgb_index, "# timestamp filename")?;
    writeln!(depth_index, "# timestamp filename")?;

    for frame in seq.frames() {
        let stamp = format!("{:.6}", frame.timestamp);
        let rgb_rel = format!("rgb/{stamp}.pgm");
        let depth_rel = format!("depth/{stamp}.pgm");
        save_pgm(&frame.gray, root.join(&rgb_rel))?;
        save_depth_pgm(&frame.depth, &root.join(&depth_rel))?;
        writeln!(rgb_index, "{stamp} {rgb_rel}")?;
        writeln!(depth_index, "{stamp} {depth_rel}")?;
    }

    let gt = File::create(root.join("groundtruth.txt"))?;
    seq.trajectory.write_tum(BufWriter::new(gt))?;
    Ok(seq.len())
}

/// One index entry of a disk sequence.
#[derive(Debug, Clone, PartialEq)]
struct IndexEntry {
    timestamp: f64,
    path: PathBuf,
}

/// A TUM-style sequence read from disk, loading frames lazily.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskSequence {
    root: PathBuf,
    rgb: Vec<IndexEntry>,
    depth: Vec<IndexEntry>,
    /// Ground-truth trajectory, when `groundtruth.txt` is present.
    pub ground_truth: Option<Trajectory>,
}

impl DiskSequence {
    /// Opens a dataset directory whose rgb/depth frames pair by
    /// timestamp within `max_dt` seconds (the `associate.py` step of the
    /// TUM tooling — real recordings have unsynchronized streams).
    /// Unpairable frames are dropped.
    ///
    /// # Errors
    /// Fails when the indices are missing/malformed or no frame pairs
    /// associate at all.
    pub fn open_associated(
        root: impl AsRef<Path>,
        max_dt: f64,
    ) -> Result<DiskSequence, DiskDatasetError> {
        let root = root.as_ref().to_path_buf();
        let rgb_all = read_index(&root, "rgb.txt")?;
        let depth_all = read_index(&root, "depth.txt")?;
        // Greedy nearest-neighbour association on sorted timestamps, each
        // depth frame used at most once.
        let mut rgb = Vec::new();
        let mut depth = Vec::new();
        let mut next_depth = 0usize;
        for r in &rgb_all {
            // Advance to the closest depth entry not yet consumed.
            while next_depth + 1 < depth_all.len()
                && (depth_all[next_depth + 1].timestamp - r.timestamp).abs()
                    <= (depth_all[next_depth].timestamp - r.timestamp).abs()
            {
                next_depth += 1;
            }
            if next_depth < depth_all.len()
                && (depth_all[next_depth].timestamp - r.timestamp).abs() <= max_dt
            {
                rgb.push(r.clone());
                depth.push(depth_all[next_depth].clone());
                next_depth += 1;
                if next_depth >= depth_all.len() {
                    break;
                }
            }
        }
        if rgb.is_empty() {
            return Err(DiskDatasetError::Format(
                "no rgb/depth pairs associate within the time window".into(),
            ));
        }
        let ground_truth = match File::open(root.join("groundtruth.txt")) {
            Ok(f) => Some(
                Trajectory::read_tum(BufReader::new(f))
                    .map_err(|e| DiskDatasetError::Format(format!("groundtruth.txt: {e}")))?,
            ),
            Err(_) => None,
        };
        Ok(DiskSequence {
            root,
            rgb,
            depth,
            ground_truth,
        })
    }

    /// Opens a dataset directory.
    ///
    /// # Errors
    /// Fails when `rgb.txt`/`depth.txt` are missing or malformed, or the
    /// two indices disagree in length.
    pub fn open(root: impl AsRef<Path>) -> Result<DiskSequence, DiskDatasetError> {
        let root = root.as_ref().to_path_buf();
        let rgb = read_index(&root, "rgb.txt")?;
        let depth = read_index(&root, "depth.txt")?;
        if rgb.len() != depth.len() {
            return Err(DiskDatasetError::Format(format!(
                "rgb.txt has {} entries but depth.txt has {}",
                rgb.len(),
                depth.len()
            )));
        }
        let ground_truth = match File::open(root.join("groundtruth.txt")) {
            Ok(f) => Some(
                Trajectory::read_tum(BufReader::new(f))
                    .map_err(|e| DiskDatasetError::Format(format!("groundtruth.txt: {e}")))?,
            ),
            Err(_) => None,
        };
        Ok(DiskSequence {
            root,
            rgb,
            depth,
            ground_truth,
        })
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.rgb.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.rgb.is_empty()
    }

    /// Loads frame `index` from disk.
    ///
    /// # Errors
    /// Fails if an image file is missing or malformed.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn frame(&self, index: usize) -> Result<Frame, DiskDatasetError> {
        let rgb_entry = &self.rgb[index];
        let depth_entry = &self.depth[index];
        let gray: GrayImage = load_pgm(self.root.join(&rgb_entry.path))?;
        let depth = load_depth_pgm(&self.root.join(&depth_entry.path))?;
        // Ground-truth pose: nearest timestamp when available.
        let ground_truth = self
            .ground_truth
            .as_ref()
            .and_then(|gt| {
                gt.poses()
                    .iter()
                    .min_by(|a, b| {
                        let da = (a.timestamp - rgb_entry.timestamp).abs();
                        let db = (b.timestamp - rgb_entry.timestamp).abs();
                        da.partial_cmp(&db).unwrap()
                    })
                    .map(|tp| tp.pose)
            })
            .unwrap_or_default();
        Ok(Frame {
            timestamp: rgb_entry.timestamp,
            gray,
            depth,
            ground_truth,
        })
    }
}

fn read_index(root: &Path, name: &str) -> Result<Vec<IndexEntry>, DiskDatasetError> {
    let file = File::open(root.join(name))
        .map_err(|e| DiskDatasetError::Format(format!("{name}: {e}")))?;
    let mut out = Vec::new();
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (ts, path) = match (parts.next(), parts.next()) {
            (Some(ts), Some(p)) => (ts, p),
            _ => {
                return Err(DiskDatasetError::Format(format!(
                    "{name} line {}: expected 'timestamp path'",
                    lineno + 1
                )))
            }
        };
        let timestamp: f64 = ts.parse().map_err(|_| {
            DiskDatasetError::Format(format!("{name} line {}: bad timestamp", lineno + 1))
        })?;
        out.push(IndexEntry {
            timestamp,
            path: PathBuf::from(path),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;
    use crate::sequence::SequenceSpec;
    use crate::trajectory::{TrajectoryKind, TrajectoryParams};
    use eslam_geometry::PinholeCamera;

    fn temp_root(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("eslam_disk_{tag}_{}", std::process::id()));
        p
    }

    fn tiny_sequence() -> SyntheticSequence {
        SequenceSpec {
            name: "test/disk".into(),
            kind: TrajectoryKind::Xyz,
            params: TrajectoryParams {
                frames: 3,
                fps: 30.0,
                amplitude: 1.0,
            },
            camera: PinholeCamera::new(60.0, 60.0, 32.0, 24.0, 64, 48),
            seed: 77,
            noise: NoiseModel::none(),
        }
        .build()
    }

    #[test]
    fn export_then_open_round_trips() {
        let root = temp_root("round_trip");
        let seq = tiny_sequence();
        let written = export_sequence(&seq, &root).unwrap();
        assert_eq!(written, 3);

        let disk = DiskSequence::open(&root).unwrap();
        assert_eq!(disk.len(), 3);
        assert!(disk.ground_truth.is_some());
        for i in 0..3 {
            let original = seq.frame(i);
            let loaded = disk.frame(i).unwrap();
            assert_eq!(loaded.gray, original.gray, "frame {i} gray");
            assert_eq!(loaded.depth, original.depth, "frame {i} depth");
            assert!((loaded.timestamp - original.timestamp).abs() < 1e-6);
            assert!(
                (loaded.ground_truth.translation - original.ground_truth.translation).norm() < 1e-4
            );
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_index_is_reported() {
        let root = temp_root("missing");
        std::fs::create_dir_all(&root).unwrap();
        let err = DiskSequence::open(&root).unwrap_err();
        assert!(err.to_string().contains("rgb.txt"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn mismatched_indices_rejected() {
        let root = temp_root("mismatch");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join("rgb.txt"), "0.0 rgb/a.pgm\n0.1 rgb/b.pgm\n").unwrap();
        std::fs::write(root.join("depth.txt"), "0.0 depth/a.pgm\n").unwrap();
        let err = DiskSequence::open(&root).unwrap_err();
        assert!(err.to_string().contains("entries"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn malformed_index_row_rejected() {
        let root = temp_root("badrow");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join("rgb.txt"), "not-a-timestamp rgb/a.pgm\n").unwrap();
        std::fs::write(root.join("depth.txt"), "").unwrap();
        assert!(DiskSequence::open(&root).is_err());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn depth_pgm_round_trip_preserves_units() {
        let root = temp_root("depth16");
        std::fs::create_dir_all(&root).unwrap();
        let mut depth = DepthImage::new(5, 4);
        depth.set(0, 0, 0);
        depth.set(1, 0, 1);
        depth.set(2, 1, 30_000);
        depth.set(4, 3, u16::MAX);
        let path = root.join("d.pgm");
        save_depth_pgm(&depth, &path).unwrap();
        let loaded = load_depth_pgm(&path).unwrap();
        assert_eq!(loaded, depth);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn open_associated_pairs_offset_streams() {
        // Depth timestamps offset by 10 ms from rgb: plain `open` still
        // pairs by index, `open_associated` must pair them by proximity
        // and drop the unmatched trailing depth frame.
        let root = temp_root("assoc");
        std::fs::create_dir_all(root.join("rgb")).unwrap();
        std::fs::create_dir_all(root.join("depth")).unwrap();
        let gray = GrayImage::from_fn(8, 8, |x, y| (x * 8 + y) as u8);
        let mut depth_img = DepthImage::new(8, 8);
        depth_img.set_metres(0, 0, 1.0);

        let mut rgb_idx = String::from("# ts file\n");
        let mut depth_idx = String::from("# ts file\n");
        for i in 0..3 {
            let t_rgb = i as f64 * 0.1;
            let t_depth = t_rgb + 0.01;
            let rgb_rel = format!("rgb/{i}.pgm");
            let depth_rel = format!("depth/{i}.pgm");
            save_pgm(&gray, root.join(&rgb_rel)).unwrap();
            save_depth_pgm(&depth_img, &root.join(&depth_rel)).unwrap();
            rgb_idx.push_str(&format!("{t_rgb:.6} {rgb_rel}\n"));
            depth_idx.push_str(&format!("{t_depth:.6} {depth_rel}\n"));
        }
        // One stray depth frame far from any rgb timestamp.
        save_depth_pgm(&depth_img, &root.join("depth/stray.pgm")).unwrap();
        depth_idx.push_str("9.000000 depth/stray.pgm\n");
        std::fs::write(root.join("rgb.txt"), rgb_idx).unwrap();
        std::fs::write(root.join("depth.txt"), depth_idx).unwrap();

        let seq = DiskSequence::open_associated(&root, 0.02).unwrap();
        assert_eq!(seq.len(), 3);
        let frame = seq.frame(0).unwrap();
        assert_eq!(frame.gray, gray);
        // Too-tight window associates nothing.
        assert!(DiskSequence::open_associated(&root, 0.001).is_err());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn open_without_groundtruth_still_works() {
        let root = temp_root("nogt");
        let seq = tiny_sequence();
        export_sequence(&seq, &root).unwrap();
        std::fs::remove_file(root.join("groundtruth.txt")).unwrap();
        let disk = DiskSequence::open(&root).unwrap();
        assert!(disk.ground_truth.is_none());
        let frame = disk.frame(0).unwrap();
        assert_eq!(frame.ground_truth, eslam_geometry::Se3::identity());
        std::fs::remove_dir_all(&root).ok();
    }
}
