//! Synthetic RGB-D sequences: scene + trajectory + camera + noise,
//! rendered on demand.
//!
//! The five paper sequences (§4.1) are instantiated by
//! [`SequenceSpec::paper_sequences`]; each mimics the motion profile and
//! camera intrinsics of its TUM counterpart.

use crate::noise::NoiseModel;
use crate::scene::Scene;
use crate::trajectory::{Trajectory, TrajectoryKind, TrajectoryParams};
use eslam_geometry::{PinholeCamera, Se3};
use eslam_image::{DepthImage, GrayImage};

/// One rendered RGB-D frame with its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Frame timestamp in seconds.
    pub timestamp: f64,
    /// Grayscale intensity image.
    pub gray: GrayImage,
    /// Depth image (TUM convention).
    pub depth: DepthImage,
    /// Ground-truth camera-to-world pose.
    pub ground_truth: Se3,
}

impl Frame {
    /// An empty reusable frame buffer (0×0 images, identity pose).
    ///
    /// Pass it to [`crate::source::FrameSource::frame_into`] renderers,
    /// which reshape the images in place; after the first frame the
    /// buffer's allocations are recycled and steady-state rendering
    /// allocates nothing — the dataset-side analogue of the extraction
    /// scratch (`OrbScratch`) recycling.
    pub fn buffer() -> Frame {
        Frame {
            timestamp: 0.0,
            gray: GrayImage::default(),
            depth: DepthImage::default(),
            ground_truth: Se3::identity(),
        }
    }
}

impl Default for Frame {
    fn default() -> Self {
        Frame::buffer()
    }
}

/// Declarative description of a synthetic sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceSpec {
    /// Human-readable name, e.g. `"fr1/xyz"`.
    pub name: String,
    /// Motion profile.
    pub kind: TrajectoryKind,
    /// Trajectory parameters.
    pub params: TrajectoryParams,
    /// Camera intrinsics.
    pub camera: PinholeCamera,
    /// Scene seed (also selects desk vs bare room via `kind`).
    pub seed: u64,
    /// Sensor noise model.
    pub noise: NoiseModel,
}

impl SequenceSpec {
    /// The five sequences of the paper's evaluation (§4.1), at the given
    /// frame count and image scale (1.0 = 640×480; smaller scales render
    /// proportionally smaller frames for fast tests).
    pub fn paper_sequences(frames: usize, image_scale: f64) -> Vec<SequenceSpec> {
        let scale_camera = |cam: PinholeCamera| -> PinholeCamera {
            if (image_scale - 1.0).abs() < 1e-12 {
                cam
            } else {
                cam.scaled(1.0 / image_scale)
            }
        };
        let fr1 = scale_camera(PinholeCamera::tum_fr1());
        let fr2 = scale_camera(PinholeCamera::tum_fr2());
        let params = |amplitude: f64| TrajectoryParams {
            frames,
            fps: 30.0,
            amplitude,
        };
        vec![
            SequenceSpec {
                name: "fr1/xyz".into(),
                kind: TrajectoryKind::Xyz,
                params: params(1.0),
                camera: fr1,
                seed: 101,
                noise: NoiseModel::default(),
            },
            SequenceSpec {
                name: "fr2/xyz".into(),
                kind: TrajectoryKind::Xyz,
                params: params(0.6),
                camera: fr2,
                seed: 202,
                noise: NoiseModel::default(),
            },
            SequenceSpec {
                name: "fr1/desk".into(),
                kind: TrajectoryKind::Desk,
                params: params(1.0),
                camera: fr1,
                seed: 303,
                noise: NoiseModel::default(),
            },
            SequenceSpec {
                name: "fr1/room".into(),
                kind: TrajectoryKind::Room,
                params: params(1.0),
                camera: fr1,
                seed: 404,
                noise: NoiseModel::default(),
            },
            SequenceSpec {
                name: "fr2/rpy".into(),
                kind: TrajectoryKind::Rpy,
                params: params(1.0),
                camera: fr2,
                seed: 505,
                noise: NoiseModel::default(),
            },
        ]
    }

    /// The loop-closure evaluation sequences: trajectories that return
    /// exactly to their start pose (circle and figure-eight through the
    /// standard room), so a long run accumulates drift and then
    /// revisits its starting view — the detector's true-positive scene.
    /// Same frame-count/scale conventions as
    /// [`SequenceSpec::paper_sequences`].
    pub fn loop_sequences(frames: usize, image_scale: f64) -> Vec<SequenceSpec> {
        let scale_camera = |cam: PinholeCamera| -> PinholeCamera {
            if (image_scale - 1.0).abs() < 1e-12 {
                cam
            } else {
                cam.scaled(1.0 / image_scale)
            }
        };
        let fr1 = scale_camera(PinholeCamera::tum_fr1());
        let params = |amplitude: f64| TrajectoryParams {
            frames,
            fps: 30.0,
            amplitude,
        };
        vec![
            SequenceSpec {
                name: "loop/circle".into(),
                kind: TrajectoryKind::Circle,
                params: params(1.0),
                camera: fr1,
                seed: 606,
                noise: NoiseModel::default(),
            },
            SequenceSpec {
                name: "loop/figure8".into(),
                kind: TrajectoryKind::FigureEight,
                params: params(1.0),
                camera: fr1,
                seed: 707,
                noise: NoiseModel::default(),
            },
        ]
    }

    /// Instantiates the renderer for this spec.
    pub fn build(&self) -> SyntheticSequence {
        let scene = match self.kind {
            TrajectoryKind::Desk => Scene::desk(self.seed),
            _ => Scene::room(self.seed),
        };
        let trajectory = Trajectory::generate(self.kind, &self.params);
        SyntheticSequence {
            name: self.name.clone(),
            scene,
            trajectory,
            camera: self.camera,
            noise: self.noise,
        }
    }
}

/// A renderable synthetic RGB-D sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSequence {
    /// Sequence name.
    pub name: String,
    /// The 3-D scene.
    pub scene: Scene,
    /// Ground-truth trajectory (camera-to-world).
    pub trajectory: Trajectory,
    /// Camera intrinsics.
    pub camera: PinholeCamera,
    /// Sensor noise model.
    pub noise: NoiseModel,
}

impl SyntheticSequence {
    /// Number of frames.
    pub fn len(&self) -> usize {
        self.trajectory.len()
    }

    /// Whether the sequence has no frames.
    pub fn is_empty(&self) -> bool {
        self.trajectory.is_empty()
    }

    /// Renders frame `index` into an owned [`Frame`].
    ///
    /// Routed through [`SyntheticSequence::frame_into`] on a fresh
    /// buffer; hot loops should hold a recycled [`Frame::buffer`] and
    /// call `frame_into` directly for zero steady-state allocation.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn frame(&self, index: usize) -> Frame {
        let mut out = Frame::buffer();
        self.frame_into(index, &mut out);
        out
    }

    /// Renders frame `index` into `out`, reusing its image allocations
    /// when their capacity suffices. Bit-identical to
    /// [`SyntheticSequence::frame`]; this is the zero-alloc primitive
    /// the prefetch pipeline recycles frame buffers through.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn frame_into(&self, index: usize, out: &mut Frame) {
        let tp = self.trajectory.poses()[index];
        self.scene
            .render_into(&self.camera, &tp.pose, &mut out.gray, &mut out.depth);
        self.noise.apply(
            &mut out.gray,
            &mut out.depth,
            self.name.as_bytes(),
            index as u64,
        );
        out.timestamp = tp.timestamp;
        out.ground_truth = tp.pose;
    }

    /// Iterates over all frames (rendering lazily).
    ///
    /// Each yielded [`Frame`] is owned, so one image pair is allocated
    /// per frame; streaming consumers that can recycle a buffer should
    /// use [`SyntheticSequence::frame_into`] (or wrap the sequence in
    /// `PrefetchSource`) instead.
    pub fn frames(&self) -> impl Iterator<Item = Frame> + '_ {
        (0..self.len()).map(|i| self.frame(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(kind: TrajectoryKind) -> SequenceSpec {
        SequenceSpec {
            name: format!("test/{kind}"),
            kind,
            params: TrajectoryParams {
                frames: 3,
                fps: 30.0,
                amplitude: 1.0,
            },
            camera: PinholeCamera::new(80.0, 80.0, 40.0, 30.0, 80, 60),
            seed: 9,
            noise: NoiseModel::none(),
        }
    }

    #[test]
    fn paper_sequences_are_five() {
        let specs = SequenceSpec::paper_sequences(10, 1.0);
        let names: Vec<_> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["fr1/xyz", "fr2/xyz", "fr1/desk", "fr1/room", "fr2/rpy"]
        );
        for s in &specs {
            assert_eq!(s.camera.width, 640);
            assert_eq!(s.camera.height, 480);
            assert_eq!(s.params.frames, 10);
        }
    }

    #[test]
    fn image_scale_shrinks_camera() {
        let specs = SequenceSpec::paper_sequences(5, 0.25);
        assert_eq!(specs[0].camera.width, 160);
        assert_eq!(specs[0].camera.height, 120);
    }

    #[test]
    fn loop_sequences_render_and_close() {
        let specs = SequenceSpec::loop_sequences(6, 0.25);
        let names: Vec<_> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["loop/circle", "loop/figure8"]);
        for spec in &specs {
            assert!(spec.kind.is_loop());
            let seq = spec.build();
            assert_eq!(seq.len(), 6);
            let first = seq.frame(0);
            let last = seq.frame(5);
            // Identical poses → identical geometry; only the per-frame
            // sensor noise differs between first and last frame.
            assert_eq!(
                first.ground_truth, last.ground_truth,
                "{} does not close",
                spec.name
            );
            assert!(first.depth.coverage() > 0.9, "{}", spec.name);
        }
    }

    #[test]
    fn frames_render_with_ground_truth() {
        let seq = tiny_spec(TrajectoryKind::Xyz).build();
        assert_eq!(seq.len(), 3);
        let f = seq.frame(0);
        assert_eq!(f.gray.width(), 80);
        assert_eq!(f.depth.width(), 80);
        assert!(f.depth.coverage() > 0.99);
        assert_eq!(f.ground_truth, seq.trajectory.poses()[0].pose);
    }

    #[test]
    fn depth_is_consistent_with_unprojection() {
        // Back-projecting a pixel with its depth and mapping to world must
        // land on scene geometry (inside or on the room box).
        let seq = tiny_spec(TrajectoryKind::Desk).build();
        let f = seq.frame(1);
        for (x, y) in [(10u32, 10u32), (40, 30), (70, 50)] {
            if let Some(z) = f.depth.metres(x, y) {
                let cam_pt = seq
                    .camera
                    .unproject(eslam_geometry::Vec2::new(x as f64, y as f64), z);
                let world = f.ground_truth.transform(cam_pt);
                assert!(
                    world.x.abs() <= 3.001 && world.y.abs() <= 2.201 && world.z.abs() <= 3.001,
                    "point {world} escaped the room"
                );
            }
        }
    }

    #[test]
    fn frames_iterator_matches_indexing() {
        let seq = tiny_spec(TrajectoryKind::Room).build();
        let collected: Vec<Frame> = seq.frames().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], seq.frame(2));
    }

    #[test]
    fn desk_kind_gets_desk_scene() {
        let desk = tiny_spec(TrajectoryKind::Desk).build();
        let room = tiny_spec(TrajectoryKind::Room).build();
        assert!(!desk.scene.quads.is_empty());
        assert!(room.scene.quads.is_empty());
    }

    #[test]
    fn rendering_is_deterministic() {
        let seq = tiny_spec(TrajectoryKind::Xyz).build();
        assert_eq!(seq.frame(1), seq.frame(1));
    }

    #[test]
    fn frame_into_recycles_buffer_bit_identically() {
        // One buffer reused across every frame (and noise enabled, the
        // sterner test: stale pixels must never leak through) matches
        // the owned-frame path exactly.
        let mut spec = tiny_spec(TrajectoryKind::Desk);
        spec.noise = NoiseModel::default();
        let seq = spec.build();
        let mut buf = Frame::buffer();
        for i in 0..seq.len() {
            seq.frame_into(i, &mut buf);
            assert_eq!(buf, seq.frame(i), "frame {i}");
        }
        // Steady state reuses the gray allocation.
        seq.frame_into(0, &mut buf);
        let ptr = buf.gray.as_raw().as_ptr();
        seq.frame_into(1, &mut buf);
        assert_eq!(buf.gray.as_raw().as_ptr(), ptr);
    }
}
