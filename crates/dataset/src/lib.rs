//! Synthetic TUM-like RGB-D dataset substrate for the eSLAM reproduction.
//!
//! The paper evaluates on five TUM RGB-D sequences (§4.1). Those
//! recordings are not redistributable here, so this crate generates
//! synthetic stand-ins that exercise the identical code paths (see the
//! substitution table in DESIGN.md):
//!
//! * [`scene`] — ray-cast room/desk scenes with corner-rich procedural
//!   textures, rendering grayscale + TUM-convention depth;
//! * [`trajectory`] — motion generators mimicking each sequence's profile
//!   (`xyz` translation-only, `rpy` rotation-only, `desk` arc, `room`
//!   loop) plus TUM-format ground-truth I/O;
//! * [`sequence`] — the composed renderable sequences, including
//!   [`sequence::SequenceSpec::paper_sequences`] for the five evaluation
//!   sequences;
//! * [`noise`] — Kinect-like intensity/depth noise;
//! * [`eval`] — ATE (Fig. 8's metric) and RPE trajectory evaluation;
//! * [`disk`] — on-disk TUM-style dataset export/load (PGM frames +
//!   `rgb.txt`/`depth.txt`/`groundtruth.txt`), including timestamp
//!   association for unsynchronized real recordings;
//! * [`source`] — the [`FrameSource`] abstraction over synthetic, disk
//!   and noise-augmented frame producers (the pipeline consumes frames
//!   through this trait, not a concrete renderer);
//! * [`prefetch`] — double-buffered async prefetch: frame `k + 1`
//!   renders on a background worker of the persistent
//!   `eslam_features::pool::WorkerPool` while the pipeline consumes
//!   frame `k`, bit-identical to synchronous rendering (forceable at
//!   the SLAM layer via the `ESLAM_PREFETCH` environment variable).
//!
//! # Examples
//!
//! Render the first frame of a desk sequence and inspect its depth:
//!
//! ```
//! use eslam_dataset::sequence::SequenceSpec;
//!
//! // Quarter-scale frames keep doc tests fast.
//! let spec = &SequenceSpec::paper_sequences(5, 0.25)[2]; // fr1/desk
//! let seq = spec.build();
//! let frame = seq.frame(0);
//! assert!(frame.depth.coverage() > 0.9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod disk;
pub mod eval;
pub mod noise;
pub mod prefetch;
pub mod scene;
pub mod sequence;
pub mod source;
pub mod trajectory;

pub use eval::{absolute_trajectory_error, relative_pose_error, AteResult, ErrorStats};
pub use prefetch::{with_prefetch, PrefetchSource};
pub use sequence::{Frame, SequenceSpec, SyntheticSequence};
pub use source::{FrameSource, NoisySource};
pub use trajectory::{TimedPose, Trajectory, TrajectoryKind, TrajectoryParams};

#[cfg(test)]
mod proptests {
    use super::*;
    use eslam_geometry::{Quaternion, Se3, Vec3};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ate_invariant_to_rigid_offset(
            tx in -2.0..2.0f64, ty in -2.0..2.0f64, tz in -2.0..2.0f64,
            angle in -1.5..1.5f64,
        ) {
            let truth = Trajectory::generate(
                TrajectoryKind::Room,
                &TrajectoryParams { frames: 20, ..Default::default() },
            );
            let offset = Se3::from_quaternion_translation(
                &Quaternion::from_axis_angle(Vec3::new(0.3, 1.0, -0.2), angle),
                Vec3::new(tx, ty, tz),
            );
            let mut est = Trajectory::new();
            for tp in truth.poses() {
                est.push(tp.timestamp, offset.compose(&tp.pose));
            }
            let r = absolute_trajectory_error(&est, &truth).unwrap();
            prop_assert!(r.stats.rmse < 1e-8, "rmse {}", r.stats.rmse);
        }

        #[test]
        fn tum_io_round_trips(frames in 2usize..20, kind_idx in 0usize..4) {
            let kind = [
                TrajectoryKind::Xyz,
                TrajectoryKind::Rpy,
                TrajectoryKind::Desk,
                TrajectoryKind::Room,
            ][kind_idx];
            let t = Trajectory::generate(kind, &TrajectoryParams { frames, ..Default::default() });
            let mut buf = Vec::new();
            t.write_tum(&mut buf).unwrap();
            let parsed = Trajectory::read_tum(buf.as_slice()).unwrap();
            prop_assert_eq!(parsed.len(), t.len());
            for (a, b) in t.poses().iter().zip(parsed.poses()) {
                prop_assert!((a.pose.translation - b.pose.translation).norm() < 1e-5);
            }
        }
    }
}
