//! CI-enforced guard for the property the prefetcher's double buffer
//! relies on: steady-state `frame_into` rendering into a recycled
//! [`Frame`] buffer performs **zero** heap allocations per frame.
//!
//! Lives alone in its own integration-test binary because the counting
//! `#[global_allocator]` is process-wide — a lone `#[test]` keeps the
//! counter free of concurrent test noise. (The pipeline bench repeats
//! the same assertion next to its timing numbers; this copy is the one
//! `cargo test` — and therefore every CI job — actually runs.)

use eslam_dataset::sequence::{Frame, SequenceSpec};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_frame_into_allocates_nothing() {
    // Quarter-scale room sequence with the default (noisy) model: the
    // full render + noise path, exactly what run_sequence recycles.
    let seq = SequenceSpec::paper_sequences(2, 0.25)[3].build();
    let mut buf = Frame::buffer();
    seq.frame_into(0, &mut buf); // warm the buffer allocations

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..16 {
        seq.frame_into(0, &mut buf);
        seq.frame_into(1, &mut buf);
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "frame_into must not allocate in steady state \
         (saw {allocations} allocations over 32 frames)"
    );
}
