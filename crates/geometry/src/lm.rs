//! Levenberg-Marquardt pose optimization (motion-only bundle adjustment).
//!
//! Implements the paper's *pose optimization* stage (§2.1, Eq. 1): given the
//! pixel observations `c_i` of matched map points `g_i` and a camera pose
//! `p`, iteratively minimize the total reprojection error
//!
//! ```text
//! E = Σᵢ ‖cᵢ − h(gᵢ, p)‖²
//! ```
//!
//! with the Levenberg-Marquardt method, exactly as the paper prescribes
//! (citing Moré \[7\]). The 6-DoF pose is updated on the SE(3) manifold with
//! left-multiplicative increments; a Huber robust kernel is available to
//! down-weight residual outliers that survive RANSAC.

use crate::camera::PinholeCamera;
use crate::matrix::{Mat6, Vec6};
use crate::robust::{huber_weight, robust_cost, BEHIND_CAMERA_PENALTY};
use crate::se3::Se3;
use crate::vector::{Vec2, Vec3};

/// Parameters of the Levenberg-Marquardt pose optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmParams {
    /// Maximum number of accepted iterations.
    pub max_iterations: usize,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Multiplicative λ increase on a rejected step.
    pub lambda_up: f64,
    /// Multiplicative λ decrease on an accepted step.
    pub lambda_down: f64,
    /// Convergence threshold on the update norm ‖δ‖.
    pub min_step_norm: f64,
    /// Convergence threshold on the relative cost decrease.
    pub min_cost_decrease: f64,
    /// Huber kernel width in pixels; `None` disables the robust kernel
    /// (pure least squares, as in Eq. 1).
    pub huber_delta: Option<f64>,
    /// Weight of the motion-prior regularizer: adds
    /// `w‖log(p ∘ p_prior⁻¹)‖²` to the cost, anchoring the pose to the
    /// prior passed to [`optimize_pose_with_prior`] (for
    /// [`optimize_pose`], the seed itself). `0.0` (the default)
    /// disables the term. In weakly-conditioned problems — small
    /// images, shallow parallax — the reprojection cost has a flat
    /// valley along near-ambiguous directions; a small prior weight
    /// picks the solution nearest the motion prediction instead of an
    /// arbitrary valley point, without measurably biasing
    /// well-conditioned solves (the reprojection gradient dominates).
    pub motion_prior_weight: f64,
}

impl Default for LmParams {
    fn default() -> Self {
        LmParams {
            max_iterations: 20,
            initial_lambda: 1e-4,
            lambda_up: 10.0,
            lambda_down: 0.5,
            min_step_norm: 1e-10,
            min_cost_decrease: 1e-12,
            huber_delta: Some(5.0),
            motion_prior_weight: 0.0,
        }
    }
}

/// Outcome of a pose optimization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmResult {
    /// The optimized pose.
    pub pose: Se3,
    /// Final cost (sum of robustified squared pixel errors).
    pub final_cost: f64,
    /// Initial cost before any update.
    pub initial_cost: f64,
    /// Number of accepted LM iterations.
    pub iterations: usize,
    /// Whether the run terminated by convergence rather than the iteration
    /// cap.
    pub converged: bool,
}

/// Evaluates the robustified cost of a pose over the correspondence
/// set, plus the motion prior when one is active.
fn evaluate_cost(
    pose: &Se3,
    world: &[Vec3],
    pixels: &[Vec2],
    camera: &PinholeCamera,
    huber: Option<f64>,
    prior: Option<(&Se3, f64)>,
) -> f64 {
    let mut cost = 0.0;
    if let Some((anchor, weight)) = prior {
        let xi = pose.compose(&anchor.inverse()).log();
        cost += weight * xi.norm() * xi.norm();
    }
    for (g, c) in world.iter().zip(pixels) {
        let p_cam = pose.transform(*g);
        match camera.project(p_cam) {
            Some(uv) => cost += robust_cost((uv - *c).norm(), huber),
            // Points that project behind the camera pay a large constant
            // penalty so LM steps that flip geometry are rejected.
            None => cost += BEHIND_CAMERA_PENALTY,
        }
    }
    cost
}

/// Accumulates the Gauss-Newton normal equations `H δ = −b` for the
/// reprojection problem at `pose`. Returns `(H, b, cost)`.
fn build_normal_equations(
    pose: &Se3,
    world: &[Vec3],
    pixels: &[Vec2],
    camera: &PinholeCamera,
    huber: Option<f64>,
    prior: Option<(&Se3, f64)>,
) -> (Mat6, Vec6, f64) {
    let mut h = Mat6::zeros();
    let mut b = Vec6::zeros();
    let mut cost = 0.0;

    // Motion prior: residual √w·log(p ∘ anchor⁻¹) with Jacobian ≈ √w·I
    // for the small increments LM takes, so H += w·I and b += w·ξ.
    if let Some((anchor, weight)) = prior {
        let xi = pose.compose(&anchor.inverse()).log();
        cost += weight * xi.norm() * xi.norm();
        for k in 0..6 {
            h.m[k][k] += weight;
            b.v[k] += weight * xi[k];
        }
    }

    for (g, c) in world.iter().zip(pixels) {
        let p_cam = pose.transform(*g);
        let uv = match camera.project(p_cam) {
            Some(uv) => uv,
            None => {
                cost += BEHIND_CAMERA_PENALTY;
                continue;
            }
        };
        let r = uv - *c; // residual: predicted − observed
        let rn = r.norm();
        let w = huber_weight(rn, huber);
        cost += robust_cost(rn, huber);

        let (x, y, z) = (p_cam.x, p_cam.y, p_cam.z);
        let inv_z = 1.0 / z;
        let inv_z2 = inv_z * inv_z;

        // ∂(u,v)/∂p_cam
        let j_proj = [
            [camera.fx * inv_z, 0.0, -camera.fx * x * inv_z2],
            [0.0, camera.fy * inv_z, -camera.fy * y * inv_z2],
        ];
        // ∂p_cam/∂ξ with left perturbation exp(ξ)·T: [ I | −[p_cam]× ]
        let j_point = [
            [1.0, 0.0, 0.0, 0.0, z, -y],
            [0.0, 1.0, 0.0, -z, 0.0, x],
            [0.0, 0.0, 1.0, y, -x, 0.0],
        ];

        // Rows of the full Jacobian J = j_proj · j_point (2×6).
        let mut j_rows = [[0.0f64; 6]; 2];
        for (out_row, proj_row) in j_rows.iter_mut().zip(&j_proj) {
            for k in 0..6 {
                out_row[k] = (0..3).map(|m| proj_row[m] * j_point[m][k]).sum();
            }
        }

        let residual = [r.x, r.y];
        for (j_row, res) in j_rows.iter().zip(residual) {
            let g_vec = Vec6 { v: *j_row };
            h.rank_one_update(&g_vec, w);
            for (bk, jk) in b.v.iter_mut().zip(j_row) {
                *bk += w * jk * res;
            }
        }
    }
    (h, b, cost)
}

/// Optimizes a camera pose by minimizing reprojection error with
/// Levenberg-Marquardt.
///
/// * `initial` — starting pose (e.g. the PnP/RANSAC estimate or the
///   previous frame's pose).
/// * `world` / `pixels` — matched 3-D map points and their pixel
///   observations in the current frame (equal lengths).
///
/// Empty correspondence sets return the initial pose unchanged with zero
/// cost.
///
/// # Examples
///
/// ```
/// use eslam_geometry::{lm::{optimize_pose, LmParams}, PinholeCamera, Se3, Vec3};
/// let camera = PinholeCamera::tum_fr1();
/// let world = vec![
///     Vec3::new(0.0, 0.0, 3.0), Vec3::new(1.0, 0.5, 4.0),
///     Vec3::new(-0.5, 0.2, 2.5), Vec3::new(0.3, -0.6, 3.5),
///     Vec3::new(-0.8, -0.4, 5.0), Vec3::new(0.9, 0.9, 3.2),
/// ];
/// let truth = Se3::from_translation(Vec3::new(0.1, -0.05, 0.02));
/// let pixels: Vec<_> = world.iter()
///     .map(|&p| camera.project(truth.transform(p)).unwrap())
///     .collect();
/// let result = optimize_pose(&Se3::identity(), &world, &pixels, &camera, &LmParams::default());
/// assert!((result.pose.translation - truth.translation).norm() < 1e-6);
/// ```
pub fn optimize_pose(
    initial: &Se3,
    world: &[Vec3],
    pixels: &[Vec2],
    camera: &PinholeCamera,
    params: &LmParams,
) -> LmResult {
    optimize_pose_with_prior(initial, None, world, pixels, camera, params)
}

/// [`optimize_pose`] with an explicit motion-prior anchor.
///
/// When [`LmParams::motion_prior_weight`] is non-zero, the cost gains a
/// `w‖log(p ∘ p_prior⁻¹)‖²` term pulling the solution toward `prior` —
/// typically the constant-velocity motion prediction, while `initial`
/// (the better linearization point, e.g. the PnP estimate) seeds the
/// iteration. `prior = None` anchors to `initial` itself; with a zero
/// weight the function is exactly [`optimize_pose`].
pub fn optimize_pose_with_prior(
    initial: &Se3,
    prior: Option<&Se3>,
    world: &[Vec3],
    pixels: &[Vec2],
    camera: &PinholeCamera,
    params: &LmParams,
) -> LmResult {
    assert_eq!(
        world.len(),
        pixels.len(),
        "world/pixel correspondence slices must have equal length"
    );
    let mut pose = *initial;
    let anchor = *prior.unwrap_or(initial);
    let prior = (params.motion_prior_weight > 0.0).then_some((&anchor, params.motion_prior_weight));
    let initial_cost = evaluate_cost(&pose, world, pixels, camera, params.huber_delta, prior);
    let mut cost = initial_cost;
    let mut lambda = params.initial_lambda;
    let mut iterations = 0;
    let mut converged = world.is_empty();

    if world.is_empty() {
        return LmResult {
            pose,
            final_cost: 0.0,
            initial_cost: 0.0,
            iterations: 0,
            converged: true,
        };
    }

    let mut attempts = 0;
    while iterations < params.max_iterations && attempts < params.max_iterations * 4 {
        attempts += 1;
        let (mut h, b, _) =
            build_normal_equations(&pose, world, pixels, camera, params.huber_delta, prior);
        h.add_diagonal(lambda * (1.0 + h.m[0][0].abs()));

        let neg_b = Vec6 {
            v: [-b.v[0], -b.v[1], -b.v[2], -b.v[3], -b.v[4], -b.v[5]],
        };
        let delta = match h.cholesky_solve(&neg_b) {
            Some(d) => d,
            None => {
                lambda *= params.lambda_up;
                continue;
            }
        };

        if delta.norm() < params.min_step_norm {
            converged = true;
            break;
        }

        let candidate = pose.retract(&delta);
        let candidate_cost =
            evaluate_cost(&candidate, world, pixels, camera, params.huber_delta, prior);

        if candidate_cost < cost {
            let decrease = (cost - candidate_cost) / cost.max(1e-300);
            pose = candidate;
            pose.orthonormalize();
            cost = candidate_cost;
            lambda = (lambda * params.lambda_down).max(1e-12);
            iterations += 1;
            if decrease < params.min_cost_decrease {
                converged = true;
                break;
            }
        } else {
            lambda *= params.lambda_up;
            if lambda > 1e12 {
                converged = true;
                break;
            }
        }
    }

    LmResult {
        pose,
        final_cost: cost,
        initial_cost,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quaternion::Quaternion;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn scene(seed: u64, n: usize) -> (Vec<Vec3>, Se3, PinholeCamera, Vec<Vec2>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let camera = PinholeCamera::tum_fr1();
        let truth = Se3::from_quaternion_translation(
            &Quaternion::from_axis_angle(
                Vec3::new(rng.gen(), rng.gen(), rng.gen()),
                rng.gen::<f64>() * 0.3,
            ),
            Vec3::new(
                rng.gen::<f64>() * 0.4,
                rng.gen::<f64>() * 0.4,
                rng.gen::<f64>() * 0.2,
            ),
        );
        let mut world = Vec::new();
        let mut pixels = Vec::new();
        while world.len() < n {
            let p = Vec3::new(
                (rng.gen::<f64>() - 0.5) * 4.0,
                (rng.gen::<f64>() - 0.5) * 3.0,
                2.0 + rng.gen::<f64>() * 4.0,
            );
            if let Some(uv) = camera.project(truth.transform(p)) {
                if camera.in_bounds(uv, 1.0) {
                    world.push(p);
                    pixels.push(uv);
                }
            }
        }
        (world, truth, camera, pixels)
    }

    #[test]
    fn converges_from_identity() {
        for seed in 0..5 {
            let (world, truth, camera, pixels) = scene(seed, 40);
            let res = optimize_pose(
                &Se3::identity(),
                &world,
                &pixels,
                &camera,
                &LmParams::default(),
            );
            assert!(
                (res.pose.translation - truth.translation).norm() < 1e-6,
                "seed {seed}: err {}",
                (res.pose.translation - truth.translation).norm()
            );
            assert!(res.final_cost < 1e-10);
            assert!(res.final_cost <= res.initial_cost);
        }
    }

    #[test]
    fn already_optimal_pose_converges_immediately() {
        let (world, truth, camera, pixels) = scene(42, 30);
        let res = optimize_pose(&truth, &world, &pixels, &camera, &LmParams::default());
        assert!(res.converged);
        assert!(res.final_cost < 1e-16);
        assert!((res.pose.translation - truth.translation).norm() < 1e-10);
    }

    #[test]
    fn empty_input_is_noop() {
        let camera = PinholeCamera::tum_fr1();
        let start = Se3::from_translation(Vec3::new(1.0, 2.0, 3.0));
        let res = optimize_pose(&start, &[], &[], &camera, &LmParams::default());
        assert_eq!(res.pose, start);
        assert!(res.converged);
        assert_eq!(res.final_cost, 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let camera = PinholeCamera::tum_fr1();
        let _ = optimize_pose(
            &Se3::identity(),
            &[Vec3::new(0.0, 0.0, 2.0)],
            &[],
            &camera,
            &LmParams::default(),
        );
    }

    #[test]
    fn huber_resists_outliers() {
        let (world, truth, camera, mut pixels) = scene(9, 60);
        // Corrupt 10 observations grossly.
        for uv in pixels.iter_mut().take(10) {
            uv.x += 150.0;
            uv.y -= 200.0;
        }
        let robust = optimize_pose(
            &Se3::identity(),
            &world,
            &pixels,
            &camera,
            &LmParams {
                huber_delta: Some(3.0),
                max_iterations: 50,
                ..Default::default()
            },
        );
        let plain = optimize_pose(
            &Se3::identity(),
            &world,
            &pixels,
            &camera,
            &LmParams {
                huber_delta: None,
                max_iterations: 50,
                ..Default::default()
            },
        );
        let robust_err = (robust.pose.translation - truth.translation).norm();
        let plain_err = (plain.pose.translation - truth.translation).norm();
        assert!(
            robust_err < plain_err,
            "robust {robust_err} should beat plain {plain_err}"
        );
        assert!(robust_err < 0.05, "robust error too large: {robust_err}");
    }

    #[test]
    fn noisy_observations_converge_to_neighborhood() {
        let (world, truth, camera, mut pixels) = scene(13, 80);
        let mut rng = SmallRng::seed_from_u64(77);
        for uv in pixels.iter_mut() {
            uv.x += (rng.gen::<f64>() - 0.5) * 2.0;
            uv.y += (rng.gen::<f64>() - 0.5) * 2.0;
        }
        let res = optimize_pose(
            &Se3::identity(),
            &world,
            &pixels,
            &camera,
            &LmParams::default(),
        );
        assert!((res.pose.translation - truth.translation).norm() < 0.02);
    }

    #[test]
    fn cost_monotonically_nonincreasing() {
        let (world, _truth, camera, pixels) = scene(21, 25);
        let res = optimize_pose(
            &Se3::identity(),
            &world,
            &pixels,
            &camera,
            &LmParams::default(),
        );
        assert!(res.final_cost <= res.initial_cost);
    }

    #[test]
    fn rotation_stays_orthonormal() {
        let (world, _truth, camera, pixels) = scene(31, 40);
        let res = optimize_pose(
            &Se3::identity(),
            &world,
            &pixels,
            &camera,
            &LmParams::default(),
        );
        let should_be_identity = res.pose.rotation * res.pose.rotation.transpose();
        assert!((should_be_identity - crate::Mat3::identity()).frobenius_norm() < 1e-9);
    }

    #[test]
    fn zero_prior_weight_is_bit_identical_to_plain_lm() {
        let (world, _truth, camera, pixels) = scene(55, 30);
        let seed = Se3::from_translation(Vec3::new(0.02, -0.01, 0.03));
        let prior_pose = Se3::from_translation(Vec3::new(0.5, 0.5, 0.5));
        let plain = optimize_pose(&seed, &world, &pixels, &camera, &LmParams::default());
        let with_prior = optimize_pose_with_prior(
            &seed,
            Some(&prior_pose),
            &world,
            &pixels,
            &camera,
            &LmParams::default(),
        );
        assert_eq!(plain, with_prior);
    }

    #[test]
    fn motion_prior_pulls_degenerate_solve_toward_prior() {
        // Two far-away points barely constrain the pose; the prior term
        // must dominate and keep the estimate at the anchor instead of
        // letting LM wander in the flat valley.
        let camera = PinholeCamera::tum_fr1();
        let world = vec![
            Vec3::new(-0.2, 0.0, 60.0),
            Vec3::new(0.2, 0.1, 60.0),
            Vec3::new(0.0, -0.2, 62.0),
        ];
        let anchor = Se3::from_translation(Vec3::new(0.03, -0.02, 0.01));
        let pixels: Vec<_> = world
            .iter()
            .map(|&p| camera.project(anchor.transform(p)).unwrap())
            .collect();
        let seed = Se3::from_translation(Vec3::new(0.3, 0.25, -0.4));
        let res = optimize_pose_with_prior(
            &seed,
            Some(&anchor),
            &world,
            &pixels,
            &camera,
            &LmParams {
                motion_prior_weight: 100.0,
                max_iterations: 50,
                ..Default::default()
            },
        );
        let err = (res.pose.translation - anchor.translation).norm();
        assert!(err < 0.01, "prior-regularized error {err}");
    }

    #[test]
    fn small_prior_weight_preserves_well_conditioned_accuracy() {
        for seed in 0..3 {
            let (world, truth, camera, pixels) = scene(seed, 40);
            // Anchor deliberately off-truth: the data term must win.
            let anchor = Se3::from_translation(truth.translation + Vec3::new(0.05, 0.0, -0.05));
            let res = optimize_pose_with_prior(
                &Se3::identity(),
                Some(&anchor),
                &world,
                &pixels,
                &camera,
                &LmParams {
                    motion_prior_weight: 25.0,
                    max_iterations: 50,
                    ..Default::default()
                },
            );
            let err = (res.pose.translation - truth.translation).norm();
            assert!(err < 5e-4, "seed {seed}: err {err}");
        }
    }

    #[test]
    fn prior_gradient_matches_finite_differences() {
        // Same check as the reprojection Jacobian test, with the prior
        // term included: b must be the gradient of ½·cost.
        let (world, _truth, camera, pixels) = scene(61, 12);
        let pose = Se3::from_translation(Vec3::new(0.04, -0.02, 0.06));
        let anchor = Se3::from_translation(Vec3::new(0.01, 0.01, 0.01));
        let weight = 7.5;

        let cost_at = |xi: &Vec6| -> f64 {
            let perturbed = pose.retract(xi);
            let mut c = 0.0;
            for (g, px) in world.iter().zip(&pixels) {
                let uv = camera.project(perturbed.transform(*g)).unwrap();
                c += 0.5 * (uv - *px).norm_squared();
            }
            let p_xi = perturbed.compose(&anchor.inverse()).log();
            c + 0.5 * weight * p_xi.norm() * p_xi.norm()
        };

        let (_, b, _) = build_normal_equations(
            &pose,
            &world,
            &pixels,
            &camera,
            None,
            Some((&anchor, weight)),
        );
        let eps = 1e-7;
        for k in 0..6 {
            let mut plus = Vec6::zeros();
            plus[k] = eps;
            let mut minus = Vec6::zeros();
            minus[k] = -eps;
            let numeric = (cost_at(&plus) - cost_at(&minus)) / (2.0 * eps);
            // The prior Jacobian is the I approximation, so allow a
            // slightly wider (but still tight) tolerance than the pure
            // reprojection check.
            assert!(
                (b[k] - numeric).abs() < 5e-3 * (1.0 + numeric.abs()),
                "component {k}: analytic {} vs numeric {numeric}",
                b[k]
            );
        }
    }

    #[test]
    fn analytic_jacobian_matches_finite_differences() {
        // The normal equations' gradient b = Σ Jᵀ r must equal the
        // numerical gradient of the cost ½‖r‖² with respect to the SE(3)
        // tangent coordinates (left perturbation), component by component.
        use crate::matrix::Vec6;
        let (world, _truth, camera, pixels) = scene(47, 15);
        let pose = Se3::from_translation(Vec3::new(0.05, -0.03, 0.08));

        let cost_at = |xi: &Vec6| -> f64 {
            let perturbed = pose.retract(xi);
            let mut c = 0.0;
            for (g, px) in world.iter().zip(&pixels) {
                let uv = camera.project(perturbed.transform(*g)).unwrap();
                let r = uv - *px;
                c += 0.5 * r.norm_squared();
            }
            c
        };

        let (_, b, _) = build_normal_equations(&pose, &world, &pixels, &camera, None, None);
        let eps = 1e-7;
        for k in 0..6 {
            let mut plus = Vec6::zeros();
            plus[k] = eps;
            let mut minus = Vec6::zeros();
            minus[k] = -eps;
            let numeric = (cost_at(&plus) - cost_at(&minus)) / (2.0 * eps);
            // b = Σ Jᵀ r is the gradient of ½‖r‖².
            assert!(
                (b[k] - numeric).abs() < 1e-3 * (1.0 + numeric.abs()),
                "component {k}: analytic {} vs numeric {numeric}",
                b[k]
            );
        }
    }
}
