//! Rigid-body transforms in SE(3) with exponential/logarithm maps.
//!
//! [`Se3`] is the camera pose representation used throughout the SLAM
//! pipeline: `pose` maps **world** coordinates into **camera** coordinates
//! (`p_cam = R * p_world + t`), matching the convention of the reprojection
//! error in Eq. (1) of the paper. The tangent-space parameterization
//! `[translation | rotation]` matches [`crate::Vec6`] and is what the
//! Levenberg-Marquardt optimizer increments.

use crate::matrix::{Mat3, Vec6};
use crate::quaternion::Quaternion;
use crate::vector::Vec3;
use std::fmt;

/// A rigid-body transform (rotation + translation).
///
/// # Examples
///
/// ```
/// use eslam_geometry::{Se3, Vec3};
/// let t = Se3::from_translation(Vec3::new(0.0, 0.0, 1.0));
/// assert_eq!(t.transform(Vec3::ZERO), Vec3::new(0.0, 0.0, 1.0));
/// assert!((t.inverse().transform(t.transform(Vec3::X)) - Vec3::X).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Se3 {
    /// Rotation part.
    pub rotation: Mat3,
    /// Translation part.
    pub translation: Vec3,
}

impl Default for Se3 {
    fn default() -> Self {
        Se3::identity()
    }
}

impl Se3 {
    /// The identity transform.
    pub fn identity() -> Self {
        Se3 {
            rotation: Mat3::identity(),
            translation: Vec3::ZERO,
        }
    }

    /// Creates a transform from rotation matrix and translation vector.
    pub fn new(rotation: Mat3, translation: Vec3) -> Self {
        Se3 {
            rotation,
            translation,
        }
    }

    /// A pure translation.
    pub fn from_translation(translation: Vec3) -> Self {
        Se3 {
            rotation: Mat3::identity(),
            translation,
        }
    }

    /// A pure rotation.
    pub fn from_rotation(rotation: Mat3) -> Self {
        Se3 {
            rotation,
            translation: Vec3::ZERO,
        }
    }

    /// Builds from a unit quaternion and translation (the TUM convention).
    pub fn from_quaternion_translation(q: &Quaternion, translation: Vec3) -> Self {
        Se3 {
            rotation: q.to_matrix(),
            translation,
        }
    }

    /// The rotation as a unit quaternion.
    pub fn rotation_quaternion(&self) -> Quaternion {
        Quaternion::from_matrix(&self.rotation)
    }

    /// Applies the transform to a point: `R p + t`.
    #[inline]
    pub fn transform(&self, p: Vec3) -> Vec3 {
        self.rotation * p + self.translation
    }

    /// Composition: `self ∘ rhs` (apply `rhs` first).
    pub fn compose(&self, rhs: &Se3) -> Se3 {
        Se3 {
            rotation: self.rotation * rhs.rotation,
            translation: self.rotation * rhs.translation + self.translation,
        }
    }

    /// The inverse transform.
    pub fn inverse(&self) -> Se3 {
        let rt = self.rotation.transpose();
        Se3 {
            rotation: rt,
            translation: -(rt * self.translation),
        }
    }

    /// The relative transform taking `self` to `other`: `other ∘ self⁻¹`.
    pub fn relative_to(&self, other: &Se3) -> Se3 {
        other.compose(&self.inverse())
    }

    /// Rotation angle of the rotation part, in radians, in `[0, π]`.
    pub fn rotation_angle(&self) -> f64 {
        // trace(R) = 1 + 2 cos θ
        let c = ((self.rotation.trace() - 1.0) * 0.5).clamp(-1.0, 1.0);
        c.acos()
    }

    /// SO(3) exponential map: rotation vector → rotation matrix (Rodrigues).
    pub fn so3_exp(omega: Vec3) -> Mat3 {
        let theta = omega.norm();
        let k = Mat3::skew(omega);
        if theta < 1e-10 {
            // Second-order Taylor expansion near zero.
            return Mat3::identity() + k + k * k * 0.5;
        }
        let a = theta.sin() / theta;
        let b = (1.0 - theta.cos()) / (theta * theta);
        Mat3::identity() + k * a + (k * k) * b
    }

    /// SO(3) logarithm map: rotation matrix → rotation vector.
    pub fn so3_log(r: &Mat3) -> Vec3 {
        let cos_theta = ((r.trace() - 1.0) * 0.5).clamp(-1.0, 1.0);
        let theta = cos_theta.acos();
        if theta < 1e-10 {
            // Near identity: vee of the skew part.
            return Vec3::new(
                0.5 * (r.m[2][1] - r.m[1][2]),
                0.5 * (r.m[0][2] - r.m[2][0]),
                0.5 * (r.m[1][0] - r.m[0][1]),
            );
        }
        if (std::f64::consts::PI - theta) < 1e-6 {
            // Near π the antisymmetric part vanishes; recover the axis from
            // the symmetric part R = I + 2 aaᵀ - I(1+cosθ)... use the
            // largest diagonal entry of (R + I)/2.
            let s = Mat3::identity() + *r;
            let d = Vec3::new(s.m[0][0], s.m[1][1], s.m[2][2]);
            let (i, _) = [d.x, d.y, d.z]
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            let col = s.col(i);
            let axis = (col / (2.0 * (1.0 + cos_theta)).max(1e-12).sqrt())
                .normalized()
                .unwrap_or(Vec3::X);
            // Fix the sign using the antisymmetric residue.
            let w = Vec3::new(
                r.m[2][1] - r.m[1][2],
                r.m[0][2] - r.m[2][0],
                r.m[1][0] - r.m[0][1],
            );
            let axis = if w.dot(axis) < 0.0 { -axis } else { axis };
            return axis * theta;
        }
        let factor = theta / (2.0 * theta.sin());
        Vec3::new(
            r.m[2][1] - r.m[1][2],
            r.m[0][2] - r.m[2][0],
            r.m[1][0] - r.m[0][1],
        ) * factor
    }

    /// SE(3) exponential map from a tangent vector
    /// `ξ = [ρ | ω]` (translation part first, matching [`Vec6`]).
    pub fn exp(xi: &Vec6) -> Se3 {
        let rho = xi.translation();
        let omega = xi.rotation();
        let theta = omega.norm();
        let r = Se3::so3_exp(omega);
        let v = if theta < 1e-10 {
            let k = Mat3::skew(omega);
            Mat3::identity() + k * 0.5 + k * k * (1.0 / 6.0)
        } else {
            let k = Mat3::skew(omega);
            let a = (1.0 - theta.cos()) / (theta * theta);
            let b = (theta - theta.sin()) / (theta * theta * theta);
            Mat3::identity() + k * a + (k * k) * b
        };
        Se3 {
            rotation: r,
            translation: v * rho,
        }
    }

    /// SE(3) logarithm map, inverse of [`Se3::exp`].
    pub fn log(&self) -> Vec6 {
        let omega = Se3::so3_log(&self.rotation);
        let theta = omega.norm();
        let v_inv = if theta < 1e-10 {
            let k = Mat3::skew(omega);
            Mat3::identity() - k * 0.5 + k * k * (1.0 / 12.0)
        } else {
            let k = Mat3::skew(omega);
            let half = 0.5 * theta;
            let cot_half = half.cos() / half.sin();
            let coeff = (1.0 - half * cot_half) / (theta * theta);
            Mat3::identity() - k * 0.5 + (k * k) * coeff
        };
        Vec6::from_parts(v_inv * self.translation, omega)
    }

    /// Left-multiplicative update `exp(ξ) ∘ self`, the increment rule of
    /// the pose optimizer.
    pub fn retract(&self, xi: &Vec6) -> Se3 {
        Se3::exp(xi).compose(self)
    }

    /// Re-orthonormalizes the rotation part (Gram-Schmidt), fighting drift
    /// accumulated over long compositions.
    pub fn orthonormalize(&mut self) {
        let c0 = self.rotation.col(0).normalized().unwrap_or(Vec3::X);
        let mut c1 = self.rotation.col(1);
        c1 = (c1 - c0 * c0.dot(c1)).normalized().unwrap_or(Vec3::Y);
        let c2 = c0.cross(c1);
        self.rotation = Mat3::from_cols(c0, c1, c2);
    }
}

impl fmt::Display for Se3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let q = self.rotation_quaternion();
        write!(
            f,
            "t=({:.4}, {:.4}, {:.4}) q=({:.4}, {:.4}, {:.4}, {:.4})",
            self.translation.x, self.translation.y, self.translation.z, q.x, q.y, q.z, q.w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn random_pose(seed: u64) -> Se3 {
        // Cheap deterministic pseudo-random pose without pulling in rand.
        let f = |k: u64| {
            ((seed.wrapping_mul(6364136223846793005).wrapping_add(k) >> 33) as f64
                / (u32::MAX as f64)
                - 0.5)
                * 2.0
        };
        let axis = Vec3::new(f(1), f(2), f(3));
        let angle = f(4) * 2.5;
        Se3 {
            rotation: Se3::so3_exp(axis.normalized().unwrap_or(Vec3::X) * angle),
            translation: Vec3::new(f(5), f(6), f(7)) * 3.0,
        }
    }

    #[test]
    fn identity_transform() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Se3::identity().transform(p), p);
    }

    #[test]
    fn inverse_round_trip() {
        for seed in 1..20u64 {
            let t = random_pose(seed);
            let p = Vec3::new(0.5, -1.0, 2.0);
            let back = t.inverse().transform(t.transform(p));
            assert!((back - p).norm() < 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn compose_then_inverse_is_identity() {
        let a = random_pose(3);
        let ainv = a.inverse();
        let id = a.compose(&ainv);
        assert!((id.rotation - Mat3::identity()).frobenius_norm() < 1e-12);
        assert!(id.translation.norm() < 1e-12);
    }

    #[test]
    fn so3_exp_log_round_trip() {
        let cases = [
            Vec3::new(0.1, 0.2, 0.3),
            Vec3::new(-1.0, 0.5, 0.25),
            Vec3::new(0.0, 0.0, 1e-12),
            Vec3::new(2.0, -1.0, 0.5),
            Vec3::ZERO,
        ];
        for omega in cases {
            let r = Se3::so3_exp(omega);
            let back = Se3::so3_log(&r);
            assert!((back - omega).norm() < 1e-9, "omega {omega}");
        }
    }

    #[test]
    fn so3_log_near_pi() {
        let omega = Vec3::new(0.0, 0.0, PI - 1e-9);
        let r = Se3::so3_exp(omega);
        let back = Se3::so3_log(&r);
        assert!((back.norm() - omega.norm()).abs() < 1e-6);
        // Axis is ±z.
        assert!(back.normalized().unwrap().cross(Vec3::Z).norm() < 1e-6);
    }

    #[test]
    fn se3_exp_log_round_trip() {
        let cases = [
            Vec6::from_parts(Vec3::new(1.0, -2.0, 0.5), Vec3::new(0.2, 0.1, -0.3)),
            Vec6::from_parts(Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.5, 0.0, 0.0)),
            Vec6::from_parts(Vec3::new(3.0, 1.0, -1.0), Vec3::ZERO),
            Vec6::zeros(),
        ];
        for xi in cases {
            let t = Se3::exp(&xi);
            let back = t.log();
            for i in 0..6 {
                assert!((back[i] - xi[i]).abs() < 1e-9, "component {i}");
            }
        }
    }

    #[test]
    fn exp_of_zero_is_identity() {
        let t = Se3::exp(&Vec6::zeros());
        assert!((t.rotation - Mat3::identity()).frobenius_norm() < 1e-15);
        assert!(t.translation.norm() < 1e-15);
    }

    #[test]
    fn retract_small_step_moves_pose() {
        let t = random_pose(11);
        let xi = Vec6::from_parts(Vec3::new(1e-3, 0.0, 0.0), Vec3::new(0.0, 1e-3, 0.0));
        let t2 = t.retract(&xi);
        let delta = t2.compose(&t.inverse()).log();
        for i in 0..6 {
            assert!((delta[i] - xi[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn rotation_angle_matches() {
        let t = Se3::from_rotation(Se3::so3_exp(Vec3::Y * FRAC_PI_2));
        assert!((t.rotation_angle() - FRAC_PI_2).abs() < 1e-12);
        assert_eq!(Se3::identity().rotation_angle(), 0.0);
    }

    #[test]
    fn relative_transform() {
        let a = random_pose(5);
        let b = random_pose(9);
        let rel = a.relative_to(&b);
        // rel ∘ a == b
        let b2 = rel.compose(&a);
        assert!((b2.rotation - b.rotation).frobenius_norm() < 1e-12);
        assert!((b2.translation - b.translation).norm() < 1e-12);
    }

    #[test]
    fn orthonormalize_restores_rotation() {
        let mut t = random_pose(7);
        // Inject drift.
        t.rotation.m[0][0] += 1e-4;
        t.rotation.m[1][2] -= 2e-4;
        t.orthonormalize();
        let should_be_identity = t.rotation * t.rotation.transpose();
        assert!((should_be_identity - Mat3::identity()).frobenius_norm() < 1e-12);
        assert!((t.rotation.determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quaternion_construction_matches() {
        let q = Quaternion::from_axis_angle(Vec3::new(1.0, 1.0, 0.0), 0.8);
        let t = Se3::from_quaternion_translation(&q, Vec3::new(1.0, 2.0, 3.0));
        let p = Vec3::new(0.4, -0.2, 1.0);
        assert!((t.transform(p) - (q.rotate(p) + t.translation)).norm() < 1e-12);
    }
}
