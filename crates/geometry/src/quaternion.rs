//! Unit quaternions for representing 3-D rotations.
//!
//! Used for TUM-format trajectory I/O (the TUM ground-truth format stores
//! `tx ty tz qx qy qz qw`) and for smooth trajectory interpolation in the
//! synthetic dataset generator.

use crate::matrix::Mat3;
use crate::vector::Vec3;
use std::fmt;

/// A unit quaternion `w + xi + yj + zk` representing a rotation.
///
/// Invariant: the stored quaternion has unit norm (all constructors
/// normalize). The identity rotation is `(w=1, x=y=z=0)`.
///
/// # Examples
///
/// ```
/// use eslam_geometry::{Quaternion, Vec3};
/// let q = Quaternion::from_axis_angle(Vec3::Z, std::f64::consts::FRAC_PI_2);
/// let v = q.rotate(Vec3::X);
/// assert!((v - Vec3::Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quaternion {
    /// Scalar part.
    pub w: f64,
    /// Vector part, i component.
    pub x: f64,
    /// Vector part, j component.
    pub y: f64,
    /// Vector part, k component.
    pub z: f64,
}

impl Default for Quaternion {
    fn default() -> Self {
        Quaternion::identity()
    }
}

impl Quaternion {
    /// The identity rotation.
    pub const fn identity() -> Self {
        Quaternion {
            w: 1.0,
            x: 0.0,
            y: 0.0,
            z: 0.0,
        }
    }

    /// Creates a quaternion from raw components, normalizing to unit length.
    ///
    /// Falls back to the identity when the norm is numerically zero.
    pub fn new(w: f64, x: f64, y: f64, z: f64) -> Self {
        let n = (w * w + x * x + y * y + z * z).sqrt();
        if n <= f64::EPSILON {
            Quaternion::identity()
        } else {
            Quaternion {
                w: w / n,
                x: x / n,
                y: y / n,
                z: z / n,
            }
        }
    }

    /// Builds the rotation of `angle` radians about the (not necessarily
    /// unit) `axis`.
    ///
    /// A zero axis yields the identity rotation.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Self {
        match axis.normalized() {
            None => Quaternion::identity(),
            Some(u) => {
                let half = 0.5 * angle;
                let s = half.sin();
                Quaternion::new(half.cos(), u.x * s, u.y * s, u.z * s)
            }
        }
    }

    /// Builds a quaternion from a rotation vector (axis scaled by angle).
    pub fn from_rotation_vector(omega: Vec3) -> Self {
        let angle = omega.norm();
        Quaternion::from_axis_angle(omega, angle)
    }

    /// Converts a rotation matrix to a quaternion (Shepperd's method).
    ///
    /// The input must be a proper rotation (orthogonal, det = +1); minor
    /// numerical drift is tolerated because the result is re-normalized.
    pub fn from_matrix(m: &Mat3) -> Self {
        let t = m.trace();
        if t > 0.0 {
            let s = (t + 1.0).sqrt() * 2.0;
            Quaternion::new(
                0.25 * s,
                (m.m[2][1] - m.m[1][2]) / s,
                (m.m[0][2] - m.m[2][0]) / s,
                (m.m[1][0] - m.m[0][1]) / s,
            )
        } else if m.m[0][0] > m.m[1][1] && m.m[0][0] > m.m[2][2] {
            let s = (1.0 + m.m[0][0] - m.m[1][1] - m.m[2][2]).sqrt() * 2.0;
            Quaternion::new(
                (m.m[2][1] - m.m[1][2]) / s,
                0.25 * s,
                (m.m[0][1] + m.m[1][0]) / s,
                (m.m[0][2] + m.m[2][0]) / s,
            )
        } else if m.m[1][1] > m.m[2][2] {
            let s = (1.0 + m.m[1][1] - m.m[0][0] - m.m[2][2]).sqrt() * 2.0;
            Quaternion::new(
                (m.m[0][2] - m.m[2][0]) / s,
                (m.m[0][1] + m.m[1][0]) / s,
                0.25 * s,
                (m.m[1][2] + m.m[2][1]) / s,
            )
        } else {
            let s = (1.0 + m.m[2][2] - m.m[0][0] - m.m[1][1]).sqrt() * 2.0;
            Quaternion::new(
                (m.m[1][0] - m.m[0][1]) / s,
                (m.m[0][2] + m.m[2][0]) / s,
                (m.m[1][2] + m.m[2][1]) / s,
                0.25 * s,
            )
        }
    }

    /// Converts to a rotation matrix.
    pub fn to_matrix(&self) -> Mat3 {
        let (w, x, y, z) = (self.w, self.x, self.y, self.z);
        Mat3 {
            m: [
                [
                    1.0 - 2.0 * (y * y + z * z),
                    2.0 * (x * y - w * z),
                    2.0 * (x * z + w * y),
                ],
                [
                    2.0 * (x * y + w * z),
                    1.0 - 2.0 * (x * x + z * z),
                    2.0 * (y * z - w * x),
                ],
                [
                    2.0 * (x * z - w * y),
                    2.0 * (y * z + w * x),
                    1.0 - 2.0 * (x * x + y * y),
                ],
            ],
        }
    }

    /// Hamilton product `self * rhs` (compose rotations; `rhs` acts first).
    pub fn mul(&self, rhs: &Quaternion) -> Quaternion {
        Quaternion::new(
            self.w * rhs.w - self.x * rhs.x - self.y * rhs.y - self.z * rhs.z,
            self.w * rhs.x + self.x * rhs.w + self.y * rhs.z - self.z * rhs.y,
            self.w * rhs.y - self.x * rhs.z + self.y * rhs.w + self.z * rhs.x,
            self.w * rhs.z + self.x * rhs.y - self.y * rhs.x + self.z * rhs.w,
        )
    }

    /// The inverse rotation (conjugate, since the quaternion is unit).
    pub fn conjugate(&self) -> Quaternion {
        Quaternion {
            w: self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Rotates a vector.
    pub fn rotate(&self, v: Vec3) -> Vec3 {
        // v' = v + 2 q_v × (q_v × v + w v)
        let qv = Vec3::new(self.x, self.y, self.z);
        let t = qv.cross(v) * 2.0;
        v + t * self.w + qv.cross(t)
    }

    /// The rotation angle in `[0, π]`.
    pub fn angle(&self) -> f64 {
        2.0 * self.w.abs().min(1.0).acos()
    }

    /// Spherical linear interpolation from `self` (t = 0) to `other`
    /// (t = 1).
    pub fn slerp(&self, other: &Quaternion, t: f64) -> Quaternion {
        let mut cos_half =
            self.w * other.w + self.x * other.x + self.y * other.y + self.z * other.z;
        // Take the short way round the 4-sphere.
        let mut b = *other;
        if cos_half < 0.0 {
            cos_half = -cos_half;
            b = Quaternion {
                w: -b.w,
                x: -b.x,
                y: -b.y,
                z: -b.z,
            };
        }
        if cos_half > 0.9995 {
            // Nearly parallel: linear interpolation is accurate and avoids
            // division by a tiny sine.
            return Quaternion::new(
                self.w + t * (b.w - self.w),
                self.x + t * (b.x - self.x),
                self.y + t * (b.y - self.y),
                self.z + t * (b.z - self.z),
            );
        }
        let half = cos_half.min(1.0).acos();
        let sin_half = half.sin();
        let ra = ((1.0 - t) * half).sin() / sin_half;
        let rb = (t * half).sin() / sin_half;
        Quaternion::new(
            self.w * ra + b.w * rb,
            self.x * ra + b.x * rb,
            self.y * ra + b.y * rb,
            self.z * ra + b.z * rb,
        )
    }

    /// Squared norm; 1 for a well-formed unit quaternion.
    pub fn norm_squared(&self) -> f64 {
        self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z
    }
}

impl fmt::Display for Quaternion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(w={}, x={}, y={}, z={})",
            self.w, self.x, self.y, self.z
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn identity_rotates_nothing() {
        let q = Quaternion::identity();
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert!((q.rotate(v) - v).norm() < 1e-15);
    }

    #[test]
    fn axis_angle_quarter_turns() {
        let q = Quaternion::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert!((q.rotate(Vec3::X) - Vec3::Y).norm() < 1e-12);
        assert!((q.rotate(Vec3::Y) + Vec3::X).norm() < 1e-12);
        let q = Quaternion::from_axis_angle(Vec3::X, FRAC_PI_2);
        assert!((q.rotate(Vec3::Y) - Vec3::Z).norm() < 1e-12);
    }

    #[test]
    fn matrix_round_trip() {
        let cases = [
            Quaternion::from_axis_angle(Vec3::new(1.0, 2.0, 3.0), 0.7),
            Quaternion::from_axis_angle(Vec3::new(-1.0, 0.1, 0.5), 2.9),
            Quaternion::from_axis_angle(Vec3::X, PI - 1e-3),
            Quaternion::from_axis_angle(Vec3::Y, PI),
            Quaternion::identity(),
        ];
        for q in cases {
            let m = q.to_matrix();
            let q2 = Quaternion::from_matrix(&m);
            // q and -q encode the same rotation; compare matrices.
            let m2 = q2.to_matrix();
            assert!(
                (m - m2).frobenius_norm() < 1e-10,
                "round trip failed for {q}"
            );
        }
    }

    #[test]
    fn rotation_matrix_is_orthogonal() {
        let q = Quaternion::from_axis_angle(Vec3::new(0.3, -0.4, 0.86), 1.234);
        let m = q.to_matrix();
        let should_be_identity = m * m.transpose();
        assert!((should_be_identity - Mat3::identity()).frobenius_norm() < 1e-12);
        assert!((m.determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn composition_matches_matrix_product() {
        let a = Quaternion::from_axis_angle(Vec3::X, 0.5);
        let b = Quaternion::from_axis_angle(Vec3::Y, -0.8);
        let ab = a.mul(&b);
        let m = a.to_matrix() * b.to_matrix();
        assert!((ab.to_matrix() - m).frobenius_norm() < 1e-12);
    }

    #[test]
    fn conjugate_inverts() {
        let q = Quaternion::from_axis_angle(Vec3::new(1.0, 1.0, -1.0), 0.9);
        let v = Vec3::new(0.2, -0.5, 1.5);
        assert!((q.conjugate().rotate(q.rotate(v)) - v).norm() < 1e-12);
    }

    #[test]
    fn slerp_endpoints_and_midpoint() {
        let a = Quaternion::identity();
        let b = Quaternion::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert!((a.slerp(&b, 0.0).to_matrix() - a.to_matrix()).frobenius_norm() < 1e-10);
        assert!((a.slerp(&b, 1.0).to_matrix() - b.to_matrix()).frobenius_norm() < 1e-10);
        let mid = a.slerp(&b, 0.5);
        let expect = Quaternion::from_axis_angle(Vec3::Z, FRAC_PI_2 / 2.0);
        assert!((mid.to_matrix() - expect.to_matrix()).frobenius_norm() < 1e-10);
    }

    #[test]
    fn slerp_takes_short_path() {
        let a = Quaternion::from_axis_angle(Vec3::Z, 0.1);
        // Same rotation as -q.
        let b_pos = Quaternion::from_axis_angle(Vec3::Z, 0.3);
        let b_neg = Quaternion {
            w: -b_pos.w,
            x: -b_pos.x,
            y: -b_pos.y,
            z: -b_pos.z,
        };
        let m1 = a.slerp(&b_pos, 0.5).to_matrix();
        let m2 = a.slerp(&b_neg, 0.5).to_matrix();
        assert!((m1 - m2).frobenius_norm() < 1e-10);
    }

    #[test]
    fn angle_of_axis_angle() {
        let q = Quaternion::from_axis_angle(Vec3::Y, 0.77);
        assert!((q.angle() - 0.77).abs() < 1e-12);
    }

    #[test]
    fn zero_axis_gives_identity() {
        let q = Quaternion::from_axis_angle(Vec3::ZERO, 1.0);
        assert_eq!(q, Quaternion::identity());
        let q = Quaternion::from_rotation_vector(Vec3::ZERO);
        assert_eq!(q, Quaternion::identity());
    }
}
