//! Pinhole camera model.
//!
//! The TUM RGB-D benchmark cameras (Kinect fr1/fr2) are pinhole cameras with
//! per-sequence intrinsics; distortion is ignored here, consistent with the
//! paper's evaluation pipeline operating on pre-rectified images.

use crate::vector::{Vec2, Vec3};
use std::fmt;

/// Pinhole camera intrinsics.
///
/// Projects camera-frame 3-D points (Z forward) onto the image plane:
/// `u = fx * x / z + cx`, `v = fy * y / z + cy`.
///
/// # Examples
///
/// ```
/// use eslam_geometry::{PinholeCamera, Vec3};
/// let cam = PinholeCamera::tum_fr1();
/// let p = Vec3::new(0.0, 0.0, 2.0);
/// let uv = cam.project(p).unwrap();
/// assert!((uv.x - cam.cx).abs() < 1e-12);
/// let back = cam.unproject(uv, 2.0);
/// assert!((back - p).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinholeCamera {
    /// Focal length in pixels, horizontal.
    pub fx: f64,
    /// Focal length in pixels, vertical.
    pub fy: f64,
    /// Principal point, horizontal.
    pub cx: f64,
    /// Principal point, vertical.
    pub cy: f64,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

impl PinholeCamera {
    /// Creates a camera from intrinsics and image size.
    pub fn new(fx: f64, fy: f64, cx: f64, cy: f64, width: u32, height: u32) -> Self {
        PinholeCamera {
            fx,
            fy,
            cx,
            cy,
            width,
            height,
        }
    }

    /// Intrinsics of the TUM `freiburg1` Kinect (640×480).
    pub fn tum_fr1() -> Self {
        PinholeCamera::new(517.3, 516.5, 318.6, 255.3, 640, 480)
    }

    /// Intrinsics of the TUM `freiburg2` Kinect (640×480).
    pub fn tum_fr2() -> Self {
        PinholeCamera::new(520.9, 521.0, 325.1, 249.7, 640, 480)
    }

    /// Projects a camera-frame point to pixel coordinates.
    ///
    /// Returns `None` for points at or behind the camera plane
    /// (`z <= ~0`), since those have no valid image location.
    pub fn project(&self, p: Vec3) -> Option<Vec2> {
        if p.z <= 1e-9 {
            return None;
        }
        Some(Vec2::new(
            self.fx * p.x / p.z + self.cx,
            self.fy * p.y / p.z + self.cy,
        ))
    }

    /// Back-projects a pixel at a given depth to a camera-frame point.
    pub fn unproject(&self, uv: Vec2, depth: f64) -> Vec3 {
        Vec3::new(
            (uv.x - self.cx) * depth / self.fx,
            (uv.y - self.cy) * depth / self.fy,
            depth,
        )
    }

    /// The unit-depth bearing ray through pixel `uv`.
    pub fn bearing(&self, uv: Vec2) -> Vec3 {
        self.unproject(uv, 1.0)
    }

    /// Whether a pixel lies inside the image bounds (with an optional
    /// border margin in pixels).
    pub fn in_bounds(&self, uv: Vec2, margin: f64) -> bool {
        uv.x >= margin
            && uv.y >= margin
            && uv.x < self.width as f64 - margin
            && uv.y < self.height as f64 - margin
    }

    /// Returns the camera scaled for a pyramid level (image shrunk by
    /// `1 / scale`): focal lengths and principal point divide by `scale`.
    pub fn scaled(&self, scale: f64) -> PinholeCamera {
        PinholeCamera {
            fx: self.fx / scale,
            fy: self.fy / scale,
            cx: self.cx / scale,
            cy: self.cy / scale,
            width: (self.width as f64 / scale).round() as u32,
            height: (self.height as f64 / scale).round() as u32,
        }
    }
}

impl fmt::Display for PinholeCamera {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pinhole {}x{} fx={} fy={} cx={} cy={}",
            self.width, self.height, self.fx, self.fy, self.cx, self.cy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_unproject_round_trip() {
        let cam = PinholeCamera::tum_fr1();
        let p = Vec3::new(0.3, -0.2, 1.7);
        let uv = cam.project(p).unwrap();
        let back = cam.unproject(uv, p.z);
        assert!((back - p).norm() < 1e-12);
    }

    #[test]
    fn principal_point_is_optical_axis() {
        let cam = PinholeCamera::tum_fr2();
        let uv = cam.project(Vec3::new(0.0, 0.0, 3.0)).unwrap();
        assert!((uv.x - cam.cx).abs() < 1e-12);
        assert!((uv.y - cam.cy).abs() < 1e-12);
    }

    #[test]
    fn behind_camera_rejected() {
        let cam = PinholeCamera::tum_fr1();
        assert!(cam.project(Vec3::new(0.0, 0.0, -1.0)).is_none());
        assert!(cam.project(Vec3::new(0.1, 0.1, 0.0)).is_none());
    }

    #[test]
    fn bounds_check() {
        let cam = PinholeCamera::tum_fr1();
        assert!(cam.in_bounds(Vec2::new(0.0, 0.0), 0.0));
        assert!(!cam.in_bounds(Vec2::new(-1.0, 5.0), 0.0));
        assert!(!cam.in_bounds(Vec2::new(640.0, 5.0), 0.0));
        assert!(!cam.in_bounds(Vec2::new(630.0, 470.0), 20.0));
        assert!(cam.in_bounds(Vec2::new(320.0, 240.0), 30.0));
    }

    #[test]
    fn scaled_camera_projects_consistently() {
        let cam = PinholeCamera::tum_fr1();
        let half = cam.scaled(2.0);
        let p = Vec3::new(0.5, 0.25, 2.0);
        let uv = cam.project(p).unwrap();
        let uv_half = half.project(p).unwrap();
        assert!((uv_half.x - uv.x / 2.0).abs() < 1e-12);
        assert!((uv_half.y - uv.y / 2.0).abs() < 1e-12);
        assert_eq!(half.width, 320);
        assert_eq!(half.height, 240);
    }

    #[test]
    fn bearing_has_unit_depth() {
        let cam = PinholeCamera::tum_fr1();
        let b = cam.bearing(Vec2::new(100.0, 200.0));
        assert_eq!(b.z, 1.0);
    }
}
