//! Closed-form rigid alignment of 3-D point sets (Kabsch / Horn / Umeyama).
//!
//! Used in three places:
//! * the minimal 3-point step inside the P3P solver ([`crate::pnp`]);
//! * absolute-trajectory-error (ATE) evaluation, which aligns the estimated
//!   trajectory to ground truth before measuring residuals (the metric of
//!   Fig. 8 of the paper);
//! * map bootstrap sanity checks.

use crate::matrix::Mat3;
use crate::se3::Se3;
use crate::vector::Vec3;

/// Result of aligning point set `source` onto `target`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alignment {
    /// The rigid transform such that `transform(source[i]) ≈ target[i]`.
    pub transform: Se3,
    /// Uniform scale (1.0 unless scale estimation was requested).
    pub scale: f64,
    /// Root-mean-square residual after alignment.
    pub rmse: f64,
}

/// Computes the rigid transform (rotation + translation) that best maps
/// `source` onto `target` in the least-squares sense (Kabsch algorithm).
///
/// Returns `None` if fewer than 3 point pairs are given, the slices differ
/// in length, or the configuration is fully degenerate (all points
/// coincident).
///
/// # Examples
///
/// ```
/// use eslam_geometry::{align::align_rigid, Se3, Vec3};
/// let src = [Vec3::new(0.0,0.0,0.0), Vec3::new(1.0,0.0,0.0), Vec3::new(0.0,1.0,0.0)];
/// let t = Se3::from_translation(Vec3::new(5.0, -1.0, 2.0));
/// let dst: Vec<Vec3> = src.iter().map(|&p| t.transform(p)).collect();
/// let result = align_rigid(&src, &dst).unwrap();
/// assert!(result.rmse < 1e-12);
/// ```
pub fn align_rigid(source: &[Vec3], target: &[Vec3]) -> Option<Alignment> {
    align_impl(source, target, false)
}

/// Like [`align_rigid`] but also estimates a uniform scale (Umeyama's
/// method), producing a similarity transform `target ≈ s·R·source + t`.
///
/// Returns `None` under the same conditions as [`align_rigid`], or when the
/// source variance is numerically zero.
pub fn align_similarity(source: &[Vec3], target: &[Vec3]) -> Option<Alignment> {
    align_impl(source, target, true)
}

fn align_impl(source: &[Vec3], target: &[Vec3], with_scale: bool) -> Option<Alignment> {
    if source.len() != target.len() || source.len() < 3 {
        return None;
    }
    let n = source.len() as f64;
    let src_centroid = source.iter().fold(Vec3::ZERO, |a, &p| a + p) / n;
    let dst_centroid = target.iter().fold(Vec3::ZERO, |a, &p| a + p) / n;

    // Cross-covariance H = Σ (p−p̄)(q−q̄)ᵀ and source variance.
    let mut h = Mat3::zeros();
    let mut src_var = 0.0;
    for (p, q) in source.iter().zip(target) {
        let dp = *p - src_centroid;
        let dq = *q - dst_centroid;
        h = h + Mat3::outer(dp, dq);
        src_var += dp.norm_squared();
    }

    let r = rotation_from_cross_covariance(&h)?;

    let scale = if with_scale {
        if src_var < 1e-300 {
            return None;
        }
        // Umeyama: s = Σ σᵢ dᵢ / Var(src); equivalently trace(D S) with the
        // reflection handled inside `rotation_from_cross_covariance`. We
        // compute it directly from the projected covariance.
        let mut num = 0.0;
        for (p, q) in source.iter().zip(target) {
            let dp = *p - src_centroid;
            let dq = *q - dst_centroid;
            num += dq.dot(r * dp);
        }
        num / src_var
    } else {
        1.0
    };

    let translation = dst_centroid - (r * src_centroid) * scale;
    let transform = Se3::new(r, translation);

    let mut sq_sum = 0.0;
    for (p, q) in source.iter().zip(target) {
        let mapped = (r * *p) * scale + translation;
        sq_sum += (mapped - *q).norm_squared();
    }
    Some(Alignment {
        transform,
        scale,
        rmse: (sq_sum / n).sqrt(),
    })
}

/// Extracts the optimal rotation from a cross-covariance matrix via the
/// eigen-decomposition of `HᵀH` (an SVD in disguise), handling the
/// rank-deficient (coplanar points) and reflection cases.
fn rotation_from_cross_covariance(h: &Mat3) -> Option<Mat3> {
    let hth = h.transpose() * *h;
    let (eigvals, v) = hth.symmetric_eigen();
    let sigma = Vec3::new(
        eigvals.x.max(0.0).sqrt(),
        eigvals.y.max(0.0).sqrt(),
        eigvals.z.max(0.0).sqrt(),
    );
    // Rank < 2 (collinear or coincident points) leaves the rotation
    // undetermined. The relative tolerance is loose on purpose: near-rank-2
    // configurations (any 3-point sample is exactly coplanar) produce a
    // third singular direction that is pure noise.
    let tol = 1e-7 * sigma.x;
    // NaN-safe positivity check (σ may be NaN on degenerate input).
    let x_positive = matches!(sigma.x.partial_cmp(&0.0), Some(std::cmp::Ordering::Greater));
    if !x_positive || sigma.y <= tol {
        return None;
    }

    // U columns for the two dominant singular directions: uᵢ = H vᵢ / σᵢ.
    // The third direction is always rebuilt as the right-handed completion;
    // the determinant correction D below absorbs its sign, which is exactly
    // the Kabsch rule of flipping the smallest singular direction when the
    // best orthogonal map would be a reflection.
    let u0 = ((*h * v.col(0)) / sigma.x).normalized()?;
    let u1_raw = (*h * v.col(1)) / sigma.y;
    let u1 = (u1_raw - u0 * u0.dot(u1_raw)).normalized()?;
    let u2 = u0.cross(u1);
    let u = Mat3::from_cols(u0, u1, u2);
    // Minimizing Σ‖R dp − dq‖² maximizes trace(H R) with H = Σ dp dqᵀ.
    // Writing H = U Σ Vᵀ, the maximizer is R = V D Uᵀ, where
    // D = diag(1, 1, det(V Uᵀ)) guards against reflections.
    let det = (v * u.transpose()).determinant();
    let d = Mat3::from_diagonal(Vec3::new(1.0, 1.0, det.signum()));
    Some(v * d * u.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quaternion::Quaternion;

    fn cloud(n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Vec3::new(
                    (t * 0.7).sin() * 2.0,
                    (t * 1.3).cos() * 1.5,
                    (t * 0.31).sin() * (t * 0.17).cos() * 3.0,
                )
            })
            .collect()
    }

    #[test]
    fn recovers_pure_translation() {
        let src = cloud(10);
        let t = Se3::from_translation(Vec3::new(1.0, -2.0, 0.5));
        let dst: Vec<Vec3> = src.iter().map(|&p| t.transform(p)).collect();
        let a = align_rigid(&src, &dst).unwrap();
        assert!(a.rmse < 1e-10);
        assert!((a.transform.translation - t.translation).norm() < 1e-10);
        assert!((a.transform.rotation - Mat3::identity()).frobenius_norm() < 1e-10);
    }

    #[test]
    fn recovers_general_rigid_transform() {
        let src = cloud(25);
        let q = Quaternion::from_axis_angle(Vec3::new(1.0, 2.0, -0.5), 1.1);
        let t = Se3::from_quaternion_translation(&q, Vec3::new(-3.0, 0.7, 2.2));
        let dst: Vec<Vec3> = src.iter().map(|&p| t.transform(p)).collect();
        let a = align_rigid(&src, &dst).unwrap();
        assert!(a.rmse < 1e-10, "rmse {}", a.rmse);
        assert!((a.transform.rotation - t.rotation).frobenius_norm() < 1e-9);
        assert!((a.transform.translation - t.translation).norm() < 1e-9);
    }

    #[test]
    fn minimal_three_points() {
        let src = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 2.0, 0.0),
        ];
        let q = Quaternion::from_axis_angle(Vec3::Z, 0.3);
        let t = Se3::from_quaternion_translation(&q, Vec3::new(0.1, 0.2, 0.3));
        let dst: Vec<Vec3> = src.iter().map(|&p| t.transform(p)).collect();
        let a = align_rigid(&src, &dst).unwrap();
        assert!(a.rmse < 1e-10);
        assert!((a.transform.rotation - t.rotation).frobenius_norm() < 1e-9);
    }

    #[test]
    fn coplanar_points_still_work() {
        // All points in the z=0 plane (rank-2 covariance).
        let src: Vec<Vec3> = (0..12)
            .map(|i| Vec3::new((i as f64 * 0.9).sin(), (i as f64 * 0.4).cos(), 0.0))
            .collect();
        let q = Quaternion::from_axis_angle(Vec3::new(0.2, 1.0, 0.1), 0.8);
        let t = Se3::from_quaternion_translation(&q, Vec3::new(1.0, 1.0, 1.0));
        let dst: Vec<Vec3> = src.iter().map(|&p| t.transform(p)).collect();
        let a = align_rigid(&src, &dst).unwrap();
        assert!(a.rmse < 1e-9, "rmse {}", a.rmse);
        assert!((a.transform.rotation.determinant() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn collinear_points_rejected() {
        let src: Vec<Vec3> = (0..5).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        let dst = src.clone();
        assert!(align_rigid(&src, &dst).is_none());
    }

    #[test]
    fn coincident_points_rejected() {
        let src = vec![Vec3::splat(1.0); 4];
        let dst = vec![Vec3::splat(2.0); 4];
        assert!(align_rigid(&src, &dst).is_none());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let src = cloud(5);
        let dst = cloud(6);
        assert!(align_rigid(&src, &dst).is_none());
    }

    #[test]
    fn similarity_recovers_scale() {
        let src = cloud(15);
        let q = Quaternion::from_axis_angle(Vec3::Y, -0.6);
        let scale = 2.5;
        let trans = Vec3::new(0.3, -0.8, 1.4);
        let dst: Vec<Vec3> = src.iter().map(|&p| q.rotate(p) * scale + trans).collect();
        let a = align_similarity(&src, &dst).unwrap();
        assert!((a.scale - scale).abs() < 1e-9, "scale {}", a.scale);
        assert!(a.rmse < 1e-9);
    }

    #[test]
    fn rigid_alignment_with_noise_has_small_rmse() {
        let src = cloud(50);
        let t = Se3::from_quaternion_translation(
            &Quaternion::from_axis_angle(Vec3::X, 0.4),
            Vec3::new(2.0, 0.0, -1.0),
        );
        let dst: Vec<Vec3> = src
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let noise = Vec3::new(
                    ((i * 37) % 11) as f64 / 11.0 - 0.5,
                    ((i * 53) % 13) as f64 / 13.0 - 0.5,
                    ((i * 71) % 7) as f64 / 7.0 - 0.5,
                ) * 0.02;
                t.transform(p) + noise
            })
            .collect();
        let a = align_rigid(&src, &dst).unwrap();
        assert!(a.rmse < 0.02);
        assert!((a.transform.translation - t.translation).norm() < 0.02);
    }

    #[test]
    fn reflection_is_never_returned() {
        // A configuration that would tempt a naive solver into a reflection:
        // target is source mirrored. Best proper rotation still has det +1.
        let src = cloud(8);
        let dst: Vec<Vec3> = src.iter().map(|p| Vec3::new(-p.x, p.y, p.z)).collect();
        let a = align_rigid(&src, &dst).unwrap();
        assert!((a.transform.rotation.determinant() - 1.0).abs() < 1e-9);
    }
}
