//! Fixed-size 2- and 3-dimensional vectors over `f64`.
//!
//! These are the workhorse types for pixel coordinates ([`Vec2`]) and
//! world/camera points ([`Vec3`]). They are deliberately small, `Copy`, and
//! implement the arithmetic operators one expects from a maths library.

use std::fmt;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 2-dimensional vector, typically an image-plane point in pixels.
///
/// # Examples
///
/// ```
/// use eslam_geometry::Vec2;
/// let a = Vec2::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component (image column direction).
    pub x: f64,
    /// Vertical component (image row direction).
    pub y: f64,
}

/// A 3-dimensional vector, typically a point in camera or world coordinates
/// (metres).
///
/// # Examples
///
/// ```
/// use eslam_geometry::Vec3;
/// let v = Vec3::new(1.0, 0.0, 0.0).cross(Vec3::new(0.0, 1.0, 0.0));
/// assert_eq!(v, Vec3::new(0.0, 0.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component (optical axis for camera frames).
    pub z: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its two components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Returns the unit vector pointing in the same direction, or `None`
    /// for (numerically) zero-length vectors.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along X.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along Y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along Z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from its three components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product `self × other`.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Returns the unit vector pointing in the same direction, or `None`
    /// for (numerically) zero-length vectors.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise multiplication.
    #[inline]
    pub fn component_mul(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x * other.x, self.y * other.y, self.z * other.z)
    }

    /// The first two components as a [`Vec2`] (drops `z`).
    #[inline]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Perspective division: `(x/z, y/z)`.
    ///
    /// Returns `None` when `z` is (numerically) zero.
    pub fn project(self) -> Option<Vec2> {
        if self.z.abs() <= f64::EPSILON {
            None
        } else {
            Some(Vec2::new(self.x / self.z, self.y / self.z))
        }
    }

    /// The components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f64; 2]> for Vec2 {
    fn from(a: [f64; 2]) -> Self {
        Vec2::new(a[0], a[1])
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec2> for [f64; 2] {
    fn from(v: Vec2) -> Self {
        [v.x, v.y]
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    /// # Panics
    /// Panics if `i >= 3`.
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

macro_rules! impl_vec_ops {
    ($t:ty, $($field:ident),+) => {
        impl Add for $t {
            type Output = $t;
            #[inline]
            fn add(self, rhs: $t) -> $t {
                Self { $($field: self.$field + rhs.$field),+ }
            }
        }
        impl Sub for $t {
            type Output = $t;
            #[inline]
            fn sub(self, rhs: $t) -> $t {
                Self { $($field: self.$field - rhs.$field),+ }
            }
        }
        impl Neg for $t {
            type Output = $t;
            #[inline]
            fn neg(self) -> $t {
                Self { $($field: -self.$field),+ }
            }
        }
        impl Mul<f64> for $t {
            type Output = $t;
            #[inline]
            fn mul(self, s: f64) -> $t {
                Self { $($field: self.$field * s),+ }
            }
        }
        impl Mul<$t> for f64 {
            type Output = $t;
            #[inline]
            fn mul(self, v: $t) -> $t {
                v * self
            }
        }
        impl Div<f64> for $t {
            type Output = $t;
            #[inline]
            fn div(self, s: f64) -> $t {
                Self { $($field: self.$field / s),+ }
            }
        }
        impl AddAssign for $t {
            #[inline]
            fn add_assign(&mut self, rhs: $t) {
                $(self.$field += rhs.$field;)+
            }
        }
        impl SubAssign for $t {
            #[inline]
            fn sub_assign(&mut self, rhs: $t) {
                $(self.$field -= rhs.$field;)+
            }
        }
        impl MulAssign<f64> for $t {
            #[inline]
            fn mul_assign(&mut self, s: f64) {
                $(self.$field *= s;)+
            }
        }
        impl DivAssign<f64> for $t {
            #[inline]
            fn div_assign(&mut self, s: f64) {
                $(self.$field /= s;)+
            }
        }
    };
}

impl_vec_ops!(Vec2, x, y);
impl_vec_ops!(Vec3, x, y, z);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn vec2_dot_and_norm() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.dot(a), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_squared(), 25.0);
        let u = a.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn vec3_basis_cross_products() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn vec3_projection() {
        let p = Vec3::new(2.0, 4.0, 2.0);
        assert_eq!(p.project().unwrap(), Vec2::new(1.0, 2.0));
        assert!(Vec3::new(1.0, 1.0, 0.0).project().is_none());
    }

    #[test]
    fn vec3_indexing() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        v[2] = 9.0;
        assert_eq!(v.z, 9.0);
    }

    #[test]
    #[should_panic]
    fn vec3_index_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn conversions_round_trip() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let a: [f64; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
        let w = Vec2::new(5.0, 6.0);
        let b: [f64; 2] = w.into();
        assert_eq!(Vec2::from(b), w);
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::splat(1.0);
        assert_eq!(v, Vec3::splat(2.0));
        v -= Vec3::splat(0.5);
        assert_eq!(v, Vec3::splat(1.5));
        v *= 2.0;
        assert_eq!(v, Vec3::splat(3.0));
        v /= 3.0;
        assert_eq!(v, Vec3::splat(1.0));
    }
}
