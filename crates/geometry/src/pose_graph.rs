//! Pose-graph optimization over SE(3): the loop-closure solver.
//!
//! Where [`crate::ba`] jointly refines poses *and* landmarks of a small
//! window against pixel observations, the pose graph is the global,
//! structure-free counterpart: nodes are keyframe poses, edges are
//! **relative-pose measurements**
//!
//! ```text
//! E = Σ_(i,j) w_ij ρ(‖log(Z_ij⁻¹ ∘ T_j ∘ T_i⁻¹)‖)
//! ```
//!
//! with `Z_ij` the measured transform taking pose `i` to pose `j`
//! (`T_j ∘ T_i⁻¹` at measurement time). Odometry/covisibility edges
//! encode the trajectory as tracked; a single verified loop edge pulls
//! the two ends of the loop together, and the solver distributes the
//! accumulated drift over the whole chain — the classic loop-closure
//! correction.
//!
//! The machinery generalizes the bundle adjuster's: 6×6 blocks
//! accumulated into dense normal equations, scale-aware
//! Levenberg-Marquardt damping, left-multiplicative SE(3) retraction,
//! and the shared deterministic Cholesky
//! ([`crate::matrix::cholesky_solve_dense`]). Jacobians of the
//! `log`-residual are taken by central differences — exact enough at
//! the 1e-6 step for quadratic convergence on these smooth residuals,
//! and structurally simpler than the nested right-Jacobian expansions;
//! the fixed evaluation order keeps the solve bit-deterministic, which
//! the SLAM backend's sync/async equivalence relies on.

use crate::matrix::{cholesky_solve_dense, Vec6};
use crate::robust::{huber_weight, robust_cost};
use crate::se3::Se3;

/// One relative-pose constraint between two graph nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoseGraphEdge {
    /// Index of the source pose `i`.
    pub from: usize,
    /// Index of the target pose `j`.
    pub to: usize,
    /// Measured relative transform `Z_ij = T_j ∘ T_i⁻¹` (world-to-camera
    /// convention on both sides) at measurement time.
    pub measured: Se3,
    /// Information scale of the edge (multiplies its squared residual).
    pub weight: f64,
}

impl PoseGraphEdge {
    /// Builds an edge whose measurement is the *current* relative pose
    /// of `poses[from]` → `poses[to]` — how odometry and covisibility
    /// edges are snapshotted before a loop edge is added.
    pub fn from_current(poses: &[Se3], from: usize, to: usize, weight: f64) -> PoseGraphEdge {
        PoseGraphEdge {
            from,
            to,
            measured: poses[to].compose(&poses[from].inverse()),
            weight,
        }
    }
}

/// Parameters of the pose-graph solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoseGraphParams {
    /// Maximum number of accepted LM iterations.
    pub max_iterations: usize,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Multiplicative λ increase on a rejected step.
    pub lambda_up: f64,
    /// Multiplicative λ decrease on an accepted step.
    pub lambda_down: f64,
    /// Convergence threshold on the update norm ‖δ‖.
    pub min_step_norm: f64,
    /// Convergence threshold on the relative cost decrease.
    pub min_cost_decrease: f64,
    /// Huber width on the residual norm (tangent-space units); `None`
    /// disables the robust kernel.
    pub huber_delta: Option<f64>,
}

impl Default for PoseGraphParams {
    fn default() -> Self {
        PoseGraphParams {
            max_iterations: 20,
            initial_lambda: 1e-6,
            lambda_up: 10.0,
            lambda_down: 0.5,
            min_step_norm: 1e-12,
            min_cost_decrease: 1e-10,
            // Odometry edges sit at zero residual when the graph is
            // built from the tracked trajectory; the kernel mainly
            // bounds the influence of a bad loop edge.
            huber_delta: Some(1.0),
        }
    }
}

/// Outcome of a pose-graph optimization (poses refined in place).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoseGraphResult {
    /// Cost before any update.
    pub initial_cost: f64,
    /// Final cost.
    pub final_cost: f64,
    /// Number of accepted LM iterations.
    pub iterations: usize,
    /// Whether the run terminated by convergence rather than the cap.
    pub converged: bool,
}

/// Residual of one edge at the current poses:
/// `log(Z⁻¹ ∘ T_to ∘ T_from⁻¹)`.
fn edge_residual(edge: &PoseGraphEdge, from: &Se3, to: &Se3) -> Vec6 {
    edge.measured
        .inverse()
        .compose(&to.compose(&from.inverse()))
        .log()
}

/// Total robustified cost of a configuration.
fn evaluate_cost(poses: &[Se3], edges: &[PoseGraphEdge], huber: Option<f64>) -> f64 {
    let mut cost = 0.0;
    for edge in edges {
        let r = edge_residual(edge, &poses[edge.from], &poses[edge.to]);
        cost += edge.weight * robust_cost(r.norm(), huber);
    }
    cost
}

/// Central-difference step for the numeric Jacobians. The `log`
/// residual is smooth and O(1)-scaled, so 1e-6 balances truncation
/// against cancellation at f64 precision.
const JACOBIAN_EPS: f64 = 1e-6;

/// Numeric Jacobian of an edge residual w.r.t. the left-multiplicative
/// perturbations of its two endpoint poses: a 6×12 block,
/// columns 0..6 = ∂r/∂δ_from, columns 6..12 = ∂r/∂δ_to.
fn edge_jacobian(edge: &PoseGraphEdge, from: &Se3, to: &Se3) -> [[f64; 12]; 6] {
    let mut j = [[0.0f64; 12]; 6];
    let mut delta = Vec6::zeros();
    for c in 0..6 {
        delta[c] = JACOBIAN_EPS;
        let plus_from = edge_residual(edge, &from.retract(&delta), to);
        let plus_to = edge_residual(edge, from, &to.retract(&delta));
        delta[c] = -JACOBIAN_EPS;
        let minus_from = edge_residual(edge, &from.retract(&delta), to);
        let minus_to = edge_residual(edge, from, &to.retract(&delta));
        delta[c] = 0.0;
        for (row, jr) in j.iter_mut().enumerate() {
            jr[c] = (plus_from[row] - minus_from[row]) / (2.0 * JACOBIAN_EPS);
            jr[6 + c] = (plus_to[row] - minus_to[row]) / (2.0 * JACOBIAN_EPS);
        }
    }
    j
}

/// Optimizes `poses` (world-to-camera) in place to minimize the total
/// robustified relative-pose error of `edges` with dense 6×6-block
/// Levenberg-Marquardt.
///
/// * `fixed[i]` holds pose `i` constant (fix at least one pose — the
///   problem is gauge-free otherwise and the damped solver will merely
///   stay near the initial values).
/// * Edges whose endpoints are both fixed contribute cost but no
///   derivatives. Self-edges (`from == to`) are rejected.
///
/// Degenerate inputs (no free poses, or no edges) return immediately.
///
/// # Panics
/// Panics if slice lengths disagree, an edge endpoint is out of range,
/// or an edge is a self-loop.
///
/// # Examples
///
/// ```
/// use eslam_geometry::pose_graph::{optimize_pose_graph, PoseGraphEdge, PoseGraphParams};
/// use eslam_geometry::{Se3, Vec3};
/// // A 3-pose chain whose middle pose drifted; the edges remember the
/// // true relative steps, so optimization pulls it back.
/// let truth: Vec<Se3> = (0..3)
///     .map(|i| Se3::from_translation(Vec3::new(i as f64 * 0.1, 0.0, 0.0)))
///     .collect();
/// let edges: Vec<PoseGraphEdge> = (0..2)
///     .map(|i| PoseGraphEdge::from_current(&truth, i, i + 1, 1.0))
///     .collect();
/// let mut poses = truth.clone();
/// poses[1] = Se3::from_translation(Vec3::new(0.13, 0.02, 0.0));
/// let result = optimize_pose_graph(&mut poses, &edges, &[true, false, true],
///                                  &PoseGraphParams::default());
/// assert!(result.final_cost < 1e-12);
/// assert!((poses[1].translation - truth[1].translation).norm() < 1e-6);
/// ```
pub fn optimize_pose_graph(
    poses: &mut [Se3],
    edges: &[PoseGraphEdge],
    fixed: &[bool],
    params: &PoseGraphParams,
) -> PoseGraphResult {
    assert_eq!(poses.len(), fixed.len(), "pose/fixed length mismatch");
    for edge in edges {
        assert!(
            edge.from < poses.len() && edge.to < poses.len(),
            "edge endpoint out of range"
        );
        assert_ne!(edge.from, edge.to, "self-edges are not constraints");
    }

    // Free-slot layout, exactly like the bundle adjuster's.
    let mut slot = vec![usize::MAX; poses.len()];
    let mut free = 0usize;
    for (i, f) in fixed.iter().enumerate() {
        if !f {
            slot[i] = free;
            free += 1;
        }
    }
    let initial_cost = evaluate_cost(poses, edges, params.huber_delta);
    if free == 0 || edges.is_empty() {
        return PoseGraphResult {
            initial_cost,
            final_cost: initial_cost,
            iterations: 0,
            converged: true,
        };
    }

    let n = free * 6;
    let mut cost = initial_cost;
    let mut lambda = params.initial_lambda;
    let mut iterations = 0;
    let mut converged = false;
    let mut attempts = 0;

    while iterations < params.max_iterations && attempts < params.max_iterations * 4 {
        attempts += 1;
        // Accumulate the dense normal equations H δ = −b over all
        // edges (6×6 blocks at (from,from), (from,to), (to,from),
        // (to,to) of the free-slot grid).
        let mut h = vec![0.0f64; n * n];
        let mut b = vec![0.0f64; n];
        for edge in edges {
            let (sf, st) = (slot[edge.from], slot[edge.to]);
            if sf == usize::MAX && st == usize::MAX {
                continue;
            }
            let r = edge_residual(edge, &poses[edge.from], &poses[edge.to]);
            let w = edge.weight * huber_weight(r.norm(), params.huber_delta);
            let j = edge_jacobian(edge, &poses[edge.from], &poses[edge.to]);
            // Column offsets of the two endpoint blocks in the global
            // system (usize::MAX = fixed, skipped).
            let offsets = [sf, st];
            for (bi, &oi) in offsets.iter().enumerate() {
                if oi == usize::MAX {
                    continue;
                }
                for a in 0..6 {
                    let ja = |row: usize| j[row][bi * 6 + a];
                    // Gradient bᵀ += w Jᵀ r.
                    b[oi * 6 + a] += w * (0..6).map(|row| ja(row) * r[row]).sum::<f64>();
                    for (bj, &oj) in offsets.iter().enumerate() {
                        if oj == usize::MAX {
                            continue;
                        }
                        for c in 0..6 {
                            let v: f64 = (0..6).map(|row| ja(row) * j[row][bj * 6 + c]).sum();
                            h[(oi * 6 + a) * n + oj * 6 + c] += w * v;
                        }
                    }
                }
            }
        }
        // Scale-aware additive damping (identical policy to ba).
        let mut damped = h.clone();
        let mut rhs = vec![0.0f64; n];
        for i in 0..n {
            damped[i * n + i] += lambda * (1.0 + damped[i * n + i].abs());
            rhs[i] = -b[i];
        }
        let Some(delta) = cholesky_solve_dense(&damped, &rhs, n) else {
            lambda *= params.lambda_up;
            continue;
        };
        let step_norm = delta.iter().map(|d| d * d).sum::<f64>().sqrt();

        // Candidate retraction.
        let mut candidate: Vec<Se3> = poses.to_vec();
        for (i, &s) in slot.iter().enumerate() {
            if s == usize::MAX {
                continue;
            }
            let mut xi = Vec6::zeros();
            for a in 0..6 {
                xi[a] = delta[s * 6 + a];
            }
            candidate[i] = poses[i].retract(&xi);
            candidate[i].orthonormalize();
        }
        let new_cost = evaluate_cost(&candidate, edges, params.huber_delta);
        if new_cost < cost {
            poses.copy_from_slice(&candidate);
            let decrease = (cost - new_cost) / cost.max(1e-300);
            cost = new_cost;
            iterations += 1;
            lambda = (lambda * params.lambda_down).max(1e-12);
            if step_norm < params.min_step_norm || decrease < params.min_cost_decrease {
                converged = true;
                break;
            }
        } else {
            lambda *= params.lambda_up;
            if step_norm < params.min_step_norm {
                converged = true;
                break;
            }
        }
    }

    PoseGraphResult {
        initial_cost,
        final_cost: cost,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Vec3;

    /// A circular ground-truth trajectory of `n` poses (world-to-camera).
    fn circle_truth(n: usize) -> Vec<Se3> {
        (0..n)
            .map(|i| {
                let angle = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                let position = Vec3::new(angle.cos(), 0.0, angle.sin());
                let rotation = Se3::so3_exp(Vec3::Y * -angle);
                Se3::new(rotation, position).inverse()
            })
            .collect()
    }

    /// Drifts `truth` by compounding a small constant error on every
    /// step — the odometry-drift model (first pose exact).
    fn drifted(truth: &[Se3]) -> Vec<Se3> {
        let creep = Se3::from_translation(Vec3::new(0.004, -0.002, 0.006));
        let mut out = vec![truth[0]];
        for i in 1..truth.len() {
            let step = truth[i].compose(&truth[i - 1].inverse());
            let prev = out[i - 1];
            out.push(creep.compose(&step).compose(&prev));
        }
        out
    }

    #[test]
    fn chain_with_loop_edge_recovers_drift() {
        let truth = circle_truth(12);
        let mut poses = drifted(&truth);
        // Odometry edges from the *drifted* chain (they are satisfied
        // exactly at start) + one loop edge carrying the true relative
        // pose between the ends.
        let mut edges: Vec<PoseGraphEdge> = (0..11)
            .map(|i| PoseGraphEdge::from_current(&poses, i, i + 1, 1.0))
            .collect();
        edges.push(PoseGraphEdge {
            from: 11,
            to: 0,
            measured: truth[0].compose(&truth[11].inverse()),
            weight: 1.0,
        });
        let node_error = |poses: &[Se3], k: usize| {
            (poses[k].inverse().translation - truth[k].inverse().translation).norm()
        };
        let before: f64 = (0..12).map(|k| node_error(&poses, k)).sum();
        let end_before = node_error(&poses, 11);
        let mut fixed = vec![false; 12];
        fixed[0] = true;
        let result = optimize_pose_graph(&mut poses, &edges, &fixed, &PoseGraphParams::default());
        assert!(result.final_cost < result.initial_cost * 0.05, "{result:?}");
        let after: f64 = (0..12).map(|k| node_error(&poses, k)).sum();
        // The loop edge cannot recover truth exactly (the drift is
        // *redistributed* over the chain, not deleted — the middle
        // keeps part of it), but the total error must shrink and the
        // loop end, which the closure constrains directly, must snap
        // back by an order of magnitude.
        assert!(
            after < before * 0.85,
            "total drift should shrink: {before:.4} -> {after:.4}"
        );
        let end_after = node_error(&poses, 11);
        assert!(
            end_after < end_before * 0.1,
            "loop-end drift should collapse: {end_before:.4} -> {end_after:.4}"
        );
        // The two loop ends actually meet the measured constraint.
        let r = edge_residual(&edges[11], &poses[11], &poses[0]);
        assert!(r.norm() < 0.02, "loop residual {}", r.norm());
    }

    #[test]
    fn satisfied_graph_is_a_fixed_point() {
        let truth = circle_truth(8);
        let mut poses = truth.clone();
        let edges: Vec<PoseGraphEdge> = (0..7)
            .map(|i| PoseGraphEdge::from_current(&poses, i, i + 1, 1.0))
            .collect();
        let mut fixed = vec![false; 8];
        fixed[0] = true;
        let result = optimize_pose_graph(&mut poses, &edges, &fixed, &PoseGraphParams::default());
        assert!(result.initial_cost < 1e-18);
        assert!(result.final_cost <= result.initial_cost);
        for (p, t) in poses.iter().zip(&truth) {
            assert!((p.translation - t.translation).norm() < 1e-9);
        }
    }

    #[test]
    fn fixed_poses_do_not_move() {
        let truth = circle_truth(6);
        let mut poses = drifted(&truth);
        let held = poses[3];
        let mut edges: Vec<PoseGraphEdge> = (0..5)
            .map(|i| PoseGraphEdge::from_current(&poses, i, i + 1, 1.0))
            .collect();
        edges.push(PoseGraphEdge {
            from: 5,
            to: 0,
            measured: truth[0].compose(&truth[5].inverse()),
            weight: 1.0,
        });
        let fixed = [true, false, false, true, false, false];
        optimize_pose_graph(&mut poses, &edges, &fixed, &PoseGraphParams::default());
        assert_eq!(poses[3], held);
        assert_eq!(poses[0], drifted(&truth)[0]);
    }

    #[test]
    fn degenerate_inputs_return_immediately() {
        let mut poses = vec![Se3::identity(); 3];
        let r = optimize_pose_graph(
            &mut poses,
            &[],
            &[true, false, false],
            &PoseGraphParams::default(),
        );
        assert_eq!(r.iterations, 0);
        assert!(r.converged);
        let edges = [PoseGraphEdge::from_current(&poses, 0, 1, 1.0)];
        let r = optimize_pose_graph(
            &mut poses,
            &edges,
            &[true, true, true],
            &PoseGraphParams::default(),
        );
        assert_eq!(r.iterations, 0);
    }

    #[test]
    #[should_panic(expected = "self-edges")]
    fn self_edges_rejected() {
        let mut poses = vec![Se3::identity(); 2];
        let edges = [PoseGraphEdge {
            from: 1,
            to: 1,
            measured: Se3::identity(),
            weight: 1.0,
        }];
        optimize_pose_graph(
            &mut poses,
            &edges,
            &[true, false],
            &PoseGraphParams::default(),
        );
    }

    #[test]
    fn numeric_jacobian_matches_finite_ratio() {
        // Directional-derivative check: r(retract(tv)) − r ≈ t·J v.
        let truth = circle_truth(5);
        let edge = PoseGraphEdge {
            from: 1,
            to: 3,
            measured: Se3::from_translation(Vec3::new(0.3, -0.1, 0.2)),
            weight: 1.0,
        };
        let j = edge_jacobian(&edge, &truth[1], &truth[3]);
        let r0 = edge_residual(&edge, &truth[1], &truth[3]);
        let v = Vec6::from_parts(Vec3::new(0.3, -0.5, 0.2), Vec3::new(-0.1, 0.4, 0.25));
        let t = 1e-5;
        let mut tv = Vec6::zeros();
        for i in 0..6 {
            tv[i] = t * v[i];
        }
        let r1 = edge_residual(&edge, &truth[1].retract(&tv), &truth[3]);
        for row in 0..6 {
            let predicted: f64 = (0..6).map(|c| j[row][c] * v[c]).sum();
            let actual = (r1[row] - r0[row]) / t;
            assert!(
                (predicted - actual).abs() < 1e-4,
                "row {row}: {predicted} vs {actual}"
            );
        }
    }

    #[test]
    fn weights_trade_off_conflicting_edges() {
        // Two conflicting absolute-chain constraints on one free pose:
        // the heavier edge wins proportionally.
        let mut poses = vec![Se3::identity(), Se3::identity(), Se3::identity()];
        let edges = [
            PoseGraphEdge {
                from: 0,
                to: 1,
                measured: Se3::from_translation(Vec3::new(1.0, 0.0, 0.0)),
                weight: 9.0,
            },
            PoseGraphEdge {
                from: 2,
                to: 1,
                measured: Se3::from_translation(Vec3::new(0.0, 0.0, 0.0)),
                weight: 1.0,
            },
        ];
        let params = PoseGraphParams {
            huber_delta: None,
            ..Default::default()
        };
        optimize_pose_graph(&mut poses, &edges, &[true, false, true], &params);
        // Weighted least squares between x=1 (w 9) and x=0 (w 1) → 0.9.
        assert!(
            (poses[1].translation.x - 0.9).abs() < 1e-6,
            "x = {}",
            poses[1].translation.x
        );
    }
}
