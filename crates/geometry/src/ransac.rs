//! Generic RANSAC (Random Sample Consensus) estimator.
//!
//! The paper uses RANSAC to eliminate mismatches before PnP pose estimation
//! (§2.1). This module provides a reusable, deterministic (seeded) RANSAC
//! loop with adaptive termination; the PnP wrapper in [`crate::pnp`] builds
//! on it.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters controlling a RANSAC run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RansacParams {
    /// Maximum number of sampling iterations.
    pub max_iterations: usize,
    /// Inlier threshold on the per-datum error (same unit the error
    /// function returns, e.g. pixels of reprojection error).
    pub threshold: f64,
    /// Minimum number of inliers for a model to be accepted at all.
    pub min_inliers: usize,
    /// Desired probability that at least one sample was outlier-free;
    /// drives adaptive early termination. Typical value `0.99`.
    pub confidence: f64,
    /// RNG seed, making runs reproducible.
    pub seed: u64,
}

impl Default for RansacParams {
    fn default() -> Self {
        RansacParams {
            max_iterations: 200,
            threshold: 5.99,
            min_inliers: 10,
            confidence: 0.99,
            seed: 0x5eed,
        }
    }
}

/// Result of a successful RANSAC run.
#[derive(Debug, Clone, PartialEq)]
pub struct RansacResult<M> {
    /// The best model found.
    pub model: M,
    /// Indices of the data points consistent with [`RansacResult::model`].
    pub inliers: Vec<usize>,
    /// Number of sampling iterations actually executed.
    pub iterations: usize,
}

/// Runs RANSAC over `n` data items.
///
/// * `sample_size` — size of the minimal sample handed to `fit`.
/// * `fit(indices)` — returns **all** model hypotheses consistent with the
///   minimal sample (e.g. P3P yields up to four).
/// * `error(model, index)` — the fitting error of datum `index` under
///   `model`.
///
/// Sampling is uniform without replacement within one minimal sample. The
/// iteration budget shrinks adaptively as better consensus sets are found.
///
/// Returns `None` when `n < sample_size` or no hypothesis ever reaches
/// `params.min_inliers`.
///
/// # Examples
///
/// ```
/// use eslam_geometry::ransac::{ransac, RansacParams};
/// // Fit a 1-D constant model to data with outliers.
/// let data = [1.0f64, 1.02, 0.98, 1.01, 50.0, -30.0, 1.0];
/// let params = RansacParams { threshold: 0.1, min_inliers: 3, ..Default::default() };
/// let result = ransac(
///     data.len(),
///     1,
///     &params,
///     |idx| vec![data[idx[0]]],
///     |m, i| (data[i] - m).abs(),
/// ).expect("consensus found");
/// assert!(result.inliers.len() >= 5);
/// ```
pub fn ransac<M, FitF, ErrF>(
    n: usize,
    sample_size: usize,
    params: &RansacParams,
    fit: FitF,
    error: ErrF,
) -> Option<RansacResult<M>>
where
    M: Clone,
    FitF: Fn(&[usize]) -> Vec<M>,
    ErrF: Fn(&M, usize) -> f64,
{
    if n < sample_size || sample_size == 0 {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut best: Option<(M, Vec<usize>)> = None;
    let mut required_iterations = params.max_iterations;
    let mut sample = vec![0usize; sample_size];
    let mut iterations = 0;

    while iterations < required_iterations.min(params.max_iterations) {
        iterations += 1;
        draw_distinct(&mut rng, n, &mut sample);
        for model in fit(&sample) {
            let inliers: Vec<usize> = (0..n)
                .filter(|&i| error(&model, i) < params.threshold)
                .collect();
            let best_len = best.as_ref().map_or(0, |(_, inl)| inl.len());
            if inliers.len() > best_len && inliers.len() >= params.min_inliers {
                // Adaptive termination: with inlier ratio w, a minimal
                // sample is all-inlier with probability w^s.
                let w = inliers.len() as f64 / n as f64;
                let p_good_sample = w.powi(sample_size as i32);
                if p_good_sample > 1.0 - 1e-12 {
                    required_iterations = iterations;
                } else if p_good_sample > 0.0 {
                    let needed = (1.0 - params.confidence).ln() / (1.0 - p_good_sample).ln();
                    required_iterations = needed.ceil().max(1.0) as usize;
                }
                best = Some((model.clone(), inliers));
            }
        }
    }

    best.map(|(model, inliers)| RansacResult {
        model,
        inliers,
        iterations,
    })
}

/// Draws `sample.len()` distinct indices in `[0, n)`.
fn draw_distinct(rng: &mut SmallRng, n: usize, sample: &mut [usize]) {
    let k = sample.len();
    debug_assert!(k <= n);
    for i in 0..k {
        loop {
            let candidate = rng.gen_range(0..n);
            if !sample[..i].contains(&candidate) {
                sample[i] = candidate;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Line model y = a x + b fitted from two points.
    fn line_fit(data: &[(f64, f64)]) -> impl Fn(&[usize]) -> Vec<(f64, f64)> + '_ {
        move |idx: &[usize]| {
            let (x0, y0) = data[idx[0]];
            let (x1, y1) = data[idx[1]];
            if (x1 - x0).abs() < 1e-12 {
                return vec![];
            }
            let a = (y1 - y0) / (x1 - x0);
            let b = y0 - a * x0;
            vec![(a, b)]
        }
    }

    #[test]
    fn recovers_line_with_outliers() {
        // y = 2x + 1 with 30% gross outliers.
        let mut data: Vec<(f64, f64)> = (0..70)
            .map(|i| (i as f64 * 0.1, 2.0 * (i as f64 * 0.1) + 1.0))
            .collect();
        for i in 0..30 {
            data.push((i as f64 * 0.2, 100.0 + i as f64 * 13.7));
        }
        let params = RansacParams {
            threshold: 0.05,
            min_inliers: 20,
            max_iterations: 500,
            ..Default::default()
        };
        let res = ransac(data.len(), 2, &params, line_fit(&data), |&(a, b), i| {
            (data[i].1 - (a * data[i].0 + b)).abs()
        })
        .expect("line found");
        assert_eq!(res.inliers.len(), 70);
        let (a, b) = res.model;
        assert!((a - 2.0).abs() < 1e-9);
        assert!((b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let data: Vec<(f64, f64)> = (0..40)
            .map(|i| {
                let x = i as f64 * 0.25;
                let noise = if i % 5 == 0 { 30.0 } else { 0.0 };
                (x, -x + 3.0 + noise)
            })
            .collect();
        let params = RansacParams {
            threshold: 0.1,
            min_inliers: 10,
            ..Default::default()
        };
        let run = || {
            ransac(data.len(), 2, &params, line_fit(&data), |&(a, b), i| {
                (data[i].1 - (a * data[i].0 + b)).abs()
            })
            .unwrap()
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1.inliers, r2.inliers);
        assert_eq!(r1.model, r2.model);
        assert_eq!(r1.iterations, r2.iterations);
    }

    #[test]
    fn too_few_points_fails() {
        let params = RansacParams::default();
        let res: Option<RansacResult<f64>> = ransac(1, 2, &params, |_| vec![0.0f64], |_, _| 0.0);
        assert!(res.is_none());
    }

    #[test]
    fn rejects_when_no_consensus() {
        // Pure noise: no model should gather min_inliers at tight threshold.
        let data: Vec<f64> = (0..20).map(|i| (i as f64 * 97.3) % 17.0).collect();
        let params = RansacParams {
            threshold: 1e-9,
            min_inliers: 10,
            max_iterations: 50,
            ..Default::default()
        };
        let res = ransac(
            data.len(),
            1,
            &params,
            |idx| vec![data[idx[0]]],
            |m, i| (data[i] - m).abs(),
        );
        assert!(res.is_none());
    }

    #[test]
    fn adaptive_termination_stops_early() {
        // All-inlier data should terminate long before max_iterations.
        let data = vec![5.0f64; 100];
        let params = RansacParams {
            threshold: 0.1,
            min_inliers: 50,
            max_iterations: 10_000,
            ..Default::default()
        };
        let res = ransac(
            data.len(),
            1,
            &params,
            |idx| vec![data[idx[0]]],
            |m, i| (data[i] - m).abs(),
        )
        .unwrap();
        assert!(res.iterations < 100, "took {} iterations", res.iterations);
        assert_eq!(res.inliers.len(), 100);
    }

    #[test]
    fn draw_distinct_produces_unique_indices() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut sample = [0usize; 5];
        for _ in 0..100 {
            draw_distinct(&mut rng, 8, &mut sample);
            let mut seen = sample.to_vec();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), 5);
            assert!(sample.iter().all(|&i| i < 8));
        }
    }
}
