//! Two-view triangulation (extension).
//!
//! The paper's RGB-D pipeline gets 3-D points directly from the depth
//! sensor, but depth pixels drop out (and a monocular variant — natural
//! future work for eSLAM — has no depth at all). This module provides
//! midpoint triangulation of a landmark from two posed observations, used
//! by `eslam-core` to refine or recover landmark positions.

use crate::camera::PinholeCamera;
use crate::se3::Se3;
use crate::vector::{Vec2, Vec3};

/// Result of a two-view triangulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriangulatedPoint {
    /// Estimated world position.
    pub position: Vec3,
    /// Gap between the two rays at the midpoint (metres) — a quality
    /// measure; large gaps mean inconsistent observations.
    pub ray_gap: f64,
    /// Parallax angle between the two rays, radians.
    pub parallax: f64,
}

/// Triangulates a world point from two pixel observations.
///
/// * `pose_a`, `pose_b` — **world-to-camera** transforms of the two views.
/// * `pixel_a`, `pixel_b` — the observed pixel positions.
///
/// Uses the midpoint method: find the closest points on the two
/// back-projected rays and average them. Returns `None` when the rays
/// are (numerically) parallel — no parallax, no depth information — or
/// when the triangulated point lies behind either camera.
///
/// # Examples
///
/// ```
/// use eslam_geometry::{PinholeCamera, Se3, Vec3, triangulation::triangulate};
/// let cam = PinholeCamera::tum_fr1();
/// let pose_a = Se3::identity();
/// let pose_b = Se3::from_translation(Vec3::new(-0.2, 0.0, 0.0)); // baseline 0.2 m
/// let world = Vec3::new(0.3, -0.1, 2.5);
/// let ua = cam.project(pose_a.transform(world)).unwrap();
/// let ub = cam.project(pose_b.transform(world)).unwrap();
/// let point = triangulate(&pose_a, ua, &pose_b, ub, &cam).unwrap();
/// assert!((point.position - world).norm() < 1e-9);
/// ```
pub fn triangulate(
    pose_a: &Se3,
    pixel_a: Vec2,
    pose_b: &Se3,
    pixel_b: Vec2,
    camera: &PinholeCamera,
) -> Option<TriangulatedPoint> {
    // Camera centres and ray directions in world coordinates.
    let inv_a = pose_a.inverse();
    let inv_b = pose_b.inverse();
    let origin_a = inv_a.translation;
    let origin_b = inv_b.translation;
    let dir_a = (inv_a.rotation * camera.bearing(pixel_a)).normalized()?;
    let dir_b = (inv_b.rotation * camera.bearing(pixel_b)).normalized()?;

    // Closest points on the two skew lines: solve
    //   [ d_a·d_a  -d_a·d_b ] [s]   [ d_a·(o_b - o_a) ]
    //   [ d_a·d_b  -d_b·d_b ] [t] = [ d_b·(o_b - o_a) ]
    let w = origin_b - origin_a;
    let aa = dir_a.dot(dir_a);
    let ab = dir_a.dot(dir_b);
    let bb = dir_b.dot(dir_b);
    let det = aa * bb - ab * ab;
    let parallax = dir_a.dot(dir_b).clamp(-1.0, 1.0).acos();
    if det.abs() < 1e-12 {
        return None; // parallel rays, no parallax
    }
    let da = dir_a.dot(w);
    let db = dir_b.dot(w);
    let s = (da * bb - db * ab) / det;
    let t = (da * ab - db * aa) / det;

    let point_a = origin_a + dir_a * s;
    let point_b = origin_b + dir_b * t;
    let midpoint = (point_a + point_b) * 0.5;

    // Cheirality: the point must be in front of both cameras.
    if pose_a.transform(midpoint).z <= 0.0 || pose_b.transform(midpoint).z <= 0.0 {
        return None;
    }

    Some(TriangulatedPoint {
        position: midpoint,
        ray_gap: (point_a - point_b).norm(),
        parallax,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quaternion::Quaternion;

    fn cam() -> PinholeCamera {
        PinholeCamera::tum_fr1()
    }

    #[test]
    fn exact_observations_triangulate_exactly() {
        let camera = cam();
        let pose_a = Se3::identity();
        let pose_b = Se3::from_quaternion_translation(
            &Quaternion::from_axis_angle(Vec3::Y, -0.1),
            Vec3::new(-0.3, 0.05, 0.02),
        );
        for world in [
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::new(1.0, -0.5, 4.0),
            Vec3::new(-0.8, 0.6, 3.0),
        ] {
            let ua = camera.project(pose_a.transform(world)).unwrap();
            let ub = camera.project(pose_b.transform(world)).unwrap();
            let tri = triangulate(&pose_a, ua, &pose_b, ub, &camera).unwrap();
            assert!((tri.position - world).norm() < 1e-8, "point {world}");
            assert!(tri.ray_gap < 1e-9);
            assert!(tri.parallax > 0.0);
        }
    }

    #[test]
    fn zero_baseline_rejected() {
        let camera = cam();
        let pose = Se3::identity();
        let uv = Vec2::new(320.0, 240.0);
        assert!(triangulate(&pose, uv, &pose, uv, &camera).is_none());
    }

    #[test]
    fn noisy_observations_report_gap() {
        let camera = cam();
        let pose_a = Se3::identity();
        let pose_b = Se3::from_translation(Vec3::new(-0.4, 0.0, 0.0));
        let world = Vec3::new(0.2, 0.1, 3.0);
        let ua = camera.project(pose_a.transform(world)).unwrap();
        let mut ub = camera.project(pose_b.transform(world)).unwrap();
        ub.y += 3.0; // vertical disparity error → skew rays
        let tri = triangulate(&pose_a, ua, &pose_b, ub, &camera).unwrap();
        assert!(tri.ray_gap > 1e-4, "gap {}", tri.ray_gap);
        // Still lands near the true point.
        assert!((tri.position - world).norm() < 0.1);
    }

    #[test]
    fn point_behind_camera_rejected() {
        let camera = cam();
        let pose_a = Se3::identity();
        // Construct observations of a point in front, then flip one
        // camera 180° so the point is behind it.
        let world = Vec3::new(0.0, 0.0, 2.0);
        let ua = camera.project(pose_a.transform(world)).unwrap();
        let flipped = Se3::from_quaternion_translation(
            &Quaternion::from_axis_angle(Vec3::Y, std::f64::consts::PI),
            Vec3::new(0.0, 0.0, 4.5),
        );
        // The flipped camera at z=4.5 looking back sees the point.
        let ub = camera.project(flipped.transform(world));
        if let Some(ub) = ub {
            if let Some(tri) = triangulate(&pose_a, ua, &flipped, ub, &camera) {
                // If accepted, it must satisfy cheirality for both views.
                assert!(pose_a.transform(tri.position).z > 0.0);
                assert!(flipped.transform(tri.position).z > 0.0);
            }
        }
    }

    #[test]
    fn parallax_grows_with_baseline() {
        let camera = cam();
        let world = Vec3::new(0.0, 0.0, 3.0);
        let pose_a = Se3::identity();
        let parallax_of = |baseline: f64| {
            let pose_b = Se3::from_translation(Vec3::new(-baseline, 0.0, 0.0));
            let ua = camera.project(pose_a.transform(world)).unwrap();
            let ub = camera.project(pose_b.transform(world)).unwrap();
            triangulate(&pose_a, ua, &pose_b, ub, &camera)
                .unwrap()
                .parallax
        };
        assert!(parallax_of(0.5) > parallax_of(0.1));
    }
}
