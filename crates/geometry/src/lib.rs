//! Geometry substrate for the eSLAM reproduction.
//!
//! This crate provides every piece of numerical geometry the ORB-SLAM
//! pipeline of the paper needs, implemented from scratch on fixed-size
//! types (no heap allocation on the hot paths):
//!
//! * [`Vec2`]/[`Vec3`]/[`Vec6`], [`Mat3`]/[`Mat6`] — small linear algebra
//!   with LU inverse, Cholesky solve and a Jacobi symmetric eigen-solver;
//! * [`Quaternion`] and [`Se3`] — rotation/pose representations with
//!   exponential and logarithm maps for manifold optimization;
//! * [`PinholeCamera`] — the TUM Kinect camera model;
//! * [`ransac`] — a generic, seeded RANSAC loop (the paper's mismatch
//!   rejection, §2.1);
//! * [`pnp`] — Grunert P3P and the full robust PnP pipeline (the paper's
//!   *pose estimation* stage);
//! * [`lm`] — Levenberg-Marquardt reprojection-error minimization (the
//!   paper's *pose optimization* stage, Eq. 1), with an optional
//!   motion-prior regularizer;
//! * [`ba`] — windowed local bundle adjustment: joint pose + landmark
//!   refinement by sparse Schur-complement Levenberg-Marquardt (the
//!   keyframe backend's solver);
//! * [`align`] — Kabsch/Umeyama point-set alignment, used by P3P and the
//!   ATE trajectory-error metric of Fig. 8.
//!
//! # Examples
//!
//! Estimating a camera pose from 3-D/2-D matches, then polishing it:
//!
//! ```
//! use eslam_geometry::{PinholeCamera, Se3, Vec3, pnp::{solve_pnp_ransac, PnpParams}};
//!
//! let camera = PinholeCamera::tum_fr1();
//! let truth = Se3::from_translation(Vec3::new(0.05, 0.0, 0.1));
//! // A synthetic set of map points observed by the camera at `truth`.
//! let world: Vec<Vec3> = (0..40)
//!     .map(|i| Vec3::new(((i * 7) % 13) as f64 * 0.2 - 1.2,
//!                        ((i * 5) % 11) as f64 * 0.2 - 1.0,
//!                        2.0 + ((i * 3) % 7) as f64 * 0.4))
//!     .collect();
//! let pixels: Vec<_> = world.iter()
//!     .filter_map(|&p| camera.project(truth.transform(p)))
//!     .collect();
//! let estimate = solve_pnp_ransac(&world, &pixels, &camera, &PnpParams::default())
//!     .expect("consensus");
//! assert!((estimate.pose.translation - truth.translation).norm() < 1e-4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod align;
pub mod ba;
pub mod camera;
pub mod lm;
pub mod matrix;
pub mod pnp;
pub mod poly;
pub mod pose_graph;
pub mod quaternion;
pub mod ransac;
pub mod robust;
pub mod se3;
pub mod triangulation;
pub mod vector;

pub use camera::PinholeCamera;
pub use matrix::{Mat3, Mat6, Vec6};
pub use quaternion::Quaternion;
pub use se3::Se3;
pub use vector::{Vec2, Vec3};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_f64() -> impl Strategy<Value = f64> {
        -3.0..3.0f64
    }

    proptest! {
        #[test]
        fn se3_exp_log_round_trip(
            tx in small_f64(), ty in small_f64(), tz in small_f64(),
            wx in -1.5..1.5f64, wy in -1.5..1.5f64, wz in -1.5..1.5f64,
        ) {
            let xi = Vec6::from_parts(Vec3::new(tx, ty, tz), Vec3::new(wx, wy, wz));
            let t = Se3::exp(&xi);
            let back = t.log();
            for i in 0..6 {
                prop_assert!((back[i] - xi[i]).abs() < 1e-8,
                    "component {} differs: {} vs {}", i, back[i], xi[i]);
            }
        }

        #[test]
        fn quaternion_rotation_preserves_norm(
            ax in small_f64(), ay in small_f64(), az in small_f64(),
            angle in -3.0..3.0f64,
            px in small_f64(), py in small_f64(), pz in small_f64(),
        ) {
            prop_assume!(Vec3::new(ax, ay, az).norm() > 1e-3);
            let q = Quaternion::from_axis_angle(Vec3::new(ax, ay, az), angle);
            let p = Vec3::new(px, py, pz);
            let r = q.rotate(p);
            prop_assert!((r.norm() - p.norm()).abs() < 1e-9);
        }

        #[test]
        fn rotation_matrices_compose_like_quaternions(
            a1 in small_f64(), a2 in small_f64(), a3 in small_f64(),
            b1 in small_f64(), b2 in small_f64(), b3 in small_f64(),
        ) {
            prop_assume!(Vec3::new(a1, a2, a3).norm() > 1e-3);
            prop_assume!(Vec3::new(b1, b2, b3).norm() > 1e-3);
            let qa = Quaternion::from_rotation_vector(Vec3::new(a1, a2, a3));
            let qb = Quaternion::from_rotation_vector(Vec3::new(b1, b2, b3));
            let m = qa.mul(&qb).to_matrix();
            let m2 = qa.to_matrix() * qb.to_matrix();
            prop_assert!((m - m2).frobenius_norm() < 1e-9);
        }

        #[test]
        fn mat3_inverse_consistency(
            a in small_f64(), b in small_f64(), c in small_f64(),
            d in small_f64(), e in small_f64(), f in small_f64(),
            g in small_f64(), h in small_f64(), i in small_f64(),
        ) {
            let m = Mat3 { m: [[a+4.0, b, c], [d, e+4.0, f], [g, h, i+4.0]] };
            // Diagonally dominated, hence invertible.
            if let Some(inv) = m.inverse() {
                prop_assert!(((m * inv) - Mat3::identity()).frobenius_norm() < 1e-7);
            }
        }

        #[test]
        fn camera_project_unproject_round_trip(
            x in -1.5..1.5f64, y in -1.0..1.0f64, z in 0.5..8.0f64,
        ) {
            let cam = PinholeCamera::tum_fr1();
            let p = Vec3::new(x, y, z);
            let uv = cam.project(p).unwrap();
            let back = cam.unproject(uv, z);
            prop_assert!((back - p).norm() < 1e-9);
        }

        #[test]
        fn symmetric_eigen_reconstructs(
            a in small_f64(), b in small_f64(), c in small_f64(),
            d in small_f64(), e in small_f64(), f in small_f64(),
        ) {
            let m = Mat3 { m: [[a, b, c], [b, d, e], [c, e, f]] };
            let (vals, vecs) = m.symmetric_eigen();
            let d_mat = Mat3::from_diagonal(vals);
            let reconstructed = vecs * d_mat * vecs.transpose();
            prop_assert!((reconstructed - m).frobenius_norm() < 1e-7);
        }
    }
}
