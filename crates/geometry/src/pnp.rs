//! Perspective-n-Point pose estimation.
//!
//! The paper's pose-estimation stage (§2.1) applies PnP to the matched
//! feature pairs and uses RANSAC to eliminate mismatches. This module
//! implements:
//!
//! * [`solve_p3p`] — Grunert's classic three-point minimal solver (up to
//!   four solutions), used inside RANSAC;
//! * [`solve_pnp_ransac`] — the full robust pipeline: P3P hypotheses →
//!   reprojection-error consensus → least-squares polish on the inliers via
//!   Gauss-Newton ([`crate::lm`]).

use crate::align::align_rigid;
use crate::camera::PinholeCamera;
use crate::lm::{optimize_pose, LmParams};
use crate::poly::real_roots;
use crate::ransac::{ransac, RansacParams, RansacResult};
use crate::se3::Se3;
use crate::vector::{Vec2, Vec3};

/// Multiplies two dense polynomials given in ascending-degree coefficient
/// order.
fn poly_mul(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] += ai * bj;
        }
    }
    out
}

/// Adds polynomial `b` (scaled by `s`) into `a`, extending as necessary.
fn poly_add_scaled(a: &mut Vec<f64>, b: &[f64], s: f64) {
    if b.len() > a.len() {
        a.resize(b.len(), 0.0);
    }
    for (i, &bi) in b.iter().enumerate() {
        a[i] += s * bi;
    }
}

/// Solves the perspective-three-point problem (Grunert, 1841).
///
/// * `world` — three 3-D points in world coordinates.
/// * `bearings` — the corresponding **unit** bearing vectors in the camera
///   frame (use [`PinholeCamera::bearing`] + normalization).
///
/// Returns up to four camera poses `T` such that the camera at `T` (world →
/// camera convention, `p_cam = R p_world + t`) observes the three points
/// along the given bearings. Degenerate configurations (collinear points,
/// coincident bearings) yield an empty vector.
///
/// # Examples
///
/// ```
/// use eslam_geometry::{pnp::solve_p3p, Se3, Vec3};
/// let world = [Vec3::new(0.0,0.0,4.0), Vec3::new(1.0,0.0,5.0), Vec3::new(0.0,1.0,4.5)];
/// let truth = Se3::identity();
/// let bearings: Vec<Vec3> = world.iter()
///     .map(|&p| truth.transform(p).normalized().unwrap())
///     .collect();
/// let poses = solve_p3p(&world, &[bearings[0], bearings[1], bearings[2]]);
/// assert!(poses.iter().any(|t| (t.translation - truth.translation).norm() < 1e-6));
/// ```
pub fn solve_p3p(world: &[Vec3; 3], bearings: &[Vec3; 3]) -> Vec<Se3> {
    let f: Vec<Vec3> = match bearings
        .iter()
        .map(|b| b.normalized())
        .collect::<Option<Vec<_>>>()
    {
        Some(f) => f,
        None => return vec![],
    };

    // Side lengths of the world triangle.
    let a = (world[1] - world[2]).norm(); // opposite P1
    let b = (world[0] - world[2]).norm(); // opposite P2
    let c = (world[0] - world[1]).norm(); // opposite P3
    if a < 1e-9 || b < 1e-9 || c < 1e-9 {
        return vec![];
    }

    // Angles between bearing pairs.
    let cos_alpha = f[1].dot(f[2]);
    let cos_beta = f[0].dot(f[2]);
    let cos_gamma = f[0].dot(f[1]);

    let (a2, b2, c2) = (a * a, b * b, c * c);
    let big_a = a2 / b2;
    let big_b = c2 / b2;
    let p = 2.0 * cos_alpha;
    let q = 2.0 * cos_beta;
    let r = 2.0 * cos_gamma;

    // With s2 = u s1, s3 = v s1 the law-of-cosines system reduces to
    //   u(v) = N(v) / L(v),   L = r − p v,
    //   N = (A − 1 − B) v² + q (B − A) v + (A + 1 − B),
    // and the quartic g(v) = L² + N² − r N L − B (v² − q v + 1) L² = 0.
    let l = [r, -p]; // ascending: r − p v
    let n = [
        big_a + 1.0 - big_b,
        q * (big_b - big_a),
        big_a - 1.0 - big_b,
    ];
    let m = [1.0, -q, 1.0]; // 1 − q v + v²

    let l2 = poly_mul(&l, &l);
    let n2 = poly_mul(&n, &n);
    let nl = poly_mul(&n, &l);
    let ml2 = poly_mul(&m, &l2);

    let mut g = l2.clone();
    poly_add_scaled(&mut g, &n2, 1.0);
    poly_add_scaled(&mut g, &nl, -r);
    poly_add_scaled(&mut g, &ml2, -big_b);

    // `real_roots` expects descending order.
    let mut desc: Vec<f64> = g.iter().rev().copied().collect();
    while desc.len() > 1 && desc[0].abs() < 1e-12 {
        desc.remove(0);
    }

    let mut poses = Vec::new();
    for v in real_roots(&desc) {
        if v <= 1e-9 {
            continue;
        }
        let lv = r - p * v;
        let u = if lv.abs() > 1e-9 {
            (n[2] * v * v + n[1] * v + n[0]) / lv
        } else {
            // L(v) ≈ 0: recover u from equation (ii) directly:
            // 1 + u² − u r = B (1 + v² − v q)  →  quadratic in u.
            let rhs = big_b * (1.0 + v * v - v * q);
            let disc = r * r - 4.0 * (1.0 - rhs);
            if disc < 0.0 {
                continue;
            }
            (r + disc.sqrt()) / 2.0
        };
        if u <= 1e-9 {
            continue;
        }
        let denom = 1.0 + v * v - v * q;
        if denom <= 1e-12 {
            continue;
        }
        let s1 = (b2 / denom).sqrt();
        let s2 = u * s1;
        let s3 = v * s1;

        // Camera-frame points, then absolute orientation for the pose.
        let cam_pts = [f[0] * s1, f[1] * s2, f[2] * s3];
        if let Some(alignment) = align_rigid(world.as_slice(), cam_pts.as_slice()) {
            if alignment.rmse < 1e-4 * (1.0 + b) {
                poses.push(alignment.transform);
            }
        }
    }
    poses
}

/// A robust PnP estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct PnpResult {
    /// The estimated camera pose (world → camera).
    pub pose: Se3,
    /// Indices of correspondences consistent with the pose.
    pub inliers: Vec<usize>,
    /// RANSAC iterations executed.
    pub ransac_iterations: usize,
    /// RMS reprojection error over the inliers, in pixels.
    pub reprojection_rmse: f64,
}

/// Parameters for [`solve_pnp_ransac`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PnpParams {
    /// RANSAC configuration. `threshold` is the inlier reprojection error
    /// in pixels.
    pub ransac: RansacParams,
    /// Whether to polish the pose on all inliers with Gauss-Newton after
    /// consensus.
    pub refine: bool,
}

impl Default for PnpParams {
    fn default() -> Self {
        PnpParams {
            ransac: RansacParams {
                max_iterations: 300,
                threshold: 3.0,
                min_inliers: 8,
                confidence: 0.99,
                seed: 0xe51a,
            },
            refine: true,
        }
    }
}

/// Estimates the camera pose from 3-D/2-D correspondences with
/// P3P + RANSAC, optionally polished by Gauss-Newton on the inliers.
///
/// * `world` — 3-D map points in world coordinates.
/// * `pixels` — observed pixel positions of the same points in the current
///   frame.
///
/// Returns `None` when fewer than 4 correspondences are supplied or no
/// consensus of at least `params.ransac.min_inliers` is found.
pub fn solve_pnp_ransac(
    world: &[Vec3],
    pixels: &[Vec2],
    camera: &PinholeCamera,
    params: &PnpParams,
) -> Option<PnpResult> {
    if world.len() != pixels.len() || world.len() < 4 {
        return None;
    }
    let bearings: Vec<Vec3> = pixels
        .iter()
        .map(|&uv| camera.bearing(uv).normalized().unwrap_or(Vec3::Z))
        .collect();

    let reproj_error = |pose: &Se3, i: usize| -> f64 {
        match camera.project(pose.transform(world[i])) {
            Some(uv) => (uv - pixels[i]).norm(),
            None => f64::INFINITY,
        }
    };

    let result: RansacResult<Se3> = ransac(
        world.len(),
        3,
        &params.ransac,
        |idx| {
            let w = [world[idx[0]], world[idx[1]], world[idx[2]]];
            let f = [bearings[idx[0]], bearings[idx[1]], bearings[idx[2]]];
            solve_p3p(&w, &f)
        },
        reproj_error,
    )?;

    let mut pose = result.model;
    let mut inliers = result.inliers;

    if params.refine && inliers.len() >= 4 {
        let in_world: Vec<Vec3> = inliers.iter().map(|&i| world[i]).collect();
        let in_pixels: Vec<Vec2> = inliers.iter().map(|&i| pixels[i]).collect();
        let lm = optimize_pose(&pose, &in_world, &in_pixels, camera, &LmParams::default());
        pose = lm.pose;
        // Re-classify inliers under the polished pose.
        inliers = (0..world.len())
            .filter(|&i| reproj_error(&pose, i) < params.ransac.threshold)
            .collect();
    }

    let sq_sum: f64 = inliers
        .iter()
        .map(|&i| {
            let e = reproj_error(&pose, i);
            e * e
        })
        .sum();
    let rmse = if inliers.is_empty() {
        f64::INFINITY
    } else {
        (sq_sum / inliers.len() as f64).sqrt()
    };

    Some(PnpResult {
        pose,
        inliers,
        ransac_iterations: result.iterations,
        reprojection_rmse: rmse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quaternion::Quaternion;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn make_scene(seed: u64, n: usize) -> (Vec<Vec3>, Se3, PinholeCamera, Vec<Vec2>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let camera = PinholeCamera::tum_fr1();
        let truth = Se3::from_quaternion_translation(
            &Quaternion::from_axis_angle(
                Vec3::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()),
                rng.gen::<f64>() * 0.5,
            ),
            Vec3::new(
                rng.gen::<f64>() - 0.5,
                rng.gen::<f64>() - 0.5,
                rng.gen::<f64>() * 0.3,
            ),
        );
        let mut world = Vec::new();
        let mut pixels = Vec::new();
        while world.len() < n {
            let p = Vec3::new(
                (rng.gen::<f64>() - 0.5) * 4.0,
                (rng.gen::<f64>() - 0.5) * 3.0,
                2.0 + rng.gen::<f64>() * 4.0,
            );
            if let Some(uv) = camera.project(truth.transform(p)) {
                if camera.in_bounds(uv, 1.0) {
                    world.push(p);
                    pixels.push(uv);
                }
            }
        }
        (world, truth, camera, pixels)
    }

    #[test]
    fn p3p_recovers_identity_pose() {
        let world = [
            Vec3::new(-0.5, -0.3, 3.0),
            Vec3::new(0.7, 0.1, 4.0),
            Vec3::new(0.0, 0.6, 3.5),
        ];
        let truth = Se3::identity();
        let bearings = [
            truth.transform(world[0]).normalized().unwrap(),
            truth.transform(world[1]).normalized().unwrap(),
            truth.transform(world[2]).normalized().unwrap(),
        ];
        let poses = solve_p3p(&world, &bearings);
        assert!(!poses.is_empty());
        assert!(poses.iter().any(|t| t.translation.norm() < 1e-6
            && (t.rotation - crate::Mat3::identity()).frobenius_norm() < 1e-6));
    }

    #[test]
    fn p3p_recovers_general_pose() {
        for seed in 0..10u64 {
            let (world, truth, _cam, _pix) = make_scene(seed, 3);
            let w = [world[0], world[1], world[2]];
            let bearings = [
                truth.transform(w[0]).normalized().unwrap(),
                truth.transform(w[1]).normalized().unwrap(),
                truth.transform(w[2]).normalized().unwrap(),
            ];
            let poses = solve_p3p(&w, &bearings);
            assert!(
                poses
                    .iter()
                    .any(|t| (t.translation - truth.translation).norm() < 1e-5
                        && (t.rotation - truth.rotation).frobenius_norm() < 1e-5),
                "seed {seed}: no pose matched truth among {}",
                poses.len()
            );
        }
    }

    #[test]
    fn p3p_rejects_collinear_points() {
        let world = [
            Vec3::new(0.0, 0.0, 3.0),
            Vec3::new(0.5, 0.0, 3.0),
            Vec3::new(1.0, 0.0, 3.0),
        ];
        let bearings = [
            world[0].normalized().unwrap(),
            world[1].normalized().unwrap(),
            world[2].normalized().unwrap(),
        ];
        // Collinear points give a degenerate alignment; no pose or garbage
        // pose should never panic.
        let _ = solve_p3p(&world, &bearings);
    }

    #[test]
    fn pnp_ransac_clean_data() {
        let (world, truth, camera, pixels) = make_scene(100, 60);
        let res = solve_pnp_ransac(&world, &pixels, &camera, &PnpParams::default()).unwrap();
        assert!(res.inliers.len() >= 55);
        assert!((res.pose.translation - truth.translation).norm() < 1e-4);
        assert!((res.pose.rotation - truth.rotation).frobenius_norm() < 1e-4);
        assert!(res.reprojection_rmse < 0.1);
    }

    #[test]
    fn pnp_ransac_with_outliers() {
        let (mut world, truth, camera, mut pixels) = make_scene(7, 80);
        let mut rng = SmallRng::seed_from_u64(99);
        // Corrupt 30% of the matches.
        for i in 0..24 {
            let j = i * 3;
            pixels[j] = Vec2::new(rng.gen::<f64>() * 640.0, rng.gen::<f64>() * 480.0);
        }
        // Also add some wildly wrong world points.
        for _ in 0..5 {
            world.push(Vec3::new(100.0, -50.0, 30.0));
            pixels.push(Vec2::new(
                rng.gen::<f64>() * 640.0,
                rng.gen::<f64>() * 480.0,
            ));
        }
        let res = solve_pnp_ransac(&world, &pixels, &camera, &PnpParams::default()).unwrap();
        assert!(
            (res.pose.translation - truth.translation).norm() < 1e-3,
            "translation error {}",
            (res.pose.translation - truth.translation).norm()
        );
        assert!(res.inliers.len() >= 50);
    }

    #[test]
    fn pnp_requires_enough_points() {
        let camera = PinholeCamera::tum_fr1();
        let world = vec![Vec3::new(0.0, 0.0, 2.0); 3];
        let pixels = vec![Vec2::new(320.0, 240.0); 3];
        assert!(solve_pnp_ransac(&world, &pixels, &camera, &PnpParams::default()).is_none());
    }

    #[test]
    fn pnp_with_pixel_noise() {
        let (world, truth, camera, mut pixels) = make_scene(55, 100);
        let mut rng = SmallRng::seed_from_u64(123);
        for uv in pixels.iter_mut() {
            uv.x += (rng.gen::<f64>() - 0.5) * 1.0;
            uv.y += (rng.gen::<f64>() - 0.5) * 1.0;
        }
        let res = solve_pnp_ransac(&world, &pixels, &camera, &PnpParams::default()).unwrap();
        assert!(
            (res.pose.translation - truth.translation).norm() < 0.02,
            "translation error {}",
            (res.pose.translation - truth.translation).norm()
        );
        let rot_err = (res.pose.rotation - truth.rotation).frobenius_norm();
        assert!(rot_err < 0.02, "rotation error {rot_err}");
    }
}
