//! Robust-kernel primitives shared by the reprojection optimizers.
//!
//! Both the motion-only pose optimizer ([`crate::lm`]) and the
//! windowed bundle adjuster ([`crate::ba`]) score residuals with the
//! same Huber kernel and charge the same penalty for geometry that
//! flips behind the camera. They must agree *exactly* — the SLAM
//! system's equivalence oracles compare costs across the two — so the
//! formulas live here once.

/// Penalty charged to an observation whose point projects behind the
/// camera: large enough that optimizer steps flipping geometry are
/// always rejected.
pub const BEHIND_CAMERA_PENALTY: f64 = 1e8;

/// Robustified squared error of one residual norm: quadratic inside
/// the Huber width δ, linear (`δ(2‖r‖ − δ)`) outside; plain `‖r‖²`
/// when the kernel is disabled.
pub fn robust_cost(norm: f64, huber: Option<f64>) -> f64 {
    match huber {
        Some(d) if norm > d => d * (2.0 * norm - d),
        _ => norm * norm,
    }
}

/// Per-residual IRLS weight of the Huber kernel: 1 inside the width,
/// `δ/‖r‖` outside (1 when the kernel is disabled).
pub fn huber_weight(norm: f64, huber: Option<f64>) -> f64 {
    match huber {
        Some(d) if norm > d => d / norm,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_inside_linear_outside() {
        let d = 3.0;
        assert_eq!(robust_cost(2.0, Some(d)), 4.0);
        assert_eq!(robust_cost(3.0, Some(d)), 9.0);
        // Continuous at the kink, then linear: δ(2n − δ).
        assert_eq!(robust_cost(5.0, Some(d)), 3.0 * (10.0 - 3.0));
        assert_eq!(robust_cost(5.0, None), 25.0);
    }

    #[test]
    fn weight_matches_cost_derivative_regime() {
        let d = 3.0;
        assert_eq!(huber_weight(1.0, Some(d)), 1.0);
        assert_eq!(huber_weight(6.0, Some(d)), 0.5);
        assert_eq!(huber_weight(6.0, None), 1.0);
    }
}
