//! Windowed local bundle adjustment: joint refinement of a small set of
//! camera poses and the landmarks they observe.
//!
//! This is the backend counterpart of the motion-only optimizer in
//! [`crate::lm`]: where `optimize_pose` adjusts a single pose against a
//! frozen map, [`bundle_adjust`] minimizes the total robustified
//! reprojection error
//!
//! ```text
//! E = Σᵢⱼ ρ(‖cᵢⱼ − h(gⱼ, pᵢ)‖)  +  w Σᵢ ‖log(pᵢ ∘ p̂ᵢ⁻¹)‖²
//! ```
//!
//! over every free pose `pᵢ` **and** every free landmark `gⱼ` of a
//! sliding keyframe window simultaneously (ρ is the optional Huber
//! kernel, the second sum the optional pose prior anchoring each free
//! pose to its initial value `p̂ᵢ`). The solver is a sparse
//! Levenberg-Marquardt built on the Schur complement: the block
//! structure of the normal equations
//!
//! ```text
//! [ Hpp  W  ] [δp]   [−bp]
//! [ Wᵀ  Hll ] [δl] = [−bl]
//! ```
//!
//! is exploited by inverting the 3×3 landmark blocks `Hll` pointwise,
//! reducing to the dense `6F×6F` camera system
//! `(Hpp − W Hll⁻¹ Wᵀ) δp = −bp + W Hll⁻¹ bl` (F = free poses, a small
//! window), and back-substituting `δl = Hll⁻¹(−bl − Wᵀ δp)`. Poses are
//! updated on the SE(3) manifold with the same left-multiplicative
//! increments as [`crate::lm`]; the whole solve is deterministic — a
//! fixed accumulation order, no randomness — which is what lets the
//! SLAM backend prove its async and synchronous modes bit-identical.

use crate::camera::PinholeCamera;
use crate::matrix::{cholesky_solve_dense, Mat3};
use crate::robust::{huber_weight, robust_cost, BEHIND_CAMERA_PENALTY};
use crate::se3::Se3;
use crate::vector::{Vec2, Vec3};

/// One pixel observation of landmark `point` from camera `pose`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaObservation {
    /// Index into the pose slice.
    pub pose: usize,
    /// Index into the point slice.
    pub point: usize,
    /// Observed pixel location.
    pub pixel: Vec2,
}

/// Parameters of the local bundle adjustment solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaParams {
    /// Maximum number of accepted LM iterations.
    pub max_iterations: usize,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Multiplicative λ increase on a rejected step.
    pub lambda_up: f64,
    /// Multiplicative λ decrease on an accepted step.
    pub lambda_down: f64,
    /// Convergence threshold on the combined update norm ‖δ‖.
    pub min_step_norm: f64,
    /// Convergence threshold on the relative cost decrease.
    pub min_cost_decrease: f64,
    /// Huber kernel width in pixels; `None` disables the robust kernel.
    pub huber_delta: Option<f64>,
    /// Weight of the prior anchoring each free pose to its initial
    /// value (adds `w‖log(p ∘ p̂⁻¹)‖²` to the cost). `0.0` disables it.
    /// Besides regularizing weakly-constrained windows, a non-zero
    /// weight also fixes the gauge when no pose is held fixed.
    pub pose_prior_weight: f64,
    /// Weight of the prior anchoring each free landmark to its initial
    /// position (adds `w‖g − ĝ‖²` per free point, in px²/m²). `0.0`
    /// disables it. This is the RGB-D depth residual in prior form: the
    /// landmarks were seeded from measured depth, and a pure
    /// reprojection BA would discard that information and drag points
    /// along their rays to absorb pixel noise. The prior keeps the
    /// depth measurement in the problem while still letting strongly
    /// contradicted points move.
    pub point_prior_weight: f64,
}

impl Default for BaParams {
    fn default() -> Self {
        BaParams {
            max_iterations: 10,
            initial_lambda: 1e-4,
            lambda_up: 10.0,
            lambda_down: 0.5,
            min_step_norm: 1e-10,
            min_cost_decrease: 1e-9,
            huber_delta: Some(5.0),
            pose_prior_weight: 0.0,
            point_prior_weight: 0.0,
        }
    }
}

/// Outcome of a bundle adjustment run (poses/points are refined in
/// place).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaResult {
    /// Cost before any update.
    pub initial_cost: f64,
    /// Final cost.
    pub final_cost: f64,
    /// Number of accepted LM iterations.
    pub iterations: usize,
    /// Whether the run terminated by convergence rather than the
    /// iteration cap.
    pub converged: bool,
}

/// Total robustified cost of a pose/point configuration, including the
/// pose prior.
#[allow(clippy::too_many_arguments)]
fn evaluate_cost(
    poses: &[Se3],
    points: &[Vec3],
    observations: &[BaObservation],
    anchors: &[Se3],
    point_anchors: &[Vec3],
    fixed_poses: &[bool],
    fixed_points: &[bool],
    camera: &PinholeCamera,
    params: &BaParams,
) -> f64 {
    let mut cost = 0.0;
    for obs in observations {
        let p_cam = poses[obs.pose].transform(points[obs.point]);
        match camera.project(p_cam) {
            Some(uv) => cost += robust_cost((uv - obs.pixel).norm(), params.huber_delta),
            None => cost += BEHIND_CAMERA_PENALTY,
        }
    }
    if params.pose_prior_weight > 0.0 {
        for ((pose, anchor), fixed) in poses.iter().zip(anchors).zip(fixed_poses) {
            if !fixed {
                let xi = pose.compose(&anchor.inverse()).log();
                cost += params.pose_prior_weight * xi.norm() * xi.norm();
            }
        }
    }
    if params.point_prior_weight > 0.0 {
        for ((point, anchor), fixed) in points.iter().zip(point_anchors).zip(fixed_points) {
            if !fixed {
                cost += params.point_prior_weight * (*point - *anchor).norm_squared();
            }
        }
    }
    cost
}

/// The static block structure of one problem, built once per solve.
struct Structure {
    /// Free-slot index per pose (`usize::MAX` for fixed poses).
    pose_slot: Vec<usize>,
    /// Free-slot index per point (`usize::MAX` for fixed points).
    point_slot: Vec<usize>,
    /// Number of free poses.
    free_poses: usize,
    /// Number of free points.
    free_points: usize,
    /// Cross-block index per observation (`usize::MAX` when either side
    /// is fixed): observations sharing a (pose, point) pair share a
    /// block.
    obs_block: Vec<usize>,
    /// Per free point: the `(pose_slot, block)` pairs touching it.
    point_pairs: Vec<Vec<(usize, usize)>>,
    /// Number of cross blocks.
    blocks: usize,
}

impl Structure {
    fn build(
        n_poses: usize,
        n_points: usize,
        observations: &[BaObservation],
        fixed_poses: &[bool],
        fixed_points: &[bool],
    ) -> Structure {
        let mut pose_slot = vec![usize::MAX; n_poses];
        let mut free_poses = 0;
        for (i, fixed) in fixed_poses.iter().enumerate() {
            if !fixed {
                pose_slot[i] = free_poses;
                free_poses += 1;
            }
        }
        let mut point_slot = vec![usize::MAX; n_points];
        let mut free_points = 0;
        for (j, fixed) in fixed_points.iter().enumerate() {
            if !fixed {
                point_slot[j] = free_points;
                free_points += 1;
            }
        }
        let mut obs_block = vec![usize::MAX; observations.len()];
        let mut point_pairs = vec![Vec::new(); free_points];
        let mut pair_index: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        let mut blocks = 0;
        for (k, obs) in observations.iter().enumerate() {
            let (ps, ls) = (pose_slot[obs.pose], point_slot[obs.point]);
            if ps == usize::MAX || ls == usize::MAX {
                continue;
            }
            let block = *pair_index.entry((ps, ls)).or_insert_with(|| {
                let b = blocks;
                blocks += 1;
                point_pairs[ls].push((ps, b));
                b
            });
            obs_block[k] = block;
        }
        Structure {
            pose_slot,
            point_slot,
            free_poses,
            free_points,
            obs_block,
            point_pairs,
            blocks,
        }
    }
}

/// The accumulated normal equations of one linearization.
struct NormalEquations {
    /// 6×6 diagonal pose blocks, one per free pose.
    hpp: Vec<[[f64; 6]; 6]>,
    /// Pose gradient `Σ w Jpᵀ r`, one per free pose.
    bp: Vec<[f64; 6]>,
    /// 3×3 diagonal point blocks, one per free point.
    hll: Vec<Mat3>,
    /// Point gradient `Σ w Jlᵀ r`, one per free point.
    bl: Vec<Vec3>,
    /// 6×3 cross blocks, one per (free pose, free point) pair.
    w: Vec<[[f64; 3]; 6]>,
}

/// Linearizes the problem at the current state, accumulating the block
/// normal equations and the cost.
#[allow(clippy::too_many_arguments)]
fn build_normal_equations(
    poses: &[Se3],
    points: &[Vec3],
    observations: &[BaObservation],
    anchors: &[Se3],
    point_anchors: &[Vec3],
    structure: &Structure,
    camera: &PinholeCamera,
    params: &BaParams,
) -> NormalEquations {
    let mut eq = NormalEquations {
        hpp: vec![[[0.0; 6]; 6]; structure.free_poses],
        bp: vec![[0.0; 6]; structure.free_poses],
        hll: vec![Mat3::zeros(); structure.free_points],
        bl: vec![Vec3::ZERO; structure.free_points],
        w: vec![[[0.0; 3]; 6]; structure.blocks],
    };

    for (k, obs) in observations.iter().enumerate() {
        let pose = &poses[obs.pose];
        let p_cam = pose.transform(points[obs.point]);
        // Step acceptance is driven by evaluate_cost on the candidate;
        // the linearization only needs the (weighted) derivatives.
        let uv = match camera.project(p_cam) {
            Some(uv) => uv,
            None => continue,
        };
        let r = uv - obs.pixel;
        let rn = r.norm();
        let w = huber_weight(rn, params.huber_delta);

        let (x, y, z) = (p_cam.x, p_cam.y, p_cam.z);
        let inv_z = 1.0 / z;
        let inv_z2 = inv_z * inv_z;
        // ∂(u,v)/∂p_cam
        let j_proj = [
            [camera.fx * inv_z, 0.0, -camera.fx * x * inv_z2],
            [0.0, camera.fy * inv_z, -camera.fy * y * inv_z2],
        ];

        let ps = structure.pose_slot[obs.pose];
        let ls = structure.point_slot[obs.point];

        // Pose Jacobian rows: J_proj · [ I | −[p_cam]× ] (left
        // perturbation, identical to crate::lm).
        let mut j_pose = [[0.0f64; 6]; 2];
        if ps != usize::MAX {
            let j_se3 = [
                [1.0, 0.0, 0.0, 0.0, z, -y],
                [0.0, 1.0, 0.0, -z, 0.0, x],
                [0.0, 0.0, 1.0, y, -x, 0.0],
            ];
            for (row, proj_row) in j_pose.iter_mut().zip(&j_proj) {
                for c in 0..6 {
                    row[c] = (0..3).map(|m| proj_row[m] * j_se3[m][c]).sum();
                }
            }
        }
        // Point Jacobian rows: J_proj · R (∂p_cam/∂g = R).
        let mut j_point = [[0.0f64; 3]; 2];
        if ls != usize::MAX {
            for (row, proj_row) in j_point.iter_mut().zip(&j_proj) {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = (0..3).map(|m| proj_row[m] * pose.rotation.m[m][c]).sum();
                }
            }
        }

        let residual = [r.x, r.y];
        for (row, res) in [0usize, 1].into_iter().zip(residual) {
            if ps != usize::MAX {
                let jp = &j_pose[row];
                let (h, b) = (&mut eq.hpp[ps], &mut eq.bp[ps]);
                for a in 0..6 {
                    for c in 0..6 {
                        h[a][c] += w * jp[a] * jp[c];
                    }
                    b[a] += w * jp[a] * res;
                }
            }
            if ls != usize::MAX {
                let jl = &j_point[row];
                let (h, b) = (&mut eq.hll[ls], &mut eq.bl[ls]);
                for a in 0..3 {
                    for c in 0..3 {
                        h.m[a][c] += w * jl[a] * jl[c];
                    }
                    b[a] += w * jl[a] * res;
                }
            }
            if ps != usize::MAX && ls != usize::MAX {
                let block = &mut eq.w[structure.obs_block[k]];
                for (a, wa) in block.iter_mut().enumerate() {
                    for (c, wc) in wa.iter_mut().enumerate() {
                        *wc += w * j_pose[row][a] * j_point[row][c];
                    }
                }
            }
        }
    }

    // Pose prior: residual √w·log(p ∘ p̂⁻¹) with Jacobian ≈ √w·I.
    if params.pose_prior_weight > 0.0 {
        let wp = params.pose_prior_weight;
        for (i, slot) in structure.pose_slot.iter().enumerate() {
            if *slot == usize::MAX {
                continue;
            }
            let xi = poses[i].compose(&anchors[i].inverse()).log();
            for a in 0..6 {
                eq.hpp[*slot][a][a] += wp;
                eq.bp[*slot][a] += wp * xi[a];
            }
        }
    }

    // Point prior (the depth residual): residual √w·(g − ĝ), J = √w·I.
    if params.point_prior_weight > 0.0 {
        let wl = params.point_prior_weight;
        for (j, slot) in structure.point_slot.iter().enumerate() {
            if *slot == usize::MAX {
                continue;
            }
            let r = points[j] - point_anchors[j];
            for a in 0..3 {
                eq.hll[*slot].m[a][a] += wl;
                eq.bl[*slot][a] += wl * r[a];
            }
        }
    }

    eq
}

/// Jointly refines `poses` (world-to-camera) and `points` (world
/// positions) in place by minimizing the total robustified reprojection
/// error of `observations` with a sparse Schur-complement
/// Levenberg-Marquardt.
///
/// * `fixed_poses[i]` / `fixed_points[j]` hold the corresponding
///   variable constant; its observations still constrain everything
///   else. Fix at least one pose (or set
///   [`BaParams::pose_prior_weight`]) or the problem is gauge-free and
///   the damped solver will simply stay near the initial values.
/// * Every observation must index valid poses/points.
///
/// Degenerate inputs (no free variables, or no observations) return
/// immediately with the initial configuration.
///
/// # Panics
/// Panics if the slice lengths disagree or an observation index is out
/// of range.
///
/// # Examples
///
/// ```
/// use eslam_geometry::ba::{bundle_adjust, BaObservation, BaParams};
/// use eslam_geometry::{PinholeCamera, Se3, Vec3};
/// let camera = PinholeCamera::tum_fr1();
/// let truth_pose = Se3::from_translation(Vec3::new(0.05, 0.0, 0.0));
/// let points: Vec<Vec3> = (0..12)
///     .map(|i| Vec3::new((i % 4) as f64 * 0.4 - 0.6, (i / 4) as f64 * 0.4 - 0.4, 3.0))
///     .collect();
/// // Observations from the identity keyframe and from `truth_pose`.
/// let mut observations = Vec::new();
/// for (j, p) in points.iter().enumerate() {
///     observations.push(BaObservation { pose: 0, point: j, pixel: camera.project(*p).unwrap() });
///     observations.push(BaObservation {
///         pose: 1, point: j, pixel: camera.project(truth_pose.transform(*p)).unwrap(),
///     });
/// }
/// // Start the second pose off-truth; keep the first fixed (gauge)
/// // and the landmarks fixed (depth-anchored), so only the pose moves.
/// let mut poses = vec![Se3::identity(), Se3::identity()];
/// let mut pts = points.clone();
/// let result = bundle_adjust(
///     &mut poses, &mut pts, &observations, &[true, false], &vec![true; 12],
///     &camera, &BaParams::default(),
/// );
/// assert!(result.final_cost <= result.initial_cost);
/// assert!((poses[1].translation - truth_pose.translation).norm() < 1e-6);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn bundle_adjust(
    poses: &mut [Se3],
    points: &mut [Vec3],
    observations: &[BaObservation],
    fixed_poses: &[bool],
    fixed_points: &[bool],
    camera: &PinholeCamera,
    params: &BaParams,
) -> BaResult {
    assert_eq!(poses.len(), fixed_poses.len(), "pose/fixed length mismatch");
    assert_eq!(
        points.len(),
        fixed_points.len(),
        "point/fixed length mismatch"
    );
    for obs in observations {
        assert!(obs.pose < poses.len(), "observation pose out of range");
        assert!(obs.point < points.len(), "observation point out of range");
    }

    let anchors: Vec<Se3> = poses.to_vec();
    let point_anchors: Vec<Vec3> = points.to_vec();
    let structure = Structure::build(
        poses.len(),
        points.len(),
        observations,
        fixed_poses,
        fixed_points,
    );
    let initial_cost = evaluate_cost(
        poses,
        points,
        observations,
        &anchors,
        &point_anchors,
        fixed_poses,
        fixed_points,
        camera,
        params,
    );
    if (structure.free_poses == 0 && structure.free_points == 0) || observations.is_empty() {
        return BaResult {
            initial_cost,
            final_cost: initial_cost,
            iterations: 0,
            converged: true,
        };
    }

    let mut cost = initial_cost;
    let mut lambda = params.initial_lambda;
    let mut iterations = 0;
    let mut converged = false;
    let mut attempts = 0;
    let n = structure.free_poses * 6;

    while iterations < params.max_iterations && attempts < params.max_iterations * 4 {
        attempts += 1;
        let eq = build_normal_equations(
            poses,
            points,
            observations,
            &anchors,
            &point_anchors,
            &structure,
            camera,
            params,
        );

        // Damp both variable families (additive, scale-aware per block).
        let mut hpp = eq.hpp.clone();
        for h in &mut hpp {
            for (a, row) in h.iter_mut().enumerate() {
                row[a] += lambda * (1.0 + row[a].abs());
            }
        }
        let mut hll = eq.hll.clone();
        for h in &mut hll {
            for a in 0..3 {
                h.m[a][a] += lambda * (1.0 + h.m[a][a].abs());
            }
        }

        // Invert the 3×3 landmark blocks. A singular block (a point
        // with too little parallax even after damping) freezes that
        // point for this step.
        let hll_inv: Vec<Option<Mat3>> = hll.iter().map(|h| h.inverse()).collect();

        // Reduced camera system S δp = −b_reduced.
        let mut s = vec![0.0f64; n * n];
        let mut b_red = vec![0.0f64; n];
        for (slot, h) in hpp.iter().enumerate() {
            for a in 0..6 {
                for c in 0..6 {
                    s[(slot * 6 + a) * n + slot * 6 + c] = h[a][c];
                }
                b_red[slot * 6 + a] = -eq.bp[slot][a];
            }
        }
        for (ls, pairs) in structure.point_pairs.iter().enumerate() {
            let Some(inv) = &hll_inv[ls] else { continue };
            // Precompute W_a · Hll⁻¹ per pair, then subtract
            // (W_a Hll⁻¹) W_bᵀ from every block pair of this point.
            let winv: Vec<[[f64; 3]; 6]> = pairs
                .iter()
                .map(|&(_, block)| {
                    let wa = &eq.w[block];
                    let mut out = [[0.0f64; 3]; 6];
                    for (a, row) in out.iter_mut().enumerate() {
                        for (c, v) in row.iter_mut().enumerate() {
                            *v = (0..3).map(|m| wa[a][m] * inv.m[m][c]).sum();
                        }
                    }
                    out
                })
                .collect();
            for (i, &(pa, _)) in pairs.iter().enumerate() {
                // b_reduced += W Hll⁻¹ bl (sign: b_red starts at −bp).
                for a in 0..6 {
                    b_red[pa * 6 + a] += (0..3).map(|m| winv[i][a][m] * eq.bl[ls][m]).sum::<f64>();
                }
                for &(pb, block_b) in pairs.iter() {
                    let wb = &eq.w[block_b];
                    for a in 0..6 {
                        for c in 0..6 {
                            let v: f64 = (0..3).map(|m| winv[i][a][m] * wb[c][m]).sum();
                            s[(pa * 6 + a) * n + pb * 6 + c] -= v;
                        }
                    }
                }
            }
        }

        let delta_p = match cholesky_solve_dense(&s, &b_red, n) {
            Some(d) => d,
            None => {
                lambda *= params.lambda_up;
                continue;
            }
        };

        // Back-substitute the landmark updates:
        // δl = Hll⁻¹ (−bl − Wᵀ δp).
        let mut delta_l = vec![Vec3::ZERO; structure.free_points];
        for (ls, pairs) in structure.point_pairs.iter().enumerate() {
            let Some(inv) = &hll_inv[ls] else { continue };
            let mut rhs = -eq.bl[ls];
            for &(pa, block) in pairs {
                let wa = &eq.w[block];
                for m in 0..3 {
                    rhs[m] -= (0..6).map(|a| wa[a][m] * delta_p[pa * 6 + a]).sum::<f64>();
                }
            }
            delta_l[ls] = *inv * rhs;
        }

        let step_norm = (delta_p.iter().map(|v| v * v).sum::<f64>()
            + delta_l.iter().map(|v| v.norm_squared()).sum::<f64>())
        .sqrt();
        if step_norm < params.min_step_norm {
            converged = true;
            break;
        }

        // Build and score the candidate configuration.
        let mut cand_poses: Vec<Se3> = poses.to_vec();
        for (i, slot) in structure.pose_slot.iter().enumerate() {
            if *slot == usize::MAX {
                continue;
            }
            let xi = crate::matrix::Vec6 {
                v: [
                    delta_p[slot * 6],
                    delta_p[slot * 6 + 1],
                    delta_p[slot * 6 + 2],
                    delta_p[slot * 6 + 3],
                    delta_p[slot * 6 + 4],
                    delta_p[slot * 6 + 5],
                ],
            };
            cand_poses[i] = cand_poses[i].retract(&xi);
            cand_poses[i].orthonormalize();
        }
        let mut cand_points: Vec<Vec3> = points.to_vec();
        for (j, slot) in structure.point_slot.iter().enumerate() {
            if *slot != usize::MAX {
                cand_points[j] += delta_l[*slot];
            }
        }
        let cand_cost = evaluate_cost(
            &cand_poses,
            &cand_points,
            observations,
            &anchors,
            &point_anchors,
            fixed_poses,
            fixed_points,
            camera,
            params,
        );

        if cand_cost < cost {
            let decrease = (cost - cand_cost) / cost.max(1e-300);
            poses.copy_from_slice(&cand_poses);
            points.copy_from_slice(&cand_points);
            cost = cand_cost;
            lambda = (lambda * params.lambda_down).max(1e-12);
            iterations += 1;
            if decrease < params.min_cost_decrease {
                converged = true;
                break;
            }
        } else {
            lambda *= params.lambda_up;
            if lambda > 1e12 {
                converged = true;
                break;
            }
        }
    }

    BaResult {
        initial_cost,
        final_cost: cost,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quaternion::Quaternion;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// A synthetic window: `n_poses` cameras on a slow arc observing
    /// `n_points` landmarks, with exact pixel observations.
    fn window(
        seed: u64,
        n_poses: usize,
        n_points: usize,
    ) -> (Vec<Se3>, Vec<Vec3>, Vec<BaObservation>, PinholeCamera) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let camera = PinholeCamera::tum_fr1();
        let poses: Vec<Se3> = (0..n_poses)
            .map(|i| {
                // A wide-enough baseline that landmark depth is well
                // conditioned across the window.
                let t = i as f64 * 0.12;
                Se3::from_quaternion_translation(
                    &Quaternion::from_axis_angle(Vec3::Y, t * 0.5),
                    Vec3::new(t, -0.3 * t, 0.1 * t),
                )
            })
            .collect();
        let mut points = Vec::new();
        let mut observations = Vec::new();
        while points.len() < n_points {
            let p = Vec3::new(
                (rng.gen::<f64>() - 0.5) * 4.0,
                (rng.gen::<f64>() - 0.5) * 3.0,
                2.0 + rng.gen::<f64>() * 3.0,
            );
            let mut obs = Vec::new();
            for (i, pose) in poses.iter().enumerate() {
                if let Some(uv) = camera.project(pose.transform(p)) {
                    if camera.in_bounds(uv, 2.0) {
                        obs.push(BaObservation {
                            pose: i,
                            point: points.len(),
                            pixel: uv,
                        });
                    }
                }
            }
            if obs.len() == n_poses {
                points.push(p);
                observations.extend(obs);
            }
        }
        (poses, points, observations, camera)
    }

    fn perturb_pose(pose: &Se3, rng: &mut SmallRng, t_mag: f64, r_mag: f64) -> Se3 {
        let xi = crate::matrix::Vec6::from_parts(
            Vec3::new(
                (rng.gen::<f64>() - 0.5) * t_mag,
                (rng.gen::<f64>() - 0.5) * t_mag,
                (rng.gen::<f64>() - 0.5) * t_mag,
            ),
            Vec3::new(
                (rng.gen::<f64>() - 0.5) * r_mag,
                (rng.gen::<f64>() - 0.5) * r_mag,
                (rng.gen::<f64>() - 0.5) * r_mag,
            ),
        );
        pose.retract(&xi)
    }

    #[test]
    fn recovers_perturbed_poses_and_points() {
        let (truth_poses, truth_points, observations, camera) = window(3, 4, 60);
        let mut rng = SmallRng::seed_from_u64(77);
        // Two poses fixed: reprojection-only BA has a scale gauge (the
        // scene and the free camera translations can scale jointly
        // about a single fixed pose at zero cost), so the anchor must
        // be a baseline, not a point.
        let mut poses: Vec<Se3> = truth_poses
            .iter()
            .enumerate()
            .map(|(i, p)| {
                if i < 2 {
                    *p
                } else {
                    perturb_pose(p, &mut rng, 0.04, 0.02)
                }
            })
            .collect();
        let mut points: Vec<Vec3> = truth_points
            .iter()
            .map(|p| {
                *p + Vec3::new(
                    (rng.gen::<f64>() - 0.5) * 0.04,
                    (rng.gen::<f64>() - 0.5) * 0.04,
                    (rng.gen::<f64>() - 0.5) * 0.08,
                )
            })
            .collect();
        let mut fixed_poses = vec![false; poses.len()];
        fixed_poses[0] = true;
        fixed_poses[1] = true;
        let free_points = vec![false; points.len()];
        let result = bundle_adjust(
            &mut poses,
            &mut points,
            &observations,
            &fixed_poses,
            &free_points,
            &camera,
            &BaParams {
                max_iterations: 40,
                min_cost_decrease: 1e-14,
                ..Default::default()
            },
        );
        assert!(result.final_cost < result.initial_cost);
        assert!(result.final_cost < 1e-6, "cost {}", result.final_cost);
        for (est, truth) in poses.iter().zip(&truth_poses) {
            assert!(
                (est.translation - truth.translation).norm() < 5e-4,
                "pose error {}",
                (est.translation - truth.translation).norm()
            );
        }
        for (est, truth) in points.iter().zip(&truth_points) {
            // Landmark depth along near-parallel rays is the weakest
            // direction; LM stops once the pixel cost is at noise
            // level, a few mm from the exact optimum.
            assert!((*est - *truth).norm() < 5e-3, "{}", (*est - *truth).norm());
        }
    }

    #[test]
    fn fixed_variables_do_not_move() {
        let (truth_poses, truth_points, observations, camera) = window(5, 3, 40);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut poses = truth_poses.clone();
        poses[2] = perturb_pose(&poses[2], &mut rng, 0.05, 0.02);
        let mut points = truth_points.clone();
        let mut fixed_points = vec![false; points.len()];
        fixed_points[0] = true;
        fixed_points[7] = true;
        let before_pose0 = poses[0];
        let before_p0 = points[0];
        let before_p7 = points[7];
        bundle_adjust(
            &mut poses,
            &mut points,
            &observations,
            &[true, true, false],
            &fixed_points,
            &camera,
            &BaParams::default(),
        );
        assert_eq!(poses[0], before_pose0);
        assert_eq!(points[0], before_p0);
        assert_eq!(points[7], before_p7);
        // The free pose still improved.
        assert!((poses[2].translation - truth_poses[2].translation).norm() < 1e-4);
    }

    #[test]
    fn cost_never_increases() {
        let (truth_poses, truth_points, observations, camera) = window(9, 4, 50);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut poses: Vec<Se3> = truth_poses
            .iter()
            .map(|p| perturb_pose(p, &mut rng, 0.03, 0.015))
            .collect();
        let mut points = truth_points.clone();
        let mut fixed_poses = vec![false; poses.len()];
        fixed_poses[0] = true;
        let free_points = vec![false; points.len()];
        let result = bundle_adjust(
            &mut poses,
            &mut points,
            &observations,
            &fixed_poses,
            &free_points,
            &camera,
            &BaParams::default(),
        );
        assert!(result.final_cost <= result.initial_cost);
    }

    #[test]
    fn huber_contains_outlier_observations() {
        let (truth_poses, truth_points, mut observations, camera) = window(13, 3, 50);
        // Corrupt one view of each of the first 8 landmarks grossly
        // (corrupting *every* view of a free landmark would just move
        // the landmark — the shifted views must disagree with the
        // surviving ones for the kernel to have outliers to reject).
        for obs in observations.iter_mut().step_by(3).take(8) {
            obs.pixel.x += 180.0;
            obs.pixel.y -= 120.0;
        }
        let mut rng = SmallRng::seed_from_u64(21);
        let mut run = |huber: Option<f64>| {
            let mut poses: Vec<Se3> = truth_poses
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    if i < 2 {
                        *p
                    } else {
                        perturb_pose(p, &mut rng, 0.03, 0.015)
                    }
                })
                .collect();
            let mut points = truth_points.clone();
            let free_points = vec![false; points.len()];
            bundle_adjust(
                &mut poses,
                &mut points,
                &observations,
                &[true, true, false],
                &free_points,
                &camera,
                &BaParams {
                    huber_delta: huber,
                    max_iterations: 30,
                    ..Default::default()
                },
            );
            poses
                .iter()
                .zip(&truth_poses)
                .map(|(e, t)| (e.translation - t.translation).norm())
                .fold(0.0f64, f64::max)
        };
        let robust_err = run(Some(3.0));
        let plain_err = run(None);
        assert!(
            robust_err < plain_err,
            "robust {robust_err} should beat plain {plain_err}"
        );
        // Outliers also drag the free landmarks here (unlike the
        // pose-only LM test), so the bar is looser than crate::lm's.
        assert!(robust_err < 0.05, "robust error {robust_err}");
    }

    #[test]
    fn pose_prior_fixes_the_gauge_without_fixed_poses() {
        // No pose fixed: the prior anchors the window so the damped
        // solver still converges instead of drifting along the gauge.
        let (truth_poses, truth_points, observations, camera) = window(17, 3, 40);
        let mut rng = SmallRng::seed_from_u64(33);
        let mut poses: Vec<Se3> = truth_poses
            .iter()
            .map(|p| perturb_pose(p, &mut rng, 0.01, 0.005))
            .collect();
        let mut points = truth_points.clone();
        let anchors = poses.clone();
        let free_points = vec![false; points.len()];
        let result = bundle_adjust(
            &mut poses,
            &mut points,
            &observations,
            &[false, false, false],
            &free_points,
            &camera,
            &BaParams {
                pose_prior_weight: 10.0,
                ..Default::default()
            },
        );
        assert!(result.final_cost <= result.initial_cost);
        // Poses stay in the prior's neighbourhood.
        for (est, anchor) in poses.iter().zip(&anchors) {
            assert!((est.translation - anchor.translation).norm() < 0.05);
        }
    }

    #[test]
    fn degenerate_inputs_are_noops() {
        let camera = PinholeCamera::tum_fr1();
        // Everything fixed.
        let mut poses = vec![Se3::identity()];
        let mut points = vec![Vec3::new(0.0, 0.0, 3.0)];
        let obs = [BaObservation {
            pose: 0,
            point: 0,
            pixel: camera.project(points[0]).unwrap(),
        }];
        let r = bundle_adjust(
            &mut poses,
            &mut points,
            &obs,
            &[true],
            &[true],
            &camera,
            &BaParams::default(),
        );
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        // No observations at all.
        let r = bundle_adjust(
            &mut poses,
            &mut points,
            &[],
            &[false],
            &[false],
            &camera,
            &BaParams::default(),
        );
        assert!(r.converged);
        assert_eq!(r.initial_cost, 0.0);
    }

    #[test]
    fn single_observation_point_is_solvable() {
        // A landmark seen from one camera is rank-deficient along the
        // ray; damping must keep the solve alive rather than exploding.
        let (truth_poses, truth_points, mut observations, camera) = window(23, 2, 30);
        // Drop the second view of point 0.
        observations.retain(|o| !(o.point == 0 && o.pose == 1));
        let mut rng = SmallRng::seed_from_u64(3);
        let mut poses = vec![
            truth_poses[0],
            perturb_pose(&truth_poses[1], &mut rng, 0.02, 0.01),
        ];
        let mut points = truth_points.clone();
        let free_points = vec![false; points.len()];
        let result = bundle_adjust(
            &mut poses,
            &mut points,
            &observations,
            &[true, false],
            &free_points,
            &camera,
            &BaParams::default(),
        );
        assert!(result.final_cost <= result.initial_cost);
        assert!(points.iter().all(|p| p.norm().is_finite()));
    }

    #[test]
    fn solver_is_deterministic() {
        let (truth_poses, truth_points, observations, camera) = window(29, 4, 45);
        let mut rng = SmallRng::seed_from_u64(9);
        let start_poses: Vec<Se3> = truth_poses
            .iter()
            .map(|p| perturb_pose(p, &mut rng, 0.02, 0.01))
            .collect();
        let mut fixed_poses = vec![false; start_poses.len()];
        fixed_poses[0] = true;
        let run = || {
            let mut poses = start_poses.clone();
            let mut points = truth_points.clone();
            let free_points = vec![false; points.len()];
            let r = bundle_adjust(
                &mut poses,
                &mut points,
                &observations,
                &fixed_poses,
                &free_points,
                &camera,
                &BaParams::default(),
            );
            (poses, points, r)
        };
        let (pa, la, ra) = run();
        let (pb, lb, rb) = run();
        assert_eq!(pa, pb);
        assert_eq!(la, lb);
        assert_eq!(ra, rb);
    }

    #[test]
    fn dense_cholesky_matches_mat6() {
        // The variable-size solver agrees with the fixed Mat6 one on a
        // 6×6 SPD system.
        let mut a6 = crate::matrix::Mat6::identity();
        let g = crate::matrix::Vec6 {
            v: [0.4, -0.2, 0.7, 0.1, -0.5, 0.3],
        };
        a6.rank_one_update(&g, 2.0);
        let b = crate::matrix::Vec6 {
            v: [1.0, -1.0, 0.5, 0.25, 2.0, -0.75],
        };
        let expect = a6.cholesky_solve(&b).unwrap();
        let flat: Vec<f64> = a6.m.iter().flatten().copied().collect();
        let got = cholesky_solve_dense(&flat, &b.v, 6).unwrap();
        for i in 0..6 {
            assert!((got[i] - expect[i]).abs() < 1e-12);
        }
        // And rejects an indefinite system.
        let mut bad = flat.clone();
        bad[7] = -5.0; // (1,1) pivot
        assert!(cholesky_solve_dense(&bad, &b.v, 6).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_observation_panics() {
        let camera = PinholeCamera::tum_fr1();
        let mut poses = vec![Se3::identity()];
        let mut points = vec![Vec3::new(0.0, 0.0, 2.0)];
        let obs = [BaObservation {
            pose: 1,
            point: 0,
            pixel: Vec2::new(0.0, 0.0),
        }];
        let _ = bundle_adjust(
            &mut poses,
            &mut points,
            &obs,
            &[false],
            &[false],
            &camera,
            &BaParams::default(),
        );
    }
}
