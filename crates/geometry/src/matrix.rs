//! Small fixed-size matrices (3×3 and 6×6) with the factorizations needed by
//! the SLAM pipeline.
//!
//! [`Mat3`] backs rotations, camera intrinsics and covariance manipulation;
//! [`Mat6`] is the normal-equation matrix of the 6-DoF pose optimizer.
//! Decompositions provided: LU-based inverse for [`Mat3`], Cholesky solve for
//! symmetric positive-definite [`Mat6`], and a cyclic Jacobi eigen-solver for
//! symmetric [`Mat3`] (used by Horn alignment and the Harris analysis tools).

use crate::vector::Vec3;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A 3×3 matrix in row-major order.
///
/// # Examples
///
/// ```
/// use eslam_geometry::{Mat3, Vec3};
/// let m = Mat3::identity();
/// assert_eq!(m * Vec3::new(1.0, 2.0, 3.0), Vec3::new(1.0, 2.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Row-major entries: `m[r][c]`.
    pub m: [[f64; 3]; 3],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::zeros()
    }
}

impl Mat3 {
    /// The zero matrix.
    pub fn zeros() -> Self {
        Mat3 { m: [[0.0; 3]; 3] }
    }

    /// The identity matrix.
    pub fn identity() -> Self {
        let mut m = [[0.0; 3]; 3];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        Mat3 { m }
    }

    /// Builds a matrix from rows.
    pub fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Self {
        Mat3 {
            m: [r0.to_array(), r1.to_array(), r2.to_array()],
        }
    }

    /// Builds a matrix from columns.
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Mat3 {
            m: [[c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z]],
        }
    }

    /// Builds a diagonal matrix.
    pub fn from_diagonal(d: Vec3) -> Self {
        let mut m = Mat3::zeros();
        m.m[0][0] = d.x;
        m.m[1][1] = d.y;
        m.m[2][2] = d.z;
        m
    }

    /// The skew-symmetric (cross-product) matrix `[v]×` such that
    /// `skew(v) * w == v.cross(w)`.
    pub fn skew(v: Vec3) -> Self {
        Mat3 {
            m: [[0.0, -v.z, v.y], [v.z, 0.0, -v.x], [-v.y, v.x, 0.0]],
        }
    }

    /// The outer product `a * bᵀ`.
    pub fn outer(a: Vec3, b: Vec3) -> Self {
        let mut m = Mat3::zeros();
        for r in 0..3 {
            for c in 0..3 {
                m.m[r][c] = a[r] * b[c];
            }
        }
        m
    }

    /// Row `r` as a vector.
    ///
    /// # Panics
    /// Panics if `r >= 3`.
    pub fn row(&self, r: usize) -> Vec3 {
        Vec3::new(self.m[r][0], self.m[r][1], self.m[r][2])
    }

    /// Column `c` as a vector.
    ///
    /// # Panics
    /// Panics if `c >= 3`.
    pub fn col(&self, c: usize) -> Vec3 {
        Vec3::new(self.m[0][c], self.m[1][c], self.m[2][c])
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat3 {
        let mut t = Mat3::zeros();
        for r in 0..3 {
            for c in 0..3 {
                t.m[c][r] = self.m[r][c];
            }
        }
        t
    }

    /// Matrix determinant.
    pub fn determinant(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Sum of the diagonal entries.
    pub fn trace(&self) -> f64 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// Matrix inverse via the adjugate.
    ///
    /// Returns `None` when the determinant is numerically zero.
    pub fn inverse(&self) -> Option<Mat3> {
        let det = self.determinant();
        if det.abs() < 1e-300 {
            return None;
        }
        let m = &self.m;
        let inv_det = 1.0 / det;
        let mut inv = Mat3::zeros();
        inv.m[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
        inv.m[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
        inv.m[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
        inv.m[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
        inv.m[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
        inv.m[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
        inv.m[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
        inv.m[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
        inv.m[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
        Some(inv)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.m
            .iter()
            .flat_map(|row| row.iter())
            .map(|v| v * v)
            .sum::<f64>()
            .sqrt()
    }

    /// Eigen-decomposition of a **symmetric** matrix by the cyclic Jacobi
    /// method.
    ///
    /// Returns `(eigenvalues, eigenvectors)` where `eigenvectors.col(i)` is
    /// the unit eigenvector for `eigenvalues[i]`, sorted in **descending**
    /// order of eigenvalue. The input is assumed symmetric; the strictly
    /// lower triangle is ignored in favour of the upper one.
    pub fn symmetric_eigen(&self) -> (Vec3, Mat3) {
        // Symmetrize defensively so callers with tiny asymmetries converge.
        let mut a = *self;
        for r in 0..3 {
            for c in (r + 1)..3 {
                let v = 0.5 * (a.m[r][c] + a.m[c][r]);
                a.m[r][c] = v;
                a.m[c][r] = v;
            }
        }
        let mut v = Mat3::identity();
        for _sweep in 0..64 {
            let off = (a.m[0][1].powi(2) + a.m[0][2].powi(2) + a.m[1][2].powi(2)).sqrt();
            if off < 1e-14 {
                break;
            }
            for p in 0..2 {
                for q in (p + 1)..3 {
                    if a.m[p][q].abs() < 1e-300 {
                        continue;
                    }
                    let theta = (a.m[q][q] - a.m[p][p]) / (2.0 * a.m[p][q]);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Apply the Givens rotation G(p, q, θ) on both sides.
                    let mut g = Mat3::identity();
                    g.m[p][p] = c;
                    g.m[q][q] = c;
                    g.m[p][q] = s;
                    g.m[q][p] = -s;
                    a = g.transpose() * a * g;
                    v = v * g;
                }
            }
        }
        let mut pairs = [
            (a.m[0][0], v.col(0)),
            (a.m[1][1], v.col(1)),
            (a.m[2][2], v.col(2)),
        ];
        pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
        (
            Vec3::new(pairs[0].0, pairs[1].0, pairs[2].0),
            Mat3::from_cols(pairs[0].1, pairs[1].1, pairs[2].1),
        )
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::zeros();
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c] + rhs.m[r][c];
            }
        }
        out
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::zeros();
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c] - rhs.m[r][c];
            }
        }
        out
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::zeros();
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][0] * rhs.m[0][c]
                    + self.m[r][1] * rhs.m[1][c]
                    + self.m[r][2] * rhs.m[2][c];
            }
        }
        out
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul<f64> for Mat3 {
    type Output = Mat3;
    fn mul(self, s: f64) -> Mat3 {
        let mut out = self;
        for row in out.m.iter_mut() {
            for v in row.iter_mut() {
                *v *= s;
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Mat3 {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.m[r][c]
    }
}

impl IndexMut<(usize, usize)> for Mat3 {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.m[r][c]
    }
}

impl fmt::Display for Mat3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.m {
            writeln!(f, "[{:10.4} {:10.4} {:10.4}]", row[0], row[1], row[2])?;
        }
        Ok(())
    }
}

/// A 6-dimensional vector used for SE(3) tangent increments
/// `[translation | rotation]` and normal-equation right-hand sides.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec6 {
    /// Components in order `[t_x, t_y, t_z, ω_x, ω_y, ω_z]`.
    pub v: [f64; 6],
}

impl Vec6 {
    /// The zero vector.
    pub fn zeros() -> Self {
        Vec6 { v: [0.0; 6] }
    }

    /// Builds from translation and rotation parts.
    pub fn from_parts(translation: Vec3, rotation: Vec3) -> Self {
        Vec6 {
            v: [
                translation.x,
                translation.y,
                translation.z,
                rotation.x,
                rotation.y,
                rotation.z,
            ],
        }
    }

    /// The translation part (first three components).
    pub fn translation(&self) -> Vec3 {
        Vec3::new(self.v[0], self.v[1], self.v[2])
    }

    /// The rotation part (last three components).
    pub fn rotation(&self) -> Vec3 {
        Vec3::new(self.v[3], self.v[4], self.v[5])
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.v.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<usize> for Vec6 {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.v[i]
    }
}

impl IndexMut<usize> for Vec6 {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.v[i]
    }
}

/// A 6×6 matrix, used as the Gauss-Newton / Levenberg-Marquardt normal
/// matrix `JᵀJ` of the pose optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat6 {
    /// Row-major entries: `m[r][c]`.
    pub m: [[f64; 6]; 6],
}

impl Default for Mat6 {
    fn default() -> Self {
        Mat6::zeros()
    }
}

impl Mat6 {
    /// The zero matrix.
    pub fn zeros() -> Self {
        Mat6 { m: [[0.0; 6]; 6] }
    }

    /// The identity matrix.
    pub fn identity() -> Self {
        let mut m = Mat6::zeros();
        for i in 0..6 {
            m.m[i][i] = 1.0;
        }
        m
    }

    /// Rank-one update `self += w * (g * gᵀ)`, the building block for
    /// accumulating `JᵀJ` one residual row at a time.
    pub fn rank_one_update(&mut self, g: &Vec6, w: f64) {
        for r in 0..6 {
            for c in 0..6 {
                self.m[r][c] += w * g.v[r] * g.v[c];
            }
        }
    }

    /// Adds `lambda` to every diagonal entry (Levenberg damping).
    pub fn add_diagonal(&mut self, lambda: f64) {
        for i in 0..6 {
            self.m[i][i] += lambda;
        }
    }

    /// Multiplies the diagonal by `1 + lambda` (Marquardt scaling).
    pub fn scale_diagonal(&mut self, lambda: f64) {
        for i in 0..6 {
            self.m[i][i] *= 1.0 + lambda;
        }
    }

    /// Solves `self * x = b` for symmetric positive-definite `self` via
    /// Cholesky decomposition.
    ///
    /// Returns `None` when the matrix is not positive definite (a
    /// non-positive pivot appears).
    pub fn cholesky_solve(&self, b: &Vec6) -> Option<Vec6> {
        // Decompose A = L Lᵀ.
        let mut l = [[0.0f64; 6]; 6];
        for i in 0..6 {
            for j in 0..=i {
                // Sequential fold keeps the exact FP accumulation order.
                let sum = l[i][..j]
                    .iter()
                    .zip(&l[j][..j])
                    .fold(self.m[i][j], |acc, (a, b)| acc - a * b);
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[i][j] = sum.sqrt();
                } else {
                    l[i][j] = sum / l[j][j];
                }
            }
        }
        // Forward substitution: L y = b.
        let mut y = [0.0f64; 6];
        for i in 0..6 {
            let mut sum = b.v[i];
            for k in 0..i {
                sum -= l[i][k] * y[k];
            }
            y[i] = sum / l[i][i];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = [0.0f64; 6];
        for i in (0..6).rev() {
            let mut sum = y[i];
            for k in (i + 1)..6 {
                sum -= l[k][i] * x[k];
            }
            x[i] = sum / l[i][i];
        }
        Some(Vec6 { v: x })
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: &Vec6) -> Vec6 {
        let mut out = Vec6::zeros();
        for r in 0..6 {
            out.v[r] = (0..6).map(|c| self.m[r][c] * v.v[c]).sum();
        }
        out
    }
}

impl Index<(usize, usize)> for Mat6 {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.m[r][c]
    }
}

impl IndexMut<(usize, usize)> for Mat6 {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.m[r][c]
    }
}

/// Solves the dense symmetric positive-definite system `A x = b`
/// (row-major `n×n`) via Cholesky. Returns `None` on a non-positive
/// pivot (the matrix is not positive definite).
///
/// The accumulation order is a fixed sequential fold, so the solve is
/// bit-deterministic — the shared linear-algebra core of the
/// sparse-Schur bundle adjustment ([`crate::ba`]) and the Se(3)
/// pose-graph optimizer ([`crate::pose_graph`]).
pub fn cholesky_solve_dense(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            // Sequential fold keeps the exact FP accumulation order.
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward substitution L y = b.
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Back substitution Lᵀ x = y.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_mat3_close(a: &Mat3, b: &Mat3, tol: f64) {
        for r in 0..3 {
            for c in 0..3 {
                assert!(
                    (a.m[r][c] - b.m[r][c]).abs() < tol,
                    "entry ({r},{c}): {} vs {}",
                    a.m[r][c],
                    b.m[r][c]
                );
            }
        }
    }

    #[test]
    fn identity_is_multiplicative_neutral() {
        let m = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(0.0, 1.0, 4.0),
            Vec3::new(5.0, 6.0, 0.0),
        );
        assert_mat3_close(&(m * Mat3::identity()), &m, 1e-15);
        assert_mat3_close(&(Mat3::identity() * m), &m, 1e-15);
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let m = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(0.0, 1.0, 4.0),
            Vec3::new(5.0, 6.0, 0.0),
        );
        let inv = m.inverse().expect("invertible");
        assert_mat3_close(&(m * inv), &Mat3::identity(), 1e-12);
        assert_mat3_close(&(inv * m), &Mat3::identity(), 1e-12);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(2.0, 4.0, 6.0),
            Vec3::new(0.0, 1.0, 1.0),
        );
        assert!(m.inverse().is_none());
    }

    #[test]
    fn skew_matrix_matches_cross_product() {
        let v = Vec3::new(0.3, -1.2, 2.5);
        let w = Vec3::new(-0.7, 0.4, 1.1);
        let lhs = Mat3::skew(v) * w;
        let rhs = v.cross(w);
        assert!((lhs - rhs).norm() < 1e-14);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(4.0, 5.0, 6.0),
            Vec3::new(7.0, 8.0, 9.0),
        );
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn symmetric_eigen_diagonal() {
        let m = Mat3::from_diagonal(Vec3::new(3.0, 1.0, 2.0));
        let (vals, vecs) = m.symmetric_eigen();
        assert!((vals.x - 3.0).abs() < 1e-10);
        assert!((vals.y - 2.0).abs() < 1e-10);
        assert!((vals.z - 1.0).abs() < 1e-10);
        // Eigenvectors satisfy M v = λ v.
        for (i, lam) in [vals.x, vals.y, vals.z].into_iter().enumerate() {
            let v = vecs.col(i);
            assert!(((m * v) - v * lam).norm() < 1e-10);
        }
    }

    #[test]
    fn symmetric_eigen_general() {
        let m = Mat3 {
            m: [[4.0, 1.0, 0.5], [1.0, 3.0, -0.5], [0.5, -0.5, 2.0]],
        };
        let (vals, vecs) = m.symmetric_eigen();
        for (i, lam) in [vals.x, vals.y, vals.z].into_iter().enumerate() {
            let v = vecs.col(i);
            assert!((v.norm() - 1.0).abs() < 1e-10, "eigenvector not unit");
            assert!(((m * v) - v * lam).norm() < 1e-9, "Mv != λv for λ={lam}");
        }
        // Trace is preserved.
        assert!((vals.x + vals.y + vals.z - m.trace()).abs() < 1e-9);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // Build an SPD matrix A = B Bᵀ + I.
        let mut a = Mat6::identity();
        let b_rows: [[f64; 6]; 6] = [
            [1.0, 0.5, 0.0, 0.2, 0.0, 0.1],
            [0.0, 2.0, 0.3, 0.0, 0.5, 0.0],
            [0.4, 0.0, 1.5, 0.0, 0.0, 0.6],
            [0.0, 0.1, 0.0, 1.2, 0.3, 0.0],
            [0.2, 0.0, 0.0, 0.0, 1.8, 0.4],
            [0.0, 0.3, 0.2, 0.1, 0.0, 1.1],
        ];
        for r in 0..6 {
            for c in 0..6 {
                let sum = b_rows[r]
                    .iter()
                    .zip(&b_rows[c])
                    .fold(0.0, |acc, (x, y)| acc + x * y);
                a.m[r][c] += sum;
            }
        }
        let x_true = Vec6 {
            v: [1.0, -2.0, 3.0, -4.0, 5.0, -6.0],
        };
        let b = a.mul_vec(&x_true);
        let x = a.cholesky_solve(&b).expect("SPD solve");
        for i in 0..6 {
            assert!((x.v[i] - x_true.v[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = Mat6::identity();
        a.m[3][3] = -1.0;
        assert!(a.cholesky_solve(&Vec6::zeros()).is_none());
    }

    #[test]
    fn rank_one_update_accumulates() {
        let mut a = Mat6::zeros();
        let g = Vec6 {
            v: [1.0, 2.0, 0.0, 0.0, 0.0, 3.0],
        };
        a.rank_one_update(&g, 2.0);
        assert_eq!(a.m[0][0], 2.0);
        assert_eq!(a.m[0][1], 4.0);
        assert_eq!(a.m[1][1], 8.0);
        assert_eq!(a.m[5][5], 18.0);
        assert_eq!(a.m[0][5], 6.0);
        assert_eq!(a.m[5][0], 6.0);
    }

    #[test]
    fn vec6_parts_round_trip() {
        let t = Vec3::new(1.0, 2.0, 3.0);
        let r = Vec3::new(-0.1, 0.2, -0.3);
        let v = Vec6::from_parts(t, r);
        assert_eq!(v.translation(), t);
        assert_eq!(v.rotation(), r);
    }

    #[test]
    fn outer_product() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        let m = Mat3::outer(a, b);
        assert_eq!(m.m[0][0], 4.0);
        assert_eq!(m.m[2][1], 15.0);
        assert_eq!(m.m[1][2], 12.0);
    }
}
