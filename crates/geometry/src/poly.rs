//! Real-root finding for low-degree polynomials.
//!
//! The P3P minimal solver in [`crate::pnp`] reduces to a degree-4
//! polynomial; its real roots are recovered with the Durand-Kerner
//! simultaneous iteration followed by a Newton polish, which is simple and
//! numerically robust for the well-scaled quartics P3P produces.

/// Complex number with just the operations Durand-Kerner needs.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Complex {
    re: f64,
    im: f64,
}

impl Complex {
    fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
    fn div(self, o: Complex) -> Complex {
        let d = o.re * o.re + o.im * o.im;
        Complex::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
    fn abs(self) -> f64 {
        (self.re * self.re + self.im * self.im).sqrt()
    }
}

/// Evaluates a polynomial with coefficients in **descending** degree order
/// at a complex point (Horner's scheme).
fn poly_eval_complex(coeffs: &[f64], x: Complex) -> Complex {
    let mut acc = Complex::new(0.0, 0.0);
    for &c in coeffs {
        acc = acc.mul(x).add(Complex::new(c, 0.0));
    }
    acc
}

/// Evaluates a real polynomial (descending coefficients) at a real point.
pub fn poly_eval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().fold(0.0, |acc, &c| acc * x + c)
}

/// Evaluates the derivative of a real polynomial (descending coefficients).
pub fn poly_eval_derivative(coeffs: &[f64], x: f64) -> f64 {
    let n = coeffs.len();
    if n < 2 {
        return 0.0;
    }
    let mut acc = 0.0;
    for (i, &c) in coeffs[..n - 1].iter().enumerate() {
        let power = (n - 1 - i) as f64;
        acc = acc * x + c * power;
    }
    acc
}

/// Finds the real roots of a polynomial with real coefficients given in
/// **descending** degree order (`coeffs[0] x^(n-1) + … + coeffs[n-1]`).
///
/// Leading near-zero coefficients are stripped. Roots whose imaginary part
/// is below a scaled tolerance are reported (deduplicated, sorted
/// ascending) after a few Newton polish steps on the real axis.
///
/// Degree 0 (or an all-zero polynomial) yields an empty vector.
///
/// # Examples
///
/// ```
/// use eslam_geometry::poly::real_roots;
/// // (x-1)(x-2)(x-3) = x³ - 6x² + 11x - 6
/// let roots = real_roots(&[1.0, -6.0, 11.0, -6.0]);
/// assert_eq!(roots.len(), 3);
/// assert!((roots[0] - 1.0).abs() < 1e-9);
/// assert!((roots[2] - 3.0).abs() < 1e-9);
/// ```
pub fn real_roots(coeffs: &[f64]) -> Vec<f64> {
    // Strip leading zeros.
    let mut start = 0;
    while start < coeffs.len() && coeffs[start].abs() < 1e-300 {
        start += 1;
    }
    let coeffs = &coeffs[start..];
    let degree = coeffs.len().saturating_sub(1);
    if degree == 0 {
        return vec![];
    }
    if degree == 1 {
        return vec![-coeffs[1] / coeffs[0]];
    }
    if degree == 2 {
        let (a, b, c) = (coeffs[0], coeffs[1], coeffs[2]);
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return vec![];
        }
        let sq = disc.sqrt();
        // Numerically stable quadratic formula.
        let q = -0.5 * (b + b.signum() * sq);
        let mut roots = if q.abs() < 1e-300 {
            vec![0.0, 0.0]
        } else {
            vec![q / a, c / q]
        };
        roots.sort_by(|x, y| x.partial_cmp(y).unwrap());
        roots.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        return roots;
    }

    // Normalize to monic.
    let lead = coeffs[0];
    let monic: Vec<f64> = coeffs.iter().map(|c| c / lead).collect();

    // Durand-Kerner with roots initialized on a complex circle.
    let mut roots: Vec<Complex> = (0..degree)
        .map(|k| {
            let angle = 2.0 * std::f64::consts::PI * k as f64 / degree as f64 + 0.4;
            // Radius heuristic: 1 + max |coeff|.
            let r = 1.0 + monic.iter().skip(1).fold(0.0f64, |m, c| m.max(c.abs()));
            Complex::new(
                r.powf(1.0 / degree as f64) * angle.cos(),
                r.powf(1.0 / degree as f64) * angle.sin(),
            )
        })
        .collect();

    for _ in 0..200 {
        let mut max_delta = 0.0f64;
        for i in 0..degree {
            let mut denom = Complex::new(1.0, 0.0);
            for j in 0..degree {
                if i != j {
                    denom = denom.mul(roots[i].sub(roots[j]));
                }
            }
            if denom.abs() < 1e-300 {
                continue;
            }
            let delta = poly_eval_complex(&monic, roots[i]).div(denom);
            roots[i] = roots[i].sub(delta);
            max_delta = max_delta.max(delta.abs());
        }
        if max_delta < 1e-14 {
            break;
        }
    }

    // Keep near-real roots, polish with Newton on the real axis.
    let scale = 1.0 + roots.iter().fold(0.0f64, |m, r| m.max(r.abs()));
    let mut real: Vec<f64> = Vec::new();
    for r in roots {
        if r.im.abs() < 1e-6 * scale {
            let mut x = r.re;
            for _ in 0..16 {
                let f = poly_eval(&monic, x);
                let df = poly_eval_derivative(&monic, x);
                if df.abs() < 1e-300 {
                    break;
                }
                let step = f / df;
                x -= step;
                if step.abs() < 1e-15 * (1.0 + x.abs()) {
                    break;
                }
            }
            // Accept only if residual is genuinely small.
            if poly_eval(&monic, x).abs() < 1e-6 * scale.powi(degree as i32 - 1).max(1.0) {
                real.push(x);
            }
        }
    }
    real.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Double roots converge at ~√ε accuracy under both Durand-Kerner and
    // Newton, so the merge tolerance must be loose enough to fold them.
    real.dedup_by(|a, b| (*a - *b).abs() < 1e-6 * scale);
    real
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_roots(coeffs: &[f64], expected: &[f64], tol: f64) {
        let roots = real_roots(coeffs);
        assert_eq!(
            roots.len(),
            expected.len(),
            "wanted {expected:?}, got {roots:?}"
        );
        for (r, e) in roots.iter().zip(expected) {
            assert!((r - e).abs() < tol, "root {r} vs expected {e}");
        }
    }

    #[test]
    fn linear() {
        assert_roots(&[2.0, -4.0], &[2.0], 1e-12);
    }

    #[test]
    fn quadratic_two_roots() {
        // (x-3)(x+5) = x² + 2x - 15
        assert_roots(&[1.0, 2.0, -15.0], &[-5.0, 3.0], 1e-12);
    }

    #[test]
    fn quadratic_no_real_roots() {
        assert_roots(&[1.0, 0.0, 1.0], &[], 0.0);
    }

    #[test]
    fn cubic() {
        // (x-1)(x-2)(x-3)
        assert_roots(&[1.0, -6.0, 11.0, -6.0], &[1.0, 2.0, 3.0], 1e-9);
    }

    #[test]
    fn cubic_single_real_root() {
        // (x-2)(x²+1) = x³ - 2x² + x - 2
        assert_roots(&[1.0, -2.0, 1.0, -2.0], &[2.0], 1e-9);
    }

    #[test]
    fn quartic_four_roots() {
        // (x+2)(x+1)(x-1)(x-2) = x⁴ -5x² + 4
        assert_roots(&[1.0, 0.0, -5.0, 0.0, 4.0], &[-2.0, -1.0, 1.0, 2.0], 1e-9);
    }

    #[test]
    fn quartic_two_real_roots() {
        // (x²+1)(x-0.5)(x+3) = x⁴ + 2.5x³ - 0.5x² + 2.5x - 1.5
        assert_roots(&[1.0, 2.5, -0.5, 2.5, -1.5], &[-3.0, 0.5], 1e-8);
    }

    #[test]
    fn quartic_no_real_roots() {
        // (x²+1)(x²+4)
        assert_roots(&[1.0, 0.0, 5.0, 0.0, 4.0], &[], 0.0);
    }

    #[test]
    fn repeated_roots_deduplicated() {
        // (x-1)²(x+1) = x³ - x² - x + 1
        let roots = real_roots(&[1.0, -1.0, -1.0, 1.0]);
        assert!(roots.len() == 2, "got {roots:?}");
        assert!((roots[0] + 1.0).abs() < 1e-6);
        assert!((roots[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn leading_zeros_stripped() {
        assert_roots(&[0.0, 0.0, 1.0, -1.0], &[1.0], 1e-12);
    }

    #[test]
    fn scaled_coefficients() {
        // 3(x-4)(x-7) with a non-monic lead.
        assert_roots(&[3.0, -33.0, 84.0], &[4.0, 7.0], 1e-10);
    }

    #[test]
    fn derivative_eval() {
        // p = x³ - 2x, p' = 3x² - 2.
        let c = [1.0, 0.0, -2.0, 0.0];
        assert!((poly_eval_derivative(&c, 2.0) - 10.0).abs() < 1e-12);
        assert!((poly_eval(&c, 2.0) - 4.0).abs() < 1e-12);
    }
}
