//! Property tests proving the optimized front-end hot paths bit-identical
//! to their scalar reference oracles across random images, descriptor
//! sets and seeds — the contract of the fast-path overhaul:
//!
//! * bitmask+LUT FAST scanner ≡ per-pixel segment test;
//! * row-sliced blur / resize ≡ clamped per-pixel reference;
//! * sorted NMS ≡ hash-map NMS;
//! * word-parallel descriptor rotation ≡ per-bit rotation;
//! * tiled/pooled matcher (whatever kernel rung the host dispatches
//!   to — see `tests/matcher_kernels.rs` for the per-rung suite) ≡
//!   scalar argmin loops;
//! * the full parallel extractor (persistent worker pool) ≡ the
//!   sequential scalar extractor.

use eslam_features::matcher::{
    match_brute_force, match_brute_force_reference, match_with_ratio, match_with_ratio_reference,
};
use eslam_features::orb::{DescriptorKind, OrbConfig, OrbExtractor, Workflow};
use eslam_features::{fast, nms, Descriptor};
use eslam_image::filter::{gaussian_blur_7x7_fixed, gaussian_blur_7x7_fixed_reference};
use eslam_image::pyramid::{resize_nearest, resize_nearest_reference};
use eslam_image::GrayImage;
use proptest::prelude::*;

/// Deterministic pseudo-random test image.
fn noise_image(w: u32, h: u32, seed: u64) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let v = (x as u64)
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add((y as u64).wrapping_mul(0xbf58476d1ce4e5b9))
            .wrapping_add(seed.wrapping_mul(0x94d049bb133111eb));
        ((v ^ (v >> 29)) % 256) as u8
    })
}

/// A corner-rich image (checkerboard + jitter) so FAST actually fires.
fn corner_image(w: u32, h: u32, seed: u64) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let base = if ((x / 9) + (y / 9)) % 2 == 0 {
            45
        } else {
            195
        };
        base + ((x as u64 * 31 + y as u64 * 17 + seed * 1009) % 23) as u8
    })
}

fn descriptor_set(n: usize, salt: u64) -> Vec<Descriptor> {
    (0..n)
        .map(|i| {
            let s = (i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15) ^ salt;
            Descriptor::from_words([s, s.rotate_left(13), s.rotate_left(29), s.rotate_left(47)])
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fast_scanner_equals_scalar_segment_test(
        w in 7u32..80, h in 7u32..60, seed in 0u64..1000, threshold in 3u8..90,
    ) {
        let img = noise_image(w, h, seed);
        prop_assert_eq!(
            fast::detect(&img, threshold),
            fast::detect_reference(&img, threshold)
        );
    }

    #[test]
    fn blur_equals_reference(w in 1u32..64, h in 1u32..48, seed in 0u64..1000) {
        let img = noise_image(w, h, seed);
        prop_assert_eq!(
            gaussian_blur_7x7_fixed(&img),
            gaussian_blur_7x7_fixed_reference(&img)
        );
    }

    #[test]
    fn resize_equals_reference(
        w in 2u32..60, h in 2u32..60, tw in 1u32..70, th in 1u32..70, seed in 0u64..500,
    ) {
        let img = noise_image(w, h, seed);
        prop_assert_eq!(
            resize_nearest(&img, tw, th),
            resize_nearest_reference(&img, tw, th)
        );
    }

    #[test]
    fn sorted_nms_equals_hashmap_nms(seed in 0u64..2000, threshold in 5u8..40) {
        // Real detector output (raster-ordered, unique) scored by a hash.
        let img = corner_image(64, 48, seed);
        let detections = fast::detect(&img, threshold);
        let scored: Vec<nms::ScoredPoint> = detections
            .iter()
            .map(|d| nms::ScoredPoint {
                x: d.x,
                y: d.y,
                score: ((d.x as u64 * 37 + d.y as u64 * 113 + seed) % 17) as f64,
            })
            .collect();
        let mut out = Vec::new();
        nms::suppress_sorted_into(&scored, &mut out, &mut nms::NmsScratch::default());
        prop_assert_eq!(out, nms::suppress(&scored));
    }

    #[test]
    fn word_parallel_rotation_equals_per_bit(
        a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), d in any::<u64>(),
        bits in 0usize..512,
    ) {
        let desc = Descriptor::from_words([a, b, c, d]);
        prop_assert_eq!(desc.rotate_bits(bits), desc.rotate_bits_reference(bits));
    }

    #[test]
    fn tiled_matcher_equals_reference(
        nq in 1usize..80, nt in 1usize..300, salt in 0u64..100, max_d in 20u32..256,
    ) {
        let query = descriptor_set(nq, salt);
        let train = descriptor_set(nt, salt ^ 0xfeed);
        prop_assert_eq!(
            match_brute_force(&query, &train, max_d),
            match_brute_force_reference(&query, &train, max_d)
        );
        prop_assert_eq!(
            match_with_ratio(&query, &train, 0.8, max_d),
            match_with_ratio_reference(&query, &train, 0.8, max_d)
        );
    }
}

proptest! {
    // The full-extractor sweep is the expensive one; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_extractor_equals_sequential_reference(
        seed in 0u64..100,
        kind_idx in 0usize..3,
        workflow_idx in 0usize..2,
    ) {
        let kind = [
            DescriptorKind::RsBrief,
            DescriptorKind::OriginalLut,
            DescriptorKind::OriginalDirect,
        ][kind_idx];
        let workflow = [Workflow::Rescheduled, Workflow::Original][workflow_idx];
        let img = corner_image(160, 120, seed);
        let extractor = OrbExtractor::new(OrbConfig {
            descriptor: kind,
            workflow,
            max_features: 150,
            pattern_seed: seed ^ 0xe51a,
            ..Default::default()
        });
        prop_assert_eq!(extractor.extract(&img), extractor.extract_reference(&img));
    }
}
