//! Per-kernel bit-identity suite for the Hamming matcher dispatch
//! ladder (avx512 → avx2 → popcnt → scalar) and the persistent worker
//! pool.
//!
//! Every rung the CPU supports is proven bit-identical to
//! [`match_brute_force_reference`] / [`match_with_ratio_reference`] on
//! random corpora, degenerate descriptors (all-zero, all-one,
//! single-bit-set) and shapes that straddle the tile and SIMD-batch
//! boundaries (query/train counts that are not multiples of the 4-wide
//! AVX2 step, the 8-row query block or the 128-descriptor train tile).
//! The pooled entry points are proven independent of pool size,
//! including pools wider than the host's core count.

use eslam_features::matcher::{
    active_kernel, match_brute_force, match_brute_force_in, match_brute_force_reference,
    match_brute_force_with_kernel, match_with_ratio_in, match_with_ratio_reference,
    match_with_ratio_with_kernel, MatchKernel,
};
use eslam_features::orb::{OrbConfig, OrbExtractor, OrbScratch};
use eslam_features::pool::WorkerPool;
use eslam_features::Descriptor;
use eslam_image::GrayImage;
use proptest::prelude::*;

fn supported_kernels() -> Vec<MatchKernel> {
    MatchKernel::ALL
        .into_iter()
        .filter(|k| k.is_supported())
        .collect()
}

/// Splitmix-derived descriptor stream.
fn descriptor_set(n: usize, salt: u64) -> Vec<Descriptor> {
    (0..n)
        .map(|i| {
            let s = (i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15) ^ salt;
            Descriptor::from_words([s, s.rotate_left(13), s.rotate_left(29), s.rotate_left(47)])
        })
        .collect()
}

/// A descriptor with exactly one bit set.
fn single_bit(bit: usize) -> Descriptor {
    let mut d = Descriptor::ZERO;
    d.set_bit(bit, true);
    d
}

#[test]
fn every_supported_kernel_matches_reference_on_boundary_shapes() {
    // Shapes straddling the SIMD batch (4), the query block (8) and the
    // train tile (128): remainder handling must not change results.
    let shapes = [
        (1usize, 1usize),
        (1, 3),
        (1, 4),
        (1, 5),
        (2, 7),
        (3, 127),
        (5, 128),
        (7, 129),
        (8, 130),
        (9, 131),
        (17, 255),
        (33, 260),
    ];
    for kernel in supported_kernels() {
        for (nq, nt) in shapes {
            let query = descriptor_set(nq, 0xA5);
            let train = descriptor_set(nt, 0x5A);
            for max_d in [u32::MAX, 120, 64] {
                assert_eq!(
                    match_brute_force_with_kernel(kernel, &query, &train, max_d),
                    match_brute_force_reference(&query, &train, max_d),
                    "{kernel:?} {nq}x{nt} max {max_d}"
                );
                assert_eq!(
                    match_with_ratio_with_kernel(kernel, &query, &train, 0.8, max_d),
                    match_with_ratio_reference(&query, &train, 0.8, max_d),
                    "{kernel:?} ratio {nq}x{nt} max {max_d}"
                );
            }
        }
    }
}

#[test]
fn every_supported_kernel_handles_degenerate_descriptors() {
    let all_zero = Descriptor::ZERO;
    let all_one = Descriptor::from_words([u64::MAX; 4]);
    // Single-bit descriptors probing every word and both word edges.
    let bits = [0usize, 1, 63, 64, 127, 128, 191, 192, 254, 255];
    let mut train: Vec<Descriptor> = bits.iter().map(|&b| single_bit(b)).collect();
    train.push(all_zero);
    train.push(all_one);
    // Duplicates force the lowest-index tie rule through every kernel.
    train.push(all_zero);
    train.push(single_bit(64));
    let query: Vec<Descriptor> = [all_zero, all_one]
        .into_iter()
        .chain(bits.iter().map(|&b| single_bit(b)))
        .collect();
    for kernel in supported_kernels() {
        for max_d in [u32::MAX, 256, 2, 0] {
            assert_eq!(
                match_brute_force_with_kernel(kernel, &query, &train, max_d),
                match_brute_force_reference(&query, &train, max_d),
                "{kernel:?} degenerate max {max_d}"
            );
        }
        assert_eq!(
            match_with_ratio_with_kernel(kernel, &query, &train, 0.7, u32::MAX),
            match_with_ratio_reference(&query, &train, 0.7, u32::MAX),
            "{kernel:?} degenerate ratio"
        );
    }
}

#[test]
fn active_kernel_is_supported_and_drives_the_dispatcher() {
    let kernel = active_kernel();
    assert!(
        kernel.is_supported(),
        "active kernel {kernel:?} unsupported"
    );
    // The production entry point must agree with the pinned-kernel hook.
    let query = descriptor_set(130, 1);
    let train = descriptor_set(300, 2);
    assert_eq!(
        match_brute_force(&query, &train, u32::MAX),
        match_brute_force_with_kernel(kernel, &query, &train, u32::MAX),
    );
}

#[test]
fn kernel_names_round_trip() {
    for kernel in MatchKernel::ALL {
        assert_eq!(MatchKernel::from_name(kernel.name()), Some(kernel));
    }
    assert_eq!(MatchKernel::from_name("neon"), None);
    // The ladder is ordered slowest → fastest.
    assert!(MatchKernel::Scalar < MatchKernel::Popcnt);
    assert!(MatchKernel::Popcnt < MatchKernel::Avx2);
    assert!(MatchKernel::Avx2 < MatchKernel::Avx512);
    // Detection picks a supported rung.
    assert!(MatchKernel::detect().is_supported());
}

#[test]
fn pooled_matching_is_identical_for_any_pool_size() {
    // 300 query rows exceed MIN_ROWS_PER_THREAD×2, so multi-thread pools
    // genuinely split the rows (on any host — pool sizes here are exact,
    // not clamped).
    let query = descriptor_set(300, 7);
    let train = descriptor_set(513, 8);
    let expect = match_brute_force_reference(&query, &train, u32::MAX);
    let expect_ratio = match_with_ratio_reference(&query, &train, 0.8, u32::MAX);
    for threads in [1usize, 2, 3, 5] {
        let pool = WorkerPool::new(threads);
        assert_eq!(
            match_brute_force_in(&pool, &query, &train, u32::MAX),
            expect,
            "{threads} threads"
        );
        assert_eq!(
            match_with_ratio_in(&pool, &query, &train, 0.8, u32::MAX),
            expect_ratio,
            "{threads} threads (ratio)"
        );
    }
}

#[test]
fn pooled_extraction_matches_reference_for_any_pool_size() {
    let img = GrayImage::from_fn(200, 150, |x, y| {
        let base = if ((x / 10) + (y / 10)) % 2 == 0 {
            50
        } else {
            190
        };
        base + ((x * 31 + y * 17) % 23) as u8
    });
    let extractor = OrbExtractor::new(OrbConfig::default());
    let reference = extractor.extract_reference(&img);
    for threads in [1usize, 2, 4] {
        let mut scratch = OrbScratch::with_pool(WorkerPool::new(threads));
        // Two frames through the same scratch: the steady-state path.
        for frame in 0..2 {
            assert_eq!(
                extractor.extract_with(&img, &mut scratch),
                reference,
                "{threads} threads, frame {frame}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kernels_match_reference_on_random_corpora(
        nq in 1usize..96, nt in 1usize..320, salt in 0u64..10_000, max_d in 0u32..257,
    ) {
        let query = descriptor_set(nq, salt);
        let mut train = descriptor_set(nt, salt ^ 0xffff);
        if nt > 3 {
            // Inject duplicates so ties exercise the lowest-index rule.
            train[nt - 1] = train[1];
            train[nt / 2] = train[1];
        }
        let expect = match_brute_force_reference(&query, &train, max_d);
        let expect_ratio = match_with_ratio_reference(&query, &train, 0.8, max_d);
        for kernel in supported_kernels() {
            prop_assert_eq!(
                &match_brute_force_with_kernel(kernel, &query, &train, max_d),
                &expect,
                "{:?}", kernel
            );
            prop_assert_eq!(
                &match_with_ratio_with_kernel(kernel, &query, &train, 0.8, max_d),
                &expect_ratio,
                "{:?} (ratio)", kernel
            );
        }
    }

    #[test]
    fn kernels_agree_on_adversarial_bit_patterns(
        words in prop::collection::vec(any::<u64>(), 8..64),
        bit in 0usize..256,
    ) {
        // Mix random words with degenerate rows in one train set.
        let mut train: Vec<Descriptor> = words
            .chunks(4)
            .filter(|c| c.len() == 4)
            .map(|c| Descriptor::from_words([c[0], c[1], c[2], c[3]]))
            .collect();
        train.push(Descriptor::ZERO);
        train.push(Descriptor::from_words([u64::MAX; 4]));
        train.push(single_bit(bit));
        let query = [Descriptor::ZERO, Descriptor::from_words([u64::MAX; 4]), single_bit(255 - bit)];
        let expect = match_brute_force_reference(&query, &train, u32::MAX);
        for kernel in supported_kernels() {
            prop_assert_eq!(
                &match_brute_force_with_kernel(kernel, &query, &train, u32::MAX),
                &expect,
                "{:?}", kernel
            );
        }
    }
}
