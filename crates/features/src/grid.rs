//! Grid-based spatial feature distribution (extension).
//!
//! The paper filters purely by Harris score through the 1024-entry Heap;
//! production ORB-SLAM additionally spreads keypoints across the image
//! to stabilize PnP geometry. This module provides that post-filter as
//! an optional extension: the image is divided into a grid and each cell
//! retains at most `per_cell` keypoints (best score first), giving a
//! bounded, spatially even selection. Used by the heap-capacity ablation
//! to quantify what the Heap-only filter gives up.

use crate::orb::Keypoint;
use std::collections::HashMap;

/// Parameters of the grid filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridParams {
    /// Cell edge in base-image pixels.
    pub cell_size: u32,
    /// Maximum keypoints retained per cell.
    pub per_cell: usize,
}

impl Default for GridParams {
    fn default() -> Self {
        GridParams {
            cell_size: 32,
            per_cell: 4,
        }
    }
}

/// Statistics describing how evenly keypoints cover the image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageStats {
    /// Number of non-empty cells.
    pub occupied_cells: usize,
    /// Total cells inspected (bounding grid of the keypoints).
    pub total_cells: usize,
    /// Maximum keypoints found in one cell.
    pub max_per_cell: usize,
}

impl CoverageStats {
    /// Fraction of the bounding grid covered by at least one keypoint.
    pub fn occupancy(&self) -> f64 {
        if self.total_cells == 0 {
            0.0
        } else {
            self.occupied_cells as f64 / self.total_cells as f64
        }
    }
}

/// Returns the indices of keypoints retained by the grid filter, ordered
/// by descending score (the same order [`crate::orb::OrbExtractor`]
/// emits). Keypoints are binned by their base-image coordinates.
///
/// # Panics
/// Panics if `params.cell_size == 0` or `params.per_cell == 0`.
pub fn grid_filter(keypoints: &[Keypoint], params: &GridParams) -> Vec<usize> {
    assert!(params.cell_size > 0, "cell size must be positive");
    assert!(params.per_cell > 0, "per-cell quota must be positive");
    // Indices sorted by descending score; stable for equal scores.
    let mut order: Vec<usize> = (0..keypoints.len()).collect();
    order.sort_by(|&a, &b| {
        keypoints[b]
            .score
            .partial_cmp(&keypoints[a].score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut counts: HashMap<(i64, i64), usize> = HashMap::new();
    let mut kept = Vec::new();
    for idx in order {
        let kp = &keypoints[idx];
        let cell = (
            (kp.x / params.cell_size as f64).floor() as i64,
            (kp.y / params.cell_size as f64).floor() as i64,
        );
        let count = counts.entry(cell).or_insert(0);
        if *count < params.per_cell {
            *count += 1;
            kept.push(idx);
        }
    }
    kept
}

/// Measures the spatial coverage of a keypoint set over its bounding
/// grid of `cell_size` cells.
pub fn coverage(keypoints: &[Keypoint], cell_size: u32) -> CoverageStats {
    if keypoints.is_empty() || cell_size == 0 {
        return CoverageStats {
            occupied_cells: 0,
            total_cells: 0,
            max_per_cell: 0,
        };
    }
    let cs = cell_size as f64;
    let mut counts: HashMap<(i64, i64), usize> = HashMap::new();
    let (mut min_cx, mut max_cx) = (i64::MAX, i64::MIN);
    let (mut min_cy, mut max_cy) = (i64::MAX, i64::MIN);
    for kp in keypoints {
        let cx = (kp.x / cs).floor() as i64;
        let cy = (kp.y / cs).floor() as i64;
        *counts.entry((cx, cy)).or_insert(0) += 1;
        min_cx = min_cx.min(cx);
        max_cx = max_cx.max(cx);
        min_cy = min_cy.min(cy);
        max_cy = max_cy.max(cy);
    }
    let total = ((max_cx - min_cx + 1) * (max_cy - min_cy + 1)).max(0) as usize;
    CoverageStats {
        occupied_cells: counts.len(),
        total_cells: total,
        max_per_cell: counts.values().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(x: f64, y: f64, score: f64) -> Keypoint {
        Keypoint {
            x,
            y,
            level: 0,
            level_x: x as u32,
            level_y: y as u32,
            score,
            angle: 0.0,
            label: 0,
        }
    }

    #[test]
    fn quota_enforced_per_cell() {
        // Five keypoints in one 32px cell, quota 2 → best two kept.
        let kps = vec![
            kp(5.0, 5.0, 1.0),
            kp(6.0, 5.0, 5.0),
            kp(7.0, 5.0, 3.0),
            kp(8.0, 5.0, 4.0),
            kp(9.0, 5.0, 2.0),
        ];
        let kept = grid_filter(
            &kps,
            &GridParams {
                cell_size: 32,
                per_cell: 2,
            },
        );
        assert_eq!(kept.len(), 2);
        assert_eq!(kept, vec![1, 3]); // scores 5.0 then 4.0
    }

    #[test]
    fn separate_cells_independent() {
        let kps = vec![kp(5.0, 5.0, 1.0), kp(100.0, 5.0, 1.0), kp(5.0, 100.0, 1.0)];
        let kept = grid_filter(
            &kps,
            &GridParams {
                cell_size: 32,
                per_cell: 1,
            },
        );
        assert_eq!(kept.len(), 3);
    }

    #[test]
    fn output_sorted_by_score() {
        let kps = vec![kp(5.0, 5.0, 1.0), kp(100.0, 5.0, 9.0), kp(200.0, 5.0, 4.0)];
        let kept = grid_filter(&kps, &GridParams::default());
        let scores: Vec<f64> = kept.iter().map(|&i| kps[i].score).collect();
        assert_eq!(scores, vec![9.0, 4.0, 1.0]);
    }

    #[test]
    fn empty_input() {
        assert!(grid_filter(&[], &GridParams::default()).is_empty());
        let stats = coverage(&[], 32);
        assert_eq!(stats.occupancy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_panics() {
        grid_filter(
            &[kp(0.0, 0.0, 1.0)],
            &GridParams {
                cell_size: 0,
                per_cell: 1,
            },
        );
    }

    #[test]
    fn coverage_counts_cells() {
        // 4 keypoints in 2 distinct cells of a 2x1 bounding grid.
        let kps = vec![
            kp(5.0, 5.0, 1.0),
            kp(6.0, 6.0, 1.0),
            kp(40.0, 5.0, 1.0),
            kp(41.0, 6.0, 1.0),
        ];
        let stats = coverage(&kps, 32);
        assert_eq!(stats.occupied_cells, 2);
        assert_eq!(stats.total_cells, 2);
        assert_eq!(stats.max_per_cell, 2);
        assert!((stats.occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grid_filter_improves_spatial_evenness() {
        // A dense cluster plus a sparse spread: after filtering, the
        // cluster no longer dominates.
        let mut kps = Vec::new();
        for i in 0..50 {
            kps.push(kp(
                10.0 + (i % 7) as f64,
                10.0 + (i / 7) as f64,
                100.0 + i as f64,
            ));
        }
        for i in 0..10 {
            kps.push(kp(50.0 + 40.0 * i as f64, 200.0, 1.0));
        }
        let before = coverage(&kps, 32);
        let kept = grid_filter(
            &kps,
            &GridParams {
                cell_size: 32,
                per_cell: 3,
            },
        );
        let filtered: Vec<Keypoint> = kept.iter().map(|&i| kps[i]).collect();
        let after = coverage(&filtered, 32);
        assert!(after.max_per_cell <= 3);
        // All sparse points survive; the cluster is capped.
        assert_eq!(after.occupied_cells, before.occupied_cells);
        assert!(filtered.len() < kps.len());
        assert!(filtered.iter().filter(|k| k.score < 50.0).count() == 10);
    }
}
