//! Shared parsing for the `ESLAM_*` environment-override family.
//!
//! Every process-wide override (`ESLAM_MATCH_KERNEL`, `ESLAM_PREFETCH`,
//! `ESLAM_BACKEND`, `ESLAM_EXTRACT`, `ESLAM_ATLAS`) follows one
//! contract: unset, empty
//! and `auto` mean "no override — use the configured/detected value";
//! any other value must parse, and a typo panics loudly (so a CI-matrix
//! typo fails the job instead of silently testing the auto-detected
//! path). This module is that contract in one place; each subsystem
//! supplies only its value-set parser. The aggregated typed view of
//! all overrides lives in `eslam_core::overrides`.

/// Reads the forced value of `var`, if any.
///
/// * Unset, empty/whitespace, or `auto` (case-insensitive) → `None`
///   ("no override").
/// * Otherwise the trimmed, ASCII-lowercased value is handed to
///   `parse`; `Some(v)` is the forced value.
/// * `parse` returning `None` panics with
///   `unrecognised {var}={raw:?} (expected {expected})`, quoting the
///   original (untrimmed) value.
///
/// # Examples
///
/// ```
/// use eslam_features::envopt::forced;
///
/// // Unset variables force nothing.
/// let v = forced("ESLAM_DOCTEST_UNSET", "on or off", |s| match s {
///     "on" => Some(true),
///     "off" => Some(false),
///     _ => None,
/// });
/// assert_eq!(v, None);
/// ```
pub fn forced<T>(var: &str, expected: &str, parse: impl FnOnce(&str) -> Option<T>) -> Option<T> {
    let Ok(raw) = std::env::var(var) else {
        return None;
    };
    let value = raw.trim().to_ascii_lowercase();
    if value.is_empty() || value == "auto" {
        return None;
    }
    match parse(&value) {
        Some(v) => Some(v),
        None => panic!("unrecognised {var}={raw:?} (expected {expected})"),
    }
}

/// Reads `var` verbatim (trimmed, **not** lowercased) — for overrides
/// whose value is a path rather than a keyword, where case matters.
/// Unset or empty/whitespace → `None`; there is no `auto` keyword for
/// paths (a file literally named `auto` stays addressable).
pub fn raw_value(var: &str) -> Option<String> {
    let raw = std::env::var(var).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        None
    } else {
        Some(trimmed.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutations are process-global; each test uses its own unique
    // variable name so parallel execution cannot interleave.

    #[test]
    fn unset_empty_and_auto_force_nothing() {
        let parse = |s: &str| (s == "x").then_some(1);
        assert_eq!(forced("ESLAM_TEST_ENVOPT_UNSET", "x", parse), None);
        for v in ["", "  ", "auto", "AUTO", " Auto "] {
            std::env::set_var("ESLAM_TEST_ENVOPT_AUTO", v);
            assert_eq!(forced("ESLAM_TEST_ENVOPT_AUTO", "x", parse), None, "{v:?}");
        }
        std::env::remove_var("ESLAM_TEST_ENVOPT_AUTO");
    }

    #[test]
    fn values_are_trimmed_and_lowercased_before_parsing() {
        std::env::set_var("ESLAM_TEST_ENVOPT_CASE", "  ON ");
        let v = forced("ESLAM_TEST_ENVOPT_CASE", "on or off", |s| {
            (s == "on").then_some(true)
        });
        assert_eq!(v, Some(true));
        std::env::remove_var("ESLAM_TEST_ENVOPT_CASE");
    }

    #[test]
    #[should_panic(expected = "unrecognised ESLAM_TEST_ENVOPT_BAD=\"warp\"")]
    fn unparseable_values_panic_with_the_original_text() {
        std::env::set_var("ESLAM_TEST_ENVOPT_BAD", "warp");
        let _ = forced("ESLAM_TEST_ENVOPT_BAD", "on or off", |_| None::<bool>);
    }

    #[test]
    fn raw_values_keep_case_and_have_no_auto_keyword() {
        assert_eq!(raw_value("ESLAM_TEST_ENVOPT_RAW_UNSET"), None);
        std::env::set_var("ESLAM_TEST_ENVOPT_RAW", " /Maps/Auto.atlas ");
        assert_eq!(
            raw_value("ESLAM_TEST_ENVOPT_RAW").as_deref(),
            Some("/Maps/Auto.atlas")
        );
        std::env::set_var("ESLAM_TEST_ENVOPT_RAW", "auto");
        assert_eq!(raw_value("ESLAM_TEST_ENVOPT_RAW").as_deref(), Some("auto"));
        std::env::remove_var("ESLAM_TEST_ENVOPT_RAW");
    }
}
