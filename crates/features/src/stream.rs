//! Fused single-pass streaming extraction front-end.
//!
//! The paper's accelerator (§3, Fig. 4) never materializes intermediate
//! images: each pyramid level streams row by row through line buffers,
//! and smoothing, FAST, scoring, NMS, orientation and the descriptor
//! sampler all tap the stream at fixed latencies. This module is the
//! software mirror of that dataflow — one pass over each level, tiling
//! the image through L1/L2 once, with a small ring of line buffers
//! carrying the halo rows between stages. The legacy pass pipeline
//! (`OrbExtractor::process_level`) stays as the bit-exact oracle,
//! exactly like the PR 1 `*_reference` pattern.
//!
//! # Per-stage latency offsets
//!
//! All stages are driven by the raw-row scan position `y`. The halo each
//! stage needs below its output row (its *latency* in raw rows):
//!
//! | stage                    | needs rows        | latency source                |
//! |--------------------------|-------------------|-------------------------------|
//! | horizontal blur (h-row)  | `j` only          | 0 ([`STREAM_BLUR_HALO`] cols) |
//! | vertical blur (smoothed) | h-rows `k ± 3`    | [`STREAM_BLUR_HALO`] = 3      |
//! | FAST scan of row `y`     | raw `y ± 3`       | [`STREAM_FAST_HALO`] = 3      |
//! | NMS finalize of row `yf` | scores `yf ± 1`   | [`STREAM_NMS_DELAY`] = 1 scan |
//! | moments / descriptor     | smoothed `yc ± 15`| [`STREAM_PATCH_HALO`] = 15    |
//!
//! A candidate finalized at row `yc` therefore needs raw rows up to
//! `max(yc + FAST + NMS, yc + PATCH + BLUR) = yc +`
//! [`STREAM_LATENCY_ROWS`] (= 18): the FAST/NMS chain trails the scan by
//! 4 rows while the smoothing/descriptor chain trails it by 18, which is
//! the figure the `eslam-hw` band schedule mirrors stage for stage.
//!
//! # Ring buffers
//!
//! * **Smoothed ring** — [`SMOOTH_RING_ROWS`] (32) logical rows, sized
//!   to the widest consumer window (2 × 15 + 1 = 31 smoothed rows),
//!   stored *mirrored* (64 physical rows: virtual row `v` at slots
//!   `v % 32` and `v % 32 + 32`) so every patch window is one contiguous
//!   block of rows and the interior hot paths of
//!   [`patch_moments`](crate::orientation::patch_moments) and the
//!   compiled descriptor tables run on the ring unchanged.
//! * **H-row ring** — [`HROW_RING_ROWS`] (8) rows of 16-bit horizontal
//!   blur sums, covering the vertical tap window (7) under monotone
//!   advance.
//! * **Score rows** — 3 rotating rows of scored detections for the 3×3
//!   NMS window.
//!
//! Blur work is *lazy*: smoothed rows are produced only when a surviving
//! candidate needs them, skipping ahead over candidate-free spans. Peak
//! extraction working memory is `O(width)` — independent of image
//! height (`64·w` ring bytes + `2·8·w` h-row bytes per level), where the
//! pass pipeline holds a full smoothed frame plus a `u16` scratch
//! (`3·w·h` bytes).
//!
//! # Bit-identity
//!
//! Every stage reuses the exact kernels of the pass pipeline (shared
//! band producers for blur, the same FAST decision, the same Harris
//! arithmetic, the local NMS rule of [`crate::nms::suppress`], the same
//! interior moments/descriptor paths), candidates are emitted in the
//! same raster order per level, and the merge is unchanged — so
//! keypoints, responses, angles, descriptors *and stats* are
//! bit-identical to the pass pipeline. `tests/stream_equivalence.rs`
//! proves it across the paper sequences.
//!
//! # Band parallelism
//!
//! The stream is also the unit of parallelism: a level's finalize rows
//! (`[3, h − 3)`) partition into contiguous horizontal *bands*
//! ([`band_partition`]), and each band streams independently through
//! its own ring buffers — the only duplicated work is the halo re-scan
//! above each interior band's first candidate (bounded by
//! [`STREAM_LATENCY_ROWS`], exactly the overlap the paper's accelerator
//! pays between its parallel compute units). Bands finalize their owned
//! rows only, count stats for their owned scan rows only, and emit in
//! raster order, so concatenating band outputs in band order reproduces
//! the single-band emission sequence bit for bit. All `(level, band)`
//! tasks of a frame run on one depth-first schedule
//! ([`depth_first_schedule`]) across the worker pool: heavy level-0
//! bands dispatch first and the small upper-level bands fill the tail,
//! replacing the old one-task-per-level barrier. Band count comes from
//! [`BandMode`] in [`OrbConfig`](crate::orb::OrbConfig) (`Auto` = pool
//! threads), overridable per process via [`BANDS_ENV`].

use crate::brief::{compute_descriptor_ring, PatternOffsets};
use crate::descriptor::Descriptor;
use crate::envopt;
use crate::fast::{self, FastDetection};
use crate::harris;
use crate::nms::ScoredPoint;
use crate::orb::{Keypoint, LevelScratch, OrbExtractor, Workflow, EDGE_MARGIN};
use crate::orientation::patch_moments_ring;
use eslam_image::filter::{blur_hrow_7x7_into, blur_vrow_7x7_into};
use eslam_image::GrayImage;
use std::ops::Range;
use std::sync::OnceLock;

/// Environment override selecting the extraction path; values `stream`,
/// `passes`, or `auto` (see [`ExtractMode`] and `eslam_core::overrides`).
pub const EXTRACT_ENV: &str = "ESLAM_EXTRACT";

/// Environment override forcing the per-level row-band count of the
/// band-parallel streaming pass; `auto` (or unset/empty) defers to
/// [`BandMode`] in the config, a positive integer forces that many
/// bands (see `eslam_core::overrides`).
pub const BANDS_ENV: &str = "ESLAM_BANDS";

/// Columns of halo the 7-tap blur needs on each side (also its row halo
/// in the vertical pass).
pub const STREAM_BLUR_HALO: u32 = 3;
/// Rows of halo the FAST segment test needs (radius-3 Bresenham circle).
pub const STREAM_FAST_HALO: u32 = 3;
/// Scan rows the 3×3 NMS trails behind the FAST scan (row `y` finalizes
/// once row `y + 1` is scored).
pub const STREAM_NMS_DELAY: u32 = 1;
/// Rows of halo the orientation/descriptor patch needs (radius 15).
pub const STREAM_PATCH_HALO: u32 = 15;

/// Logical rows of the smoothed line-buffer ring: the widest consumer
/// window is `2 · STREAM_PATCH_HALO + 1 = 31` rows, rounded up to a
/// power of two for cheap slot arithmetic.
pub const SMOOTH_RING_ROWS: u32 = 32;
/// Rows of the horizontal-blur ring: the vertical tap window is
/// `2 · STREAM_BLUR_HALO + 1 = 7` rows, rounded up to a power of two.
pub const HROW_RING_ROWS: u32 = 8;

/// Raw-row lookahead between a candidate's row and the last raw row its
/// emission touches: the maximum of the FAST/NMS chain
/// (`STREAM_FAST_HALO + STREAM_NMS_DELAY`) and the smoothing/descriptor
/// chain (`STREAM_PATCH_HALO + STREAM_BLUR_HALO`).
pub const STREAM_LATENCY_ROWS: u32 = {
    let fast_chain = STREAM_FAST_HALO + STREAM_NMS_DELAY;
    let descriptor_chain = STREAM_PATCH_HALO + STREAM_BLUR_HALO;
    if descriptor_chain > fast_chain {
        descriptor_chain
    } else {
        fast_chain
    }
};

/// Extraction-path selector carried in
/// [`OrbConfig`](crate::orb::OrbConfig) and overridable per process via
/// [`EXTRACT_ENV`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtractMode {
    /// Pick automatically: the streaming pass wherever the workflow
    /// supports it (everything but [`Workflow::Original`], whose
    /// post-filter descriptor stage needs the full smoothed frame).
    #[default]
    Auto,
    /// Force the fused streaming pass (falls back to the pass pipeline,
    /// with a one-time warning, where the workflow cannot stream).
    Stream,
    /// Force the legacy multi-pass pipeline (the oracle path).
    Passes,
}

impl ExtractMode {
    /// Parses a lowercased override value; `None` for anything outside
    /// `auto` / `stream` / `passes`.
    pub fn parse(value: &str) -> Option<ExtractMode> {
        match value {
            "auto" => Some(ExtractMode::Auto),
            "stream" => Some(ExtractMode::Stream),
            "passes" => Some(ExtractMode::Passes),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExtractMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExtractMode::Auto => "auto",
            ExtractMode::Stream => "stream",
            ExtractMode::Passes => "passes",
        })
    }
}

/// The process-wide forced mode, read once. Typos hard-error via
/// [`envopt::forced`]; `auto` (or unset/empty) forces nothing.
pub(crate) fn forced_mode() -> Option<ExtractMode> {
    static FORCED: OnceLock<Option<ExtractMode>> = OnceLock::new();
    *FORCED.get_or_init(|| {
        envopt::forced(EXTRACT_ENV, "stream, passes, or auto", |v| match v {
            "stream" => Some(ExtractMode::Stream),
            "passes" => Some(ExtractMode::Passes),
            _ => None,
        })
    })
}

/// Resolves whether extraction takes the streaming path: the forced env
/// mode wins over the configured mode; `Auto` streams exactly where the
/// workflow supports it. Forcing `stream` onto [`Workflow::Original`]
/// warns once (through the telemetry event ring) and keeps the pass
/// pipeline, mirroring the matcher's unsupported-kernel fallback.
pub(crate) fn stream_active(config_mode: ExtractMode, workflow: Workflow) -> bool {
    let mode = forced_mode().unwrap_or(config_mode);
    match (mode, workflow) {
        (ExtractMode::Passes, _) => false,
        (_, Workflow::Rescheduled) => true,
        (ExtractMode::Stream, Workflow::Original) => {
            static WARNED: OnceLock<()> = OnceLock::new();
            WARNED.get_or_init(|| {
                eslam_telemetry::events::warn(
                    "ESLAM_EXTRACT=stream requested but the Original workflow's \
                     post-filter descriptor stage needs the full smoothed frame; \
                     using the pass pipeline",
                );
            });
            false
        }
        (ExtractMode::Auto, Workflow::Original) => false,
    }
}

/// Row-band count selector for the band-parallel streaming pass,
/// carried in [`OrbConfig`](crate::orb::OrbConfig) and overridable per
/// process via [`BANDS_ENV`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BandMode {
    /// One band per worker-pool thread — a single-core host resolves to
    /// one band and never pays the split.
    #[default]
    Auto,
    /// Exactly `n` bands per level (clamped per level by
    /// [`effective_bands`]; `Fixed(0)` is treated as 1).
    Fixed(usize),
}

impl BandMode {
    /// Parses a lowercased override value: `auto`, or a positive band
    /// count; `None` for anything else (including `0`).
    pub fn parse(value: &str) -> Option<BandMode> {
        if value == "auto" {
            return Some(BandMode::Auto);
        }
        value
            .parse::<usize>()
            .ok()
            .filter(|n| *n >= 1)
            .map(BandMode::Fixed)
    }
}

impl std::fmt::Display for BandMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BandMode::Auto => f.write_str("auto"),
            BandMode::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// The process-wide forced band count, read once. Typos (anything that
/// is not `auto` or a positive integer) hard-error via
/// [`envopt::forced`]; `auto` (or unset/empty) forces nothing.
pub(crate) fn forced_bands() -> Option<usize> {
    static FORCED: OnceLock<Option<usize>> = OnceLock::new();
    *FORCED.get_or_init(|| {
        envopt::forced(BANDS_ENV, "auto or a positive band count", |v| {
            v.parse::<usize>().ok().filter(|n| *n >= 1)
        })
    })
}

/// Resolves the requested band count: the forced env value wins over
/// the configured mode; `Auto` matches the pool's thread count, so the
/// split engages exactly where workers exist to absorb it.
pub(crate) fn resolve_bands(config: BandMode, pool_threads: usize) -> usize {
    match forced_bands() {
        Some(n) => n,
        None => match config {
            BandMode::Auto => pool_threads.max(1),
            BandMode::Fixed(n) => n.max(1),
        },
    }
}

/// Clamps a requested band count to what a level can support: every
/// band must own at least one finalize row of the scan range
/// `[3, h − 3)`, so the count degrades to the interior row count —
/// never an empty band — and is always at least 1 (levels too small to
/// scan, `h < 7`, degrade to one no-op band).
pub fn effective_bands(requested: usize, height: u32) -> usize {
    let interior = (height as usize).saturating_sub(6);
    requested.clamp(1, interior.max(1))
}

/// Partitions a level's finalize rows `[3, h − 3)` into
/// [`effective_bands`]`(requested, height)` contiguous bands of
/// near-equal size (the first `interior % bands` bands take one extra
/// row). Empty when the level is too small to scan (`h < 7`).
pub fn band_partition(height: u32, requested: usize) -> Vec<Range<usize>> {
    let h = height as usize;
    if h < 7 {
        return Vec::new();
    }
    let interior = h - 6;
    let bands = effective_bands(requested, height);
    let base = interior / bands;
    let rem = interior % bands;
    let mut out = Vec::with_capacity(bands);
    let mut start = 3usize;
    for b in 0..bands {
        let len = base + usize::from(b < rem);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, h - 3);
    out
}

/// One `(level, band)` task of the depth-first band schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandTask {
    /// Pyramid level index.
    pub level: usize,
    /// Band index within the level's [`band_partition`].
    pub band: usize,
    /// Finalize rows the band owns.
    pub rows: Range<usize>,
    /// Estimated cost (owned rows × level width) steering the order.
    pub cost: u64,
}

/// The depth-first band schedule across a pyramid: every level splits
/// by [`band_partition`], then all `(level, band)` tasks are ordered by
/// descending estimated cost (ties broken by `(level, band)` for
/// determinism). Heavy level-0 bands dispatch first and the small
/// upper-level bands fill the tail, so a worker finishing a level-0
/// band descends straight into the next level instead of idling at a
/// per-level barrier — levels overlap within one frame. The order is a
/// pure scheduling concern: band outputs land in disjoint slots and the
/// merge reads them back in `(level, band)` order, so results are
/// bit-identical under every schedule.
pub fn depth_first_schedule(dims: &[(u32, u32)], requested: usize) -> Vec<BandTask> {
    let mut tasks = Vec::new();
    for (level, &(w, h)) in dims.iter().enumerate() {
        for (band, rows) in band_partition(h, requested).into_iter().enumerate() {
            let cost = rows.len() as u64 * w as u64;
            tasks.push(BandTask {
                level,
                band,
                rows,
                cost,
            });
        }
    }
    tasks.sort_by(|a, b| {
        b.cost
            .cmp(&a.cost)
            .then(a.level.cmp(&b.level))
            .then(a.band.cmp(&b.band))
    });
    tasks
}

/// Ring buffers of the streaming pass, held per level inside
/// [`OrbScratch`](crate::orb::OrbScratch) and reused across frames.
#[derive(Debug, Default)]
pub(crate) struct StreamScratch {
    /// Mirrored smoothed ring: `2 · SMOOTH_RING_ROWS` physical rows.
    pub(crate) ring: GrayImage,
    /// Horizontal blur sums: `HROW_RING_ROWS` rows of `u16`.
    pub(crate) hrows: Vec<u16>,
    /// Scored detections of the three NMS window rows, indexed `y % 3`.
    pub(crate) rows: [Vec<ScoredPoint>; 3],
}

impl StreamScratch {
    /// Bytes currently held by the line buffers (diagnostic; constant in
    /// image height for a fixed width).
    pub(crate) fn working_bytes(&self) -> usize {
        self.ring.as_raw().len() + 2 * self.hrows.len()
    }
}

/// Per-band state of the band-parallel streaming pass: each band owns
/// its own line-buffer rings, detection buffer, result list and
/// counters, so bands of one level stream concurrently with no shared
/// mutable state. Held per level inside
/// [`OrbScratch`](crate::orb::OrbScratch) and reused across frames.
#[derive(Debug, Default)]
pub(crate) struct BandScratch {
    /// One-row FAST detection buffer.
    pub(crate) detections: Vec<FastDetection>,
    /// The band's own ring buffers (full level width — the per-band
    /// halo duplication the working-memory accounting must include).
    pub(crate) stream: StreamScratch,
    /// Oriented + described survivors of the band's owned rows, in
    /// raster order.
    pub(crate) results: Vec<(Keypoint, Descriptor)>,
    /// Raw FAST detections on the band's owned scan rows (halo rows are
    /// scanned by two bands but counted by their owner only).
    pub(crate) fast_count: usize,
    /// Survivors of NMS + the edge margin on the band's owned rows.
    pub(crate) cand_count: usize,
}

impl BandScratch {
    /// Bytes currently held by the band's line buffers.
    pub(crate) fn working_bytes(&self) -> usize {
        self.stream.working_bytes()
    }
}

/// The mutable buffers one band streams through — grouped so the band
/// runner can be fed either from a [`LevelScratch`]'s own fields (the
/// single-band path) or from a [`BandScratch`] (the band-parallel
/// path).
struct BandBuffers<'a> {
    detections: &'a mut Vec<FastDetection>,
    stream: &'a mut StreamScratch,
    results: &'a mut Vec<(Keypoint, Descriptor)>,
    fast_count: &'a mut usize,
    cand_count: &'a mut usize,
}

/// `q` suppresses `p` under the 3×3 NMS rule of
/// [`crate::nms::suppress`]: strictly higher score, or an equal score at
/// an earlier raster position.
#[inline]
fn beats(q: &ScoredPoint, p: &ScoredPoint) -> bool {
    q.score > p.score || (q.score == p.score && (q.y, q.x) < (p.y, p.x))
}

/// The detections of `row` (sorted by x) within `[x − 1, x + 1]`.
#[inline]
fn row_neighbors(row: &[ScoredPoint], x: u32) -> &[ScoredPoint] {
    let lo = x.saturating_sub(1);
    let from = row.partition_point(|q| q.x < lo);
    let to = from + row[from..].partition_point(|q| q.x <= x + 1);
    &row[from..to]
}

/// The three score rows forming the NMS window around finalize row `yf`
/// (`yf − 1`, `yf`, `yf + 1` at slots `(yf + 2) % 3`, `yf % 3`,
/// `(yf + 1) % 3`).
fn nms_window(rows: &[Vec<ScoredPoint>; 3], yf: usize) -> (&[ScoredPoint], &[ScoredPoint]) {
    (&rows[(yf + 2) % 3], &rows[yf % 3])
}

/// Per-level state of the streaming pass that advances the lazy
/// smoothing chain and emits finished candidates.
struct StreamLevel<'a> {
    ex: &'a OrbExtractor,
    img: &'a GrayImage,
    level: usize,
    scale: f64,
    w: usize,
    h: usize,
    ring: &'a mut GrayImage,
    hrows: &'a mut [u16],
    offsets: Option<&'a PatternOffsets>,
    results: &'a mut Vec<(Keypoint, Descriptor)>,
    cand_count: &'a mut usize,
    /// Next raw row to run the horizontal blur on.
    h_next: usize,
    /// Next smoothed row to produce into the ring.
    smooth_next: usize,
}

impl StreamLevel<'_> {
    /// Finalizes NMS for row `yf` and emits every survivor behind the
    /// edge margin, in x order — the raster order
    /// [`crate::nms::suppress_sorted_into`] + margin filtering produce.
    fn finalize_row(&mut self, prev: &[ScoredPoint], cur: &[ScoredPoint], next: &[ScoredPoint]) {
        'candidate: for (i, p) in cur.iter().enumerate() {
            // In-row neighbours are adjacent in the sorted row.
            if i > 0 {
                let q = &cur[i - 1];
                if q.x + 1 == p.x && beats(q, p) {
                    continue 'candidate;
                }
            }
            if let Some(q) = cur.get(i + 1) {
                if q.x == p.x + 1 && beats(q, p) {
                    continue 'candidate;
                }
            }
            for q in row_neighbors(prev, p.x) {
                if beats(q, p) {
                    continue 'candidate;
                }
            }
            for q in row_neighbors(next, p.x) {
                if beats(q, p) {
                    continue 'candidate;
                }
            }
            if p.x < EDGE_MARGIN
                || p.y < EDGE_MARGIN
                || p.x + EDGE_MARGIN >= self.img.width()
                || p.y + EDGE_MARGIN >= self.img.height()
            {
                continue 'candidate;
            }
            *self.cand_count += 1;
            self.emit(p);
        }
    }

    /// Orients and describes one surviving candidate off the ring.
    fn emit(&mut self, p: &ScoredPoint) {
        let yc = p.y as usize;
        let halo = STREAM_PATCH_HALO as usize;
        // The edge margin guarantees yc ± 15 stay inside the image.
        self.ensure_smoothed(yc - halo, yc + halo);
        let moments = patch_moments_ring(self.ring, p.x, p.y, SMOOTH_RING_ROWS);
        let kp = self
            .ex
            .orient_from_moments(moments, p, self.level, self.scale);
        let desc = if let Some(table) = self.offsets {
            compute_descriptor_ring(self.ring, p.x, p.y, SMOOTH_RING_ROWS, table).steer(kp.label)
        } else {
            let slot = (p.y - STREAM_PATCH_HALO) % SMOOTH_RING_ROWS + STREAM_PATCH_HALO;
            self.ex
                .describe_at(self.ring, p.x, slot, kp.label, kp.angle, None)
        };
        self.results.push((kp, desc));
    }

    /// Advances the lazy blur chain until smoothed rows `..= upto` are
    /// in the ring. `lo` is the first row the caller will read: when the
    /// chain is further back than that (a candidate-free span), it jumps
    /// ahead instead of smoothing rows nobody looks at.
    fn ensure_smoothed(&mut self, lo: usize, upto: usize) {
        if self.smooth_next < lo {
            self.smooth_next = lo;
        }
        debug_assert!(upto < self.h);
        let w = self.w;
        let data = self.img.as_raw();
        let hrow_rows = HROW_RING_ROWS as usize;
        let ring_rows = SMOOTH_RING_ROWS as usize;
        let halo = STREAM_BLUR_HALO as usize;
        while self.smooth_next <= upto {
            let k = self.smooth_next;
            // Horizontal pass for the raw rows the vertical tap touches
            // (clamped at the image borders like the full-frame pass).
            let need_lo = k.saturating_sub(halo);
            let need_hi = (k + halo).min(self.h - 1);
            if self.h_next < need_lo {
                self.h_next = need_lo;
            }
            while self.h_next <= need_hi {
                let j = self.h_next;
                blur_hrow_7x7_into(
                    &data[j * w..(j + 1) * w],
                    &mut self.hrows[(j % hrow_rows) * w..][..w],
                );
                self.h_next += 1;
            }
            // Vertical combine into the ring slot, then its mirror.
            let taps: [&[u16]; 7] = std::array::from_fn(|i| {
                let sy = (k as i64 + i as i64 - halo as i64).clamp(0, self.h as i64 - 1) as usize;
                &self.hrows[(sy % hrow_rows) * w..][..w]
            });
            let slot = k % ring_rows;
            let ring_data = self.ring.as_raw_mut();
            blur_vrow_7x7_into(&taps, &mut ring_data[slot * w..][..w]);
            let (low, high) = ring_data.split_at_mut(ring_rows * w);
            high[slot * w..][..w].copy_from_slice(&low[slot * w..][..w]);
            self.smooth_next = k + 1;
        }
    }
}

/// The fused per-level streaming pass: one scan over the level's rows
/// drives FAST + Harris, 3×3 NMS one row behind, and — per surviving
/// candidate — lazy blur, moments and descriptor off the ring buffers.
/// Drop-in replacement for [`OrbExtractor::process_level`] under
/// [`Workflow::Rescheduled`], bit-identical results and stats.
pub(crate) fn process_level_stream(
    ex: &OrbExtractor,
    img: &GrayImage,
    level: usize,
    scale: f64,
    ls: &mut LevelScratch,
) {
    if ex.config().workflow == Workflow::Original {
        // Defensive: the Original schedule re-describes off the full
        // smoothed frame after filtering; resolution should never route
        // it here (see `stream_active`).
        return ex.process_level(img, level, scale, ls);
    }
    ex.prepare_offsets(img.width(), ls);
    ls.keypoints.clear();
    let h = img.height() as usize;
    let owned = if img.width() >= 7 && h >= 7 {
        3..h - 3
    } else {
        0..0
    };
    let LevelScratch {
        detections,
        results,
        stream,
        offsets,
        fast_count,
        cand_count,
        ..
    } = ls;
    stream_band(
        ex,
        img,
        level,
        scale,
        offsets.as_ref(),
        BandBuffers {
            detections,
            stream,
            results,
            fast_count,
            cand_count,
        },
        owned,
    );
}

/// Streams one row band of a level into its [`BandScratch`] — the task
/// body of the band-parallel schedule. `offsets` must already be
/// prepared by the caller (the table is shared read-only across a
/// level's bands).
pub(crate) fn process_band_stream(
    ex: &OrbExtractor,
    img: &GrayImage,
    level: usize,
    scale: f64,
    offsets: Option<&PatternOffsets>,
    bs: &mut BandScratch,
    owned: Range<usize>,
) {
    let BandScratch {
        detections,
        stream,
        results,
        fast_count,
        cand_count,
    } = bs;
    stream_band(
        ex,
        img,
        level,
        scale,
        offsets,
        BandBuffers {
            detections,
            stream,
            results,
            fast_count,
            cand_count,
        },
        owned,
    );
}

/// Streams one band of a level: raw rows
/// `max(3, owned.start − 1) .. min(h − 3, owned.end + 1)` are scanned
/// and scored (one row of NMS halo on each interior side), exactly the
/// `owned` rows are finalized, and survivors emit in raster order. The
/// lazy blur chain independently re-produces up to
/// [`STREAM_LATENCY_ROWS`] raw rows above the band's first candidate —
/// the duplicated halo work that buys band independence. Stats count
/// owned rows only, so per-band sums equal the single-band totals, and
/// concatenating band outputs in band order reproduces the single-band
/// emission sequence exactly — the partition is invisible in the
/// results.
fn stream_band(
    ex: &OrbExtractor,
    img: &GrayImage,
    level: usize,
    scale: f64,
    offsets: Option<&PatternOffsets>,
    buf: BandBuffers<'_>,
    owned: Range<usize>,
) {
    buf.results.clear();
    *buf.fast_count = 0;
    *buf.cand_count = 0;
    for row in &mut buf.stream.rows {
        row.clear();
    }
    let w = img.width() as usize;
    let h = img.height() as usize;
    if w < 7 || h < 7 || owned.is_empty() {
        return;
    }
    debug_assert!(owned.start >= 3 && owned.end <= h - 3);
    buf.stream.ring.reshape(img.width(), 2 * SMOOTH_RING_ROWS);
    buf.stream.hrows.resize(HROW_RING_ROWS as usize * w, 0);

    let detections = buf.detections;
    let StreamScratch { ring, hrows, rows } = buf.stream;
    let mut st = StreamLevel {
        ex,
        img,
        level,
        scale,
        w,
        h,
        ring,
        hrows,
        offsets,
        results: buf.results,
        cand_count: buf.cand_count,
        h_next: 0,
        smooth_next: 0,
    };
    let threshold = ex.config().fast_threshold;

    let scan_lo = owned.start.max(4) - 1;
    let scan_hi = (owned.end + 1).min(h - 3);
    for y in scan_lo..scan_hi {
        detections.clear();
        fast::detect_band_into(img, threshold, y as u32..y as u32 + 1, detections);
        if owned.contains(&y) {
            *buf.fast_count += detections.len();
        }
        let row = &mut rows[y % 3];
        row.clear();
        harris::score_band(img, detections, row);
        if y > scan_lo {
            let yf = y - 1;
            // A band's first owned row sees its upper neighbour either
            // as the scanned halo row (interior band) or as the cleared
            // ring slot (`owned.start == 3`, the image border).
            if owned.contains(&yf) {
                let (prev, cur) = nms_window(rows, yf);
                st.finalize_row(prev, cur, &rows[(yf + 1) % 3]);
            }
        }
    }
    // The level's last finalize row has no successor: finalize against
    // an empty "next" row (its ring slot holds a stale row from 3 scans
    // back). Interior bands already finalized their last owned row
    // against the scanned halo row below inside the loop.
    if owned.end == h - 3 {
        let yf = h - 4;
        let (prev, cur) = nms_window(rows, yf);
        st.finalize_row(prev, cur, &[]);
    }
}

/// Re-exported consistency hook for `eslam-hw`: `(halo rows carried per
/// stage, total raw-row latency)` — the numbers the hardware model's
/// band schedule must mirror.
pub fn latency_schedule() -> ([(&'static str, u32); 4], u32) {
    (
        [
            ("blur", STREAM_BLUR_HALO),
            ("fast", STREAM_FAST_HALO),
            ("nms", STREAM_NMS_DELAY),
            ("patch", STREAM_PATCH_HALO),
        ],
        STREAM_LATENCY_ROWS,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orb::{DescriptorKind, OrbConfig, OrbScratch};

    fn test_image(w: u32, h: u32, seed: u64) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| {
            let base = if ((x / 12) + (y / 12)) % 2 == 0 {
                50
            } else {
                190
            };
            base + ((x as u64 * 31 + y as u64 * 17 + seed * 1009) % 23) as u8
        })
    }

    #[test]
    fn latency_is_descriptor_chain_bound() {
        assert_eq!(STREAM_LATENCY_ROWS, 18);
        const { assert!(STREAM_LATENCY_ROWS >= STREAM_FAST_HALO + STREAM_NMS_DELAY) };
        assert_eq!(STREAM_LATENCY_ROWS, STREAM_PATCH_HALO + STREAM_BLUR_HALO);
        // The rings hold their widest consumer window.
        const { assert!(SMOOTH_RING_ROWS > 2 * STREAM_PATCH_HALO) };
        const { assert!(HROW_RING_ROWS > 2 * STREAM_BLUR_HALO) };
    }

    #[test]
    fn extract_mode_parse_round_trips() {
        for mode in [ExtractMode::Auto, ExtractMode::Stream, ExtractMode::Passes] {
            assert_eq!(ExtractMode::parse(&mode.to_string()), Some(mode));
        }
        assert_eq!(ExtractMode::parse("strem"), None);
        assert_eq!(ExtractMode::parse(""), None);
        assert_eq!(ExtractMode::default(), ExtractMode::Auto);
    }

    #[test]
    fn band_mode_parse_round_trips() {
        for mode in [BandMode::Auto, BandMode::Fixed(1), BandMode::Fixed(8)] {
            assert_eq!(BandMode::parse(&mode.to_string()), Some(mode));
        }
        // `0` bands is a typo, not a request: it must hard-error at the
        // envopt layer rather than silently mean anything.
        assert_eq!(BandMode::parse("0"), None);
        assert_eq!(BandMode::parse("two"), None);
        assert_eq!(BandMode::parse(""), None);
        assert_eq!(BandMode::default(), BandMode::Auto);
    }

    #[test]
    fn band_count_resolution_prefers_config_then_pool() {
        // (No env override in-process: forced_bands is exercised by the
        // subprocess probes in eslam_core::overrides.)
        assert_eq!(resolve_bands(BandMode::Fixed(4), 1), 4);
        assert_eq!(resolve_bands(BandMode::Fixed(0), 8), 1);
        assert_eq!(resolve_bands(BandMode::Auto, 1), 1);
        assert_eq!(resolve_bands(BandMode::Auto, 6), 6);
        assert_eq!(resolve_bands(BandMode::Auto, 0), 1);
    }

    #[test]
    fn band_partition_covers_the_finalize_rows_exactly() {
        for h in [7u32, 8, 10, 19, 37, 96, 100, 480, 481] {
            for requested in [1usize, 2, 3, 4, 7, 16, 1000] {
                let parts = band_partition(h, requested);
                let interior = h as usize - 6;
                assert_eq!(
                    parts.len(),
                    effective_bands(requested, h),
                    "{h} {requested}"
                );
                assert!(parts.len() <= interior);
                // Contiguous cover of [3, h - 3), every band non-empty,
                // sizes within one row of each other.
                let mut next = 3usize;
                let (mut min_len, mut max_len) = (usize::MAX, 0);
                for band in &parts {
                    assert_eq!(band.start, next, "{h} {requested}");
                    assert!(!band.is_empty(), "{h} {requested}");
                    min_len = min_len.min(band.len());
                    max_len = max_len.max(band.len());
                    next = band.end;
                }
                assert_eq!(next, h as usize - 3, "{h} {requested}");
                assert!(max_len - min_len <= 1, "{h} {requested}");
            }
        }
    }

    #[test]
    fn band_clamp_degrades_never_empties() {
        // Levels too small to scan yield one (no-op) band and an empty
        // partition; tiny-but-scannable levels degrade the count.
        for h in [0u32, 1, 3, 6] {
            assert_eq!(effective_bands(4, h), 1, "h={h}");
            assert!(band_partition(h, 4).is_empty(), "h={h}");
        }
        assert_eq!(effective_bands(1000, 10), 4); // interior rows = 4
        assert_eq!(effective_bands(0, 480), 1);
        assert_eq!(effective_bands(4, 480), 4);
    }

    #[test]
    fn depth_first_schedule_interleaves_levels_by_cost() {
        // A VGA-ish 3-level pyramid, 2 bands: level-0 bands lead, the
        // small upper-level bands fill the tail, every (level, band)
        // task appears exactly once.
        let dims = [(640u32, 480u32), (320, 240), (160, 120)];
        let tasks = depth_first_schedule(&dims, 2);
        assert_eq!(tasks.len(), 6);
        assert_eq!((tasks[0].level, tasks[0].band), (0, 0));
        assert_eq!((tasks[1].level, tasks[1].band), (0, 1));
        assert_eq!(tasks.last().unwrap().level, 2);
        for pair in tasks.windows(2) {
            assert!(pair[0].cost >= pair[1].cost);
        }
        let mut seen: Vec<(usize, usize)> = tasks.iter().map(|t| (t.level, t.band)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]);
        // The rows in the schedule are the level partitions verbatim.
        for t in &tasks {
            assert_eq!(t.rows, band_partition(dims[t.level].1, 2)[t.band]);
        }
    }

    #[test]
    fn band_split_matches_single_band_across_counts_and_sizes() {
        // The tentpole identity at unit scale: Fixed(n) splits must be
        // invisible in the output (features AND stats) for every band
        // count, including counts past the interior-row clamp.
        let passes = OrbExtractor::new(OrbConfig::default());
        for (w, h) in [(64u32, 64u32), (200, 150), (40, 400), (97, 83)] {
            let img = test_image(w, h, 21);
            let oracle = passes.extract_passes_with(&img, &mut OrbScratch::default());
            for bands in [1usize, 2, 3, 4, 7, 64, 500] {
                let e = OrbExtractor::new(OrbConfig {
                    bands: BandMode::Fixed(bands),
                    ..Default::default()
                });
                let split = e.extract_stream_with(&img, &mut OrbScratch::default());
                assert_eq!(split, oracle, "{w}x{h} bands={bands}");
            }
        }
    }

    mod band_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            // Satellite: degenerate sizes down to 1×1 must degrade the
            // band count, never panic or drift from the multi-pass path.
            #[test]
            fn banded_stream_matches_passes_on_degenerate_sizes(
                w in 1u32..40, h in 1u32..40, bands in 1usize..10, seed in 0u64..1000,
            ) {
                let img = test_image(w, h, seed);
                let e = OrbExtractor::new(OrbConfig {
                    bands: BandMode::Fixed(bands),
                    ..Default::default()
                });
                let split = e.extract_stream_with(&img, &mut OrbScratch::default());
                let oracle = e.extract_passes_with(&img, &mut OrbScratch::default());
                prop_assert_eq!(split, oracle);
            }

            #[test]
            fn band_partition_is_total_and_exact(h in 0u32..2000, requested in 0usize..4000) {
                let parts = band_partition(h, requested.max(1));
                if h < 7 {
                    prop_assert!(parts.is_empty());
                } else {
                    prop_assert_eq!(parts.len(), effective_bands(requested.max(1), h));
                    let mut next = 3usize;
                    for band in &parts {
                        prop_assert_eq!(band.start, next);
                        prop_assert!(!band.is_empty());
                        next = band.end;
                    }
                    prop_assert_eq!(next, h as usize - 3);
                }
            }
        }
    }

    #[test]
    fn band_split_scratch_reuse_is_equivalent() {
        // Reused band scratches across frames and geometry changes —
        // including a band-count change on the same scratch.
        let mut scratch = OrbScratch::default();
        for (frame, bands) in [(0u64, 4usize), (1, 4), (2, 2), (3, 5)] {
            let e = OrbExtractor::new(OrbConfig {
                bands: BandMode::Fixed(bands),
                ..Default::default()
            });
            let img = test_image(160, 120, frame);
            let reused = e.extract_stream_with(&img, &mut scratch);
            let fresh = e.extract_passes_with(&img, &mut OrbScratch::default());
            assert_eq!(reused, fresh, "frame {frame} bands {bands}");
        }
        let small = test_image(96, 80, 9);
        let e = OrbExtractor::new(OrbConfig {
            bands: BandMode::Fixed(3),
            ..Default::default()
        });
        assert_eq!(
            e.extract_stream_with(&small, &mut scratch),
            e.extract_passes_with(&small, &mut OrbScratch::default())
        );
    }

    #[test]
    fn stream_matches_passes_across_kinds_and_sizes() {
        for kind in [
            DescriptorKind::RsBrief,
            DescriptorKind::OriginalLut,
            DescriptorKind::OriginalDirect,
        ] {
            let e = OrbExtractor::new(OrbConfig {
                descriptor: kind,
                max_features: 200,
                ..Default::default()
            });
            for (w, h) in [(200u32, 150u32), (64, 64), (40, 400), (400, 40)] {
                let img = test_image(w, h, kind as u64);
                let stream = e.extract_stream_with(&img, &mut OrbScratch::default());
                let passes = e.extract_passes_with(&img, &mut OrbScratch::default());
                assert_eq!(stream, passes, "{kind:?} {w}x{h}");
            }
        }
    }

    #[test]
    fn stream_handles_degenerate_sizes() {
        let e = OrbExtractor::new(OrbConfig::default());
        for (w, h) in [(1u32, 1u32), (6, 6), (8, 40), (40, 8), (17, 19), (33, 33)] {
            let img = test_image(w, h, 7);
            let stream = e.extract_stream_with(&img, &mut OrbScratch::default());
            let passes = e.extract_passes_with(&img, &mut OrbScratch::default());
            assert_eq!(stream, passes, "{w}x{h}");
        }
    }

    #[test]
    fn stream_scratch_reuse_is_equivalent() {
        let e = OrbExtractor::new(OrbConfig::default());
        let mut scratch = OrbScratch::default();
        for seed in 0..3u64 {
            let img = test_image(160, 120, seed);
            let reused = e.extract_stream_with(&img, &mut scratch);
            let fresh = e.extract_stream_with(&img, &mut OrbScratch::default());
            assert_eq!(reused, fresh, "frame {seed}");
        }
        // Geometry change mid-stream.
        let small = test_image(96, 80, 9);
        assert_eq!(
            e.extract_stream_with(&small, &mut scratch),
            e.extract_passes_with(&small, &mut OrbScratch::default())
        );
    }

    #[test]
    fn working_memory_is_independent_of_image_height() {
        let e = OrbExtractor::new(OrbConfig::default());
        let mut short = OrbScratch::default();
        let mut tall = OrbScratch::default();
        e.extract_stream_with(&test_image(128, 96, 0), &mut short);
        e.extract_stream_with(&test_image(128, 768, 0), &mut tall);
        let bytes = short.stream_working_bytes();
        assert!(bytes > 0, "streaming pass must have used its rings");
        assert_eq!(
            bytes,
            tall.stream_working_bytes(),
            "line-buffer memory must not scale with height"
        );
    }

    #[test]
    fn original_workflow_falls_back_to_passes() {
        let e = OrbExtractor::new(OrbConfig {
            workflow: Workflow::Original,
            ..Default::default()
        });
        let img = test_image(160, 120, 3);
        assert_eq!(
            e.extract_stream_with(&img, &mut OrbScratch::default()),
            e.extract_passes_with(&img, &mut OrbScratch::default())
        );
    }
}
