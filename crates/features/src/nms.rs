//! Non-maximum suppression.
//!
//! The paper's NMS module "removes FAST keypoints that are too close to
//! each other, and only reserves the one with maximum Harris score in any
//! 3 × 3 pixels patch" (§3.1).

use std::collections::HashMap;

/// A scored candidate keypoint entering NMS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredPoint {
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
    /// Harris corner score.
    pub score: f64,
}

/// Suppresses non-maxima: a point survives iff its score is the maximum
/// within its 3×3 neighbourhood among the candidates. Ties are broken by
/// raster order (the earlier point wins), matching the deterministic
/// behaviour of the streaming hardware comparator.
///
/// Input order does not affect the result; output is in raster order.
///
/// # Examples
///
/// ```
/// use eslam_features::nms::{suppress, ScoredPoint};
/// let pts = vec![
///     ScoredPoint { x: 10, y: 10, score: 5.0 },
///     ScoredPoint { x: 11, y: 10, score: 7.0 }, // adjacent, higher
///     ScoredPoint { x: 20, y: 20, score: 1.0 }, // isolated
/// ];
/// let kept = suppress(&pts);
/// assert_eq!(kept.len(), 2);
/// assert_eq!((kept[0].x, kept[0].y), (11, 10));
/// ```
pub fn suppress(points: &[ScoredPoint]) -> Vec<ScoredPoint> {
    let index: HashMap<(u32, u32), f64> = points.iter().map(|p| ((p.x, p.y), p.score)).collect();

    let mut kept: Vec<ScoredPoint> = points
        .iter()
        .filter(|p| {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let nx = p.x as i64 + dx;
                    let ny = p.y as i64 + dy;
                    if nx < 0 || ny < 0 {
                        continue;
                    }
                    if let Some(&neighbour) = index.get(&(nx as u32, ny as u32)) {
                        if neighbour > p.score {
                            return false;
                        }
                        // Tie: earlier raster position wins.
                        if neighbour == p.score && (ny as u32, nx as u32) < (p.y, p.x) {
                            return false;
                        }
                    }
                }
            }
            true
        })
        .copied()
        .collect();
    kept.sort_by_key(|p| (p.y, p.x));
    kept
}

/// Caller-owned scratch for [`suppress_sorted_into`]: the per-row index
/// `(y, start, end)` over the sorted candidate array.
#[derive(Debug, Clone, Default)]
pub struct NmsScratch {
    rows: Vec<(u32, u32, u32)>,
}

/// Non-maximum suppression over candidates already in raster order with
/// unique coordinates (exactly what the FAST scanner emits), into a
/// caller-owned buffer. Replaces the hash-map neighbourhood lookup of
/// [`suppress`] with a per-row index and binary searches; output is
/// identical to [`suppress`] on such inputs.
///
/// # Panics
/// Debug builds assert the raster-order precondition.
pub fn suppress_sorted_into(
    points: &[ScoredPoint],
    out: &mut Vec<ScoredPoint>,
    scratch: &mut NmsScratch,
) {
    debug_assert!(
        points
            .windows(2)
            .all(|p| (p[0].y, p[0].x) < (p[1].y, p[1].x)),
        "input must be raster-ordered with unique coordinates"
    );
    out.clear();
    let rows = &mut scratch.rows;
    rows.clear();
    let mut i = 0usize;
    while i < points.len() {
        let y = points[i].y;
        let start = i;
        while i < points.len() && points[i].y == y {
            i += 1;
        }
        rows.push((y, start as u32, i as u32));
    }

    for r in 0..rows.len() {
        let (y, start, end) = rows[r];
        'candidate: for idx in start as usize..end as usize {
            let p = points[idx];
            // The up-to-three neighbouring rows in the row index.
            let neighbour_rows = [
                (r > 0 && rows[r - 1].0 + 1 == y).then(|| rows[r - 1]),
                Some(rows[r]),
                (r + 1 < rows.len() && rows[r + 1].0 == y + 1).then(|| rows[r + 1]),
            ];
            for row in neighbour_rows.into_iter().flatten() {
                let slice = &points[row.1 as usize..row.2 as usize];
                let lo = p.x.saturating_sub(1);
                let from = slice.partition_point(|q| q.x < lo);
                for q in &slice[from..] {
                    if q.x > p.x + 1 {
                        break;
                    }
                    if q.x == p.x && q.y == p.y {
                        continue;
                    }
                    if q.score > p.score || (q.score == p.score && (q.y, q.x) < (p.y, p.x)) {
                        continue 'candidate;
                    }
                }
            }
            out.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: u32, y: u32, score: f64) -> ScoredPoint {
        ScoredPoint { x, y, score }
    }

    /// Pseudo-random raster-ordered candidate sets for equivalence tests.
    fn random_sorted_points(seed: u64, n: usize) -> Vec<ScoredPoint> {
        let mut set = std::collections::BTreeSet::new();
        let mut h = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            h ^= h << 13;
            h ^= h >> 7;
            h ^= h << 17;
            h
        };
        while set.len() < n {
            let x = (next() % 40) as u32;
            let y = (next() % 30) as u32;
            set.insert((y, x));
        }
        set.into_iter()
            .map(|(y, x)| pt(x, y, ((next() % 8) as f64) / 2.0))
            .collect()
    }

    #[test]
    fn sorted_fast_path_matches_reference() {
        let mut scratch = NmsScratch::default();
        let mut out = Vec::new();
        for seed in 0..20u64 {
            for n in [1usize, 5, 40, 200] {
                let pts = random_sorted_points(seed * 31 + n as u64, n);
                suppress_sorted_into(&pts, &mut out, &mut scratch);
                assert_eq!(out, suppress(&pts), "seed {seed} n {n}");
            }
        }
    }

    #[test]
    fn sorted_fast_path_empty_input() {
        let mut scratch = NmsScratch::default();
        let mut out = vec![pt(0, 0, 1.0)];
        suppress_sorted_into(&[], &mut out, &mut scratch);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_input() {
        assert!(suppress(&[]).is_empty());
    }

    #[test]
    fn isolated_points_all_survive() {
        let pts = vec![pt(0, 0, 1.0), pt(10, 0, 2.0), pt(0, 10, 3.0)];
        assert_eq!(suppress(&pts).len(), 3);
    }

    #[test]
    fn adjacent_pair_keeps_maximum() {
        let pts = vec![pt(5, 5, 1.0), pt(6, 5, 2.0)];
        let kept = suppress(&pts);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].x, 6);
    }

    #[test]
    fn diagonal_neighbours_suppress() {
        let pts = vec![pt(5, 5, 3.0), pt(6, 6, 1.0)];
        let kept = suppress(&pts);
        assert_eq!(kept.len(), 1);
        assert_eq!((kept[0].x, kept[0].y), (5, 5));
    }

    #[test]
    fn two_pixel_gap_is_not_suppressed() {
        let pts = vec![pt(5, 5, 3.0), pt(7, 5, 1.0)];
        assert_eq!(suppress(&pts).len(), 2);
    }

    #[test]
    fn plateau_breaks_ties_by_raster_order() {
        let pts = vec![pt(5, 5, 2.0), pt(6, 5, 2.0), pt(5, 6, 2.0)];
        let kept = suppress(&pts);
        assert_eq!(kept.len(), 1);
        assert_eq!((kept[0].x, kept[0].y), (5, 5));
    }

    #[test]
    fn chain_suppression_is_local_not_transitive() {
        // Scores 1 < 2 < 3 in a row: the middle is killed by the right,
        // the left is killed by the middle *only if* the middle's score is
        // higher — which it is. Only the maximum survives.
        let pts = vec![pt(5, 5, 1.0), pt(6, 5, 2.0), pt(7, 5, 3.0)];
        let kept = suppress(&pts);
        // (5,5) is suppressed by (6,5) even though (6,5) itself dies:
        // the paper's 3×3 rule is purely local.
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].x, 7);
    }

    #[test]
    fn input_order_does_not_matter() {
        let mut pts = vec![pt(3, 3, 5.0), pt(4, 3, 7.0), pt(9, 9, 2.0), pt(10, 9, 2.0)];
        let a = suppress(&pts);
        pts.reverse();
        let b = suppress(&pts);
        assert_eq!(a, b);
    }

    #[test]
    fn output_in_raster_order() {
        let pts = vec![pt(30, 1, 1.0), pt(2, 5, 1.0), pt(20, 3, 1.0)];
        let kept = suppress(&pts);
        let keys: Vec<_> = kept.iter().map(|p| (p.y, p.x)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
