//! BRIEF descriptor computation with the three steering strategies of the
//! paper (§2.2): direct per-feature rotation (Eq. 2), the classic 30-angle
//! lookup table \[8\], and RS-BRIEF where steering is a pure descriptor
//! rotation.

use crate::descriptor::Descriptor;
use crate::orientation::ORIENTATION_BINS;
use crate::pattern::{BriefPattern, SteeredPatternLut, RS_SEED_PAIRS, RS_STEP_RADIANS};
use eslam_image::GrayImage;

/// Computes a descriptor by sampling the (smoothened) image at the
/// pattern's test locations around `(x, y)`. Bit `i` is 1 iff
/// `I(S_i) > I(D_i)`. Out-of-bounds samples clamp to the border.
pub fn compute_descriptor(img: &GrayImage, x: u32, y: u32, pattern: &BriefPattern) -> Descriptor {
    let mut d = Descriptor::ZERO;
    for (i, pair) in pattern.pairs().iter().enumerate() {
        let (sx, sy) = pair.s.to_offset();
        let (dx, dy) = pair.d.to_offset();
        let is = img.get_clamped(x as i64 + sx as i64, y as i64 + sy as i64);
        let id = img.get_clamped(x as i64 + dx as i64, y as i64 + dy as i64);
        if is > id {
            d.set_bit(i, true);
        }
    }
    d
}

/// A pattern compiled to linear pixel offsets for one image stride: the
/// per-sample coordinate arithmetic and border clamping of
/// [`compute_descriptor`] collapse to a single indexed load per test
/// location. Built once per pyramid level per frame geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternOffsets {
    width: u32,
    /// Per-pair `(S, D)` linear offsets relative to the centre pixel.
    offsets: Vec<(i32, i32)>,
    /// Maximum |dx| / |dy| over all test locations (the interior margin).
    margin: u32,
    /// Fingerprint of the source pattern (see [`pattern_fingerprint`]).
    fingerprint: u64,
}

/// A cheap content fingerprint of a pattern's rounded test locations,
/// used to validate cached [`PatternOffsets`] tables against the pattern
/// they were compiled from (a width check alone cannot detect a pattern
/// change, e.g. a scratch buffer reused across extractors).
pub fn pattern_fingerprint(pattern: &BriefPattern) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: i32| {
        h ^= v as u32 as u64;
        h = h.wrapping_mul(0x100000001b3);
    };
    for pair in pattern.pairs() {
        let (sx, sy) = pair.s.to_offset();
        let (dx, dy) = pair.d.to_offset();
        mix(sx);
        mix(sy);
        mix(dx);
        mix(dy);
    }
    h
}

impl PatternOffsets {
    /// Compiles `pattern` for images of the given `width`.
    pub fn new(pattern: &BriefPattern, width: u32) -> Self {
        let w = width as i64;
        let mut margin = 0i32;
        let offsets = pattern
            .pairs()
            .iter()
            .map(|pair| {
                let (sx, sy) = pair.s.to_offset();
                let (dx, dy) = pair.d.to_offset();
                margin = margin
                    .max(sx.abs())
                    .max(sy.abs())
                    .max(dx.abs())
                    .max(dy.abs());
                (
                    (sy as i64 * w + sx as i64) as i32,
                    (dy as i64 * w + dx as i64) as i32,
                )
            })
            .collect();
        PatternOffsets {
            width,
            offsets,
            margin: margin as u32,
            fingerprint: pattern_fingerprint(pattern),
        }
    }

    /// The image width this table was compiled for.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The interior margin a centre pixel must keep from every border.
    pub fn margin(&self) -> u32 {
        self.margin
    }

    /// Fingerprint of the pattern this table was compiled from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// Descriptor computation through a compiled [`PatternOffsets`] table.
/// Bit-identical to [`compute_descriptor`] with the source pattern, for
/// centres at least [`PatternOffsets::margin`] pixels from every border
/// (clamping never engages there).
///
/// # Panics
/// Panics if the centre violates the interior margin or the table was
/// compiled for a different width.
pub fn compute_descriptor_interior(
    img: &GrayImage,
    x: u32,
    y: u32,
    table: &PatternOffsets,
) -> Descriptor {
    let m = table.margin;
    assert_eq!(
        img.width(),
        table.width,
        "offset table compiled for another stride"
    );
    assert!(
        x >= m && y >= m && x + m < img.width() && y + m < img.height(),
        "centre ({x},{y}) too close to the border for the offset table"
    );
    let base = (y as usize) * img.width() as usize + x as usize;
    let data = img.as_raw();
    let mut words = [0u64; 4];
    for (i, &(so, d_o)) in table.offsets.iter().enumerate() {
        let is = data[(base as i64 + so as i64) as usize];
        let id = data[(base as i64 + d_o as i64) as usize];
        words[i / 64] |= ((is > id) as u64) << (i % 64);
    }
    Descriptor::from_words(words)
}

/// Band-aware descriptor entry of the streaming front-end: samples the
/// pattern around **virtual** image row `y` from a *mirrored* row ring
/// (see [`crate::orientation::patch_moments_ring`] for the ring layout
/// and caller contract). The table must be compiled for the ring's
/// width — the ring is full-width precisely so the table's linearized
/// offsets stay valid. Bit-identical to
/// `compute_descriptor_interior(full_smoothed, x, y, table)` under the
/// contract. Returns the **unsteered** descriptor, like
/// [`compute_descriptor_interior`].
///
/// # Panics
/// Panics if the ring is not mirrored, too short for the patch window,
/// or `(x, y)` violates the interior margins.
pub fn compute_descriptor_ring(
    ring: &GrayImage,
    x: u32,
    y: u32,
    ring_rows: u32,
    table: &PatternOffsets,
) -> Descriptor {
    // Slot mapping uses the full 15-pixel patch radius (not the
    // table's possibly smaller margin) so it agrees with every other
    // ring consumer about where virtual rows live.
    let r = crate::pattern::PATCH_RADIUS as u32;
    assert_eq!(ring.height(), 2 * ring_rows, "ring must be mirrored");
    assert!(ring_rows > 2 * r, "ring too short for the patch window");
    assert!(y >= r, "virtual row {y} clips the top border");
    let slot = (y - r) % ring_rows + r;
    compute_descriptor_interior(ring, x, slot, table)
}

/// RS-BRIEF descriptor engine: one fixed pattern; steering by orientation
/// label is the BRIEF Rotator byte-rotation.
#[derive(Debug, Clone, PartialEq)]
pub struct RsBrief {
    pattern: BriefPattern,
}

impl RsBrief {
    /// Builds the engine from a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RsBrief {
            pattern: BriefPattern::rs_brief(seed),
        }
    }

    /// The underlying 32-fold symmetric pattern.
    pub fn pattern(&self) -> &BriefPattern {
        &self.pattern
    }

    /// Computes the steered descriptor for a feature with orientation
    /// label `label` (0..31): sample once with the fixed pattern, then
    /// rotate the descriptor by `8 × label` bits.
    ///
    /// # Panics
    /// Panics if `label >= 32`.
    pub fn compute(&self, img: &GrayImage, x: u32, y: u32, label: u8) -> Descriptor {
        assert!(label < ORIENTATION_BINS);
        compute_descriptor(img, x, y, &self.pattern).steer(label)
    }

    /// Reference steering by **pattern re-indexing** (what rotating the
    /// test locations by `label` steps amounts to, thanks to the 32-fold
    /// symmetry). Bit-exactly equal to [`RsBrief::compute`]; used by tests
    /// and the hardware model to prove the Rotator shortcut.
    pub fn compute_by_reindexing(&self, img: &GrayImage, x: u32, y: u32, label: u8) -> Descriptor {
        assert!(label < ORIENTATION_BINS);
        let pairs = self.pattern.pairs();
        let mut d = Descriptor::ZERO;
        let shift = RS_SEED_PAIRS * label as usize;
        for i in 0..pairs.len() {
            let pair = &pairs[(i + shift) % pairs.len()];
            let (sx, sy) = pair.s.to_offset();
            let (dx, dy) = pair.d.to_offset();
            let is = img.get_clamped(x as i64 + sx as i64, y as i64 + sy as i64);
            let id = img.get_clamped(x as i64 + dx as i64, y as i64 + dy as i64);
            if is > id {
                d.set_bit(i, true);
            }
        }
        d
    }

    /// Reference steering by **continuous rotation** (Eq. 2): rotate every
    /// test location by `label × 11.25°` and resample. Agrees with
    /// [`RsBrief::compute`] up to rounding ties on the 0.5-pixel grid.
    pub fn compute_by_rotation(&self, img: &GrayImage, x: u32, y: u32, label: u8) -> Descriptor {
        assert!(label < ORIENTATION_BINS);
        let rotated = self.pattern.rotated(label as f64 * RS_STEP_RADIANS);
        compute_descriptor(img, x, y, &rotated)
    }
}

/// Original ORB descriptor engine with the 30-angle steering LUT \[8\].
#[derive(Debug, Clone, PartialEq)]
pub struct OriginalBrief {
    pattern: BriefPattern,
    lut: SteeredPatternLut,
}

impl OriginalBrief {
    /// Builds the engine (and its 30-entry LUT) from a deterministic seed.
    pub fn new(seed: u64) -> Self {
        let pattern = BriefPattern::original(seed);
        let lut = SteeredPatternLut::build(&pattern);
        OriginalBrief { pattern, lut }
    }

    /// The unrotated base pattern.
    pub fn pattern(&self) -> &BriefPattern {
        &self.pattern
    }

    /// The 30-angle steering table.
    pub fn lut(&self) -> &SteeredPatternLut {
        &self.lut
    }

    /// Steered descriptor via the pre-computed LUT (nearest 12°).
    pub fn compute_lut(&self, img: &GrayImage, x: u32, y: u32, angle: f64) -> Descriptor {
        compute_descriptor(img, x, y, self.lut.lookup(angle))
    }

    /// Steered descriptor via direct Eq. 2 rotation of all 512 locations —
    /// the accuracy reference, and the compute-cost baseline of §2.2.
    pub fn compute_direct(&self, img: &GrayImage, x: u32, y: u32, angle: f64) -> Descriptor {
        compute_descriptor(img, x, y, &self.pattern.rotated(angle))
    }
}

/// Convenience: steered RS-BRIEF descriptor for a continuous angle (the
/// label is the nearest 11.25° step).
pub fn rs_brief_for_angle(
    engine: &RsBrief,
    img: &GrayImage,
    x: u32,
    y: u32,
    angle: f64,
) -> Descriptor {
    engine.compute(img, x, y, crate::orientation::angle_to_label(angle))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured_image(seed: u64) -> GrayImage {
        GrayImage::from_fn(96, 96, |x, y| {
            let h = (x as u64)
                .wrapping_mul(2654435761)
                .wrapping_add((y as u64).wrapping_mul(40503))
                .wrapping_add(seed.wrapping_mul(97));
            ((h >> 8) % 256) as u8
        })
    }

    #[test]
    fn descriptor_is_deterministic() {
        let img = textured_image(0);
        let engine = RsBrief::new(5);
        let a = engine.compute(&img, 48, 48, 0);
        let b = engine.compute(&img, 48, 48, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn rotator_equals_pattern_reindexing_exactly() {
        // The core RS-BRIEF claim (§2.2): rotating test locations reduces
        // to shifting the descriptor. Bit-exact across all 32 labels.
        let engine = RsBrief::new(42);
        for seed in 0..4 {
            let img = textured_image(seed);
            for label in 0..32u8 {
                let fast = engine.compute(&img, 48, 48, label);
                let reference = engine.compute_by_reindexing(&img, 48, 48, label);
                assert_eq!(fast, reference, "seed {seed} label {label}");
            }
        }
    }

    #[test]
    fn rotator_matches_continuous_rotation_closely() {
        // Continuous Eq. 2 rotation recomputes sin/cos, so rounding of a
        // test location can differ on knife-edge half-pixel cases; the
        // Hamming gap must still be tiny.
        let engine = RsBrief::new(42);
        let img = textured_image(9);
        for label in 0..32u8 {
            let fast = engine.compute(&img, 48, 48, label);
            let rotated = engine.compute_by_rotation(&img, 48, 48, label);
            assert!(
                fast.hamming(&rotated) <= 8,
                "label {label}: distance {}",
                fast.hamming(&rotated)
            );
        }
    }

    #[test]
    fn label_zero_is_unsteered() {
        let engine = RsBrief::new(1);
        let img = textured_image(3);
        let steered = engine.compute(&img, 40, 40, 0);
        let raw = compute_descriptor(&img, 40, 40, engine.pattern());
        assert_eq!(steered, raw);
    }

    #[test]
    #[should_panic]
    fn label_out_of_range_panics() {
        let engine = RsBrief::new(1);
        let img = textured_image(0);
        let _ = engine.compute(&img, 40, 40, 32);
    }

    #[test]
    fn different_locations_give_different_descriptors() {
        let engine = RsBrief::new(7);
        let img = textured_image(2);
        let a = engine.compute(&img, 30, 30, 0);
        let b = engine.compute(&img, 60, 60, 0);
        assert!(a.hamming(&b) > 40, "distance {}", a.hamming(&b));
    }

    #[test]
    fn original_lut_close_to_direct_rotation() {
        // §2.2: the 12° discretization moves a radius-15 location by ≤ ~1.6
        // pixels, so LUT and direct descriptors stay close on smooth data.
        let engine = OriginalBrief::new(11);
        let img = eslam_image::filter::gaussian_blur_7x7_fixed(&textured_image(4));
        for k in 0..8 {
            let angle = k as f64 * 0.35;
            let lut = engine.compute_lut(&img, 48, 48, angle);
            let direct = engine.compute_direct(&img, 48, 48, angle);
            let d = lut.hamming(&direct);
            assert!(d <= 96, "angle {angle}: distance {d}");
        }
    }

    #[test]
    fn original_lut_exact_at_table_angles() {
        let engine = OriginalBrief::new(11);
        let img = textured_image(5);
        // At exactly 0° the LUT entry is the base pattern.
        let lut = engine.compute_lut(&img, 48, 48, 0.0);
        let base = compute_descriptor(&img, 48, 48, engine.pattern());
        assert_eq!(lut, base);
    }

    #[test]
    fn offset_table_matches_clamped_sampling_in_interior() {
        let img = textured_image(6);
        for engine_seed in [0u64, 17, 42] {
            let rs = RsBrief::new(engine_seed);
            let table = PatternOffsets::new(rs.pattern(), img.width());
            let m = table.margin();
            assert!(m <= 15);
            for (x, y) in [(m, m), (48, 48), (95 - m, 95 - m), (m, 60), (70, m)] {
                assert_eq!(
                    compute_descriptor_interior(&img, x, y, &table),
                    compute_descriptor(&img, x, y, rs.pattern()),
                    "seed {engine_seed} at ({x},{y})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "too close to the border")]
    fn offset_table_rejects_border_centres() {
        let img = textured_image(0);
        let rs = RsBrief::new(1);
        let table = PatternOffsets::new(rs.pattern(), img.width());
        let _ = compute_descriptor_interior(&img, 0, 0, &table);
    }

    #[test]
    fn constant_image_gives_zero_descriptor() {
        let img = GrayImage::from_fn(64, 64, |_, _| 128);
        let engine = RsBrief::new(3);
        let d = engine.compute(&img, 32, 32, 5);
        assert_eq!(d.count_ones(), 0, "no strict inequality on flat image");
    }

    #[test]
    fn steered_descriptors_of_rotated_content_match() {
        // Rotationally invariance smoke test: descriptor of a pattern and
        // descriptor of the same pattern rotated 90°, steered by the
        // corresponding labels, should be much closer than random (~128).
        let engine = RsBrief::new(21);
        // Radial-ish texture rendered twice, the second rotated by 90°.
        let img0 = GrayImage::from_fn(96, 96, |x, y| {
            let (dx, dy) = (x as f64 - 48.0, y as f64 - 48.0);
            (((dx * 0.4).sin() * (dy * 0.23).cos() + 1.0) * 100.0) as u8
        });
        let img90 = GrayImage::from_fn(96, 96, |x, y| {
            // (x, y) in rotated image samples (y, 96-1-x) in the original.
            img0.get(y, 95 - x)
        });
        let d0 = engine.compute(&img0, 48, 48, 0);
        // Content rotated by 90° ⇒ orientation advanced by ±8 labels
        // depending on the raster-axis convention; either steering must
        // bring the descriptors far below the chance distance (~128).
        let d90_pos = engine.compute(&img90, 48, 48, 8);
        let d90_neg = engine.compute(&img90, 48, 48, 24);
        let dist = d0.hamming(&d90_pos).min(d0.hamming(&d90_neg));
        assert!(
            dist < 80,
            "steered distance {dist} should be well below chance"
        );
    }
}
