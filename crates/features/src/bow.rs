//! Bag-of-binary-words vocabulary for place recognition.
//!
//! Loop closure needs to answer "have I seen this view before?" without
//! matching the current frame against every stored keyframe. The
//! standard tool (DBoW-style) is a hierarchical vocabulary over binary
//! descriptors: a k-ary tree whose nodes are 256-bit cluster centres;
//! quantizing a descriptor walks the tree by Hamming distance to a leaf
//! *word*, and a whole frame becomes a sparse, L1-normalized
//! [`BowVector`] of word weights. Two frames of the same place share
//! words; two frames of different places share few — so candidate
//! retrieval reduces to a sparse-vector [`BowVector::similarity`] (plus
//! an inverted word→keyframe index on the caller's side) instead of an
//! O(N·M²) descriptor match.
//!
//! The vocabulary here is trained **online** by deterministic k-medians
//! ("k-majority" for binary strings: the cluster representative takes
//! each bit by majority vote): seeds are index-strided rather than
//! random, ties break toward the lowest cluster index, and the
//! recursion splits clusters in a fixed order — so training the same
//! descriptor set always yields the same tree, which the backend's
//! bit-identical sync/async guarantee relies on.
//!
//! For map persistence a trained vocabulary round-trips through
//! [`VocabularyParts`] ([`Vocabulary::to_parts`] /
//! [`Vocabulary::from_parts`] — the importer re-validates every tree
//! invariant, so a corrupted file can never produce a vocabulary whose
//! quantization walk loops or indexes out of bounds), and can carry
//! optional **idf** (inverse document frequency) weights trained over a
//! keyframe corpus ([`Vocabulary::train_idf`]): cold-start
//! relocalization queries use [`Vocabulary::tfidf_vector_of`] to
//! down-weight words that appear in most keyframes. The idf channel is
//! strictly opt-in — [`Vocabulary::vector_of`] and the online loop
//! detector's scoring are untouched by it.

use crate::descriptor::{Descriptor, DESCRIPTOR_BITS};

/// Parameters of the vocabulary tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BowParams {
    /// Branching factor `k` of the tree (clusters per node, ≥ 2).
    pub branching: usize,
    /// Maximum depth of the tree (levels of clustering below the root,
    /// ≥ 1). Leaves at depth `levels` (or clusters too small to split)
    /// become words; `branching^levels` bounds the word count.
    pub levels: usize,
    /// k-medians refinement rounds per split (the assignment usually
    /// stabilizes in a handful).
    pub iterations: usize,
}

impl Default for BowParams {
    fn default() -> Self {
        BowParams {
            branching: 8,
            levels: 3,
            iterations: 6,
        }
    }
}

/// One node of the vocabulary tree.
#[derive(Debug, Clone, PartialEq)]
struct Node {
    /// Cluster centre (bitwise majority of the training descriptors
    /// assigned to this node).
    centroid: Descriptor,
    /// Child node indices (empty for leaves).
    children: Vec<usize>,
    /// Word id (leaves only).
    word: Option<u32>,
}

/// A trained hierarchical binary vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub struct Vocabulary {
    nodes: Vec<Node>,
    /// Children of the (virtual) root.
    roots: Vec<usize>,
    words: usize,
    /// Optional per-word idf weights ([`Vocabulary::train_idf`]);
    /// `None` straight after [`Vocabulary::train`].
    idf: Option<Vec<f64>>,
}

/// One node of a vocabulary tree in exported form — the serializable
/// mirror of the private tree node (see [`Vocabulary::to_parts`]).
#[derive(Debug, Clone, PartialEq)]
pub struct VocabularyNode {
    /// Cluster centre (bitwise majority of the training descriptors).
    pub centroid: Descriptor,
    /// Child node indices (empty for leaves). Training emits parents
    /// before children, so every child index is strictly greater than
    /// its parent's — [`Vocabulary::from_parts`] enforces this, which
    /// is what guarantees the quantization walk terminates.
    pub children: Vec<usize>,
    /// Word id (leaves only).
    pub word: Option<u32>,
}

/// The complete exported state of a [`Vocabulary`] — everything needed
/// to rebuild it bit-identically on another machine or after a process
/// restart. Produced by [`Vocabulary::to_parts`]; consumed (with full
/// re-validation) by [`Vocabulary::from_parts`].
#[derive(Debug, Clone, PartialEq)]
pub struct VocabularyParts {
    /// Flattened tree nodes, parents strictly before children.
    pub nodes: Vec<VocabularyNode>,
    /// Children of the (virtual) root.
    pub roots: Vec<usize>,
    /// Number of words (leaves); leaf word ids are exactly `0..words`.
    pub words: usize,
    /// Optional per-word idf weights (length `words` when present).
    pub idf: Option<Vec<f64>>,
}

impl Vocabulary {
    /// Trains a vocabulary on `descriptors` by recursive deterministic
    /// k-medians. Returns `None` when there are fewer descriptors than
    /// the branching factor (no meaningful clustering possible).
    pub fn train(descriptors: &[Descriptor], params: &BowParams) -> Option<Vocabulary> {
        let k = params.branching.max(2);
        if descriptors.len() < k {
            return None;
        }
        let mut vocab = Vocabulary {
            nodes: Vec::new(),
            roots: Vec::new(),
            words: 0,
            idf: None,
        };
        let all: Vec<usize> = (0..descriptors.len()).collect();
        vocab.roots = vocab.split(descriptors, &all, params.levels.max(1), params);
        Some(vocab)
    }

    /// Number of words (leaves) in the vocabulary.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Clusters `members` into up to `k` children, recursing while
    /// `depth` and cluster sizes allow; returns the child node indices.
    fn split(
        &mut self,
        descriptors: &[Descriptor],
        members: &[usize],
        depth: usize,
        params: &BowParams,
    ) -> Vec<usize> {
        let k = params.branching.max(2).min(members.len());
        // Deterministic seeding: index-strided members (always distinct
        // indices; duplicate *values* merely yield an empty cluster).
        let mut centroids: Vec<Descriptor> = (0..k)
            .map(|c| descriptors[members[c * members.len() / k]])
            .collect();
        let mut assignment: Vec<usize> = vec![0; members.len()];
        for _ in 0..params.iterations.max(1) {
            // Assign each member to the nearest centroid (ties: lowest
            // cluster index).
            let mut changed = false;
            for (slot, &m) in members.iter().enumerate() {
                let d = &descriptors[m];
                let mut best = (u32::MAX, 0usize);
                for (c, centroid) in centroids.iter().enumerate() {
                    let dist = d.hamming(centroid);
                    if dist < best.0 {
                        best = (dist, c);
                    }
                }
                if assignment[slot] != best.1 {
                    assignment[slot] = best.1;
                    changed = true;
                }
            }
            // Recompute centroids by bitwise majority vote.
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let cluster: Vec<usize> = members
                    .iter()
                    .zip(&assignment)
                    .filter(|(_, &a)| a == c)
                    .map(|(&m, _)| m)
                    .collect();
                if !cluster.is_empty() {
                    *centroid = majority(descriptors, &cluster);
                }
            }
            if !changed {
                break;
            }
        }
        // Emit children in cluster order; recurse or close as words.
        let mut children = Vec::new();
        for (c, &centroid) in centroids.iter().enumerate() {
            let cluster: Vec<usize> = members
                .iter()
                .zip(&assignment)
                .filter(|(_, &a)| a == c)
                .map(|(&m, _)| m)
                .collect();
            if cluster.is_empty() {
                continue;
            }
            let node = self.nodes.len();
            self.nodes.push(Node {
                centroid,
                children: Vec::new(),
                word: None,
            });
            children.push(node);
            if depth > 1 && cluster.len() > params.branching.max(2) {
                let grandchildren = self.split(descriptors, &cluster, depth - 1, params);
                self.nodes[node].children = grandchildren;
            } else {
                let word = self.words as u32;
                self.words += 1;
                self.nodes[node].word = Some(word);
            }
        }
        children
    }

    /// Quantizes one descriptor to its word id by walking the tree
    /// (nearest child by Hamming distance, ties toward the first).
    pub fn word_of(&self, descriptor: &Descriptor) -> u32 {
        let mut level = &self.roots;
        loop {
            let mut best = (u32::MAX, usize::MAX);
            for &child in level {
                let dist = descriptor.hamming(&self.nodes[child].centroid);
                if dist < best.0 {
                    best = (dist, child);
                }
            }
            let node = &self.nodes[best.1];
            match node.word {
                Some(w) => return w,
                None => level = &node.children,
            }
        }
    }

    /// Quantizes a whole frame's descriptors into an L1-normalized
    /// sparse [`BowVector`] (term-frequency weights).
    pub fn vector_of(&self, descriptors: &[Descriptor]) -> BowVector {
        let mut entries: Vec<(u32, f64)> = Vec::new();
        for d in descriptors {
            let w = self.word_of(d);
            match entries.binary_search_by_key(&w, |e| e.0) {
                Ok(i) => entries[i].1 += 1.0,
                Err(i) => entries.insert(i, (w, 1.0)),
            }
        }
        let total: f64 = entries.iter().map(|e| e.1).sum();
        if total > 0.0 {
            for e in &mut entries {
                e.1 /= total;
            }
        }
        BowVector { entries }
    }

    /// Trains per-word idf (inverse document frequency) weights over a
    /// corpus of documents (one descriptor set per keyframe, say) and
    /// attaches them to the vocabulary. Uses the smooth formulation
    /// `idf(w) = ln((1 + N) / (1 + n_w)) + 1` (N documents, `n_w`
    /// containing word `w`), which is strictly positive and defined
    /// even for words no document contains — so a tf-idf vector can
    /// never lose words outright, only down-weight them.
    ///
    /// This only affects [`Vocabulary::tfidf_vector_of`];
    /// [`Vocabulary::vector_of`] (and everything built on it, like the
    /// online loop detector) is unchanged.
    pub fn train_idf<'a, I>(&mut self, documents: I)
    where
        I: IntoIterator<Item = &'a [Descriptor]>,
    {
        let mut containing = vec![0u64; self.words];
        let mut total_docs = 0u64;
        let mut seen = vec![false; self.words];
        for doc in documents {
            total_docs += 1;
            seen.iter_mut().for_each(|s| *s = false);
            for d in doc {
                let w = self.word_of(d) as usize;
                if !seen[w] {
                    seen[w] = true;
                    containing[w] += 1;
                }
            }
        }
        self.idf = Some(
            containing
                .iter()
                .map(|&n| ((1.0 + total_docs as f64) / (1.0 + n as f64)).ln() + 1.0)
                .collect(),
        );
    }

    /// The trained per-word idf weights, if [`Vocabulary::train_idf`]
    /// has run (or the imported parts carried them).
    pub fn idf(&self) -> Option<&[f64]> {
        self.idf.as_deref()
    }

    /// Quantizes a frame into an L1-normalized **tf-idf** weighted
    /// sparse vector: term frequencies scaled by the trained idf
    /// weights, then renormalized. Falls back to plain term-frequency
    /// weighting ([`Vocabulary::vector_of`]) when no idf weights are
    /// attached, so callers need not branch on idf availability.
    pub fn tfidf_vector_of(&self, descriptors: &[Descriptor]) -> BowVector {
        let mut v = self.vector_of(descriptors);
        let Some(idf) = &self.idf else {
            return v;
        };
        for e in &mut v.entries {
            e.1 *= idf[e.0 as usize];
        }
        let total: f64 = v.entries.iter().map(|e| e.1).sum();
        if total > 0.0 {
            for e in &mut v.entries {
                e.1 /= total;
            }
        }
        v
    }

    /// Exports the complete vocabulary state for serialization. The
    /// round trip `Vocabulary::from_parts(vocab.to_parts())` is exact:
    /// the reimported vocabulary compares equal and quantizes every
    /// descriptor to the same word.
    pub fn to_parts(&self) -> VocabularyParts {
        VocabularyParts {
            nodes: self
                .nodes
                .iter()
                .map(|n| VocabularyNode {
                    centroid: n.centroid,
                    children: n.children.clone(),
                    word: n.word,
                })
                .collect(),
            roots: self.roots.clone(),
            words: self.words,
            idf: self.idf.clone(),
        }
    }

    /// Rebuilds a vocabulary from exported parts, re-validating every
    /// structural invariant the quantization walk relies on — node
    /// indices in range, children strictly after their parent (the tree
    /// is acyclic and the walk terminates), every node either a leaf
    /// (word, no children) or internal (children, no word), word ids
    /// exactly `0..words` with one leaf each, and idf weights (when
    /// present) finite with length `words`. Returns a description of
    /// the first violation instead, so corrupted or adversarial files
    /// surface as typed errors upstream rather than hangs or panics.
    pub fn from_parts(parts: VocabularyParts) -> Result<Vocabulary, String> {
        let n = parts.nodes.len();
        if parts.roots.is_empty() {
            return Err("vocabulary has no root children".into());
        }
        for &r in &parts.roots {
            if r >= n {
                return Err(format!("root child index {r} out of range ({n} nodes)"));
            }
        }
        let mut word_seen = vec![false; parts.words];
        let mut leaves = 0usize;
        for (i, node) in parts.nodes.iter().enumerate() {
            match node.word {
                Some(w) => {
                    if !node.children.is_empty() {
                        return Err(format!("node {i} is both a leaf and internal"));
                    }
                    let w = w as usize;
                    if w >= parts.words {
                        return Err(format!(
                            "node {i} word id {w} out of range ({} words)",
                            parts.words
                        ));
                    }
                    if word_seen[w] {
                        return Err(format!("word id {w} assigned to more than one leaf"));
                    }
                    word_seen[w] = true;
                    leaves += 1;
                }
                None => {
                    if node.children.is_empty() {
                        return Err(format!("internal node {i} has no children"));
                    }
                    for &c in &node.children {
                        if c >= n {
                            return Err(format!(
                                "node {i} child index {c} out of range ({n} nodes)"
                            ));
                        }
                        if c <= i {
                            return Err(format!(
                                "node {i} child index {c} not strictly after its parent"
                            ));
                        }
                    }
                }
            }
        }
        if leaves != parts.words {
            return Err(format!(
                "{leaves} leaves but {} words declared",
                parts.words
            ));
        }
        if let Some(idf) = &parts.idf {
            if idf.len() != parts.words {
                return Err(format!(
                    "idf length {} does not match {} words",
                    idf.len(),
                    parts.words
                ));
            }
            if let Some(bad) = idf.iter().find(|v| !v.is_finite()) {
                return Err(format!("non-finite idf weight {bad}"));
            }
        }
        Ok(Vocabulary {
            nodes: parts
                .nodes
                .into_iter()
                .map(|n| Node {
                    centroid: n.centroid,
                    children: n.children,
                    word: n.word,
                })
                .collect(),
            roots: parts.roots,
            words: parts.words,
            idf: parts.idf,
        })
    }
}

/// Bitwise majority vote over a set of descriptors (the binary-space
/// "median": ties — an exact half split — leave the bit cleared).
fn majority(descriptors: &[Descriptor], members: &[usize]) -> Descriptor {
    let mut counts = [0u32; DESCRIPTOR_BITS];
    for &m in members {
        let d = &descriptors[m];
        for (w, &word) in d.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                counts[w * 64 + b] += 1;
                bits &= bits - 1;
            }
        }
    }
    let half = members.len() as u32;
    let mut out = Descriptor::ZERO;
    for (i, &c) in counts.iter().enumerate() {
        if 2 * c > half {
            out.set_bit(i, true);
        }
    }
    out
}

/// A sparse, L1-normalized word-frequency vector (one per frame or
/// keyframe), sorted by word id.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BowVector {
    /// `(word, weight)` entries, sorted by word, weights summing to 1.
    entries: Vec<(u32, f64)>,
}

impl BowVector {
    /// An empty vector (no words — similarity 0 to everything).
    pub fn empty() -> BowVector {
        BowVector::default()
    }

    /// The `(word, weight)` entries, sorted by word id.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Whether the vector holds no words.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Histogram-intersection similarity `Σ min(wᵃ, wᵇ)` over common
    /// words — 1 for identical distributions, 0 for disjoint word sets.
    /// A linear merge over the two sorted entry lists.
    pub fn similarity(&self, other: &BowVector) -> f64 {
        let (a, b) = (&self.entries, &other.entries);
        let (mut i, mut j, mut score) = (0usize, 0usize, 0.0f64);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    score += a[i].1.min(b[j].1);
                    i += 1;
                    j += 1;
                }
            }
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random descriptor "around" a seed pattern:
    /// `flips` bits of the seed pattern are toggled, selected by `salt`.
    fn descriptor_near(pattern: u64, flips: usize, salt: u64) -> Descriptor {
        let mut d = Descriptor::from_words([pattern, !pattern, pattern ^ 0xabcd, pattern]);
        let mut state = salt.wrapping_mul(6364136223846793005).wrapping_add(1);
        for _ in 0..flips {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bit = (state >> 33) as usize % DESCRIPTOR_BITS;
            d.set_bit(bit, !d.bit(bit));
        }
        d
    }

    /// Three well-separated descriptor families.
    fn three_places(per_family: usize) -> Vec<Descriptor> {
        let mut out = Vec::new();
        for (f, pattern) in [0u64, u64::MAX, 0xaaaa_aaaa_aaaa_aaaa]
            .into_iter()
            .enumerate()
        {
            for i in 0..per_family {
                out.push(descriptor_near(pattern, 12, (f * 1000 + i) as u64));
            }
        }
        out
    }

    #[test]
    fn training_needs_enough_descriptors() {
        let few = vec![Descriptor::ZERO; 3];
        assert!(Vocabulary::train(&few, &BowParams::default()).is_none());
        let enough = three_places(4);
        assert!(Vocabulary::train(&enough, &BowParams::default()).is_some());
    }

    #[test]
    fn training_is_deterministic() {
        let data = three_places(30);
        let a = Vocabulary::train(&data, &BowParams::default()).unwrap();
        let b = Vocabulary::train(&data, &BowParams::default()).unwrap();
        assert_eq!(a, b);
        assert!(a.words() >= 3, "words {}", a.words());
    }

    #[test]
    fn same_family_lands_on_same_words() {
        let data = three_places(30);
        let vocab = Vocabulary::train(&data, &BowParams::default()).unwrap();
        // Fresh descriptors from each family quantize like their
        // training siblings: intra-family similarity far above
        // inter-family.
        let frame = |pattern: u64, salt: u64| -> BowVector {
            let ds: Vec<Descriptor> = (0..20)
                .map(|i| descriptor_near(pattern, 12, salt + i))
                .collect();
            vocab.vector_of(&ds)
        };
        let a1 = frame(0, 5000);
        let a2 = frame(0, 6000);
        let b1 = frame(u64::MAX, 7000);
        let intra = a1.similarity(&a2);
        let inter = a1.similarity(&b1);
        assert!(
            intra > inter + 0.3,
            "intra {intra} should dominate inter {inter}"
        );
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let data = three_places(20);
        let vocab = Vocabulary::train(&data, &BowParams::default()).unwrap();
        let v1 = vocab.vector_of(&data[..20]);
        let v2 = vocab.vector_of(&data[20..40]);
        let s12 = v1.similarity(&v2);
        let s21 = v2.similarity(&v1);
        assert_eq!(s12, s21);
        assert!((0.0..=1.0).contains(&s12));
        // Self-similarity of a normalized vector is exactly 1.
        assert!((v1.similarity(&v1) - 1.0).abs() < 1e-12);
        // Empty vectors are similar to nothing.
        assert_eq!(BowVector::empty().similarity(&v1), 0.0);
    }

    #[test]
    fn vector_entries_are_sorted_and_normalized() {
        let data = three_places(20);
        let vocab = Vocabulary::train(&data, &BowParams::default()).unwrap();
        let v = vocab.vector_of(&data);
        let entries = v.entries();
        assert!(!entries.is_empty());
        for w in entries.windows(2) {
            assert!(w[0].0 < w[1].0, "entries sorted by word");
        }
        let total: f64 = entries.iter().map(|e| e.1).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn word_of_matches_vector_of() {
        let data = three_places(12);
        let vocab = Vocabulary::train(&data, &BowParams::default()).unwrap();
        let d = descriptor_near(0, 5, 99);
        let w = vocab.word_of(&d);
        let v = vocab.vector_of(std::slice::from_ref(&d));
        assert_eq!(v.entries(), &[(w, 1.0)]);
        assert!((w as usize) < vocab.words());
    }

    #[test]
    fn parts_round_trip_is_exact() {
        let data = three_places(30);
        let mut vocab = Vocabulary::train(&data, &BowParams::default()).unwrap();
        let docs: Vec<&[Descriptor]> = data.chunks(10).collect();
        vocab.train_idf(docs.iter().copied());
        let rebuilt = Vocabulary::from_parts(vocab.to_parts()).expect("valid parts");
        assert_eq!(vocab, rebuilt);
        for d in &data {
            assert_eq!(vocab.word_of(d), rebuilt.word_of(d));
        }
        assert_eq!(
            vocab.tfidf_vector_of(&data[..10]),
            rebuilt.tfidf_vector_of(&data[..10])
        );
    }

    #[test]
    fn from_parts_rejects_malformed_trees() {
        let data = three_places(20);
        let vocab = Vocabulary::train(&data, &BowParams::default()).unwrap();
        let good = vocab.to_parts();

        let mut no_roots = good.clone();
        no_roots.roots.clear();
        assert!(Vocabulary::from_parts(no_roots).is_err());

        let mut bad_root = good.clone();
        bad_root.roots[0] = good.nodes.len();
        assert!(Vocabulary::from_parts(bad_root).is_err());

        // A child pointing at (or before) its parent would make the
        // quantization walk loop forever — must be rejected.
        let mut cyclic = good.clone();
        if let Some(internal) = cyclic.nodes.iter().position(|n| !n.children.is_empty()) {
            cyclic.nodes[internal].children[0] = internal;
            assert!(Vocabulary::from_parts(cyclic).is_err());
        }

        let mut dup_word = good.clone();
        let leaf_ids: Vec<usize> = dup_word
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.word.is_some())
            .map(|(i, _)| i)
            .collect();
        assert!(leaf_ids.len() >= 2, "need two leaves to duplicate a word");
        dup_word.nodes[leaf_ids[1]].word = dup_word.nodes[leaf_ids[0]].word;
        assert!(Vocabulary::from_parts(dup_word).is_err());

        let mut bad_idf = good.clone();
        bad_idf.idf = Some(vec![f64::NAN; good.words]);
        assert!(Vocabulary::from_parts(bad_idf).is_err());

        let mut short_idf = good;
        short_idf.idf = Some(vec![1.0]);
        assert!(Vocabulary::from_parts(short_idf).is_err());
    }

    #[test]
    fn idf_down_weights_ubiquitous_words() {
        let data = three_places(30);
        let mut vocab = Vocabulary::train(&data, &BowParams::default()).unwrap();
        assert!(vocab.idf().is_none());
        // tf-idf without idf falls back to plain tf.
        assert_eq!(
            vocab.tfidf_vector_of(&data[..10]),
            vocab.vector_of(&data[..10])
        );
        // Documents: family A appears in every document (ubiquitous),
        // families B and C in one third each.
        let docs: Vec<Vec<Descriptor>> = (0..6)
            .map(|i| {
                let mut d: Vec<Descriptor> = data[..10].to_vec(); // family A
                let other = 30 + (i % 2) * 30; // B or C
                d.extend_from_slice(&data[other..other + 10]);
                d
            })
            .collect();
        vocab.train_idf(docs.iter().map(|d| d.as_slice()));
        let idf = vocab.idf().expect("trained");
        assert_eq!(idf.len(), vocab.words());
        assert!(idf.iter().all(|v| v.is_finite() && *v > 0.0));
        // A word every document contains gets the minimum weight; the
        // family-A words are those, so their idf sits strictly below
        // the idf of the rarer family-B words.
        let word_a = vocab.word_of(&data[0]) as usize;
        let word_b = vocab.word_of(&data[30]) as usize;
        assert!(
            idf[word_a] < idf[word_b],
            "ubiquitous {} vs rare {}",
            idf[word_a],
            idf[word_b]
        );
        // The weighted vector stays normalized.
        let v = vocab.tfidf_vector_of(&docs[0]);
        let total: f64 = v.entries().iter().map(|e| e.1).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn majority_vote_takes_each_bit_by_majority() {
        let mut a = Descriptor::ZERO;
        let mut b = Descriptor::ZERO;
        let mut c = Descriptor::ZERO;
        a.set_bit(0, true); // bit 0: 1/3 → clear
        a.set_bit(7, true);
        b.set_bit(7, true); // bit 7: 2/3 → set
        c.set_bit(255, true); // bit 255: 1/3 → clear
        let all = [a, b, c];
        let m = majority(&all, &[0, 1, 2]);
        assert!(!m.bit(0));
        assert!(m.bit(7));
        assert!(!m.bit(255));
        // Exact half split (2-of-4) clears the bit deterministically.
        let m2 = majority(&[a, b, c, Descriptor::ZERO], &[0, 1, 2, 3]);
        assert!(!m2.bit(7), "2/4 is a tie, bit stays clear");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn descriptors_from(words: &[u64]) -> Vec<Descriptor> {
            words
                .chunks(4)
                .filter(|c| c.len() == 4)
                .map(|c| Descriptor::from_words([c[0], c[1], c[2], c[3]]))
                .collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Every descriptor quantizes to a valid word, and the frame
            /// vector stays normalized, for arbitrary inputs.
            #[test]
            fn quantization_total_and_in_range(
                train_words in proptest::collection::vec(any::<u64>(), 32..256),
                query_words in proptest::collection::vec(any::<u64>(), 4..128),
            ) {
                let train = descriptors_from(&train_words);
                let query = descriptors_from(&query_words);
                let vocab = Vocabulary::train(&train, &BowParams::default()).unwrap();
                prop_assert!(vocab.words() >= 1);
                for d in &query {
                    prop_assert!((vocab.word_of(d) as usize) < vocab.words());
                }
                let v = vocab.vector_of(&query);
                let total: f64 = v.entries().iter().map(|e| e.1).sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
                for w in v.entries().windows(2) {
                    prop_assert!(w[0].0 < w[1].0);
                }
            }
        }
    }
}
