//! ORB feature extraction and matching for the eSLAM reproduction.
//!
//! This crate implements the paper's feature front-end in full:
//!
//! * [`fast`] — FAST-9/16 segment-test detection (the FAST Detection
//!   module of §3.1);
//! * [`harris`] — Harris corner response used for filtering;
//! * [`nms`] — 3×3 non-maximum suppression;
//! * [`orientation`] — intensity-centroid orientation with the paper's
//!   32-label hardware LUT discretization;
//! * [`pattern`] / [`brief`] — BRIEF test patterns, including the paper's
//!   headline contribution **RS-BRIEF** (§2.2): a 32-fold rotationally
//!   symmetric pattern whose steering degenerates to a descriptor byte
//!   rotation (the BRIEF Rotator);
//! * [`heap`] — the bounded best-1024 Heap filter;
//! * [`matcher`] — Hamming-distance brute-force matching (the BRIEF
//!   Matcher, §3.2);
//! * [`orb`] — the complete extractor with the paper's Original vs
//!   Rescheduled workflow schedules (§3.1);
//! * [`stream`] — the fused single-pass streaming front-end: one
//!   row-band scan per pyramid level through ring line buffers, the
//!   software mirror of the accelerator's dataflow (selected via
//!   `ESLAM_EXTRACT` / [`ExtractMode`]).
//!
//! # Examples
//!
//! Extract features from two frames and match them:
//!
//! ```
//! use eslam_image::GrayImage;
//! use eslam_features::orb::{OrbExtractor, OrbConfig};
//! use eslam_features::matcher::match_brute_force;
//!
//! let frame = GrayImage::from_fn(320, 240, |x, y| {
//!     if (x / 14 + y / 14) % 2 == 0 { 60 } else { 200 }
//! });
//! let extractor = OrbExtractor::new(OrbConfig::default());
//! let a = extractor.extract(&frame);
//! let b = extractor.extract(&frame);
//! let matches = match_brute_force(&a.descriptors, &b.descriptors, 64);
//! assert_eq!(matches.len(), a.len()); // identical frames match perfectly
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bow;
pub mod brief;
pub mod descriptor;
pub mod envopt;
pub mod fast;
pub mod grid;
pub mod harris;
pub mod heap;
pub mod matcher;
pub mod nms;
pub mod orb;
pub mod orientation;
pub mod pattern;
pub mod pool;
pub mod stream;

pub use bow::{BowParams, BowVector, Vocabulary, VocabularyNode, VocabularyParts};
pub use descriptor::{Descriptor, DESCRIPTOR_BITS};
pub use matcher::{DescriptorMatch, MatchKernel};
pub use orb::{Keypoint, OrbConfig, OrbExtractor, OrbFeatures};
pub use pool::WorkerPool;
pub use stream::{BandMode, ExtractMode};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_descriptor() -> impl Strategy<Value = Descriptor> {
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(a, b, c, d)| Descriptor::from_words([a, b, c, d]))
    }

    proptest! {
        #[test]
        fn hamming_is_a_metric(
            a in arb_descriptor(), b in arb_descriptor(), c in arb_descriptor(),
        ) {
            prop_assert_eq!(a.hamming(&a), 0);
            prop_assert_eq!(a.hamming(&b), b.hamming(&a));
            // Triangle inequality.
            prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
        }

        #[test]
        fn rotation_is_a_bijection(d in arb_descriptor(), n in 0usize..32) {
            let r = d.rotate_bits(8 * n);
            prop_assert_eq!(r.count_ones(), d.count_ones());
            // Rotating back recovers the original.
            let back = r.rotate_bits((256 - 8 * n) % 256);
            prop_assert_eq!(back, d);
        }

        #[test]
        fn rotation_preserves_hamming_distance(
            a in arb_descriptor(), b in arb_descriptor(), n in 0usize..32,
        ) {
            // Steering both descriptors by the same label keeps their
            // distance — the property that makes RS-BRIEF matching work.
            let ra = a.rotate_bits(8 * n);
            let rb = b.rotate_bits(8 * n);
            prop_assert_eq!(ra.hamming(&rb), a.hamming(&b));
        }

        #[test]
        fn heap_keeps_exact_top_n(scores in prop::collection::vec(0u32..10_000, 1..300), n in 1usize..64) {
            let mut heap = heap::BestHeap::new(n);
            for (i, &s) in scores.iter().enumerate() {
                heap.push(s as f64, i);
            }
            let kept: Vec<f64> = heap.into_sorted_vec().into_iter().map(|(s, _)| s).collect();
            let mut expect: Vec<f64> = scores.iter().map(|&s| s as f64).collect();
            expect.sort_by(|a, b| b.partial_cmp(a).unwrap());
            expect.truncate(n);
            prop_assert_eq!(kept, expect);
        }

        #[test]
        fn orientation_lut_agrees_with_atan2(u in -10_000i64..10_000, v in -10_000i64..10_000) {
            prop_assume!(u != 0 || v != 0);
            let lut = orientation::OrientationLut::new();
            let expect = orientation::angle_to_label((v as f64).atan2(u as f64));
            prop_assert_eq!(lut.label(u, v), expect);
        }

        #[test]
        fn rs_pattern_rotation_reindexing_for_all_seeds(seed in 0u64..200, label in 0u8..32) {
            // The §2.2 identity must hold for *every* generated pattern,
            // not just the default seed: steering by descriptor rotation
            // equals pattern re-indexing.
            let engine = brief::RsBrief::new(seed);
            let img = eslam_image::GrayImage::from_fn(64, 64, |x, y| {
                ((x as u64 * 31 + y as u64 * 17 + seed) % 256) as u8
            });
            let fast = engine.compute(&img, 32, 32, label);
            let reference = engine.compute_by_reindexing(&img, 32, 32, label);
            prop_assert_eq!(fast, reference);
        }

        #[test]
        fn rs_pattern_stays_inside_patch(seed in 0u64..500) {
            let p = pattern::BriefPattern::rs_brief(seed);
            prop_assert!(p.max_radius() <= pattern::PATCH_RADIUS);
            for pair in p.pairs() {
                let (sx, sy) = pair.s.to_offset();
                let (dx, dy) = pair.d.to_offset();
                prop_assert!(sx.abs() <= 15 && sy.abs() <= 15);
                prop_assert!(dx.abs() <= 15 && dy.abs() <= 15);
            }
        }

        #[test]
        fn grid_filter_never_exceeds_quota(
            n in 1usize..100, cell in 8u32..64, quota in 1usize..6,
        ) {
            let kps: Vec<orb::Keypoint> = (0..n).map(|i| orb::Keypoint {
                x: ((i * 37) % 320) as f64,
                y: ((i * 53) % 240) as f64,
                level: 0,
                level_x: 0,
                level_y: 0,
                score: ((i * 7) % 19) as f64,
                angle: 0.0,
                label: 0,
            }).collect();
            let kept = grid::grid_filter(&kps, &grid::GridParams { cell_size: cell, per_cell: quota });
            let filtered: Vec<orb::Keypoint> = kept.iter().map(|&i| kps[i]).collect();
            let stats = grid::coverage(&filtered, cell);
            prop_assert!(stats.max_per_cell <= quota);
            prop_assert!(kept.len() <= kps.len());
        }

        #[test]
        fn brute_force_match_is_argmin(
            qw in prop::collection::vec(any::<u64>(), 4..12),
            tw in prop::collection::vec(any::<u64>(), 8..40),
        ) {
            let query: Vec<Descriptor> = qw.chunks(4).filter(|c| c.len() == 4)
                .map(|c| Descriptor::from_words([c[0], c[1], c[2], c[3]])).collect();
            let train: Vec<Descriptor> = tw.chunks(4).filter(|c| c.len() == 4)
                .map(|c| Descriptor::from_words([c[0], c[1], c[2], c[3]])).collect();
            prop_assume!(!query.is_empty() && !train.is_empty());
            let matches = matcher::match_brute_force(&query, &train, u32::MAX);
            prop_assert_eq!(matches.len(), query.len());
            for m in &matches {
                let naive = train.iter().map(|t| query[m.query].hamming(t)).min().unwrap();
                prop_assert_eq!(m.distance, naive);
            }
        }
    }
}
