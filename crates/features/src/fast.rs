//! FAST (Features from Accelerated Segment Test) corner detection.
//!
//! The paper's FAST Detection module takes a 7×7 pixel patch and flags the
//! centre as a keypoint when ≥ 9 contiguous pixels on the 16-pixel
//! Bresenham circle of radius 3 are all brighter than centre + threshold
//! or all darker than centre − threshold (FAST-9/16, the variant ORB
//! uses).

use eslam_image::GrayImage;

/// The 16 offsets of the radius-3 Bresenham circle, clockwise from
/// 12 o'clock. Index order matters for the contiguity test.
pub const CIRCLE_OFFSETS: [(i32, i32); 16] = [
    (0, -3),
    (1, -3),
    (2, -2),
    (3, -1),
    (3, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (0, 3),
    (-1, 3),
    (-2, 2),
    (-3, 1),
    (-3, 0),
    (-3, -1),
    (-2, -2),
    (-1, -3),
];

/// Minimum contiguous arc length for FAST-9.
pub const FAST_ARC: usize = 9;

/// Default detection threshold (intensity difference).
pub const DEFAULT_THRESHOLD: u8 = 20;

/// Classification of circle pixels relative to the centre.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    Brighter,
    Darker,
    Similar,
}

/// Tests whether the pixel at `(x, y)` is a FAST-9 corner.
///
/// Pixels closer than 3 to the border are never corners (the circle would
/// leave the image). This function is the bit-exact reference for the
/// hardware FAST unit.
pub fn is_fast_corner(img: &GrayImage, x: u32, y: u32, threshold: u8) -> bool {
    if x < 3 || y < 3 || x + 3 >= img.width() || y + 3 >= img.height() {
        return false;
    }
    let centre = img.get(x, y) as i32;
    let t = threshold as i32;

    // High-speed reject: any 9-pixel arc on the 16-pixel circle covers at
    // least 2 of the 4 compass points (they are spaced 4 apart), so fewer
    // than 2 extreme compass points rules a corner out.
    let p0 = img.get(x, y - 3) as i32;
    let p8 = img.get(x, y + 3) as i32;
    let p4 = img.get(x + 3, y) as i32;
    let p12 = img.get(x - 3, y) as i32;
    let bright_compass = [p0, p4, p8, p12].iter().filter(|&&p| p > centre + t).count();
    let dark_compass = [p0, p4, p8, p12].iter().filter(|&&p| p < centre - t).count();
    if bright_compass < 2 && dark_compass < 2 {
        return false;
    }

    let mut classes = [Tri::Similar; 16];
    for (class, &(dx, dy)) in classes.iter_mut().zip(&CIRCLE_OFFSETS) {
        let p = img.get((x as i32 + dx) as u32, (y as i32 + dy) as u32) as i32;
        *class = if p > centre + t {
            Tri::Brighter
        } else if p < centre - t {
            Tri::Darker
        } else {
            Tri::Similar
        };
    }

    has_arc(&classes, Tri::Brighter) || has_arc(&classes, Tri::Darker)
}

/// Checks for a circular run of ≥ [`FAST_ARC`] pixels of class `want`.
fn has_arc(classes: &[Tri], want: Tri) -> bool {
    let mut run = 0usize;
    // Walk the circle twice to capture wrap-around runs.
    for i in 0..(classes.len() * 2) {
        if classes[i % classes.len()] == want {
            run += 1;
            if run >= FAST_ARC {
                return true;
            }
        } else {
            run = 0;
        }
    }
    false
}

/// A raw FAST detection prior to scoring/NMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastDetection {
    /// Column of the detection.
    pub x: u32,
    /// Row of the detection.
    pub y: u32,
}

/// Detects all FAST-9 corners in the image at the given threshold.
///
/// Returns detections in raster order, matching the order the streaming
/// hardware emits them.
///
/// # Examples
///
/// ```
/// use eslam_image::GrayImage;
/// use eslam_features::fast::{detect, DEFAULT_THRESHOLD};
/// // A bright square on dark background has corners at its corners.
/// let img = GrayImage::from_fn(32, 32, |x, y| {
///     if (8..24).contains(&x) && (8..24).contains(&y) { 200 } else { 20 }
/// });
/// let corners = detect(&img, DEFAULT_THRESHOLD);
/// assert!(!corners.is_empty());
/// ```
pub fn detect(img: &GrayImage, threshold: u8) -> Vec<FastDetection> {
    let mut out = Vec::new();
    for y in 3..img.height().saturating_sub(3) {
        for x in 3..img.width().saturating_sub(3) {
            if is_fast_corner(img, x, y, threshold) {
                out.push(FastDetection { x, y });
            }
        }
    }
    out
}

/// Two-tier adaptive detection (extension, mirroring ORB-SLAM's
/// `iniThFAST`/`minThFAST` scheme): detect at `threshold`; if fewer than
/// `min_detections` corners fire (weakly textured input), retry once at
/// `fallback_threshold`.
///
/// Returns the detections together with the threshold that produced
/// them.
///
/// # Panics
/// Panics if `fallback_threshold > threshold` (the fallback must be more
/// permissive).
pub fn detect_adaptive(
    img: &GrayImage,
    threshold: u8,
    fallback_threshold: u8,
    min_detections: usize,
) -> (Vec<FastDetection>, u8) {
    assert!(
        fallback_threshold <= threshold,
        "fallback threshold must not exceed the primary threshold"
    );
    let primary = detect(img, threshold);
    if primary.len() >= min_detections || fallback_threshold == threshold {
        (primary, threshold)
    } else {
        (detect(img, fallback_threshold), fallback_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bright_square(size: u32, lo: u8, hi: u8) -> GrayImage {
        GrayImage::from_fn(size, size, move |x, y| {
            let q = size / 4;
            if (q..3 * q).contains(&x) && (q..3 * q).contains(&y) {
                hi
            } else {
                lo
            }
        })
    }

    #[test]
    fn flat_image_has_no_corners() {
        let img = GrayImage::from_fn(32, 32, |_, _| 128);
        assert!(detect(&img, 20).is_empty());
    }

    #[test]
    fn gradient_has_no_corners() {
        let img = GrayImage::from_fn(64, 64, |x, _| (x * 4).min(255) as u8);
        assert!(detect(&img, 20).is_empty());
    }

    #[test]
    fn square_corners_detected() {
        let img = bright_square(40, 20, 220);
        let corners = detect(&img, 30);
        assert!(!corners.is_empty());
        // Detections cluster near the four square corners (10,10), (29,10),
        // (10,29), (29,29); none in the flat interior.
        for c in &corners {
            let near_corner = [(10i32, 10i32), (29, 10), (10, 29), (29, 29)]
                .iter()
                .any(|&(cx, cy)| (c.x as i32 - cx).abs() <= 3 && (c.y as i32 - cy).abs() <= 3);
            assert!(near_corner, "unexpected corner at ({}, {})", c.x, c.y);
        }
    }

    #[test]
    fn dark_corner_on_bright_background_detected() {
        let img = bright_square(40, 220, 20); // inverted contrast
        let corners = detect(&img, 30);
        assert!(!corners.is_empty());
    }

    #[test]
    fn threshold_monotonicity() {
        let img = bright_square(40, 60, 180);
        let low = detect(&img, 10).len();
        let mid = detect(&img, 40).len();
        let high = detect(&img, 120).len();
        assert!(low >= mid, "low {low} vs mid {mid}");
        assert!(mid >= high, "mid {mid} vs high {high}");
        // The contrast is exactly 120 and the test is strict (p > c + t),
        // so threshold 120 can never fire.
        assert_eq!(high, 0);
    }

    #[test]
    fn border_pixels_never_fire() {
        let img = bright_square(16, 0, 255);
        for c in detect(&img, 10) {
            assert!(c.x >= 3 && c.y >= 3);
            assert!(c.x + 3 < 16 && c.y + 3 < 16);
        }
        // Direct probe of the border guard.
        assert!(!is_fast_corner(&img, 0, 0, 10));
        assert!(!is_fast_corner(&img, 2, 8, 10));
    }

    #[test]
    fn isolated_bright_dot_is_a_corner() {
        // A single bright pixel: the full circle is darker → arc of 16.
        let mut img = GrayImage::from_fn(16, 16, |_, _| 50);
        img.set(8, 8, 255);
        assert!(is_fast_corner(&img, 8, 8, 20));
    }

    #[test]
    fn wrap_around_arc_detected() {
        // Construct a circle whose bright arc crosses index 0: indices
        // 12..16 and 0..5 bright (9 contiguous with wrap), rest dark.
        let mut img = GrayImage::from_fn(9, 9, |_, _| 100);
        let bright: Vec<usize> = (12..16).chain(0..5).collect();
        for (i, &(dx, dy)) in CIRCLE_OFFSETS.iter().enumerate() {
            let v = if bright.contains(&i) { 200 } else { 100 };
            img.set((4 + dx) as u32, (4 + dy) as u32, v);
        }
        assert!(is_fast_corner(&img, 4, 4, 20));
    }

    #[test]
    fn eight_pixel_arc_is_not_enough() {
        let mut img = GrayImage::from_fn(9, 9, |_, _| 100);
        for (i, &(dx, dy)) in CIRCLE_OFFSETS.iter().enumerate() {
            let v = if i < 8 { 200 } else { 100 };
            img.set((4 + dx) as u32, (4 + dy) as u32, v);
        }
        assert!(!is_fast_corner(&img, 4, 4, 20));
    }

    #[test]
    fn nine_pixel_arc_fires() {
        let mut img = GrayImage::from_fn(9, 9, |_, _| 100);
        for (i, &(dx, dy)) in CIRCLE_OFFSETS.iter().enumerate() {
            let v = if i < 9 { 200 } else { 100 };
            img.set((4 + dx) as u32, (4 + dy) as u32, v);
        }
        assert!(is_fast_corner(&img, 4, 4, 20));
    }

    #[test]
    fn detections_in_raster_order() {
        let img = bright_square(40, 20, 220);
        let corners = detect(&img, 30);
        for pair in corners.windows(2) {
            let a = (pair[0].y, pair[0].x);
            let b = (pair[1].y, pair[1].x);
            assert!(a < b, "not raster ordered: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn adaptive_keeps_primary_when_plentiful() {
        let img = bright_square(40, 20, 220);
        let (corners, used) = detect_adaptive(&img, 30, 7, 1);
        assert_eq!(used, 30);
        assert_eq!(corners, detect(&img, 30));
    }

    #[test]
    fn adaptive_falls_back_on_weak_texture() {
        // Low-contrast square: threshold 60 finds nothing, 10 does.
        let img = bright_square(40, 100, 130);
        assert!(detect(&img, 60).is_empty());
        let (corners, used) = detect_adaptive(&img, 60, 10, 1);
        assert_eq!(used, 10);
        assert!(!corners.is_empty());
    }

    #[test]
    fn adaptive_reports_primary_when_fallback_also_needed_but_equal() {
        let img = GrayImage::from_fn(16, 16, |_, _| 128);
        let (corners, used) = detect_adaptive(&img, 20, 20, 5);
        assert!(corners.is_empty());
        assert_eq!(used, 20);
    }

    #[test]
    #[should_panic(expected = "fallback")]
    fn adaptive_rejects_inverted_thresholds() {
        let img = GrayImage::new(8, 8);
        detect_adaptive(&img, 10, 20, 1);
    }
}
