//! FAST (Features from Accelerated Segment Test) corner detection.
//!
//! The paper's FAST Detection module takes a 7×7 pixel patch and flags the
//! centre as a keypoint when ≥ 9 contiguous pixels on the 16-pixel
//! Bresenham circle of radius 3 are all brighter than centre + threshold
//! or all darker than centre − threshold (FAST-9/16, the variant ORB
//! uses).
//!
//! Two implementations coexist:
//!
//! * [`is_fast_corner`] — the per-pixel scalar reference (bit-exact
//!   contract for the hardware FAST unit and the oracle for the fast
//!   path);
//! * [`detect`] / [`detect_into`] — the production scanner: row-sliced
//!   addressing, the compass-point early reject, and a `u16` bright/dark
//!   bitmask classified through a precomputed 65536-entry
//!   [`arc length LUT`](arc_lut) instead of the 32-iteration run walk.
//!
//! `tests` and `crates/features/tests/fast_path_equivalence.rs` prove the
//! two agree bit-for-bit.

use eslam_image::GrayImage;
use std::sync::OnceLock;

/// The 16 offsets of the radius-3 Bresenham circle, clockwise from
/// 12 o'clock. Index order matters for the contiguity test.
pub const CIRCLE_OFFSETS: [(i32, i32); 16] = [
    (0, -3),
    (1, -3),
    (2, -2),
    (3, -1),
    (3, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (0, 3),
    (-1, 3),
    (-2, 2),
    (-3, 1),
    (-3, 0),
    (-3, -1),
    (-2, -2),
    (-1, -3),
];

/// Minimum contiguous arc length for FAST-9.
pub const FAST_ARC: usize = 9;

/// Default detection threshold (intensity difference).
pub const DEFAULT_THRESHOLD: u8 = 20;

/// Classification of circle pixels relative to the centre.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    Brighter,
    Darker,
    Similar,
}

/// Tests whether the pixel at `(x, y)` is a FAST-9 corner.
///
/// Pixels closer than 3 to the border are never corners (the circle would
/// leave the image). This function is the bit-exact reference for the
/// hardware FAST unit.
pub fn is_fast_corner(img: &GrayImage, x: u32, y: u32, threshold: u8) -> bool {
    if x < 3 || y < 3 || x + 3 >= img.width() || y + 3 >= img.height() {
        return false;
    }
    let centre = img.get(x, y) as i32;
    let t = threshold as i32;

    // High-speed reject: any 9-pixel arc on the 16-pixel circle covers at
    // least 2 of the 4 compass points (they are spaced 4 apart), so fewer
    // than 2 extreme compass points rules a corner out.
    let p0 = img.get(x, y - 3) as i32;
    let p8 = img.get(x, y + 3) as i32;
    let p4 = img.get(x + 3, y) as i32;
    let p12 = img.get(x - 3, y) as i32;
    let bright_compass = [p0, p4, p8, p12]
        .iter()
        .filter(|&&p| p > centre + t)
        .count();
    let dark_compass = [p0, p4, p8, p12]
        .iter()
        .filter(|&&p| p < centre - t)
        .count();
    if bright_compass < 2 && dark_compass < 2 {
        return false;
    }

    let mut classes = [Tri::Similar; 16];
    for (class, &(dx, dy)) in classes.iter_mut().zip(&CIRCLE_OFFSETS) {
        let p = img.get((x as i32 + dx) as u32, (y as i32 + dy) as u32) as i32;
        *class = if p > centre + t {
            Tri::Brighter
        } else if p < centre - t {
            Tri::Darker
        } else {
            Tri::Similar
        };
    }

    has_arc(&classes, Tri::Brighter) || has_arc(&classes, Tri::Darker)
}

/// Checks for a circular run of ≥ [`FAST_ARC`] pixels of class `want`.
fn has_arc(classes: &[Tri], want: Tri) -> bool {
    let mut run = 0usize;
    // Walk the circle twice to capture wrap-around runs.
    for i in 0..(classes.len() * 2) {
        if classes[i % classes.len()] == want {
            run += 1;
            if run >= FAST_ARC {
                return true;
            }
        } else {
            run = 0;
        }
    }
    false
}

/// The longest circular run of set bits in a 16-bit circle mask,
/// computed the slow way (used to build and cross-check the LUT).
fn circular_run_length(mask: u16) -> u8 {
    if mask == u16::MAX {
        return 16;
    }
    let mut best = 0u8;
    let mut run = 0u8;
    // Two laps capture wrap-around runs; `mask != 0xffff` bounds them.
    for i in 0..32 {
        if mask >> (i % 16) & 1 == 1 {
            run += 1;
            best = best.max(run.min(16));
        } else {
            run = 0;
        }
    }
    best
}

/// The 65536-entry arc-length LUT: `arc_lut()[mask]` is the longest
/// circular run of set bits in `mask`, so the FAST-9 segment test is a
/// single table lookup (`arc_lut()[mask] >= FAST_ARC as u8`).
///
/// Built once per process (~2 M cheap operations) and shared.
pub fn arc_lut() -> &'static [u8; 65536] {
    static LUT: OnceLock<Box<[u8; 65536]>> = OnceLock::new();
    LUT.get_or_init(|| {
        let mut lut = vec![0u8; 65536].into_boxed_slice();
        for (mask, slot) in lut.iter_mut().enumerate() {
            *slot = circular_run_length(mask as u16);
        }
        lut.try_into().expect("65536 entries")
    })
}

/// A raw FAST detection prior to scoring/NMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastDetection {
    /// Column of the detection.
    pub x: u32,
    /// Row of the detection.
    pub y: u32,
}

/// Detects all FAST-9 corners in the image at the given threshold.
///
/// Returns detections in raster order, matching the order the streaming
/// hardware emits them.
///
/// # Examples
///
/// ```
/// use eslam_image::GrayImage;
/// use eslam_features::fast::{detect, DEFAULT_THRESHOLD};
/// // A bright square on dark background has corners at its corners.
/// let img = GrayImage::from_fn(32, 32, |x, y| {
///     if (8..24).contains(&x) && (8..24).contains(&y) { 200 } else { 20 }
/// });
/// let corners = detect(&img, DEFAULT_THRESHOLD);
/// assert!(!corners.is_empty());
/// ```
pub fn detect(img: &GrayImage, threshold: u8) -> Vec<FastDetection> {
    let mut out = Vec::new();
    detect_into(img, threshold, &mut out);
    out
}

/// Scalar reference detector: calls [`is_fast_corner`] on every pixel.
/// Kept as the bit-exact oracle for [`detect`]; prefer [`detect`] in
/// production code.
pub fn detect_reference(img: &GrayImage, threshold: u8) -> Vec<FastDetection> {
    let mut out = Vec::new();
    for y in 3..img.height().saturating_sub(3) {
        for x in 3..img.width().saturating_sub(3) {
            if is_fast_corner(img, x, y, threshold) {
                out.push(FastDetection { x, y });
            }
        }
    }
    out
}

/// The seven row slices the radius-3 circle around row `y` touches.
struct CircleRows<'a> {
    rm3: &'a [u8],
    rm2: &'a [u8],
    rm1: &'a [u8],
    r0: &'a [u8],
    rp1: &'a [u8],
    rp2: &'a [u8],
    rp3: &'a [u8],
}

impl<'a> CircleRows<'a> {
    fn new(data: &'a [u8], w: usize, y: usize) -> Self {
        CircleRows {
            rm3: &data[(y - 3) * w..(y - 3) * w + w],
            rm2: &data[(y - 2) * w..(y - 2) * w + w],
            rm1: &data[(y - 1) * w..(y - 1) * w + w],
            r0: &data[y * w..y * w + w],
            rp1: &data[(y + 1) * w..(y + 1) * w + w],
            rp2: &data[(y + 2) * w..(y + 2) * w + w],
            rp3: &data[(y + 3) * w..(y + 3) * w + w],
        }
    }
}

/// The full per-pixel FAST-9 decision (compass reject + bitmask/LUT
/// segment test) at interior column `x`. The single source of truth for
/// the scalar scan and the SIMD prefilter's confirm step.
#[inline(always)]
fn corner_at(r: &CircleRows<'_>, x: usize, t: i32, lut: &[u8; 65536]) -> bool {
    let c = r.r0[x] as i32;
    let hi = c + t;
    let lo = c - t;

    // Compass-point early reject (§fast.rs reference): any 9-arc covers
    // ≥ 2 of the 4 compass points.
    let p0 = r.rm3[x] as i32;
    let p4 = r.r0[x + 3] as i32;
    let p8 = r.rp3[x] as i32;
    let p12 = r.r0[x - 3] as i32;
    let bright_compass = (p0 > hi) as u32 + (p4 > hi) as u32 + (p8 > hi) as u32 + (p12 > hi) as u32;
    let dark_compass = (p0 < lo) as u32 + (p4 < lo) as u32 + (p8 < lo) as u32 + (p12 < lo) as u32;
    if bright_compass < 2 && dark_compass < 2 {
        return false;
    }

    // Classify the 16 circle pixels into bright/dark bitmasks (bit i
    // corresponds to CIRCLE_OFFSETS[i]) — branchless.
    let circle = [
        p0,                  //  0: ( 0, -3)
        r.rm3[x + 1] as i32, //  1: ( 1, -3)
        r.rm2[x + 2] as i32, //  2: ( 2, -2)
        r.rm1[x + 3] as i32, //  3: ( 3, -1)
        p4,                  //  4: ( 3,  0)
        r.rp1[x + 3] as i32, //  5: ( 3,  1)
        r.rp2[x + 2] as i32, //  6: ( 2,  2)
        r.rp3[x + 1] as i32, //  7: ( 1,  3)
        p8,                  //  8: ( 0,  3)
        r.rp3[x - 1] as i32, //  9: (-1,  3)
        r.rp2[x - 2] as i32, // 10: (-2,  2)
        r.rp1[x - 3] as i32, // 11: (-3,  1)
        p12,                 // 12: (-3,  0)
        r.rm1[x - 3] as i32, // 13: (-3, -1)
        r.rm2[x - 2] as i32, // 14: (-2, -2)
        r.rm3[x - 1] as i32, // 15: (-1, -3)
    ];
    let mut bright = 0u16;
    let mut dark = 0u16;
    for (i, &p) in circle.iter().enumerate() {
        bright |= ((p > hi) as u16) << i;
        dark |= ((p < lo) as u16) << i;
    }

    lut[bright as usize] >= FAST_ARC as u8 || lut[dark as usize] >= FAST_ARC as u8
}

/// Scalar scan of interior columns `x0..x1` of row `y`.
fn scan_row_scalar(
    r: &CircleRows<'_>,
    y: u32,
    x0: usize,
    x1: usize,
    t: i32,
    lut: &[u8; 65536],
    out: &mut Vec<FastDetection>,
) {
    for x in x0..x1 {
        if corner_at(r, x, t, lut) {
            out.push(FastDetection { x: x as u32, y });
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{CircleRows, FastDetection};
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    pub(super) fn avx2_available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }

    #[inline(always)]
    unsafe fn loadu(p: *const u8) -> __m256i {
        _mm256_loadu_si256(p as *const __m256i)
    }

    /// AVX2 row scan, 32 centre pixels per step, in two vector stages
    /// that mirror the scalar decision exactly:
    ///
    /// 1. **Compass-point early reject** — counts of the four compass
    ///    points brighter than `c + t` / darker than `c − t`. If no lane
    ///    reaches 2 the whole block is rejected, like the scalar
    ///    `continue`.
    /// 2. **Full circle classification** — for blocks with candidates,
    ///    the 16 circle comparisons run vectorially and each pixel's
    ///    bright/dark bitmask is accumulated in-register (bit *i* of
    ///    lane *j* = circle pixel *i* of centre *j*); only the final
    ///    arc-LUT lookup is scalar, per candidate.
    ///
    /// Bit-identity with the scalar path:
    ///
    /// * `hi = adds_epu8(c, t)` saturates at 255; the scalar test
    ///   `p > c + t` is false for every `u8` p whenever `c + t ≥ 255`,
    ///   matching the saturated comparison exactly.
    /// * `lo = subs_epu8(c, t)` saturates at 0; `p < c − t` is false for
    ///   every `u8` p whenever `c − t ≤ 0`, and `subs_epu8(0, p) = 0`
    ///   never flags.
    /// * `min_epu8(subs_epu8(a, b), 1)` is `(a > b) as u8`, so summing
    ///   the four compass points counts exactly like the scalar code;
    ///   `cmpgt_epi8(count, 1)` is `count ≥ 2` (counts are 0..=4).
    /// * Stage 2 classifies with the same `subs_epu8` comparisons, so
    ///   the assembled 16-bit masks equal the scalar `bright`/`dark`
    ///   masks and the LUT decision is the scalar decision.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan_row(
        r: &CircleRows<'_>,
        w: usize,
        y: u32,
        t: u8,
        lut: &[u8; 65536],
        out: &mut Vec<FastDetection>,
    ) {
        use super::{CIRCLE_OFFSETS, FAST_ARC};
        let tv = _mm256_set1_epi8(t as i8);
        let one = _mm256_set1_epi8(1);
        let ones = _mm256_set1_epi8(-1);
        let zero = _mm256_setzero_si256();
        // Row base pointer for each circle offset's dy, in offset order.
        let row_of = |dy: i32| -> *const u8 {
            match dy {
                -3 => r.rm3.as_ptr(),
                -2 => r.rm2.as_ptr(),
                -1 => r.rm1.as_ptr(),
                0 => r.r0.as_ptr(),
                1 => r.rp1.as_ptr(),
                2 => r.rp2.as_ptr(),
                _ => r.rp3.as_ptr(),
            }
        };
        let mut x = 3usize;
        // Widest load reaches r0[x + 3 + 31]; stop while it stays in-row.
        while x + 35 <= w {
            let c = loadu(r.r0.as_ptr().add(x));
            let hi = _mm256_adds_epu8(c, tv);
            let lo = _mm256_subs_epu8(c, tv);

            // Stage 1: compass counts (circle pixels 0, 4, 8, 12).
            let mut bright_n = zero;
            let mut dark_n = zero;
            for p in [
                loadu(r.rm3.as_ptr().add(x)),
                loadu(r.r0.as_ptr().add(x + 3)),
                loadu(r.rp3.as_ptr().add(x)),
                loadu(r.r0.as_ptr().add(x - 3)),
            ] {
                bright_n = _mm256_add_epi8(bright_n, _mm256_min_epu8(_mm256_subs_epu8(p, hi), one));
                dark_n = _mm256_add_epi8(dark_n, _mm256_min_epu8(_mm256_subs_epu8(lo, p), one));
            }
            let cand = _mm256_or_si256(
                _mm256_cmpgt_epi8(bright_n, one),
                _mm256_cmpgt_epi8(dark_n, one),
            );
            let mut mask = _mm256_movemask_epi8(cand) as u32;
            if mask == 0 {
                x += 32;
                continue;
            }

            // Stage 2: full 16-pixel classification. Accumulate bit i of
            // each pixel's bright/dark mask into lane bytes (low byte =
            // bits 0..7, high byte = bits 8..15).
            let mut b_lo = zero;
            let mut b_hi = zero;
            let mut d_lo = zero;
            let mut d_hi = zero;
            for (i, &(dx, dy)) in CIRCLE_OFFSETS.iter().enumerate() {
                let p = loadu(row_of(dy).add((x as i32 + dx) as usize));
                // 0/FF masks for p > hi and p < lo.
                let b = _mm256_xor_si256(_mm256_cmpeq_epi8(_mm256_subs_epu8(p, hi), zero), ones);
                let d = _mm256_xor_si256(_mm256_cmpeq_epi8(_mm256_subs_epu8(lo, p), zero), ones);
                let bit = _mm256_set1_epi8(1i8 << (i & 7));
                if i < 8 {
                    b_lo = _mm256_or_si256(b_lo, _mm256_and_si256(b, bit));
                    d_lo = _mm256_or_si256(d_lo, _mm256_and_si256(d, bit));
                } else {
                    b_hi = _mm256_or_si256(b_hi, _mm256_and_si256(b, bit));
                    d_hi = _mm256_or_si256(d_hi, _mm256_and_si256(d, bit));
                }
            }
            let mut bytes = [0u8; 128];
            _mm256_storeu_si256(bytes.as_mut_ptr() as *mut __m256i, b_lo);
            _mm256_storeu_si256(bytes.as_mut_ptr().add(32) as *mut __m256i, b_hi);
            _mm256_storeu_si256(bytes.as_mut_ptr().add(64) as *mut __m256i, d_lo);
            _mm256_storeu_si256(bytes.as_mut_ptr().add(96) as *mut __m256i, d_hi);

            while mask != 0 {
                let j = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let bright = bytes[j] as usize | (bytes[32 + j] as usize) << 8;
                let dark = bytes[64 + j] as usize | (bytes[96 + j] as usize) << 8;
                if lut[bright] >= FAST_ARC as u8 || lut[dark] >= FAST_ARC as u8 {
                    out.push(FastDetection {
                        x: (x + j) as u32,
                        y,
                    });
                }
            }
            x += 32;
        }
        super::scan_row_scalar(r, y, x, w - 3, t as i32, lut, out);
    }
}

/// Detects all FAST-9 corners into a caller-owned buffer (cleared
/// first), performing no other allocation. Output is bit-identical to
/// [`detect_reference`]: raster order, same corner set.
pub fn detect_into(img: &GrayImage, threshold: u8, out: &mut Vec<FastDetection>) {
    out.clear();
    detect_band_into(img, threshold, 0..img.height(), out);
}

/// Band-aware FAST scan: **appends** (does not clear) the corners of
/// rows `rows ∩ [3, height − 3)` in raster order — the row-band entry
/// point the streaming front-end calls once per scanned row. The
/// detection set over any row range is bit-identical to the same rows of
/// [`detect_reference`].
///
/// Uses an AVX2 compass-point prefilter (32 centre pixels per step) with
/// exact scalar confirmation where available, falling back to the scalar
/// scan otherwise; both paths make identical decisions.
pub fn detect_band_into(
    img: &GrayImage,
    threshold: u8,
    rows: std::ops::Range<u32>,
    out: &mut Vec<FastDetection>,
) {
    let w = img.width() as usize;
    let h = img.height() as usize;
    if w < 7 || h < 7 {
        return;
    }
    let data = img.as_raw();
    let lut = arc_lut();
    let y0 = rows.start.max(3) as usize;
    let y1 = (rows.end as usize).min(h - 3);

    #[cfg(target_arch = "x86_64")]
    let use_avx2 = x86::avx2_available();

    for y in y0..y1 {
        let r = CircleRows::new(data, w, y);
        #[cfg(target_arch = "x86_64")]
        if use_avx2 {
            // SAFETY: gated on runtime AVX2 detection; loads stay within
            // the row slices by the loop bound.
            unsafe { x86::scan_row(&r, w, y as u32, threshold, lut, out) };
            continue;
        }
        scan_row_scalar(&r, y as u32, 3, w - 3, threshold as i32, lut, out);
    }
}

/// Two-tier adaptive detection (extension, mirroring ORB-SLAM's
/// `iniThFAST`/`minThFAST` scheme): detect at `threshold`; if fewer than
/// `min_detections` corners fire (weakly textured input), retry once at
/// `fallback_threshold`.
///
/// Returns the detections together with the threshold that produced
/// them.
///
/// # Panics
/// Panics if `fallback_threshold > threshold` (the fallback must be more
/// permissive).
pub fn detect_adaptive(
    img: &GrayImage,
    threshold: u8,
    fallback_threshold: u8,
    min_detections: usize,
) -> (Vec<FastDetection>, u8) {
    assert!(
        fallback_threshold <= threshold,
        "fallback threshold must not exceed the primary threshold"
    );
    let primary = detect(img, threshold);
    if primary.len() >= min_detections || fallback_threshold == threshold {
        (primary, threshold)
    } else {
        (detect(img, fallback_threshold), fallback_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bright_square(size: u32, lo: u8, hi: u8) -> GrayImage {
        GrayImage::from_fn(size, size, move |x, y| {
            let q = size / 4;
            if (q..3 * q).contains(&x) && (q..3 * q).contains(&y) {
                hi
            } else {
                lo
            }
        })
    }

    #[test]
    fn flat_image_has_no_corners() {
        let img = GrayImage::from_fn(32, 32, |_, _| 128);
        assert!(detect(&img, 20).is_empty());
    }

    #[test]
    fn gradient_has_no_corners() {
        let img = GrayImage::from_fn(64, 64, |x, _| (x * 4).min(255) as u8);
        assert!(detect(&img, 20).is_empty());
    }

    #[test]
    fn square_corners_detected() {
        let img = bright_square(40, 20, 220);
        let corners = detect(&img, 30);
        assert!(!corners.is_empty());
        // Detections cluster near the four square corners (10,10), (29,10),
        // (10,29), (29,29); none in the flat interior.
        for c in &corners {
            let near_corner = [(10i32, 10i32), (29, 10), (10, 29), (29, 29)]
                .iter()
                .any(|&(cx, cy)| (c.x as i32 - cx).abs() <= 3 && (c.y as i32 - cy).abs() <= 3);
            assert!(near_corner, "unexpected corner at ({}, {})", c.x, c.y);
        }
    }

    #[test]
    fn dark_corner_on_bright_background_detected() {
        let img = bright_square(40, 220, 20); // inverted contrast
        let corners = detect(&img, 30);
        assert!(!corners.is_empty());
    }

    #[test]
    fn threshold_monotonicity() {
        let img = bright_square(40, 60, 180);
        let low = detect(&img, 10).len();
        let mid = detect(&img, 40).len();
        let high = detect(&img, 120).len();
        assert!(low >= mid, "low {low} vs mid {mid}");
        assert!(mid >= high, "mid {mid} vs high {high}");
        // The contrast is exactly 120 and the test is strict (p > c + t),
        // so threshold 120 can never fire.
        assert_eq!(high, 0);
    }

    #[test]
    fn border_pixels_never_fire() {
        let img = bright_square(16, 0, 255);
        for c in detect(&img, 10) {
            assert!(c.x >= 3 && c.y >= 3);
            assert!(c.x + 3 < 16 && c.y + 3 < 16);
        }
        // Direct probe of the border guard.
        assert!(!is_fast_corner(&img, 0, 0, 10));
        assert!(!is_fast_corner(&img, 2, 8, 10));
    }

    #[test]
    fn isolated_bright_dot_is_a_corner() {
        // A single bright pixel: the full circle is darker → arc of 16.
        let mut img = GrayImage::from_fn(16, 16, |_, _| 50);
        img.set(8, 8, 255);
        assert!(is_fast_corner(&img, 8, 8, 20));
    }

    #[test]
    fn wrap_around_arc_detected() {
        // Construct a circle whose bright arc crosses index 0: indices
        // 12..16 and 0..5 bright (9 contiguous with wrap), rest dark.
        let mut img = GrayImage::from_fn(9, 9, |_, _| 100);
        let bright: Vec<usize> = (12..16).chain(0..5).collect();
        for (i, &(dx, dy)) in CIRCLE_OFFSETS.iter().enumerate() {
            let v = if bright.contains(&i) { 200 } else { 100 };
            img.set((4 + dx) as u32, (4 + dy) as u32, v);
        }
        assert!(is_fast_corner(&img, 4, 4, 20));
    }

    #[test]
    fn eight_pixel_arc_is_not_enough() {
        let mut img = GrayImage::from_fn(9, 9, |_, _| 100);
        for (i, &(dx, dy)) in CIRCLE_OFFSETS.iter().enumerate() {
            let v = if i < 8 { 200 } else { 100 };
            img.set((4 + dx) as u32, (4 + dy) as u32, v);
        }
        assert!(!is_fast_corner(&img, 4, 4, 20));
    }

    #[test]
    fn nine_pixel_arc_fires() {
        let mut img = GrayImage::from_fn(9, 9, |_, _| 100);
        for (i, &(dx, dy)) in CIRCLE_OFFSETS.iter().enumerate() {
            let v = if i < 9 { 200 } else { 100 };
            img.set((4 + dx) as u32, (4 + dy) as u32, v);
        }
        assert!(is_fast_corner(&img, 4, 4, 20));
    }

    #[test]
    fn detections_in_raster_order() {
        let img = bright_square(40, 20, 220);
        let corners = detect(&img, 30);
        for pair in corners.windows(2) {
            let a = (pair[0].y, pair[0].x);
            let b = (pair[1].y, pair[1].x);
            assert!(a < b, "not raster ordered: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn adaptive_keeps_primary_when_plentiful() {
        let img = bright_square(40, 20, 220);
        let (corners, used) = detect_adaptive(&img, 30, 7, 1);
        assert_eq!(used, 30);
        assert_eq!(corners, detect(&img, 30));
    }

    #[test]
    fn adaptive_falls_back_on_weak_texture() {
        // Low-contrast square: threshold 60 finds nothing, 10 does.
        let img = bright_square(40, 100, 130);
        assert!(detect(&img, 60).is_empty());
        let (corners, used) = detect_adaptive(&img, 60, 10, 1);
        assert_eq!(used, 10);
        assert!(!corners.is_empty());
    }

    #[test]
    fn adaptive_reports_primary_when_fallback_also_needed_but_equal() {
        let img = GrayImage::from_fn(16, 16, |_, _| 128);
        let (corners, used) = detect_adaptive(&img, 20, 20, 5);
        assert!(corners.is_empty());
        assert_eq!(used, 20);
    }

    #[test]
    #[should_panic(expected = "fallback")]
    fn adaptive_rejects_inverted_thresholds() {
        let img = GrayImage::new(8, 8);
        detect_adaptive(&img, 10, 20, 1);
    }

    #[test]
    fn arc_lut_matches_has_arc_exhaustively() {
        // For every 16-bit mask, the LUT's ≥9 decision must equal the
        // reference run-walk over the equivalent classification array.
        let lut = arc_lut();
        for mask in 0..=u16::MAX {
            let classes: Vec<Tri> = (0..16)
                .map(|i| {
                    if mask >> i & 1 == 1 {
                        Tri::Brighter
                    } else {
                        Tri::Similar
                    }
                })
                .collect();
            let expect = has_arc(&classes, Tri::Brighter);
            assert_eq!(
                lut[mask as usize] >= FAST_ARC as u8,
                expect,
                "mask {mask:#06x}: lut={} expect_arc={expect}",
                lut[mask as usize]
            );
        }
    }

    #[test]
    fn arc_lut_extremes() {
        let lut = arc_lut();
        assert_eq!(lut[0], 0);
        assert_eq!(lut[0xffff], 16);
        assert_eq!(lut[0b1], 1);
        // Wrap-around run: bits 14,15,0,1 → length 4.
        assert_eq!(lut[0b1100_0000_0000_0011], 4);
    }

    #[test]
    fn detect_matches_reference_on_textures() {
        for seed in 0..6u64 {
            let img = GrayImage::from_fn(97, 73, |x, y| {
                let h = (x as u64)
                    .wrapping_mul(2654435761)
                    .wrapping_add((y as u64).wrapping_mul(40503))
                    .wrapping_add(seed.wrapping_mul(0x9e3779b9));
                ((h >> 7) % 256) as u8
            });
            for threshold in [5u8, 20, 60] {
                assert_eq!(
                    detect(&img, threshold),
                    detect_reference(&img, threshold),
                    "seed {seed} threshold {threshold}"
                );
            }
        }
    }

    #[test]
    fn detect_into_reuses_buffer() {
        let img = bright_square(40, 20, 220);
        let mut buf = vec![FastDetection { x: 0, y: 0 }; 3];
        detect_into(&img, 30, &mut buf);
        assert_eq!(buf, detect_reference(&img, 30));
    }

    #[test]
    fn band_scan_matches_reference_row_ranges() {
        // The band entry appends each requested row range bit-identically
        // to the same rows of the reference, across widths chosen to
        // exercise every SIMD tail shape (w < 38 is all-scalar; 38, 39,
        // 66, 67, 101 leave tails of various lengths).
        for &w in &[7u32, 12, 37, 38, 39, 66, 67, 101] {
            let img = GrayImage::from_fn(w, 29, |x, y| {
                let h = (x as u64)
                    .wrapping_mul(2654435761)
                    .wrapping_add((y as u64).wrapping_mul(40503));
                ((h >> 5) % 256) as u8
            });
            let reference = detect_reference(&img, 10);
            // Full range in one call.
            let mut all = Vec::new();
            detect_band_into(&img, 10, 0..29, &mut all);
            assert_eq!(all, reference, "width {w} full");
            // Assembled from single-row bands (the streaming call shape).
            let mut assembled = Vec::new();
            for y in 0..29 {
                detect_band_into(&img, 10, y..y + 1, &mut assembled);
            }
            assert_eq!(assembled, reference, "width {w} per-row");
            // Uneven split, including out-of-range rows (clamped).
            let mut split = Vec::new();
            detect_band_into(&img, 10, 0..11, &mut split);
            detect_band_into(&img, 10, 11..1000, &mut split);
            assert_eq!(split, reference, "width {w} split");
        }
    }

    #[test]
    fn band_scan_appends_without_clearing() {
        let img = bright_square(40, 20, 220);
        let mut out = vec![FastDetection { x: 999, y: 999 }];
        detect_band_into(&img, 30, 0..40, &mut out);
        assert_eq!(out[0], FastDetection { x: 999, y: 999 });
        assert_eq!(&out[1..], detect_reference(&img, 30).as_slice());
    }

    #[test]
    fn tiny_images_have_no_corners() {
        for (w, h) in [(0u32, 0u32), (1, 1), (6, 6), (6, 40), (40, 6)] {
            let img = GrayImage::from_fn(w, h, |x, y| ((x * 41 + y * 13) % 251) as u8);
            assert!(detect(&img, 5).is_empty());
            assert_eq!(detect(&img, 5), detect_reference(&img, 5));
        }
    }
}
