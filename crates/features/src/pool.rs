//! Persistent worker pool for the front-end hot loops.
//!
//! The parallel extraction stage and the threaded matcher rows used to
//! spawn scoped threads on every call — roughly 10–20 µs of spawn/join
//! overhead per invocation, paid once per frame per stage in the
//! steady-state SLAM loop. [`WorkerPool`] replaces those per-call spawns
//! with threads created once and reused: work is submitted as a batch of
//! borrowed closures ([`WorkerPool::scope_run`]), the submitting thread
//! helps drain the queue, and the call returns only when every closure
//! has finished — the same structured-concurrency contract as
//! `std::thread::scope`, without the per-call thread creation.
//!
//! # Sizing
//!
//! A pool of size `n` uses the calling thread plus `n - 1` workers, so
//! `WorkerPool::new(1)` spawns no threads at all and runs every batch
//! inline. The *override* path used by the SLAM configuration
//! ([`resolve_thread_count`]) clamps requests: `None` resolves to the
//! host's available parallelism, `Some(0)` is rejected with a panic, and
//! `Some(n)` is capped at available parallelism — a pool wider than the
//! core count only adds context-switch pressure. [`WorkerPool::new`]
//! itself honours the exact count it is given (it only rejects zero), so
//! tests can exercise the worker machinery on single-core hosts.
//!
//! # Panics in tasks
//!
//! A panicking task does not kill its worker; the panic is caught, the
//! batch still completes, and `scope_run` re-raises a panic on the
//! calling thread once every task of the batch has settled.
//!
//! # Fire-and-collect jobs
//!
//! Besides the blocking batch API, [`WorkerPool::submit`] queues one
//! `'static` job and returns immediately with a [`TaskHandle`]; the
//! caller collects the result later with [`TaskHandle::join`]. This is
//! the primitive behind the dataset prefetcher: frame `k + 1` renders on
//! a worker while the pipeline tracks frame `k`. `join` *help-drains*
//! the queue while it waits, so a 1-thread pool (no workers at all)
//! still completes every submitted job — at `join` time, inline — and a
//! handle can even outlive its pool: queued jobs stay reachable through
//! the shared queue, which both workers (during shutdown) and joiners
//! drain.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A work item: type-erased, heap-boxed closure.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The job queue shared between the pool handle and its workers.
///
/// A condvar-guarded deque rather than an `mpsc` channel: workers must
/// *release* the lock while waiting for work (`Condvar::wait` does, a
/// blocking `recv` under a shared mutex does not), so that the
/// submitting thread can keep draining the queue concurrently.
#[derive(Default)]
struct Queue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

impl Queue {
    fn push(&self, job: Job) {
        let mut state = self.state.lock().unwrap();
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
    }

    /// Non-blocking pop for the submitting thread's help-drain loop.
    fn try_pop(&self) -> Option<Job> {
        self.state.lock().unwrap().jobs.pop_front()
    }

    /// Blocking pop for workers; `None` means the pool is shutting down.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.shutdown {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }
}

/// Completion latch for one `scope_run` batch.
#[derive(Debug)]
struct Latch {
    remaining: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            all_done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn arrive(&self) {
        let mut left = self.remaining.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().unwrap();
        while *left > 0 {
            left = self.all_done.wait(left).unwrap();
        }
    }
}

/// Decrements the latch when dropped, so a panicking task still arrives.
struct LatchGuard(Arc<Latch>);

impl Drop for LatchGuard {
    fn drop(&mut self) {
        self.0.arrive();
    }
}

/// Completion slot shared between a submitted job and its [`TaskHandle`].
struct TaskState<T> {
    slot: Mutex<TaskSlot<T>>,
    done: Condvar,
}

enum TaskSlot<T> {
    Pending,
    Finished(T),
    Panicked(Box<dyn std::any::Any + Send>),
}

/// Handle to one job queued with [`WorkerPool::submit`].
///
/// Collect the result with [`TaskHandle::join`]. Dropping the handle
/// without joining is allowed: the job still runs (its result is
/// discarded), and a panic inside it is contained to the slot rather
/// than tearing down a worker.
pub struct TaskHandle<T> {
    state: Arc<TaskState<T>>,
    /// The queue the job was pushed to, kept alive independently of the
    /// pool so `join` can help-drain even after the pool is dropped.
    queue: Arc<Queue>,
}

impl<T> std::fmt::Debug for TaskHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match *self.state.slot.lock().unwrap() {
            TaskSlot::Pending => "pending",
            TaskSlot::Finished(_) => "finished",
            TaskSlot::Panicked(_) => "panicked",
        };
        f.debug_struct("TaskHandle").field("state", &state).finish()
    }
}

impl<T> TaskHandle<T> {
    /// Whether the job has settled (finished or panicked), without
    /// blocking or help-draining.
    pub fn is_settled(&self) -> bool {
        !matches!(*self.state.slot.lock().unwrap(), TaskSlot::Pending)
    }

    /// Blocks until the job has settled and returns its result.
    ///
    /// While waiting, the calling thread helps drain the pool's queue
    /// (it may execute other queued jobs, including this handle's own),
    /// so joining never deadlocks on a pool with no idle workers — a
    /// 1-thread pool simply runs the job here, inline.
    ///
    /// # Panics
    /// Re-raises the job's panic payload on the joining thread if the
    /// job panicked.
    pub fn join(self) -> T {
        loop {
            {
                let mut slot = self.state.slot.lock().unwrap();
                match std::mem::replace(&mut *slot, TaskSlot::Pending) {
                    TaskSlot::Finished(value) => return value,
                    TaskSlot::Panicked(payload) => std::panic::resume_unwind(payload),
                    TaskSlot::Pending => {}
                }
            }
            // Not settled: run someone's queued job (possibly our own)
            // instead of idling.
            if let Some(job) = self.queue.try_pop() {
                job();
                continue;
            }
            // Queue empty but still pending: our job was popped by a
            // worker (or another joiner) and is mid-execution — a queued
            // job is always either in the queue or being run to
            // completion, so blocking here cannot deadlock. The slot is
            // re-checked under the lock, so the settle notification
            // cannot be missed.
            let mut slot = self.state.slot.lock().unwrap();
            while matches!(*slot, TaskSlot::Pending) {
                slot = self.state.done.wait(slot).unwrap();
            }
        }
    }
}

/// The number of hardware threads the host reports (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolves a thread-count override to an actual pool size.
///
/// * `None` — one thread per available core ([`available_threads`]).
/// * `Some(n)` — `n`, **capped at available parallelism**: requesting
///   more threads than cores only adds scheduling overhead, so the
///   excess is clamped rather than honoured.
///
/// # Panics
///
/// Panics on `Some(0)`: a zero-thread pool cannot make progress, and
/// silently promoting it to 1 would hide a configuration bug.
pub fn resolve_thread_count(requested: Option<usize>) -> usize {
    match requested {
        None => available_threads(),
        Some(0) => panic!("worker pool thread count must be at least 1 (got 0)"),
        Some(n) => n.min(available_threads()),
    }
}

/// A persistent pool of worker threads executing batches of borrowed
/// closures with `std::thread::scope` semantics.
///
/// # Examples
///
/// ```
/// use eslam_features::pool::WorkerPool;
/// let pool = WorkerPool::new(2);
/// let mut halves = [0u64; 2];
/// {
///     let (lo, hi) = halves.split_at_mut(1);
///     pool.scope_run(vec![
///         Box::new(|| lo[0] = (0..50).sum()),
///         Box::new(|| hi[0] = (50..100).sum()),
///     ]);
/// }
/// assert_eq!(halves[0] + halves[1], (0..100).sum());
/// ```
pub struct WorkerPool {
    threads: usize,
    /// Shared job queue: workers block on it, `scope_run` feeds and
    /// helps drain it.
    queue: Arc<Queue>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool of total size `threads`: the calling thread plus
    /// `threads - 1` persistent workers. The count is honoured exactly;
    /// use [`WorkerPool::with_threads`] for the clamped override path.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero (see [`resolve_thread_count`]).
    pub fn new(threads: usize) -> Self {
        assert!(
            threads >= 1,
            "worker pool thread count must be at least 1 (got 0)"
        );
        let queue = Arc::new(Queue::default());
        let handles = (1..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("eslam-worker-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            threads,
            queue,
            handles,
        }
    }

    /// Creates a pool from a thread-count override, applying the
    /// [`resolve_thread_count`] clamping rules (`None` → all cores,
    /// `Some(0)` → panic, `Some(n)` → capped at available parallelism).
    pub fn with_threads(requested: Option<usize>) -> Self {
        WorkerPool::new(resolve_thread_count(requested))
    }

    /// The process-wide shared pool (one thread per available core),
    /// created on first use. Entry points without an explicit pool — the
    /// plain [`crate::matcher::match_brute_force`] call, extraction with
    /// a default scratch — run their parallel sections here instead of
    /// spawning scoped threads per call.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(available_threads()))
    }

    /// Total parallelism of the pool (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs a batch of closures to completion, in parallel across the
    /// pool. The calling thread participates in draining the queue, and
    /// the method returns only once **every** task has finished, which is
    /// what makes handing out borrowed (non-`'static`) closures sound.
    ///
    /// Tasks are executed in submission order modulo work stealing;
    /// batches needing a deterministic *merge* order should write into
    /// pre-split disjoint output slots, exactly as with
    /// `std::thread::scope`.
    ///
    /// # Panics
    ///
    /// Panics if any task panicked (after the whole batch has settled).
    pub fn scope_run<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if self.handles.is_empty() || tasks.len() <= 1 {
            for task in tasks {
                task();
            }
            return;
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        for task in tasks {
            // SAFETY: `scope_run` blocks on `latch.wait()` below until
            // every submitted task has run (or unwound) — the
            // `LatchGuard` arrives even on panic — so no closure, and
            // therefore no `'env` borrow inside it, outlives this call.
            let task: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(task) };
            let latch = Arc::clone(&latch);
            self.queue.push(Box::new(move || {
                let guard = LatchGuard(latch);
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).is_err() {
                    guard.0.panicked.store(true, Ordering::SeqCst);
                }
            }));
        }
        // Help drain the queue instead of idling until the workers finish.
        while let Some(job) = self.queue.try_pop() {
            job();
        }
        latch.wait();
        if latch.panicked.load(Ordering::SeqCst) {
            panic!("worker pool task panicked");
        }
    }

    /// Queues one job for asynchronous execution and returns immediately
    /// with a [`TaskHandle`] to collect its result.
    ///
    /// Unlike [`WorkerPool::scope_run`], the job must be `'static`: it
    /// may still be queued when this call returns, so it cannot borrow
    /// from the caller's stack. On a 1-thread pool the job is not run
    /// here — it waits in the queue until [`TaskHandle::join`]
    /// help-drains it (or a concurrent `scope_run` batch does).
    ///
    /// A panic inside the job is captured in the handle and re-raised by
    /// `join`; it never kills a worker.
    pub fn submit<T, F>(&self, job: F) -> TaskHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let state = Arc::new(TaskState {
            slot: Mutex::new(TaskSlot::Pending),
            done: Condvar::new(),
        });
        let task_state = Arc::clone(&state);
        self.queue.push(Box::new(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            let mut slot = task_state.slot.lock().unwrap();
            *slot = match result {
                Ok(value) => TaskSlot::Finished(value),
                Err(payload) => TaskSlot::Panicked(payload),
            };
            drop(slot);
            task_state.done.notify_all();
        }));
        TaskHandle {
            state,
            queue: Arc::clone(&self.queue),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.queue.state.lock().unwrap();
            state.shutdown = true;
        }
        self.queue.ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Body of each persistent worker: block for the next job, run it,
/// repeat until the pool shuts down.
fn worker_loop(queue: &Queue) {
    while let Some(job) = queue.pop() {
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut hits = 0;
        pool.scope_run(vec![Box::new(|| hits += 1)]);
        assert_eq!(hits, 1);
    }

    #[test]
    fn multi_thread_pool_runs_every_task() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..64)
            .map(|_| {
                let c = &counter;
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.scope_run(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn tasks_can_borrow_disjoint_output_slots() {
        let pool = WorkerPool::new(3);
        let mut out = vec![0usize; 8];
        {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = out
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| Box::new(move || *slot = i * i) as Box<dyn FnOnce() + Send>)
                .collect();
            pool.scope_run(tasks);
        }
        let expect: Vec<usize> = (0..8).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..10 {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..4)
                .map(|_| {
                    let c = &counter;
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            pool.scope_run(tasks);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 40);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threads_rejected() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_override_rejected() {
        let _ = resolve_thread_count(Some(0));
    }

    #[test]
    fn override_is_clamped_to_available_parallelism() {
        let cores = available_threads();
        assert_eq!(resolve_thread_count(None), cores);
        assert_eq!(resolve_thread_count(Some(1)), 1);
        assert_eq!(resolve_thread_count(Some(cores + 100)), cores);
    }

    #[test]
    #[should_panic(expected = "worker pool task panicked")]
    fn task_panic_propagates_after_batch_settles() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| {}),
            Box::new(|| panic!("boom")),
            Box::new(|| {}),
        ];
        pool.scope_run(tasks);
    }

    #[test]
    fn pool_survives_a_panicked_batch() {
        let pool = WorkerPool::new(2);
        let panicking: Vec<Box<dyn FnOnce() + Send>> =
            vec![Box::new(|| panic!("boom")), Box::new(|| {})];
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope_run(panicking);
        }))
        .is_err());
        // The workers are still alive and process the next batch.
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
            .map(|_| {
                let c = &counter;
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.scope_run(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = WorkerPool::global() as *const WorkerPool;
        let b = WorkerPool::global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(WorkerPool::global().threads() >= 1);
    }

    #[test]
    fn submit_returns_result_through_handle() {
        let pool = WorkerPool::new(2);
        let handle = pool.submit(|| (0..100u64).sum::<u64>());
        assert_eq!(handle.join(), 4950);
    }

    #[test]
    fn submit_on_one_thread_pool_runs_at_join() {
        // A 1-thread pool has no workers: the job must wait in the
        // queue until join() help-drains it inline — the degenerate
        // single-core prefetch case.
        let pool = WorkerPool::new(1);
        let submitter = std::thread::current().id();
        let handle = pool.submit(move || std::thread::current().id() == submitter);
        assert!(!handle.is_settled(), "no worker should have run the job");
        assert!(handle.join(), "job must run inline on the joining thread");
    }

    #[test]
    #[should_panic(expected = "prefetch job exploded")]
    fn submitted_job_panic_propagates_at_join() {
        let pool = WorkerPool::new(2);
        let handle = pool.submit(|| -> u32 { panic!("prefetch job exploded") });
        let _ = handle.join();
    }

    #[test]
    fn pool_survives_a_panicked_submission() {
        let pool = WorkerPool::new(2);
        let bad = pool.submit(|| -> u32 { panic!("boom") });
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bad.join())).is_err());
        // Workers are still alive for both APIs.
        assert_eq!(pool.submit(|| 7u32).join(), 7);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..4)
            .map(|_| {
                let c = &counter;
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.scope_run(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn dropped_handle_still_runs_job() {
        let pool = WorkerPool::new(2);
        let ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        drop(pool.submit(move || flag.store(true, Ordering::SeqCst)));
        // Drain deterministically by shutting the pool down (workers
        // finish queued jobs before exiting).
        drop(pool);
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn drop_with_queued_jobs_completes_them() {
        // Shutdown while jobs are still queued: workers must drain the
        // queue before exiting, and handles joined after the pool is
        // gone must still observe the results.
        let pool = WorkerPool::new(3);
        let handles: Vec<TaskHandle<usize>> = (0..32).map(|i| pool.submit(move || i * i)).collect();
        drop(pool);
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join(), i * i, "job {i} lost in shutdown");
        }
    }

    #[test]
    fn join_after_pool_drop_help_drains_one_thread_pool() {
        // The hardest shutdown shape: a 1-thread pool (no workers to
        // drain at drop) dies with the job still queued. The handle
        // keeps the queue alive and join() runs the job itself.
        let pool = WorkerPool::new(1);
        let handle = pool.submit(|| 41 + 1);
        drop(pool);
        assert_eq!(handle.join(), 42);
    }

    #[test]
    fn submissions_interleave_with_scope_run_batches() {
        // The prefetch usage pattern: a long-lived submitted job shares
        // the queue with scope_run batches (extraction levels) without
        // either API stalling the other.
        let pool = WorkerPool::new(2);
        for round in 0..10usize {
            let handle = pool.submit(move || round * 3);
            let counter = AtomicUsize::new(0);
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
                .map(|_| {
                    let c = &counter;
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            pool.scope_run(tasks);
            assert_eq!(counter.load(Ordering::SeqCst), 8);
            assert_eq!(handle.join(), round * 3);
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Every submitted job settles with the right result for any
            /// pool size / job count / join order, including joining
            /// after the pool is dropped.
            #[test]
            fn submit_join_is_lossless(
                threads in 1usize..5,
                jobs in 0usize..24,
                drop_pool_first in any::<bool>(),
                reverse_join in any::<bool>(),
            ) {
                let pool = WorkerPool::new(threads);
                let mut handles: Vec<(usize, TaskHandle<usize>)> = (0..jobs)
                    .map(|i| (i, pool.submit(move || i.wrapping_mul(2654435761))))
                    .collect();
                if drop_pool_first {
                    drop(pool);
                } else {
                    // Interleave a borrowed batch to stress the shared queue.
                    let counter = AtomicUsize::new(0);
                    let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..threads)
                        .map(|_| {
                            let c = &counter;
                            Box::new(move || { c.fetch_add(1, Ordering::SeqCst); })
                                as Box<dyn FnOnce() + Send>
                        })
                        .collect();
                    pool.scope_run(tasks);
                    prop_assert_eq!(counter.load(Ordering::SeqCst), threads);
                }
                if reverse_join {
                    handles.reverse();
                }
                for (i, h) in handles {
                    prop_assert_eq!(h.join(), i.wrapping_mul(2654435761));
                }
            }
        }
    }
}
