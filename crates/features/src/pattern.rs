//! BRIEF test-location patterns: the original random pattern and the
//! paper's 32-fold rotationally symmetric RS-BRIEF pattern (§2.2).
//!
//! A pattern is an ordered list of 256 test pairs `(S_i, D_i)`; descriptor
//! bit `i` is 1 iff `I(S_i) > I(D_i)` on the smoothened image.
//!
//! Three steering strategies are modelled, matching the paper's
//! discussion:
//!
//! 1. **Direct rotation** (Eq. 2) — rotate all 512 locations per feature;
//!    accurate but compute-heavy.
//! 2. **30-angle lookup table** — the classic ORB approach \[8\]:
//!    pre-compute the pattern at 12° increments; costs LUT storage.
//! 3. **RS-BRIEF** — the pattern itself is 32-fold rotationally symmetric,
//!    so steering degenerates to a re-indexing of the fixed pattern
//!    (equivalently a byte-rotation of the descriptor — see
//!    [`crate::Descriptor::steer`]).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of test pairs in a 256-bit descriptor.
pub const PATTERN_PAIRS: usize = 256;
/// Number of rotational symmetry steps of RS-BRIEF (32 × 11.25° = 360°).
pub const RS_STEPS: usize = 32;
/// Seed pairs per rotation step (32 × 8 = 256).
pub const RS_SEED_PAIRS: usize = 8;
/// Angular increment of one RS-BRIEF step, in radians (11.25°).
pub const RS_STEP_RADIANS: f64 = 2.0 * std::f64::consts::PI / RS_STEPS as f64;
/// Radius of the circular patch the test locations live in (§2.2:
/// "a circular patch with a radius of 15 pixels").
pub const PATCH_RADIUS: f64 = 15.0;
/// Number of discretized angles in the classic ORB steering LUT \[8\].
pub const ORB_LUT_ANGLES: usize = 30;

/// A continuous test location relative to the feature centre.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestPoint {
    /// Horizontal offset in pixels.
    pub x: f64,
    /// Vertical offset in pixels.
    pub y: f64,
}

impl TestPoint {
    /// Rotates the location by `theta` radians (Eq. 2 of the paper).
    #[must_use]
    pub fn rotated(&self, theta: f64) -> TestPoint {
        let (s, c) = theta.sin_cos();
        TestPoint {
            x: self.x * c - self.y * s,
            y: self.y * c + self.x * s,
        }
    }

    /// Rounds to the integer pixel offset actually sampled.
    pub fn to_offset(&self) -> (i32, i32) {
        (self.x.round() as i32, self.y.round() as i32)
    }

    /// Distance from the patch centre.
    pub fn radius(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }
}

/// One descriptor test: compare intensity at `s` against `d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestPair {
    /// First location (the "S" set of the paper).
    pub s: TestPoint,
    /// Second location (the "D" set of the paper).
    pub d: TestPoint,
}

impl TestPair {
    /// Rotates both locations by `theta` radians.
    #[must_use]
    pub fn rotated(&self, theta: f64) -> TestPair {
        TestPair {
            s: self.s.rotated(theta),
            d: self.d.rotated(theta),
        }
    }
}

/// A full 256-pair BRIEF pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct BriefPattern {
    pairs: Vec<TestPair>,
}

impl BriefPattern {
    /// Wraps a list of exactly [`PATTERN_PAIRS`] test pairs.
    ///
    /// # Panics
    /// Panics if `pairs.len() != 256`.
    pub fn new(pairs: Vec<TestPair>) -> Self {
        assert_eq!(pairs.len(), PATTERN_PAIRS, "a BRIEF pattern has 256 pairs");
        BriefPattern { pairs }
    }

    /// The test pairs in descriptor-bit order.
    pub fn pairs(&self) -> &[TestPair] {
        &self.pairs
    }

    /// Generates the **original BRIEF** pattern: 256 pairs drawn i.i.d.
    /// from an isotropic Gaussian (σ = patch_radius / 2.5), rejected and
    /// redrawn until they fall inside the patch (§2.2: "randomly selected
    /// in the neighborhood according to Gaussian distribution").
    ///
    /// Deterministic for a given `seed`.
    pub fn original(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sigma = PATCH_RADIUS / 2.5;
        let draw_point = |rng: &mut SmallRng| -> TestPoint {
            loop {
                let p = TestPoint {
                    x: gaussian(rng) * sigma,
                    y: gaussian(rng) * sigma,
                };
                if p.radius() <= PATCH_RADIUS - 1.0 {
                    return p;
                }
            }
        };
        let pairs = (0..PATTERN_PAIRS)
            .map(|_| TestPair {
                s: draw_point(&mut rng),
                d: draw_point(&mut rng),
            })
            .collect();
        BriefPattern { pairs }
    }

    /// Generates the **RS-BRIEF** pattern of the paper (§2.2): 8 seed
    /// pairs drawn from a Gaussian, then replicated at all 32 rotations of
    /// 11.25°. Pair ordering groups one full seed set per rotation step:
    /// index `r * 8 + s` is seed `s` rotated by `r` steps. With this
    /// ordering, steering by `n` steps re-indexes pairs by `+8n`, which is
    /// exactly the byte-rotation the BRIEF Rotator performs.
    ///
    /// Deterministic for a given `seed`.
    pub fn rs_brief(seed: u64) -> Self {
        let seeds = rs_seed_pairs(seed);
        let mut pairs = Vec::with_capacity(PATTERN_PAIRS);
        for r in 0..RS_STEPS {
            let theta = r as f64 * RS_STEP_RADIANS;
            for seed_pair in &seeds {
                pairs.push(seed_pair.rotated(theta));
            }
        }
        BriefPattern { pairs }
    }

    /// Returns the pattern with every location rotated by `theta` radians
    /// (the direct Eq. 2 steering).
    #[must_use]
    pub fn rotated(&self, theta: f64) -> BriefPattern {
        BriefPattern {
            pairs: self.pairs.iter().map(|p| p.rotated(theta)).collect(),
        }
    }

    /// Maximum radius over all test locations; the extractor derives its
    /// border margin from this.
    pub fn max_radius(&self) -> f64 {
        self.pairs
            .iter()
            .flat_map(|p| [p.s.radius(), p.d.radius()])
            .fold(0.0, f64::max)
    }
}

/// Draws the 8 RS-BRIEF seed pairs from an isotropic Gaussian, clamped
/// inside the patch so every rotation stays sampleable.
fn rs_seed_pairs(seed: u64) -> Vec<TestPair> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let sigma = PATCH_RADIUS / 2.5;
    let draw_point = |rng: &mut SmallRng| -> TestPoint {
        loop {
            let p = TestPoint {
                x: gaussian(rng) * sigma,
                y: gaussian(rng) * sigma,
            };
            // Keep a rounding margin so every rotated+rounded location
            // remains within the 15-pixel patch.
            if p.radius() <= PATCH_RADIUS - 1.0 && p.radius() >= 1.5 {
                return p;
            }
        }
    };
    (0..RS_SEED_PAIRS)
        .map(|_| TestPair {
            s: draw_point(&mut rng),
            d: draw_point(&mut rng),
        })
        .collect()
}

/// Standard normal sample via the Box-Muller transform.
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The classic ORB steering lookup table \[8\]: the same pattern
/// pre-rotated at 30 discretized angles (12° increments). This is the
/// strategy the paper argues is too expensive to store on-chip (§2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct SteeredPatternLut {
    tables: Vec<BriefPattern>,
}

impl SteeredPatternLut {
    /// Pre-computes the 30 rotated copies of `base`.
    pub fn build(base: &BriefPattern) -> Self {
        let tables = (0..ORB_LUT_ANGLES)
            .map(|k| base.rotated(2.0 * std::f64::consts::PI * k as f64 / ORB_LUT_ANGLES as f64))
            .collect();
        SteeredPatternLut { tables }
    }

    /// The pattern pre-rotated to the discretized angle nearest `theta`.
    pub fn lookup(&self, theta: f64) -> &BriefPattern {
        let tau = 2.0 * std::f64::consts::PI;
        let normalized = theta.rem_euclid(tau);
        let idx = ((normalized / tau * ORB_LUT_ANGLES as f64).round() as usize) % ORB_LUT_ANGLES;
        &self.tables[idx]
    }

    /// Number of stored patterns (30).
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the table is empty (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Storage cost in location entries — the "considerable amount of
    /// extra resources" of §2.2: 30 patterns × 512 locations.
    pub fn storage_locations(&self) -> usize {
        self.tables.len() * PATTERN_PAIRS * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn original_pattern_is_deterministic() {
        let a = BriefPattern::original(7);
        let b = BriefPattern::original(7);
        assert_eq!(a, b);
        let c = BriefPattern::original(8);
        assert_ne!(a, c);
    }

    #[test]
    fn original_pattern_within_patch() {
        let p = BriefPattern::original(42);
        assert_eq!(p.pairs().len(), 256);
        assert!(p.max_radius() <= PATCH_RADIUS);
    }

    #[test]
    fn rs_pattern_has_32_fold_symmetry() {
        let p = BriefPattern::rs_brief(42);
        // Rotating the whole pattern by one step must reproduce the same
        // multiset of pairs, re-indexed by +8 (mod 256).
        let rotated = p.rotated(RS_STEP_RADIANS);
        for k in 0..PATTERN_PAIRS {
            let expect = p.pairs()[(k + RS_SEED_PAIRS) % PATTERN_PAIRS];
            let got = rotated.pairs()[k];
            assert!(
                (got.s.x - expect.s.x).abs() < 1e-9
                    && (got.s.y - expect.s.y).abs() < 1e-9
                    && (got.d.x - expect.d.x).abs() < 1e-9
                    && (got.d.y - expect.d.y).abs() < 1e-9,
                "pair {k} mismatch"
            );
        }
    }

    #[test]
    fn rs_pattern_radii_invariant_under_rotation() {
        let p = BriefPattern::rs_brief(3);
        // All 32 copies of seed s share the same radius.
        for s in 0..RS_SEED_PAIRS {
            let r0 = p.pairs()[s].s.radius();
            for step in 1..RS_STEPS {
                let r = p.pairs()[step * RS_SEED_PAIRS + s].s.radius();
                assert!((r - r0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rs_pattern_within_patch_after_rounding() {
        let p = BriefPattern::rs_brief(42);
        for pair in p.pairs() {
            for pt in [pair.s, pair.d] {
                let (ox, oy) = pt.to_offset();
                assert!(ox.abs() <= 15 && oy.abs() <= 15, "offset ({ox},{oy})");
            }
        }
    }

    #[test]
    fn rotation_formula_matches_eq2() {
        let p = TestPoint { x: 3.0, y: 4.0 };
        let r = p.rotated(PI / 2.0);
        assert!((r.x + 4.0).abs() < 1e-12);
        assert!((r.y - 3.0).abs() < 1e-12);
        // Radius preserved.
        assert!((r.radius() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn full_turn_is_identity() {
        let p = TestPoint { x: 1.2, y: -0.7 };
        let r = p.rotated(2.0 * PI);
        assert!((r.x - p.x).abs() < 1e-12);
        assert!((r.y - p.y).abs() < 1e-12);
    }

    #[test]
    fn lut_has_30_tables() {
        let base = BriefPattern::original(1);
        let lut = SteeredPatternLut::build(&base);
        assert_eq!(lut.len(), 30);
        assert!(!lut.is_empty());
        assert_eq!(lut.storage_locations(), 30 * 512);
    }

    #[test]
    fn lut_lookup_picks_nearest_angle() {
        let base = BriefPattern::original(1);
        let lut = SteeredPatternLut::build(&base);
        // θ = 0 returns the unrotated pattern.
        assert_eq!(lut.lookup(0.0), &base);
        // θ = 12° exactly returns table 1.
        let twelve = 2.0 * PI / 30.0;
        let t1 = lut.lookup(twelve);
        let expect = base.rotated(twelve);
        for (a, b) in t1.pairs().iter().zip(expect.pairs()) {
            assert!((a.s.x - b.s.x).abs() < 1e-12);
        }
        // Slightly less than 6° rounds down to table 0.
        assert_eq!(lut.lookup(twelve * 0.49), &base);
        // Negative angles wrap.
        assert_eq!(lut.lookup(-2.0 * PI), &base);
    }

    #[test]
    fn max_error_of_discretization_is_one_pixel() {
        // §2.2: at radius 15, a 6° deviation moves a location by ≈ 1.6 px;
        // the paper rounds this to "about 1 pixel on the smoothened
        // image". Verify the bound for the 11.25°/2 discretization too.
        let worst = TestPoint {
            x: PATCH_RADIUS,
            y: 0.0,
        };
        let lut_err = {
            let moved = worst.rotated(PI / 30.0); // 6°
            ((moved.x - worst.x).powi(2) + (moved.y - worst.y).powi(2)).sqrt()
        };
        assert!(lut_err < 1.6);
        let rs_err = {
            let moved = worst.rotated(RS_STEP_RADIANS / 2.0); // 5.625°
            ((moved.x - worst.x).powi(2) + (moved.y - worst.y).powi(2)).sqrt()
        };
        assert!(rs_err < lut_err, "RS-BRIEF discretization is finer");
    }

    #[test]
    #[should_panic(expected = "256 pairs")]
    fn wrong_pair_count_panics() {
        BriefPattern::new(vec![]);
    }
}
