//! Brute-force Hamming-distance matching.
//!
//! Software reference of the paper's BRIEF Matcher (§3.2): for each
//! descriptor of the current frame, compute the Hamming distance to every
//! map descriptor and keep the minimum. Optional filters (distance cap,
//! Lowe ratio, cross-check) are provided for the software pipeline; the
//! hardware unit implements only the plain minimum search, as described in
//! the paper.

use crate::descriptor::Descriptor;

/// A correspondence between a query descriptor and a train descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DescriptorMatch {
    /// Index into the query set (current frame).
    pub query: usize,
    /// Index into the train set (map points).
    pub train: usize,
    /// Hamming distance between the two descriptors.
    pub distance: u32,
}

/// For each query descriptor, finds the nearest train descriptor
/// (minimum Hamming distance; ties keep the lowest train index, matching
/// the sequential hardware comparator). Matches with distance above
/// `max_distance` are dropped.
///
/// Returns matches ordered by query index. Empty train sets yield no
/// matches.
///
/// # Examples
///
/// ```
/// use eslam_features::{Descriptor, matcher::match_brute_force};
/// let q = [Descriptor::from_words([0b1011, 0, 0, 0])];
/// let t = [
///     Descriptor::from_words([0b0011, 0, 0, 0]), // distance 1
///     Descriptor::from_words([0b1111, 0, 0, 0]), // distance 1 (tie — first wins)
///     Descriptor::ZERO,                            // distance 3
/// ];
/// let m = match_brute_force(&q, &t, u32::MAX);
/// assert_eq!(m[0].train, 0);
/// assert_eq!(m[0].distance, 1);
/// ```
pub fn match_brute_force(
    query: &[Descriptor],
    train: &[Descriptor],
    max_distance: u32,
) -> Vec<DescriptorMatch> {
    let mut out = Vec::with_capacity(query.len());
    for (qi, q) in query.iter().enumerate() {
        let mut best: Option<(usize, u32)> = None;
        for (ti, t) in train.iter().enumerate() {
            let d = q.hamming(t);
            match best {
                Some((_, bd)) if d >= bd => {}
                _ => best = Some((ti, d)),
            }
        }
        if let Some((ti, d)) = best {
            if d <= max_distance {
                out.push(DescriptorMatch {
                    query: qi,
                    train: ti,
                    distance: d,
                });
            }
        }
    }
    out
}

/// Nearest-neighbour matching with Lowe's ratio test: a match survives iff
/// `best < ratio × second_best`. `ratio` ∈ (0, 1]; smaller is stricter.
///
/// # Panics
/// Panics if `ratio` is not within `(0, 1]`.
pub fn match_with_ratio(
    query: &[Descriptor],
    train: &[Descriptor],
    ratio: f64,
    max_distance: u32,
) -> Vec<DescriptorMatch> {
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
    let mut out = Vec::new();
    for (qi, q) in query.iter().enumerate() {
        let mut best: Option<(usize, u32)> = None;
        let mut second: u32 = u32::MAX;
        for (ti, t) in train.iter().enumerate() {
            let d = q.hamming(t);
            match best {
                None => best = Some((ti, d)),
                Some((_, bd)) if d < bd => {
                    second = bd;
                    best = Some((ti, d));
                }
                Some(_) => second = second.min(d),
            }
        }
        if let Some((ti, d)) = best {
            let passes_ratio = second == u32::MAX || (d as f64) < ratio * second as f64;
            if d <= max_distance && passes_ratio {
                out.push(DescriptorMatch {
                    query: qi,
                    train: ti,
                    distance: d,
                });
            }
        }
    }
    out
}

/// Mutual-consistency filter: keeps a forward match `(q → t)` only when
/// the backward matching also pairs `t → q`.
pub fn cross_check(
    forward: &[DescriptorMatch],
    backward: &[DescriptorMatch],
) -> Vec<DescriptorMatch> {
    forward
        .iter()
        .filter(|f| {
            backward
                .iter()
                .any(|b| b.query == f.train && b.train == f.query)
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(bits: &[usize]) -> Descriptor {
        let mut d = Descriptor::ZERO;
        for &b in bits {
            d.set_bit(b, true);
        }
        d
    }

    #[test]
    fn exact_match_has_zero_distance() {
        let q = [desc(&[1, 5, 9])];
        let t = [desc(&[0]), desc(&[1, 5, 9]), desc(&[2])];
        let m = match_brute_force(&q, &t, u32::MAX);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].train, 1);
        assert_eq!(m[0].distance, 0);
    }

    #[test]
    fn empty_train_set_gives_no_matches() {
        let q = [desc(&[1])];
        assert!(match_brute_force(&q, &[], u32::MAX).is_empty());
    }

    #[test]
    fn empty_query_set_gives_no_matches() {
        let t = [desc(&[1])];
        assert!(match_brute_force(&[], &t, u32::MAX).is_empty());
    }

    #[test]
    fn max_distance_filters() {
        let q = [desc(&[0, 1, 2, 3])];
        let t = [Descriptor::ZERO]; // distance 4
        assert!(match_brute_force(&q, &t, 3).is_empty());
        assert_eq!(match_brute_force(&q, &t, 4).len(), 1);
    }

    #[test]
    fn tie_keeps_lowest_train_index() {
        let q = [desc(&[10])];
        let t = [desc(&[11]), desc(&[12])]; // both at distance 2
        let m = match_brute_force(&q, &t, u32::MAX);
        assert_eq!(m[0].train, 0);
    }

    #[test]
    fn matches_ordered_by_query() {
        let q = [desc(&[0]), desc(&[64]), desc(&[128])];
        let t = [desc(&[0]), desc(&[64]), desc(&[128])];
        let m = match_brute_force(&q, &t, u32::MAX);
        let idx: Vec<_> = m.iter().map(|x| x.query).collect();
        assert_eq!(idx, [0, 1, 2]);
        for x in &m {
            assert_eq!(x.query, x.train);
        }
    }

    #[test]
    fn ratio_test_rejects_ambiguous() {
        // Query equidistant from two train descriptors → ambiguous.
        let q = [desc(&[0])];
        let t = [desc(&[1]), desc(&[2])]; // both distance 2
        let strict = match_with_ratio(&q, &t, 0.8, u32::MAX);
        assert!(strict.is_empty());
        // A clearly better best passes.
        let t2 = [desc(&[0]), desc(&[1, 2, 3, 4, 5])];
        let ok = match_with_ratio(&q, &t2, 0.8, u32::MAX);
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].train, 0);
    }

    #[test]
    fn ratio_test_single_candidate_passes() {
        let q = [desc(&[0])];
        let t = [desc(&[0, 1])];
        let m = match_with_ratio(&q, &t, 0.5, u32::MAX);
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn bad_ratio_panics() {
        match_with_ratio(&[], &[], 1.5, 0);
    }

    #[test]
    fn cross_check_keeps_mutual_only() {
        let fwd = vec![
            DescriptorMatch { query: 0, train: 5, distance: 1 },
            DescriptorMatch { query: 1, train: 6, distance: 2 },
        ];
        let bwd = vec![
            DescriptorMatch { query: 5, train: 0, distance: 1 }, // mutual with fwd[0]
            DescriptorMatch { query: 6, train: 9, distance: 2 }, // not mutual
        ];
        let kept = cross_check(&fwd, &bwd);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].query, 0);
    }

    #[test]
    fn brute_force_finds_global_minimum() {
        // Pseudo-random descriptor sets; verify against naive argmin.
        let mk = |seed: u64| {
            let mut words = [0u64; 4];
            for (i, w) in words.iter_mut().enumerate() {
                *w = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(i as u64 * 1442695040888963407);
            }
            Descriptor::from_words(words)
        };
        let query: Vec<Descriptor> = (0..20).map(|i| mk(i * 7 + 1)).collect();
        let train: Vec<Descriptor> = (0..50).map(|i| mk(i * 13 + 3)).collect();
        let matches = match_brute_force(&query, &train, u32::MAX);
        assert_eq!(matches.len(), query.len());
        for m in &matches {
            let naive = train
                .iter()
                .map(|t| query[m.query].hamming(t))
                .min()
                .unwrap();
            assert_eq!(m.distance, naive);
        }
    }
}
