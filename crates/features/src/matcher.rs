//! Brute-force Hamming-distance matching.
//!
//! Software reference of the paper's BRIEF Matcher (§3.2): for each
//! descriptor of the current frame, compute the Hamming distance to every
//! map descriptor and keep the minimum. Optional filters (distance cap,
//! Lowe ratio, cross-check) are provided for the software pipeline; the
//! hardware unit implements only the plain minimum search, as described in
//! the paper.
//!
//! The production kernels ([`match_brute_force`], [`match_with_ratio`])
//! are cache-tiled over the `[u64; 4]` descriptor words — train tiles
//! stay L1-resident while a block of query rows streams over them — and
//! split the query rows across a persistent [`WorkerPool`] on multicore
//! hosts (the process-global pool for the plain entry points, an
//! explicit pool for [`match_brute_force_in`] / [`match_with_ratio_in`]).
//!
//! # Kernel dispatch ladder
//!
//! The Hamming inner loop dispatches at runtime down the ladder
//! **avx512 → avx2 → popcnt → scalar** ([`MatchKernel`]):
//!
//! * [`MatchKernel::Avx512`] — two descriptors per ZMM register,
//!   per-word `vpopcntq`, distances folded eight at a time and the
//!   running `(distance, index)` minimum kept per lane with `vpminuq`;
//! * [`MatchKernel::Avx2`] — whole 256-bit descriptors in one YMM
//!   register, popcounted with the Mula nibble-LUT `pshufb` algorithm
//!   (`vpsadbw` horizontal add), hybridised with the scalar popcount
//!   port: each inner step feeds eight trains to the SIMD pipe and
//!   eight to independent scalar `popcnt` chains, which the
//!   out-of-order core executes concurrently;
//! * [`MatchKernel::Popcnt`] — four `u64` xor + `popcnt` pairs;
//! * [`MatchKernel::Scalar`] — the same loop without any target-feature
//!   enablement (LLVM's SWAR popcount on baseline x86-64).
//!
//! The `ESLAM_MATCH_KERNEL` environment variable ([`MATCH_KERNEL_ENV`])
//! forces a rung for CI's per-kernel test matrix; see [`active_kernel`].
//! The straightforward scalar loops are retained as
//! [`match_brute_force_reference`] / [`match_with_ratio_reference`]; all
//! kernels are bit-identical to them (proven by unit and property tests).

use crate::descriptor::Descriptor;
use crate::pool::WorkerPool;
use std::sync::OnceLock;

/// Train descriptors per tile: 128 × 32 B = 4 KiB, comfortably
/// L1-resident together with a query block.
const TRAIN_TILE: usize = 128;
/// Query rows per block inside one tile pass.
const QUERY_BLOCK: usize = 8;
/// Minimum query rows per additional thread — below this the spawn
/// overhead outweighs the parallelism.
const MIN_ROWS_PER_THREAD: usize = 64;

/// Environment variable forcing the matcher kernel: `auto` (default),
/// `scalar`, `popcnt`, `avx2`, or `avx512`. CI runs the test suite once
/// per value so every rung of the dispatch ladder is exercised on every
/// PR.
pub const MATCH_KERNEL_ENV: &str = "ESLAM_MATCH_KERNEL";

/// One rung of the Hamming-kernel dispatch ladder (fastest first:
/// `Avx512` → `Avx2` → `Popcnt` → `Scalar`). All rungs are
/// bit-identical; they differ only in throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MatchKernel {
    /// Portable scalar loop (no target-feature enablement).
    Scalar,
    /// x86-64 `popcnt`-enabled loop (runtime-detected).
    Popcnt,
    /// x86-64 AVX2 Mula nibble-LUT `pshufb` popcount over whole 256-bit
    /// descriptors in one YMM register, hybridised with the scalar
    /// popcount port (runtime-detected; also requires `popcnt`).
    Avx2,
    /// x86-64 AVX-512 `vpopcntq` over pairs of descriptors per ZMM
    /// register (runtime-detected: `avx512f` + `avx512vpopcntdq`, plus
    /// `popcnt` for tile remainders).
    Avx512,
}

impl MatchKernel {
    /// Every rung, slowest first.
    pub const ALL: [MatchKernel; 4] = [
        MatchKernel::Scalar,
        MatchKernel::Popcnt,
        MatchKernel::Avx2,
        MatchKernel::Avx512,
    ];

    /// Whether the running CPU can execute this kernel.
    pub fn is_supported(self) -> bool {
        match self {
            MatchKernel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            MatchKernel::Popcnt => std::arch::is_x86_feature_detected!("popcnt"),
            #[cfg(target_arch = "x86_64")]
            MatchKernel::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("popcnt")
            }
            #[cfg(target_arch = "x86_64")]
            MatchKernel::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
                    && std::arch::is_x86_feature_detected!("popcnt")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The fastest kernel the running CPU supports.
    pub fn detect() -> MatchKernel {
        if MatchKernel::Avx512.is_supported() {
            MatchKernel::Avx512
        } else if MatchKernel::Avx2.is_supported() {
            MatchKernel::Avx2
        } else if MatchKernel::Popcnt.is_supported() {
            MatchKernel::Popcnt
        } else {
            MatchKernel::Scalar
        }
    }

    /// The kernel's lowercase name (the `ESLAM_MATCH_KERNEL` value).
    pub fn name(self) -> &'static str {
        match self {
            MatchKernel::Scalar => "scalar",
            MatchKernel::Popcnt => "popcnt",
            MatchKernel::Avx2 => "avx2",
            MatchKernel::Avx512 => "avx512",
        }
    }

    /// Parses a kernel name (`"scalar"`, `"popcnt"`, `"avx2"`).
    pub fn from_name(name: &str) -> Option<MatchKernel> {
        match name {
            "scalar" => Some(MatchKernel::Scalar),
            "popcnt" => Some(MatchKernel::Popcnt),
            "avx2" => Some(MatchKernel::Avx2),
            "avx512" => Some(MatchKernel::Avx512),
            _ => None,
        }
    }
}

/// The kernel the production entry points dispatch to, resolved once:
/// the fastest supported rung, unless [`MATCH_KERNEL_ENV`] forces one.
/// A forced kernel the CPU cannot run falls back to [`MatchKernel::detect`]
/// (with a warning through the telemetry event ring) so a `avx2`-forced
/// suite still runs on an AVX2-less machine; an unrecognised value
/// panics, so CI matrix typos fail loudly instead of silently testing
/// the auto-detected rung.
pub fn active_kernel() -> MatchKernel {
    static ACTIVE: OnceLock<MatchKernel> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let forced = crate::envopt::forced(
            MATCH_KERNEL_ENV,
            "auto, scalar, popcnt, avx2 or avx512",
            MatchKernel::from_name,
        );
        match forced {
            None => MatchKernel::detect(),
            Some(kernel) if kernel.is_supported() => kernel,
            Some(kernel) => {
                eslam_telemetry::events::warn(format!(
                    "{MATCH_KERNEL_ENV}={} is not supported by this CPU; \
                     falling back to {}",
                    kernel.name(),
                    MatchKernel::detect().name(),
                ));
                MatchKernel::detect()
            }
        }
    })
}

/// A correspondence between a query descriptor and a train descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DescriptorMatch {
    /// Index into the query set (current frame).
    pub query: usize,
    /// Index into the train set (map points).
    pub train: usize,
    /// Hamming distance between the two descriptors.
    pub distance: u32,
}

/// For each query descriptor, finds the nearest train descriptor
/// (minimum Hamming distance; ties keep the lowest train index, matching
/// the sequential hardware comparator). Matches with distance above
/// `max_distance` are dropped.
///
/// Returns matches ordered by query index. Empty train sets yield no
/// matches.
///
/// # Examples
///
/// ```
/// use eslam_features::{Descriptor, matcher::match_brute_force};
/// let q = [Descriptor::from_words([0b1011, 0, 0, 0])];
/// let t = [
///     Descriptor::from_words([0b0011, 0, 0, 0]), // distance 1
///     Descriptor::from_words([0b1111, 0, 0, 0]), // distance 1 (tie — first wins)
///     Descriptor::ZERO,                            // distance 3
/// ];
/// let m = match_brute_force(&q, &t, u32::MAX);
/// assert_eq!(m[0].train, 0);
/// assert_eq!(m[0].distance, 1);
/// ```
pub fn match_brute_force(
    query: &[Descriptor],
    train: &[Descriptor],
    max_distance: u32,
) -> Vec<DescriptorMatch> {
    match_brute_force_in(WorkerPool::global(), query, train, max_distance)
}

/// [`match_brute_force`] running its parallel rows on an explicit
/// [`WorkerPool`] (e.g. the pool owned by the SLAM system) instead of
/// the process-global one. Results are identical for any pool size.
pub fn match_brute_force_in(
    pool: &WorkerPool,
    query: &[Descriptor],
    train: &[Descriptor],
    max_distance: u32,
) -> Vec<DescriptorMatch> {
    if query.is_empty() || train.is_empty() {
        return Vec::new();
    }
    // (distance, train index) per query; train is non-empty, so every
    // query has a nearest neighbour.
    let mut best = vec![(u32::MAX, 0u32); query.len()];
    run_rows(pool, query, &mut best, |rows, out| {
        nearest_rows(rows, train, out)
    });
    collect_nearest(&best, max_distance)
}

/// [`match_brute_force`] forced onto one dispatch rung, single-threaded.
///
/// This is the hook the per-kernel property tests and the
/// `matcher_kernels` benches use to pin a rung regardless of
/// [`MATCH_KERNEL_ENV`]; an unsupported `kernel` falls back to
/// [`MatchKernel::Scalar`]. Production callers want [`match_brute_force`].
pub fn match_brute_force_with_kernel(
    kernel: MatchKernel,
    query: &[Descriptor],
    train: &[Descriptor],
    max_distance: u32,
) -> Vec<DescriptorMatch> {
    if query.is_empty() || train.is_empty() {
        return Vec::new();
    }
    let mut best = vec![(u32::MAX, 0u32); query.len()];
    nearest_rows_with(kernel, query, train, &mut best);
    collect_nearest(&best, max_distance)
}

/// Folds per-row `(distance, train)` minima into the match list.
fn collect_nearest(best: &[(u32, u32)], max_distance: u32) -> Vec<DescriptorMatch> {
    best.iter()
        .enumerate()
        .filter(|(_, &(d, _))| d <= max_distance)
        .map(|(qi, &(d, ti))| DescriptorMatch {
            query: qi,
            train: ti as usize,
            distance: d,
        })
        .collect()
}

/// Scalar reference of [`match_brute_force`] (one query at a time, no
/// tiling/threading); the bit-exact oracle for the production kernel.
pub fn match_brute_force_reference(
    query: &[Descriptor],
    train: &[Descriptor],
    max_distance: u32,
) -> Vec<DescriptorMatch> {
    let mut out = Vec::with_capacity(query.len());
    for (qi, q) in query.iter().enumerate() {
        let mut best: Option<(usize, u32)> = None;
        for (ti, t) in train.iter().enumerate() {
            let d = q.hamming(t);
            match best {
                Some((_, bd)) if d >= bd => {}
                _ => best = Some((ti, d)),
            }
        }
        if let Some((ti, d)) = best {
            if d <= max_distance {
                out.push(DescriptorMatch {
                    query: qi,
                    train: ti,
                    distance: d,
                });
            }
        }
    }
    out
}

/// Splits `out` (one slot per query row) across the worker pool and runs
/// `kernel` on each piece. Row order inside a piece is preserved and
/// pieces are disjoint, so the result is independent of the split.
fn run_rows<T: Send>(
    pool: &WorkerPool,
    query: &[Descriptor],
    out: &mut [T],
    kernel: impl Fn(&[Descriptor], &mut [T]) + Sync,
) {
    let threads = pool.threads().min(query.len() / MIN_ROWS_PER_THREAD).max(1);
    if threads == 1 {
        kernel(query, out);
        return;
    }
    let chunk = query.len().div_ceil(threads);
    let kernel = &kernel;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = query
        .chunks(chunk)
        .zip(out.chunks_mut(chunk))
        .map(|(q_chunk, o_chunk)| {
            Box::new(move || kernel(q_chunk, o_chunk)) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool.scope_run(tasks);
}

/// Cache-tiled nearest-neighbour search: `out[i]` becomes the minimum
/// `(distance, train index)` for `query[i]`, ties keeping the lowest
/// train index (train scanned in ascending order).
///
/// Inside a tile, query rows are register-blocked in pairs: each train
/// descriptor's four words are loaded once and xor-popcounted against
/// both queries, halving the load traffic and doubling the independent
/// instruction streams.
#[inline(always)]
fn nearest_rows_inner(query: &[Descriptor], train: &[Descriptor], out: &mut [(u32, u32)]) {
    for (tile_idx, tile) in train.chunks(TRAIN_TILE).enumerate() {
        let base = (tile_idx * TRAIN_TILE) as u32;
        for (q_block, o_block) in query.chunks(QUERY_BLOCK).zip(out.chunks_mut(QUERY_BLOCK)) {
            let even = q_block.len() & !1;
            let (q_even, q_rem) = q_block.split_at(even);
            let (o_even, o_rem) = o_block.split_at_mut(even);
            for (qs, os) in q_even.chunks_exact(2).zip(o_even.chunks_exact_mut(2)) {
                let (q0, q1) = (&qs[0], &qs[1]);
                let (mut b0, mut b1) = (os[0], os[1]);
                for (j, t) in tile.iter().enumerate() {
                    let d0 = q0.hamming(t);
                    let d1 = q1.hamming(t);
                    if d0 < b0.0 {
                        b0 = (d0, base + j as u32);
                    }
                    if d1 < b1.0 {
                        b1 = (d1, base + j as u32);
                    }
                }
                os[0] = b0;
                os[1] = b1;
            }
            // Odd trailing query row of the block.
            for (q, o) in q_rem.iter().zip(o_rem.iter_mut()) {
                let mut best = *o;
                for (j, t) in tile.iter().enumerate() {
                    let d = q.hamming(t);
                    if d < best.0 {
                        best = (d, base + j as u32);
                    }
                }
                *o = best;
            }
        }
    }
}

/// Like [`nearest_rows_inner`], additionally tracking the second-best
/// distance for the Lowe ratio test, with the reference's update rule.
#[inline(always)]
fn nearest2_rows_inner(query: &[Descriptor], train: &[Descriptor], out: &mut [(u32, u32, u32)]) {
    for (tile_idx, tile) in train.chunks(TRAIN_TILE).enumerate() {
        let base = (tile_idx * TRAIN_TILE) as u32;
        for (q_block, o_block) in query.chunks(QUERY_BLOCK).zip(out.chunks_mut(QUERY_BLOCK)) {
            for (q, o) in q_block.iter().zip(o_block.iter_mut()) {
                let (mut best_d, mut best_i, mut second) = *o;
                for (j, t) in tile.iter().enumerate() {
                    let d = q.hamming(t);
                    if d < best_d {
                        second = best_d;
                        best_d = d;
                        best_i = base + j as u32;
                    } else {
                        second = second.min(d);
                    }
                }
                *o = (best_d, best_i, second);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn nearest_rows_popcnt(query: &[Descriptor], train: &[Descriptor], out: &mut [(u32, u32)]) {
    nearest_rows_inner(query, train, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn nearest2_rows_popcnt(
    query: &[Descriptor],
    train: &[Descriptor],
    out: &mut [(u32, u32, u32)],
) {
    nearest2_rows_inner(query, train, out)
}

/// Scalar `popcnt` the auto-vectorizer cannot rewrite. Inside a wide
/// `#[target_feature]` function LLVM's cost model turns
/// `u64::count_ones` loops into vector (pshufb) popcounts — exactly the
/// ports the SIMD kernels already saturate, defeating any hybrid
/// overlap. The asm pins this helper to the scalar popcount port.
///
/// Callers must guarantee `popcnt` support (every SIMD rung's dispatch
/// gate includes it).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn popcnt64(x: u64) -> u64 {
    let r: u64;
    // SAFETY: no memory access, no flags the surrounding code relies on;
    // `popcnt` availability is guaranteed by the dispatch gates.
    unsafe {
        std::arch::asm!(
            "popcnt {r}, {x}",
            r = out(reg) r,
            x = in(reg) x,
            options(pure, nomem, nostack),
        );
    }
    r
}

/// Hamming distance on the scalar popcount port (see [`popcnt64`]).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn hamming_scalar(a: &Descriptor, b: &Descriptor) -> u32 {
    let (a, b) = (&a.words, &b.words);
    (popcnt64(a[0] ^ b[0]) + popcnt64(a[1] ^ b[1]) + popcnt64(a[2] ^ b[2]) + popcnt64(a[3] ^ b[3]))
        as u32
}

/// The top rung: AVX-512 `vpopcntq`. A ZMM register holds **two**
/// descriptors, so one load + xor + `vpopcntq` covers two pairs; a
/// shuffle tree folds four ZMMs' per-word counts into eight distances
/// at once, and a native unsigned 64-bit min (`vpminuq`, absent from
/// AVX2) keeps the running `(distance << 32) | index` key minimum per
/// lane — ≈3 µops per pair against the popcnt rung's port-1-bound 4.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::{hamming_scalar, Descriptor, TRAIN_TILE};
    use std::arch::x86_64::*;

    /// Trains per inner step: four ZMMs of two descriptors each.
    const GROUP: usize = 8;

    /// Lane sentinel: no candidate yet (real keys < 2⁴¹).
    const KEY_SENTINEL: u64 = u64::MAX;

    /// Train offset, within a group, of each lane of [`distances_x8`]'s
    /// output (ZMM `i` holds trains `2i` and `2i+1`; the fold interleaves
    /// them as below).
    const LANE_TRAIN_OFFSETS: [u64; 8] = [0, 2, 4, 6, 1, 3, 5, 7];

    /// Eight distances of one (duplicated) query against eight train
    /// descriptors, in [`LANE_TRAIN_OFFSETS`] lane order.
    #[inline]
    #[target_feature(enable = "avx512f", enable = "avx512vpopcntdq")]
    unsafe fn distances_x8(q2: __m512i, octet: &[Descriptor]) -> __m512i {
        // SAFETY (caller): avx512f + avx512vpopcntdq available; `octet`
        // holds ≥ 8 descriptors (64 contiguous bytes per pair of them).
        let t0 = _mm512_popcnt_epi64(_mm512_xor_si512(
            q2,
            _mm512_loadu_si512(octet.as_ptr().cast()),
        ));
        let t1 = _mm512_popcnt_epi64(_mm512_xor_si512(
            q2,
            _mm512_loadu_si512(octet.as_ptr().add(2).cast()),
        ));
        let t2 = _mm512_popcnt_epi64(_mm512_xor_si512(
            q2,
            _mm512_loadu_si512(octet.as_ptr().add(4).cast()),
        ));
        let t3 = _mm512_popcnt_epi64(_mm512_xor_si512(
            q2,
            _mm512_loadu_si512(octet.as_ptr().add(6).cast()),
        ));
        // Fold the eight per-word counts of each ZMM down to per-128-bit
        // partials, pairing sources so all eight distances materialise in
        // two permutes + three adds.
        let w01 = _mm512_add_epi64(_mm512_unpacklo_epi64(t0, t1), _mm512_unpackhi_epi64(t0, t1));
        let w23 = _mm512_add_epi64(_mm512_unpacklo_epi64(t2, t3), _mm512_unpackhi_epi64(t2, t3));
        // w01 lanes: [P00a P10a P00b P10b P01a P11a P01b P11b] where
        // Pij{a,b} = half-descriptor partials of ZMM i, descriptor j.
        let first = _mm512_setr_epi64(0, 1, 8, 9, 4, 5, 12, 13);
        let second = _mm512_setr_epi64(2, 3, 10, 11, 6, 7, 14, 15);
        let a = _mm512_permutex2var_epi64(w01, first, w23);
        let b = _mm512_permutex2var_epi64(w01, second, w23);
        _mm512_add_epi64(a, b)
    }

    /// Packed `(distance << 32) | global_train_index` keys for a group.
    #[inline]
    #[target_feature(enable = "avx512f", enable = "avx512vpopcntdq")]
    unsafe fn keys_x8(q2: __m512i, octet: &[Descriptor], idx: __m512i) -> __m512i {
        _mm512_add_epi64(_mm512_slli_epi64::<32>(distances_x8(q2, octet)), idx)
    }

    /// AVX-512 twin of `nearest_rows_inner`: identical tiling, identical
    /// ascending-index tie rule (packed keys order by distance then
    /// index; `vpminuq` keeps the per-lane minimum; the scalar fold and
    /// the carried best preserve first-occurrence semantics).
    #[target_feature(enable = "avx512f", enable = "avx512vpopcntdq", enable = "popcnt")]
    pub(super) unsafe fn nearest_rows(
        query: &[Descriptor],
        train: &[Descriptor],
        out: &mut [(u32, u32)],
    ) {
        let step = _mm512_set1_epi64(GROUP as i64);
        let offsets = _mm512_loadu_si512(LANE_TRAIN_OFFSETS.as_ptr().cast());
        for (tile_idx, tile) in train.chunks(TRAIN_TILE).enumerate() {
            let base = (tile_idx * TRAIN_TILE) as u32;
            let groups = tile.len() / GROUP;
            let rem = &tile[groups * GROUP..];
            for (q, o) in query.iter().zip(out.iter_mut()) {
                let q2 = _mm512_broadcast_i64x4(_mm256_loadu_si256(q.words.as_ptr().cast()));
                let mut idx = _mm512_add_epi64(_mm512_set1_epi64(base as i64), offsets);
                let mut best = _mm512_set1_epi64(KEY_SENTINEL as i64);
                for group in tile.chunks_exact(GROUP) {
                    best = _mm512_min_epu64(best, keys_x8(q2, group, idx));
                    idx = _mm512_add_epi64(idx, step);
                }
                let mut keys = [KEY_SENTINEL; 8];
                _mm512_storeu_si512(keys.as_mut_ptr().cast(), best);
                // Carried best first: its index is the lowest seen, so it
                // wins distance ties under the unsigned key order.
                let carried = ((o.0 as u64) << 32) | o.1 as u64;
                let key = keys.iter().fold(carried, |acc, &k| acc.min(k));
                let (mut best_d, mut best_i) = ((key >> 32) as u32, key as u32);
                for (k, t) in rem.iter().enumerate() {
                    let d = hamming_scalar(q, t);
                    if d < best_d {
                        best_d = d;
                        best_i = base + (groups * GROUP + k) as u32;
                    }
                }
                *o = (best_d, best_i);
            }
        }
    }

    /// AVX-512 twin of `nearest2_rows_inner`: per-lane top-2 keys via a
    /// `vpminuq`/`vpmaxuq` sorting network, merged exactly like the AVX2
    /// rung (multiset top-2 with first-occurrence index).
    #[target_feature(enable = "avx512f", enable = "avx512vpopcntdq", enable = "popcnt")]
    pub(super) unsafe fn nearest2_rows(
        query: &[Descriptor],
        train: &[Descriptor],
        out: &mut [(u32, u32, u32)],
    ) {
        let step = _mm512_set1_epi64(GROUP as i64);
        let offsets = _mm512_loadu_si512(LANE_TRAIN_OFFSETS.as_ptr().cast());
        for (tile_idx, tile) in train.chunks(TRAIN_TILE).enumerate() {
            let base = (tile_idx * TRAIN_TILE) as u32;
            let groups = tile.len() / GROUP;
            let rem = &tile[groups * GROUP..];
            for (q, o) in query.iter().zip(out.iter_mut()) {
                let q2 = _mm512_broadcast_i64x4(_mm256_loadu_si256(q.words.as_ptr().cast()));
                let mut idx = _mm512_add_epi64(_mm512_set1_epi64(base as i64), offsets);
                let mut best = _mm512_set1_epi64(KEY_SENTINEL as i64);
                let mut second = _mm512_set1_epi64(KEY_SENTINEL as i64);
                for group in tile.chunks_exact(GROUP) {
                    let key = keys_x8(q2, group, idx);
                    let loser = _mm512_max_epu64(best, key);
                    best = _mm512_min_epu64(best, key);
                    second = _mm512_min_epu64(second, loser);
                    idx = _mm512_add_epi64(idx, step);
                }
                let mut bests = [KEY_SENTINEL; 8];
                let mut seconds = [KEY_SENTINEL; 8];
                _mm512_storeu_si512(bests.as_mut_ptr().cast(), best);
                _mm512_storeu_si512(seconds.as_mut_ptr().cast(), second);
                let mut state = *o;
                for k in 0..8 {
                    if bests[k] != KEY_SENTINEL {
                        super::avx2::merge_top2(
                            &mut state,
                            (bests[k] >> 32) as u32,
                            bests[k] as u32,
                        );
                    }
                    if seconds[k] != KEY_SENTINEL {
                        state.2 = state.2.min((seconds[k] >> 32) as u32);
                    }
                }
                for (k, t) in rem.iter().enumerate() {
                    super::avx2::merge_top2(
                        &mut state,
                        hamming_scalar(q, t),
                        base + (groups * GROUP + k) as u32,
                    );
                }
                *o = state;
            }
        }
    }
}

/// The wide-SIMD rung: Hamming distance over whole 256-bit descriptors
/// in one YMM register, popcounted with the Mula nibble-LUT `pshufb`
/// algorithm. The software analogue of the paper's fully parallel
/// Distance Computing array (§3.2): four train descriptors per step,
/// horizontal sums folded with `vpsadbw` + 64-bit lane shuffles so the
/// reduction cost amortises across the batch.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{Descriptor, TRAIN_TILE};
    use std::arch::x86_64::*;

    /// Loads a descriptor's 32 bytes into one YMM register.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load(d: &Descriptor) -> __m256i {
        // SAFETY (caller): AVX2 available. `Descriptor` is 32 contiguous
        // bytes of `[u64; 4]`; `loadu` has no alignment requirement.
        _mm256_loadu_si256(d.words.as_ptr().cast())
    }

    /// Byte-wise popcounts of `a ^ b`: each output byte is the number of
    /// set bits of the corresponding xor byte (0..=8), via two 16-entry
    /// nibble lookups (Mula's `pshufb` popcount).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn xor_byte_counts(a: __m256i, b: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let x = _mm256_xor_si256(a, b);
        let lo = _mm256_and_si256(x, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(x), low_mask);
        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi))
    }

    /// Hamming distances of one query against four train descriptors,
    /// returned in the four 64-bit lanes in ascending train order.
    /// `vpsadbw` reduces each pair's byte counts to four 64-bit partial
    /// sums; the cross-pair shuffle tree folds all four pairs' partials
    /// in parallel, so the horizontal-add cost amortises across the
    /// batch and the distances never leave vector registers.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn distances_x4(q: __m256i, t: &[Descriptor]) -> __m256i {
        let zero = _mm256_setzero_si256();
        let s0 = _mm256_sad_epu8(xor_byte_counts(q, load(&t[0])), zero);
        let s1 = _mm256_sad_epu8(xor_byte_counts(q, load(&t[1])), zero);
        let s2 = _mm256_sad_epu8(xor_byte_counts(q, load(&t[2])), zero);
        let s3 = _mm256_sad_epu8(xor_byte_counts(q, load(&t[3])), zero);
        // [a, b, c, d] lanes per s_i; fold to [a+b (i=0), a+b (i=1), c+d (i=0), c+d (i=1)] …
        let s01 = _mm256_add_epi64(_mm256_unpacklo_epi64(s0, s1), _mm256_unpackhi_epi64(s0, s1));
        let s23 = _mm256_add_epi64(_mm256_unpacklo_epi64(s2, s3), _mm256_unpackhi_epi64(s2, s3));
        // … then pair the low-lane and high-lane halves across all four.
        _mm256_add_epi64(
            _mm256_permute2x128_si256::<0x20>(s01, s23),
            _mm256_permute2x128_si256::<0x31>(s01, s23),
        )
    }

    /// Hamming distance of a single pair (tile-remainder rows).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn distance_x1(q: __m256i, t: &Descriptor) -> u32 {
        let s = _mm256_sad_epu8(xor_byte_counts(q, load(t)), _mm256_setzero_si256());
        let folded = _mm_add_epi64(_mm256_castsi256_si128(s), _mm256_extracti128_si256::<1>(s));
        let folded = _mm_add_epi64(folded, _mm_unpackhi_epi64(folded, folded));
        _mm_cvtsi128_si64(folded) as u32
    }

    use super::hamming_scalar;

    /// Trains per inner step of the hybrid kernel: the first eight go
    /// through the SIMD Mula pipeline, the last eight through the scalar
    /// `popcnt` pipeline. The halves have no data dependence, so the
    /// out-of-order core executes them *simultaneously* — scalar
    /// `popcnt` issues only on port 1, which the vector half barely
    /// touches, and either pipeline alone leaves the other idle
    /// (measured on a Sapphire-Rapids-class Xeon: either alone ≈4
    /// cycles/pair, the hybrid ≈2).
    const GROUP: usize = 16;

    /// Lane sentinel: no candidate yet. Real 32-bit keys are at most
    /// `(256 << 7) | 127`, far below the sentinel, and every lane
    /// reduction uses *unsigned* min/max, so the sentinel always loses.
    const KEY32_SENTINEL: u32 = u32::MAX;

    /// In-tile packed keys are `(distance << 7) | tile_local_index`;
    /// the local index must fit the 7 low bits.
    const _TILE_FITS_KEY32: () = assert!(TRAIN_TILE <= 128);

    /// Lane order produced by [`keys32_x8`]: u32 lane `l` holds quad-A
    /// train `l/2` (even `l`) or quad-B train `l/2` (odd `l`).
    const LANE_LOCAL_OFFSETS: [i32; 8] = [0, 4, 1, 5, 2, 6, 3, 7];

    /// 32-bit packed keys `(distance << 7) | tile_local_index` of one
    /// query against eight train descriptors (two quads), in the
    /// [`LANE_LOCAL_OFFSETS`] lane order. `idx` must hold the eight
    /// local indices in the same order. Minimising the *key* minimises
    /// the distance with ties broken toward the lowest train index (the
    /// hardware comparator's rule) in a single unsigned min.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn keys32_x8(q: __m256i, octet: &[Descriptor], idx: __m256i) -> __m256i {
        let da = distances_x4(q, &octet[..4]);
        let db = distances_x4(q, &octet[4..8]);
        // Interleave the two quads' u64-lane distances into u32 lanes.
        let packed = _mm256_or_si256(da, _mm256_slli_epi64::<32>(db));
        _mm256_add_epi32(_mm256_slli_epi32::<7>(packed), idx)
    }

    /// Splits an in-tile 32-bit key into `(distance, global index)`.
    #[inline]
    fn unpack_key32(key: u32, base: u32) -> (u32, u32) {
        (key >> 7, base + (key & 0x7f))
    }

    /// Merges one `(distance, index)` candidate into a
    /// `(best, best_index, second)` triple. Lane bests arrive in
    /// arbitrary index order, so ties on distance break toward the lower
    /// index (the sequential scan's first occurrence); the displaced
    /// equal-distance best is the duplicate that the reference parks in
    /// `second`.
    #[inline]
    pub(super) fn merge_top2(state: &mut (u32, u32, u32), d: u32, i: u32) {
        let (best_d, best_i, second) = *state;
        if d < best_d || (d == best_d && i < best_i) {
            *state = (d, i, best_d);
        } else {
            state.2 = second.min(d);
        }
    }

    /// AVX2 twin of `nearest_rows_inner`: identical tiling, identical
    /// ascending-index tie rule — the packed-key minimum per lane keeps
    /// the first occurrence of each lane's minimal distance, the scalar
    /// half's strict `<` keeps first occurrence within its subsets, and
    /// the final merge breaks distance ties toward the lower index, so
    /// results are bit-identical to the sequential scan.
    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub(super) unsafe fn nearest_rows(
        query: &[Descriptor],
        train: &[Descriptor],
        out: &mut [(u32, u32)],
    ) {
        let step = _mm256_set1_epi32(GROUP as i32);
        let lane0 = _mm256_loadu_si256(LANE_LOCAL_OFFSETS.as_ptr().cast());
        for (tile_idx, tile) in train.chunks(TRAIN_TILE).enumerate() {
            let base = (tile_idx * TRAIN_TILE) as u32;
            let groups = tile.len() / GROUP;
            let rem = &tile[groups * GROUP..];
            for (q, o) in query.iter().zip(out.iter_mut()) {
                let qv = load(q);
                let mut idx = lane0;
                let mut best32 = _mm256_set1_epi32(KEY32_SENTINEL as i32);
                // Scalar half: two independent running bests (even/odd
                // members of the half's index subset) so the compare
                // chains don't serialise; merged index-tie-correctly
                // below.
                let (mut sa_d, mut sa_i) = (u32::MAX, 0u32);
                let (mut sb_d, mut sb_i) = (u32::MAX, 0u32);
                for (g, group) in tile.chunks_exact(GROUP).enumerate() {
                    best32 = _mm256_min_epu32(best32, keys32_x8(qv, &group[..8], idx));
                    idx = _mm256_add_epi32(idx, step);
                    let j = base + (g * GROUP + 8) as u32;
                    for k in (0..8).step_by(2) {
                        let da = hamming_scalar(q, &group[8 + k]);
                        let db = hamming_scalar(q, &group[9 + k]);
                        if da < sa_d {
                            sa_d = da;
                            sa_i = j + k as u32;
                        }
                        if db < sb_d {
                            sb_d = db;
                            sb_i = j + k as u32 + 1;
                        }
                    }
                }
                // Merge: carried best (always the lowest index seen so
                // far, hence winning ties) → lane minima → scalar half
                // → remainder. Packed keys make every min tie-correct.
                let mut keys = [KEY32_SENTINEL; 8];
                _mm256_storeu_si256(keys.as_mut_ptr().cast(), best32);
                let lane_key = keys.iter().fold(KEY32_SENTINEL, |acc, &k| acc.min(k));
                let carried = ((o.0 as u64) << 32) | o.1 as u64;
                let mut key = carried
                    .min(((sa_d as u64) << 32) | sa_i as u64)
                    .min(((sb_d as u64) << 32) | sb_i as u64);
                if lane_key != KEY32_SENTINEL {
                    let (d, i) = unpack_key32(lane_key, base);
                    key = key.min(((d as u64) << 32) | i as u64);
                }
                let (mut best_d, mut best_i) = ((key >> 32) as u32, key as u32);
                for (k, t) in rem.iter().enumerate() {
                    let d = distance_x1(qv, t);
                    if d < best_d {
                        best_d = d;
                        best_i = base + (groups * GROUP + k) as u32;
                    }
                }
                *o = (best_d, best_i);
            }
        }
    }

    /// AVX2 twin of `nearest2_rows_inner`. Each lane tracks its two
    /// smallest keys with an unsigned min/max sorting network; because
    /// keys are distinct (unique index bits) and key order refines
    /// distance order, merging the per-lane top-2 multisets with the
    /// scalar half's top-2 and the carried `(best, second)` yields
    /// exactly the two smallest distances of the whole scan — including
    /// the duplicated-minimum case, where the reference's `second`
    /// equals `best` — and the first-occurrence best index.
    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub(super) unsafe fn nearest2_rows(
        query: &[Descriptor],
        train: &[Descriptor],
        out: &mut [(u32, u32, u32)],
    ) {
        let step = _mm256_set1_epi32(GROUP as i32);
        let lane0 = _mm256_loadu_si256(LANE_LOCAL_OFFSETS.as_ptr().cast());
        for (tile_idx, tile) in train.chunks(TRAIN_TILE).enumerate() {
            let base = (tile_idx * TRAIN_TILE) as u32;
            let groups = tile.len() / GROUP;
            let rem = &tile[groups * GROUP..];
            for (q, o) in query.iter().zip(out.iter_mut()) {
                let qv = load(q);
                let mut idx = lane0;
                let mut best32 = _mm256_set1_epi32(KEY32_SENTINEL as i32);
                let mut second32 = _mm256_set1_epi32(KEY32_SENTINEL as i32);
                // Scalar half: two independent running top-2s, merged
                // exactly below.
                let mut sa = (u32::MAX, 0u32, u32::MAX);
                let mut sb = (u32::MAX, 0u32, u32::MAX);
                for (g, group) in tile.chunks_exact(GROUP).enumerate() {
                    let key = keys32_x8(qv, &group[..8], idx);
                    // Sorting network: the loser of (best, key) is the
                    // lane's candidate for second-smallest.
                    let loser = _mm256_max_epu32(best32, key);
                    best32 = _mm256_min_epu32(best32, key);
                    second32 = _mm256_min_epu32(second32, loser);
                    idx = _mm256_add_epi32(idx, step);
                    let j = base + (g * GROUP + 8) as u32;
                    for k in (0..8).step_by(2) {
                        let da = hamming_scalar(q, &group[8 + k]);
                        let db = hamming_scalar(q, &group[9 + k]);
                        if da < sa.0 {
                            sa = (da, j + k as u32, sa.0);
                        } else {
                            sa.2 = sa.2.min(da);
                        }
                        if db < sb.0 {
                            sb = (db, j + k as u32 + 1, sb.0);
                        } else {
                            sb.2 = sb.2.min(db);
                        }
                    }
                }
                let mut bests = [KEY32_SENTINEL; 8];
                let mut seconds = [KEY32_SENTINEL; 8];
                _mm256_storeu_si256(bests.as_mut_ptr().cast(), best32);
                _mm256_storeu_si256(seconds.as_mut_ptr().cast(), second32);

                // Scalar merge of the carried state, the lane top-2s and
                // the scalar half's top-2s.
                let mut state = *o;
                for k in 0..8 {
                    if bests[k] != KEY32_SENTINEL {
                        let (d, i) = unpack_key32(bests[k], base);
                        merge_top2(&mut state, d, i);
                    }
                    if seconds[k] != KEY32_SENTINEL {
                        state.2 = state.2.min(seconds[k] >> 7);
                    }
                }
                for s in [sa, sb] {
                    if s.0 != u32::MAX {
                        merge_top2(&mut state, s.0, s.1);
                    }
                    if s.2 != u32::MAX {
                        state.2 = state.2.min(s.2);
                    }
                }
                for (k, t) in rem.iter().enumerate() {
                    merge_top2(
                        &mut state,
                        distance_x1(qv, t),
                        base + (groups * GROUP + k) as u32,
                    );
                }
                *o = state;
            }
        }
    }
}

/// Runs the nearest-neighbour row kernel for an explicit dispatch rung.
/// An unsupported `kernel` falls back to the scalar rung.
fn nearest_rows_with(
    kernel: MatchKernel,
    query: &[Descriptor],
    train: &[Descriptor],
    out: &mut [(u32, u32)],
) {
    #[cfg(target_arch = "x86_64")]
    match kernel {
        MatchKernel::Avx512 if kernel.is_supported() => {
            // SAFETY: avx512f + avx512vpopcntdq + popcnt just checked.
            return unsafe { avx512::nearest_rows(query, train, out) };
        }
        MatchKernel::Avx2 if kernel.is_supported() => {
            // SAFETY: avx2 + popcnt support just checked.
            return unsafe { avx2::nearest_rows(query, train, out) };
        }
        MatchKernel::Popcnt if kernel.is_supported() => {
            // SAFETY: popcnt support just checked.
            return unsafe { nearest_rows_popcnt(query, train, out) };
        }
        _ => {}
    }
    nearest_rows_inner(query, train, out)
}

/// Runs the two-nearest row kernel for an explicit dispatch rung.
/// An unsupported `kernel` falls back to the scalar rung.
fn nearest2_rows_with(
    kernel: MatchKernel,
    query: &[Descriptor],
    train: &[Descriptor],
    out: &mut [(u32, u32, u32)],
) {
    #[cfg(target_arch = "x86_64")]
    match kernel {
        MatchKernel::Avx512 if kernel.is_supported() => {
            // SAFETY: avx512f + avx512vpopcntdq + popcnt just checked.
            return unsafe { avx512::nearest2_rows(query, train, out) };
        }
        MatchKernel::Avx2 if kernel.is_supported() => {
            // SAFETY: avx2 + popcnt support just checked.
            return unsafe { avx2::nearest2_rows(query, train, out) };
        }
        MatchKernel::Popcnt if kernel.is_supported() => {
            // SAFETY: popcnt support just checked.
            return unsafe { nearest2_rows_popcnt(query, train, out) };
        }
        _ => {}
    }
    nearest2_rows_inner(query, train, out)
}

fn nearest_rows(query: &[Descriptor], train: &[Descriptor], out: &mut [(u32, u32)]) {
    nearest_rows_with(active_kernel(), query, train, out)
}

fn nearest2_rows(query: &[Descriptor], train: &[Descriptor], out: &mut [(u32, u32, u32)]) {
    nearest2_rows_with(active_kernel(), query, train, out)
}

/// Nearest-neighbour matching with Lowe's ratio test: a match survives iff
/// `best < ratio × second_best`. `ratio` ∈ (0, 1]; smaller is stricter.
///
/// # Panics
/// Panics if `ratio` is not within `(0, 1]`.
pub fn match_with_ratio(
    query: &[Descriptor],
    train: &[Descriptor],
    ratio: f64,
    max_distance: u32,
) -> Vec<DescriptorMatch> {
    match_with_ratio_in(WorkerPool::global(), query, train, ratio, max_distance)
}

/// [`match_with_ratio`] running its parallel rows on an explicit
/// [`WorkerPool`]. Results are identical for any pool size.
///
/// # Panics
/// Panics if `ratio` is not within `(0, 1]`.
pub fn match_with_ratio_in(
    pool: &WorkerPool,
    query: &[Descriptor],
    train: &[Descriptor],
    ratio: f64,
    max_distance: u32,
) -> Vec<DescriptorMatch> {
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
    if query.is_empty() || train.is_empty() {
        return Vec::new();
    }
    let mut best = vec![(u32::MAX, 0u32, u32::MAX); query.len()];
    run_rows(pool, query, &mut best, |rows, out| {
        nearest2_rows(rows, train, out)
    });
    collect_ratio(&best, ratio, max_distance)
}

/// [`match_with_ratio`] forced onto one dispatch rung, single-threaded
/// (see [`match_brute_force_with_kernel`]).
///
/// # Panics
/// Panics if `ratio` is not within `(0, 1]`.
pub fn match_with_ratio_with_kernel(
    kernel: MatchKernel,
    query: &[Descriptor],
    train: &[Descriptor],
    ratio: f64,
    max_distance: u32,
) -> Vec<DescriptorMatch> {
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
    if query.is_empty() || train.is_empty() {
        return Vec::new();
    }
    let mut best = vec![(u32::MAX, 0u32, u32::MAX); query.len()];
    nearest2_rows_with(kernel, query, train, &mut best);
    collect_ratio(&best, ratio, max_distance)
}

/// Folds per-row `(best, train, second)` triples into the match list,
/// applying the distance cap and the Lowe ratio gate.
fn collect_ratio(best: &[(u32, u32, u32)], ratio: f64, max_distance: u32) -> Vec<DescriptorMatch> {
    best.iter()
        .enumerate()
        .filter(|(_, &(d, _, second))| {
            d <= max_distance && (second == u32::MAX || (d as f64) < ratio * second as f64)
        })
        .map(|(qi, &(d, ti, _))| DescriptorMatch {
            query: qi,
            train: ti as usize,
            distance: d,
        })
        .collect()
}

/// Scalar reference of [`match_with_ratio`]; the bit-exact oracle for
/// the production kernel.
pub fn match_with_ratio_reference(
    query: &[Descriptor],
    train: &[Descriptor],
    ratio: f64,
    max_distance: u32,
) -> Vec<DescriptorMatch> {
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
    let mut out = Vec::new();
    for (qi, q) in query.iter().enumerate() {
        let mut best: Option<(usize, u32)> = None;
        let mut second: u32 = u32::MAX;
        for (ti, t) in train.iter().enumerate() {
            let d = q.hamming(t);
            match best {
                None => best = Some((ti, d)),
                Some((_, bd)) if d < bd => {
                    second = bd;
                    best = Some((ti, d));
                }
                Some(_) => second = second.min(d),
            }
        }
        if let Some((ti, d)) = best {
            let passes_ratio = second == u32::MAX || (d as f64) < ratio * second as f64;
            if d <= max_distance && passes_ratio {
                out.push(DescriptorMatch {
                    query: qi,
                    train: ti,
                    distance: d,
                });
            }
        }
    }
    out
}

/// Mutual-consistency filter: keeps a forward match `(q → t)` only when
/// the backward matching also pairs `t → q`.
pub fn cross_check(
    forward: &[DescriptorMatch],
    backward: &[DescriptorMatch],
) -> Vec<DescriptorMatch> {
    forward
        .iter()
        .filter(|f| {
            backward
                .iter()
                .any(|b| b.query == f.train && b.train == f.query)
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(bits: &[usize]) -> Descriptor {
        let mut d = Descriptor::ZERO;
        for &b in bits {
            d.set_bit(b, true);
        }
        d
    }

    #[test]
    fn exact_match_has_zero_distance() {
        let q = [desc(&[1, 5, 9])];
        let t = [desc(&[0]), desc(&[1, 5, 9]), desc(&[2])];
        let m = match_brute_force(&q, &t, u32::MAX);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].train, 1);
        assert_eq!(m[0].distance, 0);
    }

    #[test]
    fn empty_train_set_gives_no_matches() {
        let q = [desc(&[1])];
        assert!(match_brute_force(&q, &[], u32::MAX).is_empty());
    }

    #[test]
    fn empty_query_set_gives_no_matches() {
        let t = [desc(&[1])];
        assert!(match_brute_force(&[], &t, u32::MAX).is_empty());
    }

    #[test]
    fn max_distance_filters() {
        let q = [desc(&[0, 1, 2, 3])];
        let t = [Descriptor::ZERO]; // distance 4
        assert!(match_brute_force(&q, &t, 3).is_empty());
        assert_eq!(match_brute_force(&q, &t, 4).len(), 1);
    }

    #[test]
    fn tie_keeps_lowest_train_index() {
        let q = [desc(&[10])];
        let t = [desc(&[11]), desc(&[12])]; // both at distance 2
        let m = match_brute_force(&q, &t, u32::MAX);
        assert_eq!(m[0].train, 0);
    }

    #[test]
    fn matches_ordered_by_query() {
        let q = [desc(&[0]), desc(&[64]), desc(&[128])];
        let t = [desc(&[0]), desc(&[64]), desc(&[128])];
        let m = match_brute_force(&q, &t, u32::MAX);
        let idx: Vec<_> = m.iter().map(|x| x.query).collect();
        assert_eq!(idx, [0, 1, 2]);
        for x in &m {
            assert_eq!(x.query, x.train);
        }
    }

    #[test]
    fn ratio_test_rejects_ambiguous() {
        // Query equidistant from two train descriptors → ambiguous.
        let q = [desc(&[0])];
        let t = [desc(&[1]), desc(&[2])]; // both distance 2
        let strict = match_with_ratio(&q, &t, 0.8, u32::MAX);
        assert!(strict.is_empty());
        // A clearly better best passes.
        let t2 = [desc(&[0]), desc(&[1, 2, 3, 4, 5])];
        let ok = match_with_ratio(&q, &t2, 0.8, u32::MAX);
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].train, 0);
    }

    #[test]
    fn ratio_test_single_candidate_passes() {
        let q = [desc(&[0])];
        let t = [desc(&[0, 1])];
        let m = match_with_ratio(&q, &t, 0.5, u32::MAX);
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn bad_ratio_panics() {
        match_with_ratio(&[], &[], 1.5, 0);
    }

    #[test]
    fn cross_check_keeps_mutual_only() {
        let fwd = vec![
            DescriptorMatch {
                query: 0,
                train: 5,
                distance: 1,
            },
            DescriptorMatch {
                query: 1,
                train: 6,
                distance: 2,
            },
        ];
        let bwd = vec![
            DescriptorMatch {
                query: 5,
                train: 0,
                distance: 1,
            }, // mutual with fwd[0]
            DescriptorMatch {
                query: 6,
                train: 9,
                distance: 2,
            }, // not mutual
        ];
        let kept = cross_check(&fwd, &bwd);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].query, 0);
    }

    fn pseudo_random_descriptors(n: usize, salt: u64) -> Vec<Descriptor> {
        (0..n)
            .map(|i| {
                let s = (i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15) ^ salt;
                Descriptor::from_words([s, s.rotate_left(17), s.rotate_left(31), s.rotate_left(47)])
            })
            .collect()
    }

    #[test]
    fn tiled_matcher_matches_reference_across_shapes() {
        // Sweep sizes around the tile/block boundaries and duplicate-heavy
        // sets (forcing tie-breaks) against the scalar reference.
        for (nq, nt) in [
            (1usize, 1usize),
            (3, 7),
            (8, 128),
            (9, 129),
            (64, 300),
            (200, 1000),
        ] {
            let query = pseudo_random_descriptors(nq, 0xAA);
            let mut train = pseudo_random_descriptors(nt, 0xBB);
            // Inject duplicates so ties exercise the lowest-index rule.
            if nt > 4 {
                let d = train[2];
                train[nt - 1] = d;
                train[nt / 2] = d;
            }
            for max_d in [u32::MAX, 128, 40] {
                assert_eq!(
                    match_brute_force(&query, &train, max_d),
                    match_brute_force_reference(&query, &train, max_d),
                    "brute force {nq}x{nt} max {max_d}"
                );
                assert_eq!(
                    match_with_ratio(&query, &train, 0.8, max_d),
                    match_with_ratio_reference(&query, &train, 0.8, max_d),
                    "ratio {nq}x{nt} max {max_d}"
                );
            }
        }
    }

    #[test]
    fn brute_force_finds_global_minimum() {
        // Pseudo-random descriptor sets; verify against naive argmin.
        let mk = |seed: u64| {
            let mut words = [0u64; 4];
            for (i, w) in words.iter_mut().enumerate() {
                *w = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(i as u64 * 1442695040888963407);
            }
            Descriptor::from_words(words)
        };
        let query: Vec<Descriptor> = (0..20).map(|i| mk(i * 7 + 1)).collect();
        let train: Vec<Descriptor> = (0..50).map(|i| mk(i * 13 + 3)).collect();
        let matches = match_brute_force(&query, &train, u32::MAX);
        assert_eq!(matches.len(), query.len());
        for m in &matches {
            let naive = train
                .iter()
                .map(|t| query[m.query].hamming(t))
                .min()
                .unwrap();
            assert_eq!(m.distance, naive);
        }
    }
}
