//! Brute-force Hamming-distance matching.
//!
//! Software reference of the paper's BRIEF Matcher (§3.2): for each
//! descriptor of the current frame, compute the Hamming distance to every
//! map descriptor and keep the minimum. Optional filters (distance cap,
//! Lowe ratio, cross-check) are provided for the software pipeline; the
//! hardware unit implements only the plain minimum search, as described in
//! the paper.
//!
//! The production kernels ([`match_brute_force`], [`match_with_ratio`])
//! are cache-tiled over the `[u64; 4]` descriptor words — train tiles
//! stay L1-resident while a block of query rows streams over them — and
//! split the query rows across scoped threads on multicore hosts. On
//! x86-64 the inner loop is compiled with the `popcnt` feature when the
//! CPU supports it (runtime-detected). The straightforward scalar loops
//! are retained as [`match_brute_force_reference`] /
//! [`match_with_ratio_reference`]; results are bit-identical (proven by
//! unit and property tests).

use crate::descriptor::Descriptor;

/// Train descriptors per tile: 128 × 32 B = 4 KiB, comfortably
/// L1-resident together with a query block.
const TRAIN_TILE: usize = 128;
/// Query rows per block inside one tile pass.
const QUERY_BLOCK: usize = 8;
/// Minimum query rows per additional thread — below this the spawn
/// overhead outweighs the parallelism.
const MIN_ROWS_PER_THREAD: usize = 64;

/// A correspondence between a query descriptor and a train descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DescriptorMatch {
    /// Index into the query set (current frame).
    pub query: usize,
    /// Index into the train set (map points).
    pub train: usize,
    /// Hamming distance between the two descriptors.
    pub distance: u32,
}

/// For each query descriptor, finds the nearest train descriptor
/// (minimum Hamming distance; ties keep the lowest train index, matching
/// the sequential hardware comparator). Matches with distance above
/// `max_distance` are dropped.
///
/// Returns matches ordered by query index. Empty train sets yield no
/// matches.
///
/// # Examples
///
/// ```
/// use eslam_features::{Descriptor, matcher::match_brute_force};
/// let q = [Descriptor::from_words([0b1011, 0, 0, 0])];
/// let t = [
///     Descriptor::from_words([0b0011, 0, 0, 0]), // distance 1
///     Descriptor::from_words([0b1111, 0, 0, 0]), // distance 1 (tie — first wins)
///     Descriptor::ZERO,                            // distance 3
/// ];
/// let m = match_brute_force(&q, &t, u32::MAX);
/// assert_eq!(m[0].train, 0);
/// assert_eq!(m[0].distance, 1);
/// ```
pub fn match_brute_force(
    query: &[Descriptor],
    train: &[Descriptor],
    max_distance: u32,
) -> Vec<DescriptorMatch> {
    if query.is_empty() || train.is_empty() {
        return Vec::new();
    }
    // (distance, train index) per query; train is non-empty, so every
    // query has a nearest neighbour.
    let mut best = vec![(u32::MAX, 0u32); query.len()];
    run_rows(query, &mut best, |rows, out| nearest_rows(rows, train, out));

    best.iter()
        .enumerate()
        .filter(|(_, &(d, _))| d <= max_distance)
        .map(|(qi, &(d, ti))| DescriptorMatch {
            query: qi,
            train: ti as usize,
            distance: d,
        })
        .collect()
}

/// Scalar reference of [`match_brute_force`] (one query at a time, no
/// tiling/threading); the bit-exact oracle for the production kernel.
pub fn match_brute_force_reference(
    query: &[Descriptor],
    train: &[Descriptor],
    max_distance: u32,
) -> Vec<DescriptorMatch> {
    let mut out = Vec::with_capacity(query.len());
    for (qi, q) in query.iter().enumerate() {
        let mut best: Option<(usize, u32)> = None;
        for (ti, t) in train.iter().enumerate() {
            let d = q.hamming(t);
            match best {
                Some((_, bd)) if d >= bd => {}
                _ => best = Some((ti, d)),
            }
        }
        if let Some((ti, d)) = best {
            if d <= max_distance {
                out.push(DescriptorMatch {
                    query: qi,
                    train: ti,
                    distance: d,
                });
            }
        }
    }
    out
}

/// Splits `out` (one slot per query row) across scoped threads and runs
/// `kernel` on each piece. Row order inside a piece is preserved and
/// pieces are disjoint, so the result is independent of the split.
fn run_rows<T: Send>(
    query: &[Descriptor],
    out: &mut [T],
    kernel: impl Fn(&[Descriptor], &mut [T]) + Sync,
) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = cores.min(query.len() / MIN_ROWS_PER_THREAD).max(1);
    if threads == 1 {
        kernel(query, out);
        return;
    }
    let chunk = query.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (q_chunk, o_chunk) in query.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(|| kernel(q_chunk, o_chunk));
        }
    });
}

/// Cache-tiled nearest-neighbour search: `out[i]` becomes the minimum
/// `(distance, train index)` for `query[i]`, ties keeping the lowest
/// train index (train scanned in ascending order).
///
/// Inside a tile, query rows are register-blocked in pairs: each train
/// descriptor's four words are loaded once and xor-popcounted against
/// both queries, halving the load traffic and doubling the independent
/// instruction streams.
#[inline(always)]
fn nearest_rows_inner(query: &[Descriptor], train: &[Descriptor], out: &mut [(u32, u32)]) {
    for (tile_idx, tile) in train.chunks(TRAIN_TILE).enumerate() {
        let base = (tile_idx * TRAIN_TILE) as u32;
        for (q_block, o_block) in query.chunks(QUERY_BLOCK).zip(out.chunks_mut(QUERY_BLOCK)) {
            let even = q_block.len() & !1;
            let (q_even, q_rem) = q_block.split_at(even);
            let (o_even, o_rem) = o_block.split_at_mut(even);
            for (qs, os) in q_even.chunks_exact(2).zip(o_even.chunks_exact_mut(2)) {
                let (q0, q1) = (&qs[0], &qs[1]);
                let (mut b0, mut b1) = (os[0], os[1]);
                for (j, t) in tile.iter().enumerate() {
                    let d0 = q0.hamming(t);
                    let d1 = q1.hamming(t);
                    if d0 < b0.0 {
                        b0 = (d0, base + j as u32);
                    }
                    if d1 < b1.0 {
                        b1 = (d1, base + j as u32);
                    }
                }
                os[0] = b0;
                os[1] = b1;
            }
            // Odd trailing query row of the block.
            for (q, o) in q_rem.iter().zip(o_rem.iter_mut()) {
                let mut best = *o;
                for (j, t) in tile.iter().enumerate() {
                    let d = q.hamming(t);
                    if d < best.0 {
                        best = (d, base + j as u32);
                    }
                }
                *o = best;
            }
        }
    }
}

/// Like [`nearest_rows_inner`], additionally tracking the second-best
/// distance for the Lowe ratio test, with the reference's update rule.
#[inline(always)]
fn nearest2_rows_inner(query: &[Descriptor], train: &[Descriptor], out: &mut [(u32, u32, u32)]) {
    for (tile_idx, tile) in train.chunks(TRAIN_TILE).enumerate() {
        let base = (tile_idx * TRAIN_TILE) as u32;
        for (q_block, o_block) in query.chunks(QUERY_BLOCK).zip(out.chunks_mut(QUERY_BLOCK)) {
            for (q, o) in q_block.iter().zip(o_block.iter_mut()) {
                let (mut best_d, mut best_i, mut second) = *o;
                for (j, t) in tile.iter().enumerate() {
                    let d = q.hamming(t);
                    if d < best_d {
                        second = best_d;
                        best_d = d;
                        best_i = base + j as u32;
                    } else {
                        second = second.min(d);
                    }
                }
                *o = (best_d, best_i, second);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn nearest_rows_popcnt(query: &[Descriptor], train: &[Descriptor], out: &mut [(u32, u32)]) {
    nearest_rows_inner(query, train, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn nearest2_rows_popcnt(
    query: &[Descriptor],
    train: &[Descriptor],
    out: &mut [(u32, u32, u32)],
) {
    nearest2_rows_inner(query, train, out)
}

fn nearest_rows(query: &[Descriptor], train: &[Descriptor], out: &mut [(u32, u32)]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("popcnt") {
        // SAFETY: the CPU supports popcnt (just detected).
        return unsafe { nearest_rows_popcnt(query, train, out) };
    }
    nearest_rows_inner(query, train, out)
}

fn nearest2_rows(query: &[Descriptor], train: &[Descriptor], out: &mut [(u32, u32, u32)]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("popcnt") {
        // SAFETY: the CPU supports popcnt (just detected).
        return unsafe { nearest2_rows_popcnt(query, train, out) };
    }
    nearest2_rows_inner(query, train, out)
}

/// Nearest-neighbour matching with Lowe's ratio test: a match survives iff
/// `best < ratio × second_best`. `ratio` ∈ (0, 1]; smaller is stricter.
///
/// # Panics
/// Panics if `ratio` is not within `(0, 1]`.
pub fn match_with_ratio(
    query: &[Descriptor],
    train: &[Descriptor],
    ratio: f64,
    max_distance: u32,
) -> Vec<DescriptorMatch> {
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
    if query.is_empty() || train.is_empty() {
        return Vec::new();
    }
    let mut best = vec![(u32::MAX, 0u32, u32::MAX); query.len()];
    run_rows(query, &mut best, |rows, out| nearest2_rows(rows, train, out));

    best.iter()
        .enumerate()
        .filter(|(_, &(d, _, second))| {
            d <= max_distance && (second == u32::MAX || (d as f64) < ratio * second as f64)
        })
        .map(|(qi, &(d, ti, _))| DescriptorMatch {
            query: qi,
            train: ti as usize,
            distance: d,
        })
        .collect()
}

/// Scalar reference of [`match_with_ratio`]; the bit-exact oracle for
/// the production kernel.
pub fn match_with_ratio_reference(
    query: &[Descriptor],
    train: &[Descriptor],
    ratio: f64,
    max_distance: u32,
) -> Vec<DescriptorMatch> {
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
    let mut out = Vec::new();
    for (qi, q) in query.iter().enumerate() {
        let mut best: Option<(usize, u32)> = None;
        let mut second: u32 = u32::MAX;
        for (ti, t) in train.iter().enumerate() {
            let d = q.hamming(t);
            match best {
                None => best = Some((ti, d)),
                Some((_, bd)) if d < bd => {
                    second = bd;
                    best = Some((ti, d));
                }
                Some(_) => second = second.min(d),
            }
        }
        if let Some((ti, d)) = best {
            let passes_ratio = second == u32::MAX || (d as f64) < ratio * second as f64;
            if d <= max_distance && passes_ratio {
                out.push(DescriptorMatch {
                    query: qi,
                    train: ti,
                    distance: d,
                });
            }
        }
    }
    out
}

/// Mutual-consistency filter: keeps a forward match `(q → t)` only when
/// the backward matching also pairs `t → q`.
pub fn cross_check(
    forward: &[DescriptorMatch],
    backward: &[DescriptorMatch],
) -> Vec<DescriptorMatch> {
    forward
        .iter()
        .filter(|f| {
            backward
                .iter()
                .any(|b| b.query == f.train && b.train == f.query)
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(bits: &[usize]) -> Descriptor {
        let mut d = Descriptor::ZERO;
        for &b in bits {
            d.set_bit(b, true);
        }
        d
    }

    #[test]
    fn exact_match_has_zero_distance() {
        let q = [desc(&[1, 5, 9])];
        let t = [desc(&[0]), desc(&[1, 5, 9]), desc(&[2])];
        let m = match_brute_force(&q, &t, u32::MAX);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].train, 1);
        assert_eq!(m[0].distance, 0);
    }

    #[test]
    fn empty_train_set_gives_no_matches() {
        let q = [desc(&[1])];
        assert!(match_brute_force(&q, &[], u32::MAX).is_empty());
    }

    #[test]
    fn empty_query_set_gives_no_matches() {
        let t = [desc(&[1])];
        assert!(match_brute_force(&[], &t, u32::MAX).is_empty());
    }

    #[test]
    fn max_distance_filters() {
        let q = [desc(&[0, 1, 2, 3])];
        let t = [Descriptor::ZERO]; // distance 4
        assert!(match_brute_force(&q, &t, 3).is_empty());
        assert_eq!(match_brute_force(&q, &t, 4).len(), 1);
    }

    #[test]
    fn tie_keeps_lowest_train_index() {
        let q = [desc(&[10])];
        let t = [desc(&[11]), desc(&[12])]; // both at distance 2
        let m = match_brute_force(&q, &t, u32::MAX);
        assert_eq!(m[0].train, 0);
    }

    #[test]
    fn matches_ordered_by_query() {
        let q = [desc(&[0]), desc(&[64]), desc(&[128])];
        let t = [desc(&[0]), desc(&[64]), desc(&[128])];
        let m = match_brute_force(&q, &t, u32::MAX);
        let idx: Vec<_> = m.iter().map(|x| x.query).collect();
        assert_eq!(idx, [0, 1, 2]);
        for x in &m {
            assert_eq!(x.query, x.train);
        }
    }

    #[test]
    fn ratio_test_rejects_ambiguous() {
        // Query equidistant from two train descriptors → ambiguous.
        let q = [desc(&[0])];
        let t = [desc(&[1]), desc(&[2])]; // both distance 2
        let strict = match_with_ratio(&q, &t, 0.8, u32::MAX);
        assert!(strict.is_empty());
        // A clearly better best passes.
        let t2 = [desc(&[0]), desc(&[1, 2, 3, 4, 5])];
        let ok = match_with_ratio(&q, &t2, 0.8, u32::MAX);
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].train, 0);
    }

    #[test]
    fn ratio_test_single_candidate_passes() {
        let q = [desc(&[0])];
        let t = [desc(&[0, 1])];
        let m = match_with_ratio(&q, &t, 0.5, u32::MAX);
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn bad_ratio_panics() {
        match_with_ratio(&[], &[], 1.5, 0);
    }

    #[test]
    fn cross_check_keeps_mutual_only() {
        let fwd = vec![
            DescriptorMatch { query: 0, train: 5, distance: 1 },
            DescriptorMatch { query: 1, train: 6, distance: 2 },
        ];
        let bwd = vec![
            DescriptorMatch { query: 5, train: 0, distance: 1 }, // mutual with fwd[0]
            DescriptorMatch { query: 6, train: 9, distance: 2 }, // not mutual
        ];
        let kept = cross_check(&fwd, &bwd);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].query, 0);
    }

    fn pseudo_random_descriptors(n: usize, salt: u64) -> Vec<Descriptor> {
        (0..n)
            .map(|i| {
                let s = (i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15) ^ salt;
                Descriptor::from_words([s, s.rotate_left(17), s.rotate_left(31), s.rotate_left(47)])
            })
            .collect()
    }

    #[test]
    fn tiled_matcher_matches_reference_across_shapes() {
        // Sweep sizes around the tile/block boundaries and duplicate-heavy
        // sets (forcing tie-breaks) against the scalar reference.
        for (nq, nt) in [
            (1usize, 1usize),
            (3, 7),
            (8, 128),
            (9, 129),
            (64, 300),
            (200, 1000),
        ] {
            let query = pseudo_random_descriptors(nq, 0xAA);
            let mut train = pseudo_random_descriptors(nt, 0xBB);
            // Inject duplicates so ties exercise the lowest-index rule.
            if nt > 4 {
                let d = train[2];
                train[nt - 1] = d;
                train[nt / 2] = d;
            }
            for max_d in [u32::MAX, 128, 40] {
                assert_eq!(
                    match_brute_force(&query, &train, max_d),
                    match_brute_force_reference(&query, &train, max_d),
                    "brute force {nq}x{nt} max {max_d}"
                );
                assert_eq!(
                    match_with_ratio(&query, &train, 0.8, max_d),
                    match_with_ratio_reference(&query, &train, 0.8, max_d),
                    "ratio {nq}x{nt} max {max_d}"
                );
            }
        }
    }

    #[test]
    fn brute_force_finds_global_minimum() {
        // Pseudo-random descriptor sets; verify against naive argmin.
        let mk = |seed: u64| {
            let mut words = [0u64; 4];
            for (i, w) in words.iter_mut().enumerate() {
                *w = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(i as u64 * 1442695040888963407);
            }
            Descriptor::from_words(words)
        };
        let query: Vec<Descriptor> = (0..20).map(|i| mk(i * 7 + 1)).collect();
        let train: Vec<Descriptor> = (0..50).map(|i| mk(i * 13 + 3)).collect();
        let matches = match_brute_force(&query, &train, u32::MAX);
        assert_eq!(matches.len(), query.len());
        for m in &matches {
            let naive = train
                .iter()
                .map(|t| query[m.query].hamming(t))
                .min()
                .unwrap();
            assert_eq!(m.distance, naive);
        }
    }
}
