//! Bounded best-N selection heap.
//!
//! The paper's Heap module stores descriptors, coordinates and Harris
//! scores, using "a max-heap structure … to guarantee that only the 1024
//! features with the best Harris scores are reserved" (§3.1). The
//! efficient realization is a *min*-heap of capacity N whose root is the
//! weakest kept feature: a new feature replaces the root iff it scores
//! higher. This module implements that structure generically.

use std::collections::BinaryHeap;

/// Default heap capacity of the eSLAM Heap module (§3.1).
pub const DEFAULT_HEAP_CAPACITY: usize = 1024;

/// Internal entry ordered by ascending score so that the `BinaryHeap`
/// (a max-heap) exposes the weakest element at the root.
#[derive(Debug)]
struct Entry<T> {
    score: f64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse on score: lower score = "greater" for the max-heap, so
        // the weakest sits at the root. Ties: later arrivals are evicted
        // first (earlier seq wins), keeping the filter deterministic.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Keeps the `capacity` highest-scoring items pushed into it.
///
/// # Examples
///
/// ```
/// use eslam_features::heap::BestHeap;
/// let mut heap = BestHeap::new(3);
/// for (score, name) in [(1.0, "a"), (5.0, "b"), (3.0, "c"), (4.0, "d")] {
///     heap.push(score, name);
/// }
/// let kept = heap.into_sorted_vec();
/// assert_eq!(kept.iter().map(|(_, n)| *n).collect::<Vec<_>>(), ["b", "d", "c"]);
/// ```
#[derive(Debug)]
pub struct BestHeap<T> {
    heap: BinaryHeap<Entry<T>>,
    capacity: usize,
    seq: u64,
    pushed: u64,
}

impl<T> BestHeap<T> {
    /// Creates a heap that retains at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "heap capacity must be positive");
        BestHeap {
            heap: BinaryHeap::with_capacity(capacity + 1),
            capacity,
            seq: 0,
            pushed: 0,
        }
    }

    /// Offers an item; returns `true` if it was retained (possibly
    /// evicting the current weakest).
    pub fn push(&mut self, score: f64, item: T) -> bool {
        self.pushed += 1;
        let entry = Entry {
            score,
            seq: self.seq,
            item,
        };
        self.seq += 1;
        if self.heap.len() < self.capacity {
            self.heap.push(entry);
            return true;
        }
        // Root is the weakest kept item.
        let weakest = self.heap.peek().expect("non-empty at capacity");
        let evict = weakest.score < score;
        if evict {
            self.heap.pop();
            self.heap.push(entry);
        }
        evict
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of items ever offered — the `M` of the paper's
    /// workflow discussion (`M − N` descriptors are computed "in excess"
    /// by the rescheduled pipeline).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Score of the current weakest retained item, if any.
    pub fn weakest_score(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.score)
    }

    /// Consumes the heap, returning `(score, item)` pairs sorted by
    /// descending score (ties in arrival order).
    pub fn into_sorted_vec(self) -> Vec<(f64, T)> {
        let mut v: Vec<Entry<T>> = self.heap.into_vec();
        v.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.seq.cmp(&b.seq))
        });
        v.into_iter().map(|e| (e.score, e.item)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_all_below_capacity() {
        let mut h = BestHeap::new(10);
        for i in 0..5 {
            assert!(h.push(i as f64, i));
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.total_pushed(), 5);
    }

    #[test]
    fn evicts_weakest_at_capacity() {
        let mut h = BestHeap::new(3);
        h.push(1.0, "one");
        h.push(2.0, "two");
        h.push(3.0, "three");
        assert_eq!(h.weakest_score(), Some(1.0));
        assert!(h.push(4.0, "four")); // evicts "one"
        assert_eq!(h.weakest_score(), Some(2.0));
        assert!(!h.push(0.5, "half")); // too weak
        let kept: Vec<_> = h.into_sorted_vec().into_iter().map(|(_, s)| s).collect();
        assert_eq!(kept, ["four", "three", "two"]);
    }

    #[test]
    fn matches_naive_top_n_selection() {
        // Pseudo-random scores; heap result must equal sort-then-truncate.
        let scores: Vec<f64> = (0..500u64)
            .map(|i| ((i.wrapping_mul(2654435761) >> 7) % 10_000) as f64 / 10.0)
            .collect();
        let mut h = BestHeap::new(64);
        for (i, &s) in scores.iter().enumerate() {
            h.push(s, i);
        }
        let heap_kept: Vec<f64> = h.into_sorted_vec().into_iter().map(|(s, _)| s).collect();
        let mut expect = scores.clone();
        expect.sort_by(|a, b| b.partial_cmp(a).unwrap());
        expect.truncate(64);
        assert_eq!(heap_kept, expect);
    }

    #[test]
    fn equal_scores_keep_earliest() {
        let mut h = BestHeap::new(2);
        h.push(1.0, "first");
        h.push(1.0, "second");
        assert!(!h.push(1.0, "third"), "equal score must not evict");
        let kept: Vec<_> = h.into_sorted_vec().into_iter().map(|(_, s)| s).collect();
        assert_eq!(kept, ["first", "second"]);
    }

    #[test]
    fn total_pushed_counts_rejections() {
        let mut h = BestHeap::new(1);
        h.push(5.0, ());
        h.push(1.0, ());
        h.push(2.0, ());
        assert_eq!(h.total_pushed(), 3);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn sorted_output_descending() {
        let mut h = BestHeap::new(100);
        for i in 0..50 {
            h.push(((i * 37) % 19) as f64, i);
        }
        let v = h.into_sorted_vec();
        for pair in v.windows(2) {
            assert!(pair[0].0 >= pair[1].0);
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = BestHeap::<()>::new(0);
    }

    #[test]
    fn empty_heap_properties() {
        let h = BestHeap::<u8>::new(4);
        assert!(h.is_empty());
        assert_eq!(h.weakest_score(), None);
        assert!(h.into_sorted_vec().is_empty());
    }

    #[test]
    fn default_capacity_matches_paper() {
        assert_eq!(DEFAULT_HEAP_CAPACITY, 1024);
    }
}
