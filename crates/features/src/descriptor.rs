//! 256-bit binary descriptors and Hamming distance.
//!
//! BRIEF descriptors are 256-bit strings (§2.2); feature matching compares
//! them by Hamming distance (§2.1). The RS-BRIEF steering operation —
//! "move the 8×n bits from the beginning of the descriptor to the end"
//! (§3.1, BRIEF Rotator) — is a 256-bit circular rotation implemented here.

use std::fmt;

/// A 256-bit binary descriptor stored as four little-endian 64-bit words;
/// test-pair `i` occupies bit `i % 64` of word `i / 64`.
///
/// # Examples
///
/// ```
/// use eslam_features::Descriptor;
/// let mut d = Descriptor::ZERO;
/// d.set_bit(5, true);
/// d.set_bit(200, true);
/// assert_eq!(d.count_ones(), 2);
/// assert_eq!(d.hamming(&Descriptor::ZERO), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Descriptor {
    /// The four 64-bit words of the descriptor.
    pub words: [u64; 4],
}

/// Number of bits in a [`Descriptor`].
pub const DESCRIPTOR_BITS: usize = 256;

impl Descriptor {
    /// The all-zero descriptor.
    pub const ZERO: Descriptor = Descriptor { words: [0; 4] };

    /// Builds a descriptor from its raw words.
    pub const fn from_words(words: [u64; 4]) -> Self {
        Descriptor { words }
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= 256`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < DESCRIPTOR_BITS);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= 256`.
    #[inline]
    pub fn set_bit(&mut self, i: usize, value: bool) {
        assert!(i < DESCRIPTOR_BITS);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Population count — word-parallel: four `u64::count_ones`, never a
    /// per-bit loop.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        let w = &self.words;
        w[0].count_ones() + w[1].count_ones() + w[2].count_ones() + w[3].count_ones()
    }

    /// Hamming distance to another descriptor (0..=256), the matching
    /// metric of the paper's Distance Computing module. Word-parallel:
    /// four xor + popcount pairs, explicitly unrolled.
    #[inline]
    pub fn hamming(&self, other: &Descriptor) -> u32 {
        let a = &self.words;
        let b = &other.words;
        (a[0] ^ b[0]).count_ones()
            + (a[1] ^ b[1]).count_ones()
            + (a[2] ^ b[2]).count_ones()
            + (a[3] ^ b[3]).count_ones()
    }

    /// Circularly rotates the descriptor **toward the beginning** by
    /// `bits`: output bit `k` equals input bit `(k + bits) % 256`.
    ///
    /// Equivalently, the first `bits` bits are moved to the end — exactly
    /// the BRIEF Rotator operation with `bits = 8 × orientation`.
    ///
    /// Word-parallel: a 256-bit right rotation decomposes into a word
    /// rotation plus a cross-word double shift — 4 shift/or pairs instead
    /// of 256 bit probes (see [`Descriptor::rotate_bits_reference`]).
    #[must_use]
    #[inline]
    pub fn rotate_bits(&self, bits: usize) -> Descriptor {
        let bits = bits % DESCRIPTOR_BITS;
        let word_shift = bits / 64;
        let bit_shift = (bits % 64) as u32;
        let w = &self.words;
        let mut out = Descriptor::ZERO;
        for (k, o) in out.words.iter_mut().enumerate() {
            let lo = w[(k + word_shift) % 4];
            let hi = w[(k + word_shift + 1) % 4];
            *o = if bit_shift == 0 {
                lo
            } else {
                (lo >> bit_shift) | (hi << (64 - bit_shift))
            };
        }
        out
    }

    /// Per-bit reference of [`Descriptor::rotate_bits`], retained as the
    /// equivalence oracle for the word-parallel rotation.
    #[must_use]
    pub fn rotate_bits_reference(&self, bits: usize) -> Descriptor {
        let bits = bits % DESCRIPTOR_BITS;
        if bits == 0 {
            return *self;
        }
        let mut out = Descriptor::ZERO;
        for k in 0..DESCRIPTOR_BITS {
            out.set_bit(k, self.bit((k + bits) % DESCRIPTOR_BITS));
        }
        out
    }

    /// The BRIEF Rotator steering: rotate by `8 × orientation_step` bits
    /// (orientation steps of 11.25°, labels 0..31).
    ///
    /// # Panics
    /// Panics if `orientation_step >= 32`.
    #[must_use]
    pub fn steer(&self, orientation_step: u8) -> Descriptor {
        assert!(orientation_step < 32, "orientation label must be 0..32");
        self.rotate_bits(8 * orientation_step as usize)
    }
}

impl fmt::Display for Descriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:016x}{:016x}{:016x}{:016x}",
            self.words[3], self.words[2], self.words[1], self.words[0]
        )
    }
}

impl fmt::Binary for Descriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for w in self.words.iter().rev() {
            write!(f, "{w:064b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_descriptor_properties() {
        let d = Descriptor::ZERO;
        assert_eq!(d.count_ones(), 0);
        assert_eq!(d.hamming(&d), 0);
        assert!(!d.bit(0));
        assert!(!d.bit(255));
    }

    #[test]
    fn set_and_get_bits() {
        let mut d = Descriptor::ZERO;
        for i in [0usize, 1, 63, 64, 127, 128, 200, 255] {
            d.set_bit(i, true);
            assert!(d.bit(i), "bit {i}");
        }
        assert_eq!(d.count_ones(), 8);
        d.set_bit(64, false);
        assert!(!d.bit(64));
        assert_eq!(d.count_ones(), 7);
    }

    #[test]
    fn hamming_metric_axioms() {
        let mut a = Descriptor::ZERO;
        let mut b = Descriptor::ZERO;
        a.set_bit(3, true);
        a.set_bit(100, true);
        b.set_bit(100, true);
        b.set_bit(250, true);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(b.hamming(&a), 2); // symmetry
        assert_eq!(a.hamming(&a), 0); // identity
                                      // Complement has maximal distance.
        let full = Descriptor::from_words([u64::MAX; 4]);
        assert_eq!(Descriptor::ZERO.hamming(&full), 256);
    }

    #[test]
    fn rotate_zero_is_identity() {
        let d = Descriptor::from_words([
            0x0123456789abcdef,
            0xfedcba9876543210,
            0xaaaa5555aaaa5555,
            0x1,
        ]);
        assert_eq!(d.rotate_bits(0), d);
        assert_eq!(d.rotate_bits(256), d);
    }

    #[test]
    fn rotate_moves_prefix_to_end() {
        // Set only bit 8; rotating by 8 moves it to bit 0.
        let mut d = Descriptor::ZERO;
        d.set_bit(8, true);
        let r = d.rotate_bits(8);
        assert!(r.bit(0));
        assert_eq!(r.count_ones(), 1);
        // Set bit 0; rotating by 8 wraps it to bit 248.
        let mut d = Descriptor::ZERO;
        d.set_bit(0, true);
        let r = d.rotate_bits(8);
        assert!(r.bit(248));
    }

    #[test]
    fn rotation_composes() {
        let d = Descriptor::from_words([
            0xdeadbeefcafebabe,
            0x0123456789abcdef,
            0x5555aaaa5555aaaa,
            0xff00ff00ff00ff00,
        ]);
        let once = d.rotate_bits(24).rotate_bits(40);
        let combined = d.rotate_bits(64);
        assert_eq!(once, combined);
    }

    #[test]
    fn rotation_preserves_popcount() {
        let d = Descriptor::from_words([0xdeadbeef, 0xcafebabe, 0x12345678, 0x9abcdef0]);
        for n in 0..32 {
            assert_eq!(d.rotate_bits(8 * n).count_ones(), d.count_ones());
        }
    }

    #[test]
    fn full_steering_cycle_returns_original() {
        let d = Descriptor::from_words([0x1111, 0x2222, 0x4444, 0x8888]);
        let mut r = d;
        for _ in 0..32 {
            r = r.rotate_bits(8);
        }
        assert_eq!(r, d);
    }

    #[test]
    fn steer_matches_rotate() {
        let d = Descriptor::from_words([0xabcdef, 0x123456, 0x987654, 0xfedcba]);
        for step in 0..32u8 {
            assert_eq!(d.steer(step), d.rotate_bits(8 * step as usize));
        }
    }

    #[test]
    #[should_panic(expected = "orientation label")]
    fn steer_rejects_large_label() {
        let _ = Descriptor::ZERO.steer(32);
    }

    #[test]
    fn word_parallel_rotation_matches_reference() {
        let seeds = [
            Descriptor::ZERO,
            Descriptor::from_words([u64::MAX; 4]),
            Descriptor::from_words([
                0x0123456789abcdef,
                0xfedcba9876543210,
                0xaaaa5555aaaa5555,
                0x1,
            ]),
            Descriptor::from_words([1, 0, 0, 0x8000000000000000]),
        ];
        for d in seeds {
            for bits in 0..=DESCRIPTOR_BITS {
                assert_eq!(
                    d.rotate_bits(bits),
                    d.rotate_bits_reference(bits),
                    "{d} rotated by {bits}"
                );
            }
        }
    }

    #[test]
    fn display_formats_hex() {
        let d = Descriptor::from_words([1, 0, 0, 0]);
        let s = d.to_string();
        assert_eq!(s.len(), 64);
        assert!(s.ends_with('1'));
    }
}
