//! The complete ORB feature extractor.
//!
//! Mirrors the paper's ORB Extractor datapath (§3.1, Fig. 4): per pyramid
//! level, FAST detection + Harris scoring → NMS → Gaussian smoothing →
//! orientation (32-label) → (RS-)BRIEF descriptor → bounded heap keeping
//! the best 1024 features.
//!
//! Two workflow schedules are modelled (§3.1):
//!
//! * [`Workflow::Original`] — detect → **filter** (top-N) → compute
//!   descriptors for the N survivors. Computes only N descriptors but the
//!   descriptor stage idles until filtering finishes and all intermediate
//!   candidates must be buffered.
//! * [`Workflow::Rescheduled`] — detect → compute descriptors for **all**
//!   M candidates → filter. Streams, overlapping all stages, at the cost
//!   of M − N extra descriptor computations.
//!
//! Both schedules produce **identical feature sets** (tested); they differ
//! only in work/latency/memory, which [`ExtractionStats`] records and the
//! `eslam-hw` timing model consumes.

use crate::brief::{
    compute_descriptor, compute_descriptor_interior, pattern_fingerprint, OriginalBrief,
    PatternOffsets, RsBrief,
};
use crate::descriptor::Descriptor;
use crate::fast::{self, FastDetection};
use crate::harris::harris_score;
use crate::heap::{BestHeap, DEFAULT_HEAP_CAPACITY};
use crate::nms::{suppress, suppress_sorted_into, NmsScratch, ScoredPoint};
use crate::orientation::{angle_to_label, label_to_angle, patch_moments, Moments, OrientationLut};
use crate::pool::WorkerPool;
use crate::stream::{self, BandMode, BandScratch, ExtractMode, StreamScratch};
use eslam_image::filter::{gaussian_blur_7x7_fixed_into, gaussian_blur_7x7_fixed_reference};
use eslam_image::pyramid::{ImagePyramid, PyramidConfig, PyramidScratch};
use eslam_image::GrayImage;
use eslam_telemetry::{Stage, Telemetry};
use std::sync::Arc;
use std::time::Instant;

/// Margin (pixels) a keypoint must keep from the level border so that the
/// radius-15 descriptor/orientation patch (plus rounding) stays inside.
pub const EDGE_MARGIN: u32 = 16;

/// Descriptor flavour used by the extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescriptorKind {
    /// The paper's rotationally symmetric pattern; steering by descriptor
    /// rotation (hardware-friendly).
    RsBrief,
    /// Original ORB pattern steered through the 30-angle LUT \[8\].
    OriginalLut,
    /// Original ORB pattern with direct per-feature rotation (Eq. 2).
    OriginalDirect,
}

/// Extraction workflow schedule (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workflow {
    /// Detect → filter → compute (the pre-rescheduling baseline).
    Original,
    /// Detect → compute → filter (the paper's streaming schedule).
    Rescheduled,
}

/// Configuration of the [`OrbExtractor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrbConfig {
    /// Pyramid layout (4 levels × 1.2 by default, as in the paper).
    pub pyramid: PyramidConfig,
    /// FAST intensity threshold.
    pub fast_threshold: u8,
    /// Maximum features kept per frame (the Heap capacity, 1024).
    pub max_features: usize,
    /// Descriptor flavour.
    pub descriptor: DescriptorKind,
    /// Workflow schedule.
    pub workflow: Workflow,
    /// Seed for the descriptor pattern generation.
    pub pattern_seed: u64,
    /// Extraction path: the fused streaming pass, the legacy multi-pass
    /// pipeline, or automatic selection (overridable per process via
    /// `ESLAM_EXTRACT`).
    pub extract: ExtractMode,
    /// Row-band count of the band-parallel streaming pass: each level
    /// splits into this many independently streamed horizontal bands
    /// (clamped per level to the usable interior rows), scheduled
    /// depth-first across levels on the worker pool. `Auto` matches the
    /// pool's thread count; overridable per process via `ESLAM_BANDS`.
    /// Ignored by the multi-pass pipeline.
    pub bands: BandMode,
}

impl Default for OrbConfig {
    fn default() -> Self {
        OrbConfig {
            pyramid: PyramidConfig::default(),
            fast_threshold: fast::DEFAULT_THRESHOLD,
            max_features: DEFAULT_HEAP_CAPACITY,
            descriptor: DescriptorKind::RsBrief,
            workflow: Workflow::Rescheduled,
            pattern_seed: 0xe51a,
            extract: ExtractMode::Auto,
            bands: BandMode::Auto,
        }
    }
}

/// An oriented, scored multi-scale keypoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Keypoint {
    /// Column in base-image coordinates.
    pub x: f64,
    /// Row in base-image coordinates.
    pub y: f64,
    /// Pyramid level the keypoint was detected at.
    pub level: usize,
    /// Column in level coordinates.
    pub level_x: u32,
    /// Row in level coordinates.
    pub level_y: u32,
    /// Harris corner score.
    pub score: f64,
    /// Continuous orientation angle (radians).
    pub angle: f64,
    /// Discretized orientation label (0..31, 11.25° steps).
    pub label: u8,
}

/// Counters describing one extraction run; these feed the `eslam-hw`
/// latency/memory model of the workflow-rescheduling ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtractionStats {
    /// Raw FAST detections across all levels (before NMS) — the paper's M
    /// is measured after NMS; this counter exposes the upstream volume.
    pub fast_detections: usize,
    /// Candidates surviving NMS and the border margin (the paper's M).
    pub candidates: usize,
    /// Features finally kept (the paper's N ≤ 1024).
    pub kept: usize,
    /// Descriptors actually computed: N for [`Workflow::Original`],
    /// M for [`Workflow::Rescheduled`].
    pub descriptors_computed: usize,
    /// Total pixels processed across the pyramid.
    pub pixels_processed: u64,
}

/// Extraction result: keypoints with aligned descriptors.
#[derive(Debug, Clone, PartialEq)]
pub struct OrbFeatures {
    /// Keypoints ordered by descending Harris score.
    pub keypoints: Vec<Keypoint>,
    /// `descriptors[i]` belongs to `keypoints[i]`.
    pub descriptors: Vec<Descriptor>,
    /// Workflow counters.
    pub stats: ExtractionStats,
}

impl OrbFeatures {
    /// Number of features.
    pub fn len(&self) -> usize {
        self.keypoints.len()
    }

    /// Whether no features were extracted.
    pub fn is_empty(&self) -> bool {
        self.keypoints.is_empty()
    }
}

/// Descriptor engines, instantiated once per extractor.
#[derive(Debug, Clone)]
enum Engine {
    Rs(RsBrief),
    Original(OriginalBrief),
    Direct(OriginalBrief),
}

/// Per-pyramid-level scratch of the frame loop: detection, scoring, NMS,
/// smoothing and descriptor buffers, all reused across frames.
#[derive(Debug, Default)]
pub(crate) struct LevelScratch {
    pub(crate) detections: Vec<FastDetection>,
    scored: Vec<ScoredPoint>,
    surviving: Vec<ScoredPoint>,
    candidates: Vec<ScoredPoint>,
    nms: NmsScratch,
    smoothed: GrayImage,
    blur_scratch: Vec<u16>,
    /// RS-BRIEF sampling table compiled for this level's stride.
    pub(crate) offsets: Option<PatternOffsets>,
    /// Oriented + described candidates ([`Workflow::Rescheduled`]).
    pub(crate) results: Vec<(Keypoint, Descriptor)>,
    /// Oriented candidates ([`Workflow::Original`]).
    pub(crate) keypoints: Vec<Keypoint>,
    /// Line-buffer rings of the fused streaming pass.
    pub(crate) stream: StreamScratch,
    /// Per-band rings, results and counters of the band-parallel
    /// streaming pass (empty until a band-split frame runs).
    pub(crate) bands: Vec<BandScratch>,
    /// Raw FAST detections this level produced (both paths set it; the
    /// streaming pass reuses `detections` as a one-row band buffer, so
    /// its length alone cannot feed the stats merge).
    pub(crate) fast_count: usize,
    /// Candidates surviving NMS + the edge margin (the paper's M).
    pub(crate) cand_count: usize,
}

/// Caller-owned scratch for [`OrbExtractor::extract_with`]: holds the
/// pyramid, smoothed levels and every intermediate buffer, so
/// steady-state frame extraction performs **zero heap allocations**
/// (after the first frame of a given geometry).
///
/// The scratch may also own a persistent [`WorkerPool`]
/// ([`OrbScratch::with_threads`] / [`OrbScratch::with_pool`]); without
/// one, parallel sections run on the process-global pool. Either way,
/// steady-state frames never spawn threads.
#[derive(Debug, Default)]
pub struct OrbScratch {
    pyramid: ImagePyramid,
    pyramid_scratch: PyramidScratch,
    levels: Vec<LevelScratch>,
    /// Owned worker pool; `None` → [`WorkerPool::global`].
    pool: Option<WorkerPool>,
    /// Telemetry sink extraction records into; `None` → telemetry off.
    telemetry: Option<Arc<Telemetry>>,
}

impl OrbScratch {
    /// Scratch with an owned worker pool sized by the clamped override
    /// rules of [`eslam_pool::resolve_thread_count`]: `None` → one
    /// thread per core, `Some(0)` → panic, `Some(n)` → capped at
    /// available parallelism.
    ///
    /// [`eslam_pool::resolve_thread_count`]: crate::pool::resolve_thread_count
    pub fn with_threads(requested: Option<usize>) -> Self {
        OrbScratch::with_pool(WorkerPool::with_threads(requested))
    }

    /// Scratch owning an explicit (possibly unclamped) worker pool.
    pub fn with_pool(pool: WorkerPool) -> Self {
        OrbScratch {
            pool: Some(pool),
            ..Default::default()
        }
    }

    /// The pool parallel sections run on: the owned pool when present,
    /// the process-global pool otherwise.
    pub fn pool(&self) -> &WorkerPool {
        self.pool.as_ref().unwrap_or_else(|| WorkerPool::global())
    }

    /// Attaches (or detaches) the telemetry sink extraction spans
    /// record into. Telemetry observes only — extraction results are
    /// bit-identical with and without a sink.
    pub fn set_telemetry(&mut self, telemetry: Option<Arc<Telemetry>>) {
        self.telemetry = telemetry;
    }

    /// Bytes currently held by the streaming pass's line buffers across
    /// all pyramid levels — including every band's own rings under the
    /// band-parallel schedule, whose full-width halo duplication is
    /// exactly what the bound must charge for. Diagnostic for the
    /// `O(width · bands)` working-memory claim: for a fixed width and
    /// band count this is constant in image height (whereas the pass
    /// pipeline's smoothed frame + `u16` scratch scale with
    /// `width × height`).
    pub fn stream_working_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|ls| {
                ls.stream.working_bytes()
                    + ls.bands
                        .iter()
                        .map(BandScratch::working_bytes)
                        .sum::<usize>()
            })
            .sum()
    }
}

/// The ORB feature extractor (software reference of the FPGA datapath).
///
/// # Examples
///
/// ```
/// use eslam_image::GrayImage;
/// use eslam_features::orb::{OrbExtractor, OrbConfig};
///
/// // A checkerboard with per-pixel variation (a perfectly symmetric
/// // X-junction is not a FAST-9 corner, so pure checkerboards are empty).
/// let img = GrayImage::from_fn(320, 240, |x, y| {
///     let base = if (x / 16 + y / 16) % 2 == 0 { 40 } else { 200 };
///     base + ((x * 31 + y * 17) % 23) as u8
/// });
/// let extractor = OrbExtractor::new(OrbConfig::default());
/// let features = extractor.extract(&img);
/// assert!(!features.is_empty());
/// assert_eq!(features.keypoints.len(), features.descriptors.len());
/// ```
#[derive(Debug, Clone)]
pub struct OrbExtractor {
    config: OrbConfig,
    engine: Engine,
    lut: OrientationLut,
}

/// A band task parked in its (level, band) slot until the depth-first
/// schedule moves it onto the pool (`Option` so each closure can be
/// taken exactly once in schedule order).
type BandTaskSlot<'env> = Option<Box<dyn FnOnce() + Send + 'env>>;

impl OrbExtractor {
    /// Creates an extractor, generating the descriptor pattern from
    /// `config.pattern_seed`.
    pub fn new(config: OrbConfig) -> Self {
        let engine = match config.descriptor {
            DescriptorKind::RsBrief => Engine::Rs(RsBrief::new(config.pattern_seed)),
            DescriptorKind::OriginalLut => {
                Engine::Original(OriginalBrief::new(config.pattern_seed))
            }
            DescriptorKind::OriginalDirect => {
                Engine::Direct(OriginalBrief::new(config.pattern_seed))
            }
        };
        OrbExtractor {
            config,
            engine,
            lut: OrientationLut::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &OrbConfig {
        &self.config
    }

    /// Extracts up to `max_features` oriented, described keypoints.
    ///
    /// Convenience wrapper over [`OrbExtractor::extract_with`] with
    /// throwaway scratch; frame loops should hold an [`OrbScratch`] and
    /// call `extract_with` to avoid per-frame allocations.
    pub fn extract(&self, image: &GrayImage) -> OrbFeatures {
        self.extract_with(image, &mut OrbScratch::default())
    }

    /// Extracts features using caller-owned scratch buffers.
    ///
    /// Extraction is processed **in parallel** on the worker pool: the
    /// streaming path splits every pyramid level into horizontal row
    /// bands on one depth-first schedule across levels (band count from
    /// [`OrbConfig::bands`] / `ESLAM_BANDS`; one band per pool thread
    /// under `Auto`), while the multi-pass path runs one task per
    /// level. Either way results merge in deterministic (level, band)
    /// order, so the result — keypoints, descriptors, and
    /// [`ExtractionStats`] — is identical to the sequential scalar
    /// reference ([`OrbExtractor::extract_reference`]) regardless of
    /// thread or band count.
    ///
    /// The per-level stage runs either the fused single-pass streaming
    /// front-end ([`crate::stream`]) or the legacy multi-pass pipeline,
    /// selected by [`OrbConfig::extract`] / `ESLAM_EXTRACT`; both
    /// produce bit-identical features and stats.
    pub fn extract_with(&self, image: &GrayImage, scratch: &mut OrbScratch) -> OrbFeatures {
        let use_stream = stream::stream_active(self.config.extract, self.config.workflow);
        self.extract_impl(image, scratch, use_stream)
    }

    /// Extraction pinned to the fused streaming front-end (falling back
    /// to the pass pipeline under [`Workflow::Original`], whose
    /// post-filter descriptor stage needs the full smoothed frame).
    /// Benchmarks and the equivalence tier call this to compare the two
    /// paths regardless of environment overrides.
    pub fn extract_stream_with(&self, image: &GrayImage, scratch: &mut OrbScratch) -> OrbFeatures {
        self.extract_impl(
            image,
            scratch,
            self.config.workflow == Workflow::Rescheduled,
        )
    }

    /// Extraction pinned to the legacy multi-pass pipeline (the oracle
    /// path the streaming front-end is verified against).
    pub fn extract_passes_with(&self, image: &GrayImage, scratch: &mut OrbScratch) -> OrbFeatures {
        self.extract_impl(image, scratch, false)
    }

    fn extract_impl(
        &self,
        image: &GrayImage,
        scratch: &mut OrbScratch,
        use_stream: bool,
    ) -> OrbFeatures {
        let OrbScratch {
            pyramid,
            pyramid_scratch,
            levels,
            pool,
            telemetry,
        } = scratch;
        // `Option<&Telemetry>` is `Copy`, so the level tasks can capture
        // it by value; `timing` is `None` unless full mode is active, so
        // counters/off modes read no clocks here at all.
        let telemetry = telemetry.as_deref();
        let timing = telemetry.filter(|t| t.timing());
        let _extraction_span = Telemetry::span_opt(timing, Stage::Extraction);
        {
            let _span = Telemetry::span_opt(timing, Stage::PyramidBuild);
            pyramid.build_into(image, &self.config.pyramid, pyramid_scratch);
        }
        let nlevels = pyramid.levels();
        levels.truncate(nlevels);
        while levels.len() < nlevels {
            levels.push(LevelScratch::default());
        }

        // Stage 1, per level (independent): detect → score → NMS →
        // margin filter → smooth → orient (→ describe). Parallel levels
        // run on the persistent pool — no per-frame thread spawns.
        let pool = pool.as_ref().unwrap_or_else(|| WorkerPool::global());
        let bands_requested = if use_stream {
            stream::resolve_bands(self.config.bands, pool.threads())
        } else {
            1
        };
        let banded = use_stream && bands_requested > 1;
        let parallel = nlevels > 1 && pool.threads() > 1;
        if banded {
            // Band-parallel streaming: every level splits into row
            // bands ([`stream::band_partition`]) and all (level, band)
            // tasks run on one depth-first schedule, so small upper
            // levels fill in around the heavy level-0 bands instead of
            // waiting behind a per-level barrier. Each band writes into
            // its own `BandScratch` slot; the merge below reads the
            // slots back in (level, band) order, which makes the result
            // independent of the execution order and bit-identical to
            // the single-band stream.
            let dims: Vec<(u32, u32)> = pyramid
                .iter()
                .map(|(_, img)| (img.width(), img.height()))
                .collect();
            let schedule = stream::depth_first_schedule(&dims, bands_requested);
            let mut slots: Vec<Vec<BandTaskSlot<'_>>> = Vec::with_capacity(nlevels);
            for ((level, img), ls) in pyramid.iter().zip(levels.iter_mut()) {
                let scale = self.config.pyramid.scale_of(level);
                // The offset table is compiled once up front and shared
                // read-only across the level's bands.
                self.prepare_offsets(img.width(), ls);
                ls.results.clear();
                ls.keypoints.clear();
                ls.fast_count = 0;
                ls.cand_count = 0;
                let parts = stream::band_partition(img.height(), bands_requested);
                ls.bands.truncate(parts.len());
                while ls.bands.len() < parts.len() {
                    ls.bands.push(BandScratch::default());
                }
                let LevelScratch { offsets, bands, .. } = ls;
                let offsets = offsets.as_ref();
                let mut level_tasks = Vec::with_capacity(parts.len());
                for (bs, rows) in bands.iter_mut().zip(parts) {
                    let enqueued = timing.map(|_| Instant::now());
                    level_tasks.push(Some(Box::new(move || {
                        if let (Some(t), Some(start)) = (timing, enqueued) {
                            t.record_since(Stage::PoolQueueWait, start);
                        }
                        let _span = Telemetry::span_opt(timing, Stage::ExtractBand);
                        stream::process_band_stream(self, img, level, scale, offsets, bs, rows);
                    })
                        as Box<dyn FnOnce() + Send + '_>));
                }
                slots.push(level_tasks);
            }
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = schedule
                .iter()
                .map(|t| {
                    slots[t.level][t.band]
                        .take()
                        .expect("each band scheduled once")
                })
                .collect();
            let _span = Telemetry::span_opt(timing, Stage::PoolDispatch);
            pool.scope_run(tasks);
        } else if parallel {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = pyramid
                .iter()
                .zip(levels.iter_mut())
                .map(|((level, img), ls)| {
                    let scale = self.config.pyramid.scale_of(level);
                    let enqueued = timing.map(|_| Instant::now());
                    Box::new(move || {
                        if let (Some(t), Some(start)) = (timing, enqueued) {
                            t.record_since(Stage::PoolQueueWait, start);
                        }
                        let _span = Telemetry::span_opt(timing, Stage::ExtractLevel);
                        if use_stream {
                            stream::process_level_stream(self, img, level, scale, ls);
                        } else {
                            self.process_level(img, level, scale, ls);
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            let _span = Telemetry::span_opt(timing, Stage::PoolDispatch);
            pool.scope_run(tasks);
        } else {
            for ((level, img), ls) in pyramid.iter().zip(levels.iter_mut()) {
                let scale = self.config.pyramid.scale_of(level);
                let _span = Telemetry::span_opt(timing, Stage::ExtractLevel);
                if use_stream {
                    stream::process_level_stream(self, img, level, scale, ls);
                } else {
                    self.process_level(img, level, scale, ls);
                }
            }
        }

        // Stage 2: deterministic merge in level order — the heap sees
        // candidates in exactly the sequential order, so tie-breaking by
        // arrival matches the reference bit-for-bit. Under the band
        // split, bands partition a level's finalize rows in raster
        // order, so reading band slots in band order *is* the level's
        // sequential emission order (stats sum per owning band for the
        // same reason).
        let mut stats = ExtractionStats {
            pixels_processed: pyramid.total_pixels(),
            ..Default::default()
        };
        for ls in levels.iter() {
            if banded {
                for bs in &ls.bands {
                    stats.fast_detections += bs.fast_count;
                    stats.candidates += bs.cand_count;
                }
            } else {
                stats.fast_detections += ls.fast_count;
                stats.candidates += ls.cand_count;
            }
        }

        let (keypoints, descriptors) = match self.config.workflow {
            Workflow::Rescheduled => {
                let mut heap: BestHeap<(Keypoint, Descriptor)> =
                    BestHeap::new(self.config.max_features);
                for ls in levels.iter() {
                    if banded {
                        for bs in &ls.bands {
                            for &(kp, desc) in &bs.results {
                                stats.descriptors_computed += 1;
                                heap.push(kp.score, (kp, desc));
                            }
                        }
                    } else {
                        for &(kp, desc) in &ls.results {
                            stats.descriptors_computed += 1;
                            heap.push(kp.score, (kp, desc));
                        }
                    }
                }
                let mut kps = Vec::with_capacity(heap.len());
                let mut descs = Vec::with_capacity(heap.len());
                for (_, (kp, d)) in heap.into_sorted_vec() {
                    kps.push(kp);
                    descs.push(d);
                }
                (kps, descs)
            }
            Workflow::Original => {
                let mut heap: BestHeap<Keypoint> = BestHeap::new(self.config.max_features);
                for ls in levels.iter() {
                    for &kp in &ls.keypoints {
                        heap.push(kp.score, kp);
                    }
                }
                let mut kps = Vec::with_capacity(heap.len());
                let mut descs = Vec::with_capacity(heap.len());
                for (_, kp) in heap.into_sorted_vec() {
                    let ls = &levels[kp.level];
                    let desc = self.describe_level(&ls.smoothed, &kp, ls.offsets.as_ref());
                    stats.descriptors_computed += 1;
                    kps.push(kp);
                    descs.push(desc);
                }
                (kps, descs)
            }
        };

        stats.kept = keypoints.len();
        OrbFeatures {
            keypoints,
            descriptors,
            stats,
        }
    }

    /// The per-level pipeline stage; independent across levels.
    pub(crate) fn process_level(
        &self,
        img: &GrayImage,
        level: usize,
        scale: f64,
        ls: &mut LevelScratch,
    ) {
        fast::detect_into(img, self.config.fast_threshold, &mut ls.detections);
        ls.fast_count = ls.detections.len();
        ls.scored.clear();
        for d in &ls.detections {
            ls.scored.push(ScoredPoint {
                x: d.x,
                y: d.y,
                score: harris_score(img, d.x, d.y),
            });
        }
        suppress_sorted_into(&ls.scored, &mut ls.surviving, &mut ls.nms);
        ls.candidates.clear();
        ls.candidates.extend(ls.surviving.iter().filter(|p| {
            p.x >= EDGE_MARGIN
                && p.y >= EDGE_MARGIN
                && p.x + EDGE_MARGIN < img.width()
                && p.y + EDGE_MARGIN < img.height()
        }));
        ls.cand_count = ls.candidates.len();
        gaussian_blur_7x7_fixed_into(img, &mut ls.smoothed, &mut ls.blur_scratch);
        self.prepare_offsets(img.width(), ls);

        ls.results.clear();
        ls.keypoints.clear();
        match self.config.workflow {
            Workflow::Rescheduled => {
                for i in 0..ls.candidates.len() {
                    let c = ls.candidates[i];
                    let kp = self.orient(&ls.smoothed, &c, level, scale);
                    let desc = self.describe_level(&ls.smoothed, &kp, ls.offsets.as_ref());
                    ls.results.push((kp, desc));
                }
            }
            Workflow::Original => {
                for i in 0..ls.candidates.len() {
                    let c = ls.candidates[i];
                    ls.keypoints
                        .push(self.orient(&ls.smoothed, &c, level, scale));
                }
            }
        }
    }

    /// Sequential scalar reference of [`OrbExtractor::extract`]: the
    /// original per-pixel implementation built from the reference kernels
    /// ([`fast::detect_reference`], [`gaussian_blur_7x7_fixed_reference`],
    /// [`suppress`], clamped descriptor sampling). Retained as the
    /// bit-exact oracle the optimized path is tested against.
    pub fn extract_reference(&self, image: &GrayImage) -> OrbFeatures {
        let pyramid = ImagePyramid::build(image, &self.config.pyramid);
        let mut stats = ExtractionStats {
            pixels_processed: pyramid.total_pixels(),
            ..Default::default()
        };

        // Per level: detect, score, suppress; keep the smoothed image for
        // the descriptor/orientation stages.
        let mut level_candidates: Vec<Vec<ScoredPoint>> = Vec::with_capacity(pyramid.levels());
        let mut smoothed: Vec<GrayImage> = Vec::with_capacity(pyramid.levels());
        for (_, img) in pyramid.iter() {
            let detections = fast::detect_reference(img, self.config.fast_threshold);
            stats.fast_detections += detections.len();
            let scored: Vec<ScoredPoint> = detections
                .iter()
                .map(|d| ScoredPoint {
                    x: d.x,
                    y: d.y,
                    score: harris_score(img, d.x, d.y),
                })
                .collect();
            let surviving: Vec<ScoredPoint> = suppress(&scored)
                .into_iter()
                .filter(|p| {
                    p.x >= EDGE_MARGIN
                        && p.y >= EDGE_MARGIN
                        && p.x + EDGE_MARGIN < img.width()
                        && p.y + EDGE_MARGIN < img.height()
                })
                .collect();
            stats.candidates += surviving.len();
            level_candidates.push(surviving);
            smoothed.push(gaussian_blur_7x7_fixed_reference(img));
        }

        let (keypoints, descriptors) = match self.config.workflow {
            Workflow::Rescheduled => {
                // Compute descriptors for every candidate, then filter.
                let mut heap: BestHeap<(Keypoint, Descriptor)> =
                    BestHeap::new(self.config.max_features);
                for (level, candidates) in level_candidates.iter().enumerate() {
                    let scale = pyramid.scale_of(level);
                    for c in candidates {
                        let kp = self.orient(&smoothed[level], c, level, scale);
                        let desc = self.describe(&smoothed[level], &kp);
                        stats.descriptors_computed += 1;
                        heap.push(kp.score, (kp, desc));
                    }
                }
                let mut kps = Vec::with_capacity(heap.len());
                let mut descs = Vec::with_capacity(heap.len());
                for (_, (kp, d)) in heap.into_sorted_vec() {
                    kps.push(kp);
                    descs.push(d);
                }
                (kps, descs)
            }
            Workflow::Original => {
                // Filter first on Harris score, then compute descriptors
                // only for the survivors.
                let mut heap: BestHeap<Keypoint> = BestHeap::new(self.config.max_features);
                for (level, candidates) in level_candidates.iter().enumerate() {
                    let scale = pyramid.scale_of(level);
                    for c in candidates {
                        let kp = self.orient(&smoothed[level], c, level, scale);
                        heap.push(kp.score, kp);
                    }
                }
                let mut kps = Vec::with_capacity(heap.len());
                let mut descs = Vec::with_capacity(heap.len());
                for (_, kp) in heap.into_sorted_vec() {
                    let desc = self.describe(&smoothed[kp.level], &kp);
                    stats.descriptors_computed += 1;
                    kps.push(kp);
                    descs.push(desc);
                }
                (kps, descs)
            }
        };

        stats.kept = keypoints.len();
        OrbFeatures {
            keypoints,
            descriptors,
            stats,
        }
    }

    /// Compiles the RS-BRIEF sampling table for a level's stride (only
    /// when the geometry or the pattern changed since the last frame —
    /// the fingerprint guards scratch buffers shared across extractors
    /// with different engines or pattern seeds).
    pub(crate) fn prepare_offsets(&self, width: u32, ls: &mut LevelScratch) {
        if let Engine::Rs(rs) = &self.engine {
            let fp = pattern_fingerprint(rs.pattern());
            if ls
                .offsets
                .as_ref()
                .is_none_or(|t| t.width() != width || t.fingerprint() != fp)
            {
                ls.offsets = Some(PatternOffsets::new(rs.pattern(), width));
            }
        } else {
            // A stale RS table must never survive into a non-RS engine.
            ls.offsets = None;
        }
    }

    /// Builds the oriented keypoint for a surviving candidate.
    fn orient(&self, smoothed: &GrayImage, c: &ScoredPoint, level: usize, scale: f64) -> Keypoint {
        self.orient_from_moments(patch_moments(smoothed, c.x, c.y), c, level, scale)
    }

    /// Keypoint construction from already-computed patch moments (the
    /// streaming pass reads moments off its ring buffer rather than a
    /// full smoothed frame).
    pub(crate) fn orient_from_moments(
        &self,
        moments: Moments,
        c: &ScoredPoint,
        level: usize,
        scale: f64,
    ) -> Keypoint {
        let label = self.lut.label(moments.m10, moments.m01);
        // The continuous angle is retained for the Original descriptor
        // modes; RS-BRIEF uses only the label, as the hardware does.
        let angle = match self.config.descriptor {
            DescriptorKind::RsBrief => label_to_angle(label),
            _ => moments.angle(),
        };
        Keypoint {
            x: c.x as f64 * scale,
            y: c.y as f64 * scale,
            level,
            level_x: c.x,
            level_y: c.y,
            score: c.score,
            angle,
            label,
        }
    }

    /// Computes the steered descriptor for a keypoint.
    fn describe(&self, smoothed: &GrayImage, kp: &Keypoint) -> Descriptor {
        match &self.engine {
            Engine::Rs(rs) => rs.compute(smoothed, kp.level_x, kp.level_y, kp.label),
            Engine::Original(orig) => orig.compute_lut(smoothed, kp.level_x, kp.level_y, kp.angle),
            Engine::Direct(orig) => orig.compute_direct(smoothed, kp.level_x, kp.level_y, kp.angle),
        }
    }

    /// Hot-path descriptor: RS-BRIEF keypoints sample through the
    /// compiled per-level offset table (the keypoint margin of 16 pixels
    /// exceeds the 15-pixel patch radius, so clamping never engages and
    /// the result is bit-identical to [`OrbExtractor::describe`]).
    fn describe_level(
        &self,
        smoothed: &GrayImage,
        kp: &Keypoint,
        offsets: Option<&PatternOffsets>,
    ) -> Descriptor {
        self.describe_at(
            smoothed, kp.level_x, kp.level_y, kp.label, kp.angle, offsets,
        )
    }

    /// Descriptor computation at explicit level coordinates — the
    /// streaming pass calls this with ring-buffer coordinates, where
    /// `y` is the keypoint row's slot in the mirrored ring. Identical
    /// engine dispatch to [`OrbExtractor::describe`]; none of the
    /// engines' clamped sampling engages because the caller guarantees
    /// a full radius-15 interior around `(x, y)`.
    pub(crate) fn describe_at(
        &self,
        smoothed: &GrayImage,
        x: u32,
        y: u32,
        label: u8,
        angle: f64,
        offsets: Option<&PatternOffsets>,
    ) -> Descriptor {
        if let Some(table) = offsets {
            compute_descriptor_interior(smoothed, x, y, table).steer(label)
        } else {
            match &self.engine {
                Engine::Rs(rs) => rs.compute(smoothed, x, y, label),
                Engine::Original(orig) => orig.compute_lut(smoothed, x, y, angle),
                Engine::Direct(orig) => orig.compute_direct(smoothed, x, y, angle),
            }
        }
    }

    /// Computes the *unsteered* descriptor at a keypoint (used by the
    /// hardware model, which steers in a separate Rotator stage).
    pub fn describe_unsteered(&self, smoothed: &GrayImage, x: u32, y: u32) -> Descriptor {
        match &self.engine {
            Engine::Rs(rs) => compute_descriptor(smoothed, x, y, rs.pattern()),
            Engine::Original(orig) | Engine::Direct(orig) => {
                compute_descriptor(smoothed, x, y, orig.pattern())
            }
        }
    }
}

/// Convenience: checks that the orientation label discretization used by
/// keypoints agrees with [`angle_to_label`].
pub fn label_of_angle(angle: f64) -> u8 {
    angle_to_label(angle)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A corner-rich checkerboard with mild pseudo-random variation.
    fn test_image(w: u32, h: u32, seed: u64) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| {
            let base = if ((x / 12) + (y / 12)) % 2 == 0 {
                50
            } else {
                190
            };
            let jitter = ((x as u64 * 31 + y as u64 * 17 + seed * 1009) % 23) as u8;
            base + jitter
        })
    }

    #[test]
    fn extracts_features_from_checkerboard() {
        let img = test_image(320, 240, 0);
        let extractor = OrbExtractor::new(OrbConfig::default());
        let f = extractor.extract(&img);
        assert!(f.len() > 50, "got {}", f.len());
        assert_eq!(f.keypoints.len(), f.descriptors.len());
        assert!(f.stats.kept <= 1024);
        assert_eq!(f.stats.kept, f.len());
    }

    #[test]
    fn respects_max_features() {
        let img = test_image(320, 240, 1);
        let cfg = OrbConfig {
            max_features: 20,
            ..Default::default()
        };
        let f = OrbExtractor::new(cfg).extract(&img);
        assert!(f.len() <= 20);
        // Sorted by descending score.
        for pair in f.keypoints.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn workflows_produce_identical_features() {
        // §3.1: rescheduling changes latency/memory, not results.
        let img = test_image(320, 240, 2);
        let base = OrbConfig {
            max_features: 100,
            ..Default::default()
        };
        let original = OrbExtractor::new(OrbConfig {
            workflow: Workflow::Original,
            ..base
        })
        .extract(&img);
        let rescheduled = OrbExtractor::new(OrbConfig {
            workflow: Workflow::Rescheduled,
            ..base
        })
        .extract(&img);
        assert_eq!(original.keypoints, rescheduled.keypoints);
        assert_eq!(original.descriptors, rescheduled.descriptors);
    }

    #[test]
    fn rescheduled_computes_more_descriptors() {
        // The cost of streaming: M ≥ N descriptor computations.
        let img = test_image(320, 240, 3);
        let base = OrbConfig {
            max_features: 50,
            ..Default::default()
        };
        let original = OrbExtractor::new(OrbConfig {
            workflow: Workflow::Original,
            ..base
        })
        .extract(&img);
        let rescheduled = OrbExtractor::new(OrbConfig {
            workflow: Workflow::Rescheduled,
            ..base
        })
        .extract(&img);
        assert_eq!(original.stats.descriptors_computed, original.stats.kept);
        assert_eq!(
            rescheduled.stats.descriptors_computed,
            rescheduled.stats.candidates
        );
        assert!(rescheduled.stats.descriptors_computed >= original.stats.descriptors_computed);
    }

    #[test]
    fn keypoints_respect_edge_margin() {
        let img = test_image(160, 120, 4);
        let f = OrbExtractor::new(OrbConfig::default()).extract(&img);
        for kp in &f.keypoints {
            assert!(kp.level_x >= EDGE_MARGIN);
            assert!(kp.level_y >= EDGE_MARGIN);
        }
    }

    #[test]
    fn base_coordinates_scale_with_level() {
        let img = test_image(320, 240, 5);
        let f = OrbExtractor::new(OrbConfig::default()).extract(&img);
        let mut seen_upper_level = false;
        for kp in &f.keypoints {
            let scale = 1.2f64.powi(kp.level as i32);
            assert!((kp.x - kp.level_x as f64 * scale).abs() < 1e-9);
            assert!((kp.y - kp.level_y as f64 * scale).abs() < 1e-9);
            if kp.level > 0 {
                seen_upper_level = true;
            }
        }
        assert!(seen_upper_level, "multi-scale detection expected");
    }

    #[test]
    fn flat_image_yields_nothing() {
        let img = GrayImage::from_fn(160, 120, |_, _| 127);
        let f = OrbExtractor::new(OrbConfig::default()).extract(&img);
        assert!(f.is_empty());
        assert_eq!(f.stats.candidates, 0);
        assert_eq!(f.stats.descriptors_computed, 0);
    }

    #[test]
    fn stats_pixels_match_pyramid() {
        let img = test_image(320, 240, 6);
        let f = OrbExtractor::new(OrbConfig::default()).extract(&img);
        let cfg = PyramidConfig::default();
        assert_eq!(f.stats.pixels_processed, cfg.total_pixels(320, 240));
    }

    #[test]
    fn descriptor_kinds_all_work() {
        let img = test_image(240, 180, 7);
        for kind in [
            DescriptorKind::RsBrief,
            DescriptorKind::OriginalLut,
            DescriptorKind::OriginalDirect,
        ] {
            let f = OrbExtractor::new(OrbConfig {
                descriptor: kind,
                max_features: 64,
                ..Default::default()
            })
            .extract(&img);
            assert!(!f.is_empty(), "{kind:?} extracted nothing");
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let img = test_image(240, 180, 8);
        let e = OrbExtractor::new(OrbConfig::default());
        let a = e.extract(&img);
        let b = e.extract(&img);
        assert_eq!(a, b);
    }

    #[test]
    fn optimized_extractor_matches_scalar_reference() {
        // The headline equivalence: bitmask FAST + row-sliced kernels +
        // offset-table descriptors + parallel levels vs the sequential
        // per-pixel reference, bit for bit — features AND stats.
        for seed in 0..3u64 {
            let img = test_image(200, 150, seed);
            for kind in [
                DescriptorKind::RsBrief,
                DescriptorKind::OriginalLut,
                DescriptorKind::OriginalDirect,
            ] {
                for workflow in [Workflow::Rescheduled, Workflow::Original] {
                    let e = OrbExtractor::new(OrbConfig {
                        descriptor: kind,
                        workflow,
                        max_features: 200,
                        ..Default::default()
                    });
                    let fast_path = e.extract(&img);
                    let reference = e.extract_reference(&img);
                    assert_eq!(fast_path, reference, "seed {seed} {kind:?} {workflow:?}");
                }
            }
        }
    }

    #[test]
    fn scratch_shared_across_extractors_stays_correct() {
        // Regression: a scratch previously used by an RS-BRIEF extractor
        // must not leak its offset table into another engine (or an RS
        // engine with a different pattern seed) on same-width frames.
        let img = test_image(160, 120, 3);
        let mut scratch = OrbScratch::default();
        let rs = OrbExtractor::new(OrbConfig::default());
        let _ = rs.extract_with(&img, &mut scratch);

        let lut = OrbExtractor::new(OrbConfig {
            descriptor: DescriptorKind::OriginalLut,
            ..Default::default()
        });
        assert_eq!(lut.extract_with(&img, &mut scratch), lut.extract(&img));

        let rs_other = OrbExtractor::new(OrbConfig {
            pattern_seed: 0x1234,
            ..Default::default()
        });
        assert_eq!(
            rs_other.extract_with(&img, &mut scratch),
            rs_other.extract(&img)
        );
    }

    #[test]
    fn scratch_reuse_is_equivalent_across_frames() {
        let e = OrbExtractor::new(OrbConfig::default());
        let mut scratch = OrbScratch::default();
        for seed in 0..4u64 {
            let img = test_image(160, 120, seed);
            let with_scratch = e.extract_with(&img, &mut scratch);
            assert_eq!(with_scratch, e.extract(&img), "frame {seed}");
        }
        // Geometry changes mid-stream must also be handled.
        let small = test_image(96, 80, 9);
        assert_eq!(e.extract_with(&small, &mut scratch), e.extract(&small));
    }

    #[test]
    fn labels_consistent_with_angles() {
        let img = test_image(320, 240, 9);
        let f = OrbExtractor::new(OrbConfig::default()).extract(&img);
        for kp in &f.keypoints {
            assert!(kp.label < 32);
            // RS-BRIEF keypoints carry the label's representative angle.
            assert_eq!(label_of_angle(kp.angle), kp.label);
        }
    }
}
