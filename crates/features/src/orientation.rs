//! Feature orientation by the intensity-centroid method.
//!
//! The paper's Orientation Computing module (§3.1, Eq. 3) finds the mass
//! centre `(u, v)` of the circular patch around a feature and defines the
//! orientation as the vector from the patch centre to the mass centre.
//! Because the RS-BRIEF pattern is 32-fold symmetric, the module
//! discretizes the angle into an integral label 0..31 (11.25° steps),
//! determined "from v/u and the signs of u and v" via a lookup table —
//! [`OrientationLut`] reproduces that hardware structure.

use eslam_image::GrayImage;

/// Radius of the circular orientation patch (§2.2: radius-15 patch).
pub const ORIENTATION_RADIUS: i64 = 15;

/// Number of discrete orientation labels (32 × 11.25° = 360°).
pub const ORIENTATION_BINS: u8 = 32;

/// Raw intensity-centroid moments of a circular patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Moments {
    /// `Σ I(x,y)·x` over the circular patch (numerator of `u`).
    pub m10: i64,
    /// `Σ I(x,y)·y` over the circular patch (numerator of `v`).
    pub m01: i64,
    /// `Σ I(x,y)` (the shared denominator of Eq. 3; positive for any
    /// non-black patch).
    pub m00: i64,
}

impl Moments {
    /// Continuous orientation angle `atan2(v, u)` in `(-π, π]`.
    pub fn angle(&self) -> f64 {
        (self.m01 as f64).atan2(self.m10 as f64)
    }
}

/// Per-row half-width of the radius-15 circular patch:
/// `CIRCLE_EXTENT[dy + 15] = ⌊√(15² − dy²)⌋`.
const CIRCLE_EXTENT: [i64; 31] = circle_extents();

const fn circle_extents() -> [i64; 31] {
    let r = ORIENTATION_RADIUS;
    let mut ext = [0i64; 31];
    let mut dy = -r;
    while dy <= r {
        let rem = r * r - dy * dy;
        let mut e = 0i64;
        while (e + 1) * (e + 1) <= rem {
            e += 1;
        }
        ext[(dy + r) as usize] = e;
        dy += 1;
    }
    ext
}

/// Computes the patch moments at `(x, y)`. Pixels outside the image are
/// clamped (border replication), matching the hardware line buffers.
///
/// Interior patches (≥ 15 pixels from every border — always true for
/// keypoints behind the extractor's 16-pixel margin) take a row-sliced
/// hot path; the sums are exact integers, so both paths are identical.
pub fn patch_moments(img: &GrayImage, x: u32, y: u32) -> Moments {
    let r = ORIENTATION_RADIUS;
    let (cx, cy) = (x as i64, y as i64);
    let interior =
        cx >= r && cy >= r && cx + r < img.width() as i64 && cy + r < img.height() as i64;

    let mut m10 = 0i64;
    let mut m01 = 0i64;
    let mut m00 = 0i64;
    if interior {
        let w = img.width() as usize;
        let data = img.as_raw();
        for dy in -r..=r {
            let ext = CIRCLE_EXTENT[(dy + r) as usize];
            let start = ((cy + dy) as usize) * w + (cx - ext) as usize;
            let row = &data[start..start + (2 * ext + 1) as usize];
            let mut row_sum = 0i64;
            let mut row_weighted = 0i64;
            for (k, &v) in row.iter().enumerate() {
                let i = v as i64;
                row_sum += i;
                row_weighted += i * (k as i64 - ext);
            }
            m10 += row_weighted;
            m01 += dy * row_sum;
            m00 += row_sum;
        }
    } else {
        let r2 = r * r;
        for dy in -r..=r {
            for dx in -r..=r {
                if dx * dx + dy * dy > r2 {
                    continue;
                }
                let i = img.get_clamped(cx + dx, cy + dy) as i64;
                m10 += i * dx;
                m01 += i * dy;
                m00 += i;
            }
        }
    }
    Moments { m10, m01, m00 }
}

/// Band-aware moments entry of the streaming front-end: reads the
/// radius-15 patch around **virtual** image row `y` from a *mirrored*
/// row ring instead of a full smoothed frame.
///
/// The ring holds `ring_rows` logical slots, physically doubled: a
/// virtual row `v` lives at slot `v % ring_rows` *and* at
/// `v % ring_rows + ring_rows`, so any window of up to `ring_rows − 1`
/// consecutive virtual rows is one contiguous block of physical rows
/// starting at `(first_row % ring_rows)` — no per-row modulo inside the
/// pixel loops, and [`patch_moments`]' interior hot path runs unchanged
/// on the ring.
///
/// Caller contract: virtual rows `y ± 15` are the most recent rows
/// written to their slots, and `x` keeps a 15-pixel column margin (both
/// guaranteed behind the extractor's 16-pixel edge margin). Under that
/// contract the result is bit-identical to
/// `patch_moments(full_smoothed, x, y)`.
///
/// # Panics
/// Panics if the ring is not mirrored (`height != 2 * ring_rows`), if
/// `ring_rows` cannot hold the 31-row window, or if `(x, y)` violates
/// the interior margins.
pub fn patch_moments_ring(ring: &GrayImage, x: u32, y: u32, ring_rows: u32) -> Moments {
    let r = ORIENTATION_RADIUS as u32;
    assert_eq!(ring.height(), 2 * ring_rows, "ring must be mirrored");
    assert!(ring_rows > 2 * r, "ring too short for the patch window");
    assert!(y >= r, "virtual row {y} clips the top border");
    assert!(x >= r && x + r < ring.width(), "column {x} clips a border");
    let slot = (y - r) % ring_rows + r;
    patch_moments(ring, x, slot)
}

/// Continuous orientation angle at `(x, y)` in radians.
pub fn orientation_angle(img: &GrayImage, x: u32, y: u32) -> f64 {
    patch_moments(img, x, y).angle()
}

/// Discretizes a continuous angle into the 0..31 label (nearest 11.25°
/// step, wrapping).
pub fn angle_to_label(theta: f64) -> u8 {
    let tau = 2.0 * std::f64::consts::PI;
    let normalized = theta.rem_euclid(tau);
    ((normalized / tau * ORIENTATION_BINS as f64).round() as u32 % ORIENTATION_BINS as u32) as u8
}

/// The label's representative angle in radians (label × 11.25°).
pub fn label_to_angle(label: u8) -> f64 {
    2.0 * std::f64::consts::PI * (label as f64) / ORIENTATION_BINS as f64
}

/// Hardware-style orientation lookup: determines the 0..31 label from the
/// ratio `v/u` and the signs of `u` and `v`, avoiding any trigonometry in
/// the datapath (§3.1: "builds a lookup table to determine the orientation
/// from v/u and the signs of u and v").
///
/// The table stores `tan` of the 8 bin boundaries in the first quadrant;
/// sign bits select the quadrant. Output is bit-identical to
/// [`angle_to_label`]`(atan2(v, u))`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrientationLut {
    /// `tan` of the first-quadrant bin boundaries (5.625°, 16.875°, …,
    /// 84.375°), the comparison thresholds of the hardware unit.
    boundaries: Vec<f64>,
}

impl Default for OrientationLut {
    fn default() -> Self {
        OrientationLut::new()
    }
}

impl OrientationLut {
    /// Builds the boundary table.
    pub fn new() -> Self {
        // Bin k covers angles [k·11.25° − 5.625°, k·11.25° + 5.625°).
        // Within the first quadrant the boundaries are at 5.625° + k·11.25°
        // for k = 0..8 (the last, 95.625°, is handled by quadrant logic).
        let boundaries = (0..8)
            .map(|k| ((5.625 + 11.25 * k as f64).to_radians()).tan())
            .collect();
        OrientationLut { boundaries }
    }

    /// Looks up the orientation label for centroid numerators `(u, v)`
    /// (i.e. `m10`, `m01`). `(0, 0)` maps to label 0.
    pub fn label(&self, u: i64, v: i64) -> u8 {
        if u == 0 && v == 0 {
            return 0;
        }
        let au = u.unsigned_abs() as f64;
        let av = v.unsigned_abs() as f64;
        // First-quadrant sector from |v|/|u| against the tan boundaries:
        // sector s means angle ∈ [s·11.25°−5.625°, s·11.25°+5.625°).
        let mut sector = 8u8; // ≥ 84.375° ⇒ the vertical bin
        if au > 0.0 {
            let ratio = av / au;
            sector = self.boundaries.iter().take_while(|&&b| ratio >= b).count() as u8;
        } else {
            // u = 0 ⇒ 90°.
            sector = if av > 0.0 { 8 } else { sector };
        }
        // Map the first-quadrant sector into the full circle by sign.
        let label = match (u >= 0, v >= 0) {
            (true, true) => sector as i16,              // Q1: θ = sector
            (false, true) => 16 - sector as i16,        // Q2: θ = 180° − s
            (false, false) => 16 + sector as i16,       // Q3: θ = 180° + s
            (true, false) => (32 - sector as i16) % 32, // Q4: θ = −s
        };
        (label.rem_euclid(32)) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn flat_patch_has_zero_moments_about_centre() {
        let img = GrayImage::from_fn(64, 64, |_, _| 100);
        let m = patch_moments(&img, 32, 32);
        assert_eq!(m.m10, 0);
        assert_eq!(m.m01, 0);
        assert!(m.m00 > 0);
    }

    #[test]
    fn rightward_gradient_points_right() {
        let img = GrayImage::from_fn(64, 64, |x, _| (x * 4).min(255) as u8);
        let theta = orientation_angle(&img, 32, 32);
        assert!(theta.abs() < 0.05, "angle {theta}");
        assert_eq!(angle_to_label(theta), 0);
    }

    #[test]
    fn downward_gradient_points_down() {
        // Image y grows downward; mass below centre ⇒ v > 0 ⇒ θ ≈ +90°.
        let img = GrayImage::from_fn(64, 64, |_, y| (y * 4).min(255) as u8);
        let theta = orientation_angle(&img, 32, 32);
        assert!((theta - PI / 2.0).abs() < 0.05, "angle {theta}");
        assert_eq!(angle_to_label(theta), 8);
    }

    #[test]
    fn label_discretization_wraps() {
        assert_eq!(angle_to_label(0.0), 0);
        assert_eq!(angle_to_label(2.0 * PI), 0);
        assert_eq!(angle_to_label(-2.0 * PI), 0);
        assert_eq!(angle_to_label(PI), 16);
        assert_eq!(angle_to_label(-PI / 2.0), 24);
        // 11.25° = one step.
        assert_eq!(angle_to_label(11.25f64.to_radians()), 1);
        // Just under half a step rounds down.
        assert_eq!(angle_to_label(5.6f64.to_radians()), 0);
        // Just over half a step rounds up.
        assert_eq!(angle_to_label(5.7f64.to_radians()), 1);
    }

    #[test]
    fn label_round_trip() {
        for label in 0..32u8 {
            assert_eq!(angle_to_label(label_to_angle(label)), label);
        }
    }

    #[test]
    fn lut_matches_atan2_binning_exhaustively() {
        let lut = OrientationLut::new();
        // Sweep a dense grid of (u, v) numerators.
        for u in (-2000i64..=2000).step_by(37) {
            for v in (-2000i64..=2000).step_by(41) {
                if u == 0 && v == 0 {
                    continue;
                }
                let expect = angle_to_label((v as f64).atan2(u as f64));
                let got = lut.label(u, v);
                assert_eq!(got, expect, "u={u} v={v}");
            }
        }
    }

    #[test]
    fn lut_axes_and_diagonals() {
        let lut = OrientationLut::new();
        assert_eq!(lut.label(100, 0), 0); // 0°
        assert_eq!(lut.label(0, 100), 8); // 90°
        assert_eq!(lut.label(-100, 0), 16); // 180°
        assert_eq!(lut.label(0, -100), 24); // 270°
        assert_eq!(lut.label(100, 100), 4); // 45°
        assert_eq!(lut.label(-100, 100), 12); // 135°
        assert_eq!(lut.label(-100, -100), 20); // 225°
        assert_eq!(lut.label(100, -100), 28); // 315°
        assert_eq!(lut.label(0, 0), 0);
    }

    #[test]
    fn rotating_image_rotates_label() {
        // Rotate a directional pattern by 90° and check the label moves
        // by 8 steps.
        let img_right = GrayImage::from_fn(64, 64, |x, _| (x * 4).min(255) as u8);
        let img_down = GrayImage::from_fn(64, 64, |_, y| (y * 4).min(255) as u8);
        let m_right = patch_moments(&img_right, 32, 32);
        let m_down = patch_moments(&img_down, 32, 32);
        let lut = OrientationLut::new();
        let l_right = lut.label(m_right.m10, m_right.m01);
        let l_down = lut.label(m_down.m10, m_down.m01);
        assert_eq!((l_right + 8) % 32, l_down);
    }

    #[test]
    fn circle_extents_match_mask() {
        let r = ORIENTATION_RADIUS;
        for dy in -r..=r {
            let ext = CIRCLE_EXTENT[(dy + r) as usize];
            assert!(ext * ext + dy * dy <= r * r);
            assert!((ext + 1) * (ext + 1) + dy * dy > r * r);
        }
    }

    #[test]
    fn interior_fast_path_matches_clamped_path() {
        // A 64×64 texture: probe interior points (fast path) against a
        // shifted copy where the same patch is border-adjacent (clamped
        // path never clamps for these coordinates, so values must agree).
        let img = GrayImage::from_fn(64, 64, |x, y| {
            ((x as u64 * 2654435761 + y as u64 * 40503) >> 5) as u8
        });
        let clamped_reference = |x: u32, y: u32| {
            let r = ORIENTATION_RADIUS;
            let r2 = r * r;
            let mut m = Moments {
                m10: 0,
                m01: 0,
                m00: 0,
            };
            for dy in -r..=r {
                for dx in -r..=r {
                    if dx * dx + dy * dy > r2 {
                        continue;
                    }
                    let i = img.get_clamped(x as i64 + dx, y as i64 + dy) as i64;
                    m.m10 += i * dx;
                    m.m01 += i * dy;
                    m.m00 += i;
                }
            }
            m
        };
        for y in 0..64 {
            for x in 0..64 {
                assert_eq!(
                    patch_moments(&img, x, y),
                    clamped_reference(x, y),
                    "({x},{y})"
                );
            }
        }
    }

    #[test]
    fn moments_use_circular_mask() {
        // A bright pixel just outside the circle (at distance > 15) must
        // not affect the moments.
        let mut img = GrayImage::from_fn(64, 64, |_, _| 0);
        img.set(32 + 12, 32 + 12, 255); // radius ≈ 17 > 15
        let m = patch_moments(&img, 32, 32);
        assert_eq!(m.m10, 0);
        assert_eq!(m.m01, 0);
        assert_eq!(m.m00, 0);
    }
}
