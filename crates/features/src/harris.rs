//! Harris corner response.
//!
//! The paper's FAST Detection module "computes Harris corner score for
//! each keypoint" (§3.1); the score drives both non-maximum suppression
//! and the top-1024 Heap filtering. As in the original ORB, the response
//! is evaluated on a small block around the keypoint with Sobel
//! derivatives.

use eslam_image::GrayImage;

/// Harris detector constant `k` in `det(M) − k·trace(M)²`.
pub const HARRIS_K: f64 = 0.04;

/// Half-size of the 7×7 scoring block (matches the 7×7 patch the paper's
/// FAST Detection module consumes).
pub const BLOCK_HALF: i64 = 3;

/// Computes the Harris corner response at `(x, y)`.
///
/// Derivatives use the 3×3 Sobel operator; the structure tensor is
/// accumulated over the 7×7 block centred on the pixel with border
/// replication. Normalization matches OpenCV's ORB convention of scaling
/// by `1 / (4 · block_area)²` on the raw Sobel sums — only relative order
/// matters for NMS/heap filtering, but a stable scale keeps scores
/// readable.
pub fn harris_score(img: &GrayImage, x: u32, y: u32) -> f64 {
    // The Sobel taps of the 7×7 block reach ±4 pixels; inside that
    // margin the hot path indexes rows directly instead of clamping
    // every sample. Identical arithmetic in identical order, so the two
    // paths are bit-exact (proven by `interior_fast_path_is_bit_exact`).
    let (cx, cy) = (x as i64, y as i64);
    let reach = BLOCK_HALF + 1;
    let interior = cx >= reach
        && cy >= reach
        && cx + reach < img.width() as i64
        && cy + reach < img.height() as i64;

    let mut sum_xx = 0.0f64;
    let mut sum_yy = 0.0f64;
    let mut sum_xy = 0.0f64;
    if interior {
        let w = img.width() as usize;
        let data = img.as_raw();
        let base = cy as usize * w + cx as usize;
        for dy in -BLOCK_HALF..=BLOCK_HALF {
            for dx in -BLOCK_HALF..=BLOCK_HALF {
                let centre = (base as i64 + dy * w as i64 + dx) as usize;
                let g =
                    |ox: i64, oy: i64| data[(centre as i64 + oy * w as i64 + ox) as usize] as f64;
                let ix =
                    (g(1, -1) + 2.0 * g(1, 0) + g(1, 1)) - (g(-1, -1) + 2.0 * g(-1, 0) + g(-1, 1));
                let iy =
                    (g(-1, 1) + 2.0 * g(0, 1) + g(1, 1)) - (g(-1, -1) + 2.0 * g(0, -1) + g(1, -1));
                sum_xx += ix * ix;
                sum_yy += iy * iy;
                sum_xy += ix * iy;
            }
        }
    } else {
        for dy in -BLOCK_HALF..=BLOCK_HALF {
            for dx in -BLOCK_HALF..=BLOCK_HALF {
                let px = cx + dx;
                let py = cy + dy;
                let ix = sobel_x(img, px, py);
                let iy = sobel_y(img, px, py);
                sum_xx += ix * ix;
                sum_yy += iy * iy;
                sum_xy += ix * iy;
            }
        }
    }
    let norm = 1.0 / ((4 * (2 * BLOCK_HALF + 1).pow(2)) as f64);
    let (a, b, c) = (
        sum_xx * norm * norm,
        sum_xy * norm * norm,
        sum_yy * norm * norm,
    );
    let det = a * c - b * b;
    let trace = a + c;
    det - HARRIS_K * trace * trace
}

/// Band-aware scoring entry of the streaming front-end: appends one
/// [`ScoredPoint`](crate::nms::ScoredPoint) per detection (the
/// detections of one scanned row),
/// preserving order. Identical arithmetic to calling [`harris_score`]
/// per point — the band shape only batches the calls.
pub fn score_band(
    img: &GrayImage,
    detections: &[crate::fast::FastDetection],
    out: &mut Vec<crate::nms::ScoredPoint>,
) {
    for d in detections {
        out.push(crate::nms::ScoredPoint {
            x: d.x,
            y: d.y,
            score: harris_score(img, d.x, d.y),
        });
    }
}

#[inline]
fn sobel_x(img: &GrayImage, x: i64, y: i64) -> f64 {
    let g = |dx: i64, dy: i64| img.get_clamped(x + dx, y + dy) as f64;
    (g(1, -1) + 2.0 * g(1, 0) + g(1, 1)) - (g(-1, -1) + 2.0 * g(-1, 0) + g(-1, 1))
}

#[inline]
fn sobel_y(img: &GrayImage, x: i64, y: i64) -> f64 {
    let g = |dx: i64, dy: i64| img.get_clamped(x + dx, y + dy) as f64;
    (g(-1, 1) + 2.0 * g(0, 1) + g(1, 1)) - (g(-1, -1) + 2.0 * g(0, -1) + g(1, -1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corner_image() -> GrayImage {
        // Bright quadrant: a strong L-corner at (16, 16).
        GrayImage::from_fn(32, 32, |x, y| if x >= 16 && y >= 16 { 220 } else { 30 })
    }

    #[test]
    fn flat_region_scores_zero() {
        let img = GrayImage::from_fn(16, 16, |_, _| 128);
        assert_eq!(harris_score(&img, 8, 8), 0.0);
    }

    #[test]
    fn corner_scores_higher_than_edge() {
        let img = corner_image();
        let corner = harris_score(&img, 16, 16);
        let edge = harris_score(&img, 24, 16); // on the horizontal edge
        let flat = harris_score(&img, 24, 24); // inside the bright region
        assert!(corner > edge, "corner {corner} vs edge {edge}");
        assert!(corner > flat, "corner {corner} vs flat {flat}");
        assert!(corner > 0.0);
    }

    #[test]
    fn edge_scores_negative_or_small() {
        // A pure edge has rank-1 structure tensor: det ≈ 0, so the
        // response ≈ −k·trace² < 0.
        let img = GrayImage::from_fn(32, 32, |x, _| if x < 16 { 0 } else { 255 });
        let edge = harris_score(&img, 16, 16);
        assert!(edge < 0.0, "edge response {edge}");
    }

    #[test]
    fn response_is_contrast_monotone() {
        let weak = GrayImage::from_fn(32, 32, |x, y| if x >= 16 && y >= 16 { 80 } else { 30 });
        let strong = corner_image();
        assert!(harris_score(&strong, 16, 16) > harris_score(&weak, 16, 16));
    }

    #[test]
    fn response_symmetric_under_inversion() {
        // Inverting intensity flips gradients but not the tensor products.
        let img = corner_image();
        let inverted = GrayImage::from_fn(32, 32, |x, y| 255 - img.get(x, y));
        let a = harris_score(&img, 16, 16);
        let b = harris_score(&inverted, 16, 16);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn border_evaluation_does_not_panic() {
        let img = corner_image();
        let _ = harris_score(&img, 0, 0);
        let _ = harris_score(&img, 31, 31);
    }

    /// Clamped-path evaluation of the score (the pre-fast-path formula),
    /// used to prove the interior fast path bit-exact.
    fn harris_score_clamped(img: &GrayImage, x: u32, y: u32) -> f64 {
        let mut sum_xx = 0.0f64;
        let mut sum_yy = 0.0f64;
        let mut sum_xy = 0.0f64;
        let (cx, cy) = (x as i64, y as i64);
        for dy in -BLOCK_HALF..=BLOCK_HALF {
            for dx in -BLOCK_HALF..=BLOCK_HALF {
                let ix = sobel_x(img, cx + dx, cy + dy);
                let iy = sobel_y(img, cx + dx, cy + dy);
                sum_xx += ix * ix;
                sum_yy += iy * iy;
                sum_xy += ix * iy;
            }
        }
        let norm = 1.0 / ((4 * (2 * BLOCK_HALF + 1).pow(2)) as f64);
        let (a, b, c) = (
            sum_xx * norm * norm,
            sum_xy * norm * norm,
            sum_yy * norm * norm,
        );
        a * c - b * b - HARRIS_K * (a + c) * (a + c)
    }

    #[test]
    fn interior_fast_path_is_bit_exact() {
        let img = GrayImage::from_fn(48, 40, |x, y| {
            ((x as u64 * 2654435761 + y as u64 * 40503) >> 6) as u8
        });
        for y in 0..40 {
            for x in 0..48 {
                let fast = harris_score(&img, x, y);
                let reference = harris_score_clamped(&img, x, y);
                assert!(
                    fast == reference,
                    "({x},{y}): fast {fast} vs reference {reference}"
                );
            }
        }
    }
}
