//! Criterion bench: the loop-closure pipeline — BoW candidate retrieval
//! (`loop_closure/bow_query`, tracked by the bench-regression gate)
//! versus the brute-force fallback it replaces, and the Se(3)
//! pose-graph solve (`loop_closure/pose_graph`, also tracked) at a
//! realistic loop-correction problem size.

use criterion::{criterion_group, criterion_main, Criterion};
use eslam_features::bow::{BowParams, BowVector, Vocabulary};
use eslam_features::matcher::{active_kernel, cross_check, match_brute_force_with_kernel};
use eslam_features::Descriptor;
use eslam_geometry::pose_graph::{optimize_pose_graph, PoseGraphEdge, PoseGraphParams};
use eslam_geometry::{Se3, Vec3};
use std::hint::black_box;

/// Deterministic pseudo-random descriptor stream (keyframe appearance).
fn descriptors(count: usize, salt: u64) -> Vec<Descriptor> {
    (0..count)
        .map(|i| {
            let mut state = salt
                .wrapping_add(i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut words = [0u64; 4];
            for w in &mut words {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *w = state;
            }
            Descriptor::from_words(words)
        })
        .collect()
}

/// Candidate retrieval at production shape: a 40-keyframe store of
/// 512-descriptor keyframes, queried by a fresh 512-descriptor frame.
fn bench_candidate_retrieval(c: &mut Criterion) {
    const KEYFRAMES: usize = 40;
    const PER_KEYFRAME: usize = 512;
    let stores: Vec<Vec<Descriptor>> = (0..KEYFRAMES)
        .map(|k| descriptors(PER_KEYFRAME, k as u64 * 977))
        .collect();
    let training: Vec<Descriptor> = stores.iter().flatten().copied().take(4096).collect();
    let vocabulary = Vocabulary::train(&training, &BowParams::default()).expect("vocabulary");
    let vectors: Vec<BowVector> = stores.iter().map(|s| vocabulary.vector_of(s)).collect();
    let query = descriptors(PER_KEYFRAME, 31_337);

    let mut group = c.benchmark_group("loop_closure");
    group.sample_size(20);
    // The tracked entry: quantize the query frame and score it against
    // every stored keyframe's BoW vector (the inverted-index walk is
    // strictly cheaper than this dense scoring upper bound).
    group.bench_function("bow_query", |b| {
        b.iter(|| {
            let v = vocabulary.vector_of(black_box(&query));
            let best = vectors
                .iter()
                .enumerate()
                .map(|(i, kv)| (i, v.similarity(kv)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            black_box(best)
        })
    });
    // The fallback it replaces: cross-checked SIMD matching against
    // every keyframe (informational — shows the retrieval win).
    let kernel = active_kernel();
    group.bench_function("brute_force_retrieval", |b| {
        b.iter(|| {
            let mut best = (0usize, 0usize);
            for (i, store) in stores.iter().enumerate() {
                let fwd = match_brute_force_with_kernel(kernel, &query, store, 64);
                let bwd = match_brute_force_with_kernel(kernel, store, &query, 64);
                let n = cross_check(&fwd, &bwd).len();
                if n > best.1 {
                    best = (i, n);
                }
            }
            black_box(best)
        })
    });
    group.finish();
}

/// One pose-graph correction at loop scale: a 40-node odometry chain
/// with sparse covisibility edges and one loop edge.
fn bench_pose_graph(c: &mut Criterion) {
    const NODES: usize = 40;
    let truth: Vec<Se3> = (0..NODES)
        .map(|i| {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / NODES as f64;
            Se3::new(
                Se3::so3_exp(Vec3::Y * -angle),
                Vec3::new(angle.cos(), 0.0, angle.sin()),
            )
            .inverse()
        })
        .collect();
    // Drifted odometry: constant creep per step.
    let creep = Se3::from_translation(Vec3::new(0.003, -0.001, 0.004));
    let mut drifted = vec![truth[0]];
    for i in 1..NODES {
        let step = truth[i].compose(&truth[i - 1].inverse());
        let prev = drifted[i - 1];
        drifted.push(creep.compose(&step).compose(&prev));
    }
    let mut edges: Vec<PoseGraphEdge> = (1..NODES)
        .map(|i| PoseGraphEdge::from_current(&drifted, i - 1, i, 1.0))
        .collect();
    for i in (0..NODES - 4).step_by(3) {
        edges.push(PoseGraphEdge::from_current(&drifted, i, i + 4, 1.0));
    }
    edges.push(PoseGraphEdge {
        from: NODES - 1,
        to: 0,
        measured: truth[0].compose(&truth[NODES - 1].inverse()),
        weight: 3.0,
    });
    let mut fixed = vec![false; NODES];
    fixed[0] = true;
    let params = PoseGraphParams::default();

    let mut group = c.benchmark_group("loop_closure");
    group.sample_size(20);
    group.bench_function("pose_graph", |b| {
        b.iter(|| {
            let mut poses = drifted.clone();
            let result = optimize_pose_graph(&mut poses, &edges, &fixed, &params);
            black_box((poses[NODES - 1], result.iterations))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_candidate_retrieval, bench_pose_graph);
criterion_main!(benches);
