//! Criterion bench: the telemetry substrate's per-record costs.
//!
//! These are the primitives the pipeline leans on every frame, so
//! their unit costs bound the observability overhead directly:
//!
//! * `span_absent` — the disabled path (`Option::None` sink): one
//!   branch, no clock, no allocation. This is what every instrumented
//!   site costs when `ESLAM_TELEMETRY=off`.
//! * `counter` — one relaxed `fetch_add` (counters mode's only cost).
//! * `span_full` — a full-mode span: two `Instant::now()` reads, a
//!   histogram record, the frame accumulator, and one trace-event push.
//! * `histogram_record` — the lock-free log-bucketed record alone.
//! * `frame_cycle` — a whole frame_start/spans/frame_end lifecycle,
//!   the worst-case per-frame fixed cost of full mode.

use criterion::{criterion_group, criterion_main, Criterion};
use eslam_telemetry::hist::LogHistogram;
use eslam_telemetry::{Counter, Stage, Telemetry, TelemetryConfig, TelemetryMode};
use std::hint::black_box;

fn bench_telemetry_primitives(c: &mut Criterion) {
    let full = Telemetry::new(TelemetryConfig::default().with_mode(TelemetryMode::Full))
        .expect("full mode builds a sink");
    let mut group = c.benchmark_group("telemetry/primitive");

    group.bench_function("span_absent", |b| {
        b.iter(|| {
            let span = Telemetry::span_opt(black_box(None), Stage::Matching);
            black_box(span)
        })
    });

    group.bench_function("counter", |b| {
        b.iter(|| full.count(black_box(Counter::MatchInliers), 1))
    });

    group.bench_function("span_full", |b| {
        b.iter(|| {
            let span = full.span(black_box(Stage::Matching));
            black_box(&span);
        })
    });

    let hist = LogHistogram::new();
    group.bench_function("histogram_record", |b| {
        let mut ns = 1_000u64;
        b.iter(|| {
            ns = ns.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            hist.record(black_box(ns % 50_000_000));
        })
    });

    group.finish();
}

fn bench_frame_cycle(c: &mut Criterion) {
    let full = Telemetry::new(TelemetryConfig::default().with_mode(TelemetryMode::Full))
        .expect("full mode builds a sink");
    let mut index = 0usize;
    c.bench_function("telemetry/frame_cycle", |b| {
        b.iter(|| {
            full.frame_start(index, index as f64 * 0.033);
            for stage in [Stage::Matching, Stage::PoseEstimate, Stage::PoseOptimize] {
                let _span = full.span(stage);
            }
            full.frame_end(black_box(1.5));
            index += 1;
        })
    });
}

criterion_group!(benches, bench_telemetry_primitives, bench_frame_cycle);
criterion_main!(benches);
