//! Criterion bench: the §2.2 steering-strategy ablation — RS-BRIEF
//! descriptor rotation vs the 30-angle LUT vs direct Eq. 2 rotation.
//! RS-BRIEF's steering is a 256-bit rotate; the direct method re-rotates
//! 512 test locations per feature.

use criterion::{criterion_group, criterion_main, Criterion};
use eslam_features::brief::{OriginalBrief, RsBrief};
use eslam_features::Descriptor;
use eslam_image::GrayImage;
use std::hint::black_box;

fn smoothed_image() -> GrayImage {
    let img = GrayImage::from_fn(128, 128, |x, y| ((x * 37 + y * 59) % 251) as u8);
    eslam_image::filter::gaussian_blur_7x7_fixed(&img)
}

fn bench_steering(c: &mut Criterion) {
    let img = smoothed_image();
    let rs = RsBrief::new(42);
    let orig = OriginalBrief::new(42);
    let mut group = c.benchmark_group("descriptor/steering");

    group.bench_function("rs_brief_compute_plus_rotate", |b| {
        b.iter(|| {
            for label in 0..8u8 {
                black_box(rs.compute(&img, 64, 64, label));
            }
        })
    });
    group.bench_function("original_lut", |b| {
        b.iter(|| {
            for k in 0..8 {
                black_box(orig.compute_lut(&img, 64, 64, k as f64 * 0.3));
            }
        })
    });
    group.bench_function("original_direct_rotation", |b| {
        b.iter(|| {
            for k in 0..8 {
                black_box(orig.compute_direct(&img, 64, 64, k as f64 * 0.3));
            }
        })
    });
    group.finish();
}

fn bench_rotator_alone(c: &mut Criterion) {
    // The pure BRIEF Rotator operation: what the hardware does per
    // feature instead of any trigonometry.
    let d = Descriptor::from_words([
        0x0123456789abcdef,
        0xfedcba9876543210,
        0x55aa55aa55aa55aa,
        0x1122334455667788,
    ]);
    c.bench_function("descriptor/rotate_256bit", |b| {
        b.iter(|| {
            for label in 0..32u8 {
                black_box(d.steer(label));
            }
        })
    });
}

fn bench_hamming(c: &mut Criterion) {
    let a = Descriptor::from_words([0xdeadbeef, 0xcafebabe, 0x12345678, 0x9abcdef0]);
    let b_desc = Descriptor::from_words([0xfeedface, 0x0badf00d, 0x87654321, 0x0fedcba9]);
    c.bench_function("descriptor/hamming", |b| {
        b.iter(|| black_box(a.hamming(&b_desc)))
    });
}

/// Micro-bench guard for the word-parallel `hamming`/`count_ones` paths:
/// a 1024-descriptor reduction cannot be constant-folded away (unlike
/// the single-pair bench above), so a regression to per-bit loops shows
/// up as a ~50× blowup here. Expected: ~1-2 ns per pair.
fn bench_hamming_batch(c: &mut Criterion) {
    let set: Vec<Descriptor> = (0..1024u64)
        .map(|i| {
            let s = (i + 1).wrapping_mul(0x9e3779b97f4a7c15);
            Descriptor::from_words([s, s.rotate_left(17), s.rotate_left(31), s.rotate_left(47)])
        })
        .collect();
    let probe = Descriptor::from_words([
        0x0123456789abcdef,
        0x55aa55aa55aa55aa,
        0xff00ff00ff00ff00,
        0x1,
    ]);
    c.bench_function("descriptor/hamming_batch_1024", |b| {
        b.iter(|| {
            let total: u32 = set.iter().map(|d| probe.hamming(black_box(d))).sum();
            black_box(total)
        })
    });
    c.bench_function("descriptor/count_ones_batch_1024", |b| {
        b.iter(|| {
            let total: u32 = set.iter().map(|d| black_box(d).count_ones()).sum();
            black_box(total)
        })
    });
}

criterion_group!(
    benches,
    bench_steering,
    bench_rotator_alone,
    bench_hamming,
    bench_hamming_batch
);
criterion_main!(benches);
