//! Criterion bench: the §2.2 steering-strategy ablation — RS-BRIEF
//! descriptor rotation vs the 30-angle LUT vs direct Eq. 2 rotation.
//! RS-BRIEF's steering is a 256-bit rotate; the direct method re-rotates
//! 512 test locations per feature.

use criterion::{criterion_group, criterion_main, Criterion};
use eslam_features::brief::{OriginalBrief, RsBrief};
use eslam_features::Descriptor;
use eslam_image::GrayImage;
use std::hint::black_box;

fn smoothed_image() -> GrayImage {
    let img = GrayImage::from_fn(128, 128, |x, y| ((x * 37 + y * 59) % 251) as u8);
    eslam_image::filter::gaussian_blur_7x7_fixed(&img)
}

fn bench_steering(c: &mut Criterion) {
    let img = smoothed_image();
    let rs = RsBrief::new(42);
    let orig = OriginalBrief::new(42);
    let mut group = c.benchmark_group("descriptor/steering");

    group.bench_function("rs_brief_compute_plus_rotate", |b| {
        b.iter(|| {
            for label in 0..8u8 {
                black_box(rs.compute(&img, 64, 64, label));
            }
        })
    });
    group.bench_function("original_lut", |b| {
        b.iter(|| {
            for k in 0..8 {
                black_box(orig.compute_lut(&img, 64, 64, k as f64 * 0.3));
            }
        })
    });
    group.bench_function("original_direct_rotation", |b| {
        b.iter(|| {
            for k in 0..8 {
                black_box(orig.compute_direct(&img, 64, 64, k as f64 * 0.3));
            }
        })
    });
    group.finish();
}

fn bench_rotator_alone(c: &mut Criterion) {
    // The pure BRIEF Rotator operation: what the hardware does per
    // feature instead of any trigonometry.
    let d = Descriptor::from_words([0x0123456789abcdef, 0xfedcba9876543210, 0x55aa55aa55aa55aa, 0x1122334455667788]);
    c.bench_function("descriptor/rotate_256bit", |b| {
        b.iter(|| {
            for label in 0..32u8 {
                black_box(d.steer(label));
            }
        })
    });
}

fn bench_hamming(c: &mut Criterion) {
    let a = Descriptor::from_words([0xdeadbeef, 0xcafebabe, 0x12345678, 0x9abcdef0]);
    let b_desc = Descriptor::from_words([0xfeedface, 0x0badf00d, 0x87654321, 0x0fedcba9]);
    c.bench_function("descriptor/hamming", |b| {
        b.iter(|| black_box(a.hamming(&b_desc)))
    });
}

criterion_group!(benches, bench_steering, bench_rotator_alone, bench_hamming);
criterion_main!(benches);
