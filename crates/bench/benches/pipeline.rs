//! Criterion bench: full per-frame SLAM pipeline throughput on synthetic
//! sequences (the end-to-end workload behind Table 3), the Fig. 7
//! schedule evaluation, and the dataset layer — including the
//! prefetch-vs-synchronous frame-streaming comparison and a hard
//! zero-allocation check on the recycled-buffer render path.

use criterion::{criterion_group, criterion_main, Criterion};
use eslam_core::{run_sequence, PrefetchMode, Slam, SlamConfig, TelemetryMode};
use eslam_dataset::sequence::{Frame, SequenceSpec};
use eslam_hw::system::{frame_timing, Schedule, StageTimesMs};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Allocation-counting wrapper around the system allocator, so the
/// bench can *assert* (not just hope) that the steady-state
/// `frame_into` path allocates nothing.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn bench_slam_frame(c: &mut Criterion) {
    // Quarter-scale desk sequence: the steady-state tracking cost.
    let seq = SequenceSpec::paper_sequences(6, 0.25)[2].build();
    let frames: Vec<_> = seq.frames().collect();
    let mut group = c.benchmark_group("pipeline/slam_frame");
    group.sample_size(10);
    group.bench_function("track_quarter_scale", |b| {
        b.iter(|| {
            let mut slam = Slam::builder()
                .config(SlamConfig::scaled_for_tests(4.0))
                .build();
            for f in &frames {
                black_box(slam.process(f.timestamp, &f.gray, &f.depth));
            }
            black_box(slam.trajectory().len())
        })
    });
    group.finish();
}

fn bench_run_sequence_overlap(c: &mut Criterion) {
    // The tentpole measurement: the same end-to-end run with frames
    // pulled synchronously vs streamed through the async prefetcher.
    // On a multicore host the prefetched run hides the ray-cast cost
    // behind tracking (wall.frame_wait_ms collapses); the split is
    // printed so the overlap is visible even in quick mode.
    let seq = SequenceSpec::paper_sequences(6, 0.25)[2].build();
    let mut group = c.benchmark_group("pipeline/run_sequence");
    group.sample_size(10);
    for (name, mode) in [("sync", PrefetchMode::Off), ("prefetch", PrefetchMode::On)] {
        let mut config = SlamConfig::scaled_for_tests(4.0);
        config.prefetch = mode;
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_sequence(&seq, config)).reports.len())
        });
        let result = run_sequence(&seq, config);
        eprintln!(
            "run_sequence/{name}: frame_wait {:.2} ms, track {:.2} ms ({:.0}% waiting)",
            result.wall.frame_wait_ms,
            result.wall.track_ms,
            100.0 * result.wall.wait_fraction(),
        );
    }

    // The observability overhead gate: the same streamed run with
    // telemetry disabled vs recording everything (spans, histograms,
    // flight recorder, trace events). CI holds full/off under +5% via
    // `bench_regress --ratio`.
    for (name, mode) in [
        ("telemetry_off", TelemetryMode::Off),
        ("telemetry_full", TelemetryMode::Full),
    ] {
        let mut config = SlamConfig::scaled_for_tests(4.0);
        config.prefetch = PrefetchMode::On;
        config.telemetry = config.telemetry.with_mode(mode);
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_sequence(&seq, config)).reports.len())
        });
    }
    group.finish();
}

fn bench_schedule_eval(c: &mut Criterion) {
    let stages = StageTimesMs {
        fe: 9.1,
        fm: 4.0,
        pe: 9.2,
        po: 8.7,
        mu: 9.9,
    };
    c.bench_function("pipeline/fig7_schedule_eval", |b| {
        b.iter(|| {
            black_box(frame_timing(&stages, Schedule::EslamPipeline));
            black_box(frame_timing(&stages, Schedule::Sequential));
        })
    });
}

fn bench_rendering(c: &mut Criterion) {
    // Dataset substrate cost: one quarter-scale ray-cast frame, on both
    // the owned-frame path and the recycled-buffer path.
    let seq = SequenceSpec::paper_sequences(2, 0.25)[3].build();
    let mut group = c.benchmark_group("pipeline/render_frame");
    group.sample_size(10);
    group.bench_function("room_160x120", |b| b.iter(|| black_box(seq.frame(0))));
    group.bench_function("room_160x120_into", |b| {
        let mut buf = Frame::buffer();
        b.iter(|| {
            seq.frame_into(0, &mut buf);
            black_box(buf.timestamp)
        })
    });
    group.finish();

    // Hard guarantee behind the `_into` number: after warm-up, the
    // recycled buffer renders with ZERO allocations per frame — the
    // property the prefetcher's double buffer relies on.
    let mut buf = Frame::buffer();
    seq.frame_into(0, &mut buf); // warm the buffer allocations
    let before = allocations();
    for _ in 0..16 {
        seq.frame_into(0, &mut buf);
        seq.frame_into(1, &mut buf);
    }
    let per_frame = allocations() - before;
    assert_eq!(
        per_frame, 0,
        "frame_into must not allocate in steady state (saw {per_frame} allocations over 32 frames)"
    );
    eprintln!("render_frame_into steady-state allocations per frame: 0 (asserted over 32 frames)");
}

criterion_group!(
    benches,
    bench_slam_frame,
    bench_run_sequence_overlap,
    bench_schedule_eval,
    bench_rendering
);
criterion_main!(benches);
