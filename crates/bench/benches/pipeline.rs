//! Criterion bench: full per-frame SLAM pipeline throughput on synthetic
//! sequences (the end-to-end workload behind Table 3), plus the Fig. 7
//! schedule evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use eslam_core::{Slam, SlamConfig};
use eslam_dataset::sequence::SequenceSpec;
use eslam_hw::system::{frame_timing, Schedule, StageTimesMs};
use std::hint::black_box;

fn bench_slam_frame(c: &mut Criterion) {
    // Quarter-scale desk sequence: the steady-state tracking cost.
    let seq = SequenceSpec::paper_sequences(6, 0.25)[2].build();
    let frames: Vec<_> = seq.frames().collect();
    let mut group = c.benchmark_group("pipeline/slam_frame");
    group.sample_size(10);
    group.bench_function("track_quarter_scale", |b| {
        b.iter(|| {
            let mut slam = Slam::new(SlamConfig::scaled_for_tests(4.0));
            for f in &frames {
                black_box(slam.process(f.timestamp, &f.gray, &f.depth));
            }
            black_box(slam.trajectory().len())
        })
    });
    group.finish();
}

fn bench_schedule_eval(c: &mut Criterion) {
    let stages = StageTimesMs {
        fe: 9.1,
        fm: 4.0,
        pe: 9.2,
        po: 8.7,
        mu: 9.9,
    };
    c.bench_function("pipeline/fig7_schedule_eval", |b| {
        b.iter(|| {
            black_box(frame_timing(&stages, Schedule::EslamPipeline));
            black_box(frame_timing(&stages, Schedule::Sequential));
        })
    });
}

fn bench_rendering(c: &mut Criterion) {
    // Dataset substrate cost: one quarter-scale ray-cast frame.
    let seq = SequenceSpec::paper_sequences(1, 0.25)[3].build();
    let mut group = c.benchmark_group("pipeline/render_frame");
    group.sample_size(10);
    group.bench_function("room_160x120", |b| b.iter(|| black_box(seq.frame(0))));
    group.finish();
}

criterion_group!(
    benches,
    bench_slam_frame,
    bench_schedule_eval,
    bench_rendering
);
criterion_main!(benches);
