//! Criterion bench: ORB feature extraction wall-clock on this host,
//! across image sizes and pyramid depths (the workload behind Table 2's
//! FE row — absolute times differ from the paper's testbed, the scaling
//! shape is what matters).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eslam_features::orb::{OrbConfig, OrbExtractor, OrbScratch};
use eslam_features::BandMode;
use eslam_image::pyramid::PyramidConfig;
use eslam_image::GrayImage;
use std::hint::black_box;

fn test_image(w: u32, h: u32) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let base = if ((x / 12) + (y / 12)) % 2 == 0 {
            50
        } else {
            190
        };
        base + ((x * 31 + y * 17) % 23) as u8
    })
}

fn bench_extraction_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_extraction/size");
    for (w, h) in [(160u32, 120u32), (320, 240), (640, 480)] {
        let img = test_image(w, h);
        let extractor = OrbExtractor::new(OrbConfig::default());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{w}x{h}")),
            &img,
            |b, img| b.iter(|| black_box(extractor.extract(img))),
        );
    }
    group.finish();
}

fn bench_extraction_paths(c: &mut Criterion) {
    // Streaming vs multi-pass head-to-head on the VGA workload, with
    // reused scratch so the line-buffer reuse of the streaming path is
    // visible (extract() above allocates fresh scratch per call).
    let mut group = c.benchmark_group("feature_extraction");
    let img = test_image(640, 480);
    let extractor = OrbExtractor::new(OrbConfig::default());
    let mut stream_scratch = OrbScratch::default();
    group.bench_with_input(BenchmarkId::new("stream", "640x480"), &img, |b, img| {
        b.iter(|| black_box(extractor.extract_stream_with(img, &mut stream_scratch)))
    });
    let mut passes_scratch = OrbScratch::default();
    group.bench_with_input(BenchmarkId::new("passes", "640x480"), &img, |b, img| {
        b.iter(|| black_box(extractor.extract_passes_with(img, &mut passes_scratch)))
    });
    group.finish();
}

fn bench_extraction_bands(c: &mut Criterion) {
    // The PR 10 band-parallel axis on the VGA streaming workload. The
    // bands=1 entry is the single-band regression guard (CI gates it at
    // ≤1.05× of feature_extraction/stream above); bands=2/4 show the
    // split cost on one core and the realized overlap when the pool has
    // threads to dispatch onto.
    let mut group = c.benchmark_group("feature_extraction/bands");
    let img = test_image(640, 480);
    for bands in [1usize, 2, 4] {
        let extractor = OrbExtractor::new(OrbConfig {
            bands: BandMode::Fixed(bands),
            ..Default::default()
        });
        let mut scratch = OrbScratch::default();
        group.bench_with_input(BenchmarkId::from_parameter(bands), &img, |b, img| {
            b.iter(|| black_box(extractor.extract_stream_with(img, &mut scratch)))
        });
    }
    group.finish();
}

fn bench_extraction_pyramid_depth(c: &mut Criterion) {
    // The §4.4 pixel argument: 4 levels ≈ 1.48× the pixels of 2 levels.
    let mut group = c.benchmark_group("feature_extraction/pyramid_levels");
    let img = test_image(320, 240);
    for levels in [1usize, 2, 4] {
        let cfg = OrbConfig {
            pyramid: PyramidConfig {
                levels,
                scale_factor: 1.2,
            },
            ..Default::default()
        };
        let extractor = OrbExtractor::new(cfg);
        group.bench_with_input(BenchmarkId::from_parameter(levels), &img, |b, img| {
            b.iter(|| black_box(extractor.extract(img)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_extraction_sizes,
    bench_extraction_paths,
    bench_extraction_bands,
    bench_extraction_pyramid_depth
);
criterion_main!(benches);
