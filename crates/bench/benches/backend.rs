//! Criterion bench: the keyframe backend — one windowed local-BA solve
//! (`backend/local_ba`, the bench-regression-tracked entry), keyframe
//! insertion with covisibility wiring, and the steady-state tracking
//! cost with the backend off / sync / async (the <5% latency budget of
//! the local-mapping pattern: async moves the solve off the tracking
//! thread, sync pays it inline).

use criterion::{criterion_group, criterion_main, Criterion};
use eslam_backend::keyframe::KeyframeObservation;
use eslam_backend::{BackendConfig, BackendMode, KeyframeData, LocalMapper};
use eslam_core::{Slam, SlamConfig};
use eslam_dataset::sequence::SequenceSpec;
use eslam_geometry::{PinholeCamera, Quaternion, Se3, Vec3};
use std::hint::black_box;

/// A representative local-BA window: 5 keyframes on an arc observing a
/// shared landmark grid (~300 points, ~1400 observations) — the shape
/// the backend solves at every keyframe in steady state.
fn window_mapper() -> (LocalMapper, Vec<Vec3>, PinholeCamera) {
    let camera = PinholeCamera::tum_fr1();
    let points: Vec<Vec3> = (0..300)
        .map(|i| {
            Vec3::new(
                ((i % 20) as f64) * 0.16 - 1.5,
                ((i / 20) as f64) * 0.18 - 1.3,
                2.2 + ((i * 13) % 7) as f64 * 0.35,
            )
        })
        .collect();
    let mut mapper = LocalMapper::new();
    for k in 0..5usize {
        let t = k as f64 * 0.05;
        let pose = Se3::from_quaternion_translation(
            &Quaternion::from_axis_angle(Vec3::Y, t * 0.4),
            Vec3::new(t, -0.2 * t, 0.05 * t),
        );
        let observations: Vec<KeyframeObservation> = points
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let cam = pose.transform(*p);
                camera.project(cam).map(|uv| KeyframeObservation {
                    landmark: i as u64,
                    pixel: uv,
                    position: cam,
                })
            })
            .collect();
        mapper.insert_keyframe(KeyframeData {
            frame_index: k * 3,
            timestamp: k as f64 / 10.0,
            pose_w2c: pose,
            observations,
            descriptors: Vec::new(),
        });
    }
    (mapper, points, camera)
}

fn bench_local_ba(c: &mut Criterion) {
    let (mapper, points, camera) = window_mapper();
    let config = BackendConfig::default();
    let job = mapper
        .local_ba_job(&config, &camera, &mut |id| points.get(id as usize).copied())
        .expect("window job");
    eprintln!(
        "local_ba problem: {} poses, {} landmarks, {} observations",
        job.window(),
        job.landmarks(),
        job.observations()
    );
    let mut group = c.benchmark_group("backend");
    group.sample_size(20);
    group.bench_function("local_ba", |b| {
        b.iter(|| black_box(job.clone().run()).result.iterations)
    });
    group.finish();
}

fn bench_keyframe_insert(c: &mut Criterion) {
    // Covisibility wiring cost per keyframe (shared-landmark counting
    // against 5 existing keyframes over 300 landmarks).
    let (reference, points, camera) = window_mapper();
    let pose = Se3::from_translation(Vec3::new(0.3, -0.05, 0.02));
    let observations: Vec<KeyframeObservation> = points
        .iter()
        .enumerate()
        .filter_map(|(i, p)| {
            let cam = pose.transform(*p);
            camera.project(cam).map(|uv| KeyframeObservation {
                landmark: i as u64,
                pixel: uv,
                position: cam,
            })
        })
        .collect();
    let mut group = c.benchmark_group("backend");
    group.sample_size(20);
    group.bench_function("keyframe_insert", |b| {
        b.iter(|| {
            let mut mapper = reference.clone();
            mapper.insert_keyframe(KeyframeData {
                frame_index: 18,
                timestamp: 0.6,
                pose_w2c: pose,
                observations: observations.clone(),
                descriptors: Vec::new(),
            });
            black_box(mapper.covisibility().len())
        })
    });
    group.finish();
}

fn bench_tracking_with_backend(c: &mut Criterion) {
    // Steady-state whole-sequence tracking with the backend off,
    // inline (sync) and asynchronous: the async row is the one that
    // must stay within a few percent of off on a multicore host (on a
    // single-core bench box the solve runs at the next frame's join,
    // so async ≈ sync there — both bound the backend's total cost).
    let seq = SequenceSpec::paper_sequences(6, 0.25)[2].build();
    let frames: Vec<_> = seq.frames().collect();
    let mut group = c.benchmark_group("backend/slam_frame");
    group.sample_size(10);
    for (name, mode) in [
        ("off", BackendMode::Off),
        ("sync", BackendMode::Sync),
        ("async", BackendMode::Async),
    ] {
        let mut config = SlamConfig::scaled_for_tests(4.0);
        config.backend.mode = mode;
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut slam = Slam::builder().config(config).build();
                for f in &frames {
                    black_box(slam.process(f.timestamp, &f.gray, &f.depth));
                }
                slam.finish();
                black_box(slam.trajectory().len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_local_ba,
    bench_keyframe_insert,
    bench_tracking_with_backend
);
criterion_main!(benches);
