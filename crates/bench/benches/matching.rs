//! Criterion bench: brute-force Hamming matching across map sizes (the
//! workload behind Table 2's FM row) plus the modelled accelerator
//! latency for the same points, so the software/hardware scaling shapes
//! can be compared.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eslam_features::matcher::match_brute_force;
use eslam_features::Descriptor;
use eslam_hw::matcher::MatcherModel;
use std::hint::black_box;

fn descriptors(n: usize, salt: u64) -> Vec<Descriptor> {
    (0..n)
        .map(|i| {
            let s = (i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15) ^ salt;
            Descriptor::from_words([
                s,
                s.rotate_left(17),
                s.rotate_left(31) ^ 0xabcdef,
                s.rotate_left(47),
            ])
        })
        .collect()
}

fn bench_matching_scaling(c: &mut Criterion) {
    let query = descriptors(1024, 1);
    let mut group = c.benchmark_group("matching/map_size");
    group.sample_size(10);
    for m in [576usize, 1152, 2304] {
        let map = descriptors(m, 2);
        group.bench_with_input(BenchmarkId::from_parameter(m), &map, |b, map| {
            b.iter(|| black_box(match_brute_force(&query, map, u32::MAX)))
        });
    }
    group.finish();

    // Print the modelled accelerator latencies for the same sweep (not a
    // timed bench — a reference table in the report output).
    let model = MatcherModel::default();
    for m in [576u64, 1152, 2304] {
        let t = model.matching_timing(1024, m);
        eprintln!("matcher model: 1024x{m} -> {:.3} ms @100MHz", t.total_ms());
    }
}

fn bench_query_count(c: &mut Criterion) {
    let map = descriptors(2304, 3);
    let mut group = c.benchmark_group("matching/query_count");
    group.sample_size(10);
    for n in [256usize, 512, 1024] {
        let query = descriptors(n, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &query, |b, query| {
            b.iter(|| black_box(match_brute_force(query, &map, u32::MAX)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching_scaling, bench_query_count);
criterion_main!(benches);
