//! Criterion bench: the geometric back-end — P3P, PnP-RANSAC and the
//! Levenberg-Marquardt pose optimizer (the PE and PO stages the paper
//! keeps on the ARM host).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eslam_geometry::lm::{optimize_pose, LmParams};
use eslam_geometry::pnp::{solve_p3p, solve_pnp_ransac, PnpParams};
use eslam_geometry::{PinholeCamera, Quaternion, Se3, Vec2, Vec3};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn scene(seed: u64, n: usize) -> (Vec<Vec3>, Se3, PinholeCamera, Vec<Vec2>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let camera = PinholeCamera::tum_fr1();
    let truth = Se3::from_quaternion_translation(
        &Quaternion::from_axis_angle(Vec3::new(0.3, 1.0, 0.2), 0.2),
        Vec3::new(0.1, -0.05, 0.15),
    );
    let mut world = Vec::new();
    let mut pixels = Vec::new();
    while world.len() < n {
        let p = Vec3::new(
            (rng.gen::<f64>() - 0.5) * 4.0,
            (rng.gen::<f64>() - 0.5) * 3.0,
            2.0 + rng.gen::<f64>() * 4.0,
        );
        if let Some(uv) = camera.project(truth.transform(p)) {
            if camera.in_bounds(uv, 1.0) {
                world.push(p);
                pixels.push(uv);
            }
        }
    }
    (world, truth, camera, pixels)
}

fn bench_p3p(c: &mut Criterion) {
    let (world, truth, _, _) = scene(1, 3);
    let w = [world[0], world[1], world[2]];
    let f = [
        truth.transform(w[0]).normalized().unwrap(),
        truth.transform(w[1]).normalized().unwrap(),
        truth.transform(w[2]).normalized().unwrap(),
    ];
    c.bench_function("pose/p3p_minimal", |b| {
        b.iter(|| black_box(solve_p3p(&w, &f)))
    });
}

fn bench_pnp_ransac(c: &mut Criterion) {
    let mut group = c.benchmark_group("pose/pnp_ransac");
    group.sample_size(20);
    for n in [50usize, 200, 500] {
        let (world, _, camera, pixels) = scene(2, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(solve_pnp_ransac(
                    &world,
                    &pixels,
                    &camera,
                    &PnpParams::default(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_lm(c: &mut Criterion) {
    let mut group = c.benchmark_group("pose/lm_optimize");
    for n in [50usize, 200, 500] {
        let (world, _, camera, pixels) = scene(3, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(optimize_pose(
                    &Se3::identity(),
                    &world,
                    &pixels,
                    &camera,
                    &LmParams::default(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_p3p, bench_pnp_ransac, bench_lm);
criterion_main!(benches);
