//! Criterion bench: the §3.1 workflow ablation in software — the
//! Original (detect → filter → compute) vs Rescheduled
//! (detect → compute → filter) extraction schedules on the same frame.
//!
//! In software the rescheduled variant does strictly more work (M ≥ N
//! descriptors); on hardware it wins by eliminating idle states. Both
//! shapes are reported: wall-clock here, modelled cycles in
//! `ablation_reschedule`.

use criterion::{criterion_group, criterion_main, Criterion};
use eslam_features::orb::{OrbConfig, OrbExtractor, Workflow};
use eslam_hw::extractor::{ExtractionWorkload, ExtractorModel};
use eslam_image::GrayImage;
use std::hint::black_box;

fn frame() -> GrayImage {
    GrayImage::from_fn(320, 240, |x, y| {
        let base = if ((x / 10) + (y / 10)) % 2 == 0 {
            55
        } else {
            200
        };
        base + ((x * 13 + y * 29) % 19) as u8
    })
}

fn bench_workflows(c: &mut Criterion) {
    let img = frame();
    let mut group = c.benchmark_group("workflow/software");
    for (name, workflow) in [
        ("original", Workflow::Original),
        ("rescheduled", Workflow::Rescheduled),
    ] {
        let extractor = OrbExtractor::new(OrbConfig {
            workflow,
            ..Default::default()
        });
        group.bench_function(name, |b| b.iter(|| black_box(extractor.extract(&img))));
    }
    group.finish();

    // Modelled hardware latencies for the measured workload.
    let features = OrbExtractor::new(OrbConfig::default()).extract(&img);
    let workload = ExtractionWorkload::from_pyramid(
        img.width(),
        img.height(),
        &OrbConfig::default().pyramid,
        features.stats.candidates as u64,
        features.stats.kept as u64,
    );
    let model = ExtractorModel::default();
    for (name, wf) in [
        ("original", Workflow::Original),
        ("rescheduled", Workflow::Rescheduled),
    ] {
        let t = model.extraction_timing(&workload, wf);
        eprintln!("hw model {name}: {:.3} ms @100MHz", t.total_ms());
    }
}

fn bench_timing_model(c: &mut Criterion) {
    // The timing model itself must be cheap (it runs per frame in the
    // accelerator backend).
    let model = ExtractorModel::default();
    let workload = ExtractionWorkload::vga_nominal();
    c.bench_function("workflow/timing_model_eval", |b| {
        b.iter(|| black_box(model.extraction_timing(&workload, Workflow::Rescheduled)))
    });
}

criterion_group!(benches, bench_workflows, bench_timing_model);
criterion_main!(benches);
