//! Criterion bench: per-call cost of the two parallel-section dispatch
//! mechanisms — `std::thread::scope` (spawn + join per call, the old
//! hot-loop behaviour) versus [`WorkerPool::scope_run`] (persistent
//! workers, the new behaviour). The work inside each task is trivial,
//! so the measured time is almost pure dispatch overhead: exactly the
//! recurring cost the pool removes from every steady-state frame
//! (extraction levels + matcher rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eslam_features::pool::WorkerPool;
use std::hint::black_box;

const TASKS: usize = 4;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_dispatch");
    group.sample_size(20);

    group.bench_function(BenchmarkId::from_parameter("scoped_spawn"), |b| {
        b.iter(|| {
            let mut outs = [0u64; TASKS];
            std::thread::scope(|scope| {
                for (i, o) in outs.iter_mut().enumerate() {
                    scope.spawn(move || *o = i as u64 + 1);
                }
            });
            black_box(outs)
        })
    });

    // Pool wider than one so dispatch actually crosses threads even on
    // a single-core host (WorkerPool::new is exact, not clamped).
    let pool = WorkerPool::new(TASKS);
    group.bench_function(BenchmarkId::from_parameter("worker_pool"), |b| {
        b.iter(|| {
            let mut outs = [0u64; TASKS];
            {
                let tasks: Vec<Box<dyn FnOnce() + Send>> = outs
                    .iter_mut()
                    .enumerate()
                    .map(|(i, o)| Box::new(move || *o = i as u64 + 1) as Box<dyn FnOnce() + Send>)
                    .collect();
                pool.scope_run(tasks);
            }
            black_box(outs)
        })
    });

    // The single-thread pool runs batches inline: the lower bound.
    let inline_pool = WorkerPool::new(1);
    group.bench_function(BenchmarkId::from_parameter("pool_inline"), |b| {
        b.iter(|| {
            let mut outs = [0u64; TASKS];
            {
                let tasks: Vec<Box<dyn FnOnce() + Send>> = outs
                    .iter_mut()
                    .enumerate()
                    .map(|(i, o)| Box::new(move || *o = i as u64 + 1) as Box<dyn FnOnce() + Send>)
                    .collect();
                inline_pool.scope_run(tasks);
            }
            black_box(outs)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
