//! Criterion bench: the atlas serving path — loading a persisted map
//! from disk (`atlas/load`), cold-start relocalization against the
//! loaded snapshot (`atlas/relocalize`), and N concurrent sessions
//! sharing one atlas (`atlas/shared_sessions`). All three are tracked
//! by the bench-regression gate.
//!
//! Setup builds one real map — the `loop/circle` sequence through the
//! full pipeline with the sync backend — publishes it into an
//! [`Atlas`], and saves it to a temp file, so every measured operation
//! runs against production-shaped data (trained vocabulary, tf-idf
//! weights, promotion-time keyframe snapshots).

use criterion::{criterion_group, criterion_main, Criterion};
use eslam_core::{Atlas, BackendMode, Session, Slam, SlamConfig};
use eslam_dataset::sequence::SequenceSpec;
use eslam_features::orb::{OrbExtractor, OrbScratch};
use eslam_geometry::Vec2;
use std::hint::black_box;
use std::sync::Arc;

const IMAGE_SCALE: f64 = 0.25;
const LOOP_FRAMES: usize = 48;

fn config() -> SlamConfig {
    SlamConfig::scaled_for_tests(1.0 / IMAGE_SCALE)
}

/// One mapping run over `loop/circle`, published into a fresh atlas.
fn build_atlas() -> (Arc<Atlas>, eslam_dataset::sequence::SyntheticSequence) {
    let seq = SequenceSpec::loop_sequences(LOOP_FRAMES, IMAGE_SCALE)[0].build();
    let atlas = Arc::new(Atlas::empty());
    let mut cfg = config();
    cfg.backend.mode = BackendMode::Sync;
    let mut slam = Slam::builder()
        .config(cfg)
        .atlas(Arc::clone(&atlas))
        .build();
    for frame in seq.frames() {
        slam.process(frame.timestamp, &frame.gray, &frame.depth);
    }
    slam.finish();
    assert!(
        atlas.snapshot().can_relocalize(),
        "bench setup must produce a relocalizable atlas"
    );
    (atlas, seq)
}

fn bench_atlas(c: &mut Criterion) {
    let (atlas, seq) = build_atlas();
    let frame = seq.frames().next().expect("sequence has frames");

    // Persist once; `atlas/load` then measures the full disk path:
    // read, checksum verification, semantic validation, and the
    // relocalizer index rebuild.
    let dir = std::env::temp_dir().join(format!("eslam_atlas_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("circle.atlas");
    atlas.save(&path).expect("save");

    let mut group = c.benchmark_group("atlas");
    group.sample_size(20);
    group.bench_function("load", |b| {
        b.iter(|| black_box(Atlas::load(black_box(&path)).expect("load")))
    });

    // Cold-start relocalization proper (BoW retrieval + cross-checked
    // match + P3P/RANSAC), on precomputed query features — extraction
    // cost is tracked separately by the feature_extraction benches.
    let cfg = config();
    let extractor = OrbExtractor::new(cfg.orb);
    let mut scratch = OrbScratch::with_threads(cfg.worker_threads);
    let features = extractor.extract_with(&frame.gray, &mut scratch);
    let pixels: Vec<Vec2> = features
        .keypoints
        .iter()
        .map(|kp| Vec2::new(kp.x, kp.y))
        .collect();
    let snapshot = atlas.snapshot();
    let reloc_config = eslam_backend::RelocalizationConfig::default();
    group.bench_function("relocalize", |b| {
        b.iter(|| {
            let result = snapshot
                .relocalizer()
                .relocalize(
                    snapshot.vocabulary().expect("vocabulary"),
                    snapshot.keyframes(),
                    &cfg.camera,
                    black_box(&features.descriptors),
                    &pixels,
                    &reloc_config,
                )
                .expect("relocalizes");
            black_box(result.pose_w2c)
        })
    });

    // The serving scenario of the multi-session design: 4 fresh
    // sessions cold-start concurrently against one shared atlas
    // (extractor setup + extraction + relocalization + refine each).
    // Snapshot reads are lock-free, so this should scale with cores
    // rather than serialize on the writer lock.
    const SESSIONS: usize = 4;
    group.bench_function("shared_sessions", |b| {
        b.iter(|| {
            let poses: Vec<_> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..SESSIONS)
                    .map(|_| {
                        let atlas = Arc::clone(&atlas);
                        let gray = &frame.gray;
                        scope.spawn(move || {
                            let mut session = Session::new(atlas, config());
                            session.localize(gray).expect("localizes").pose_w2c
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(poses.len(), SESSIONS);
            black_box(poses)
        })
    });
    group.finish();

    std::fs::remove_file(&path).ok();
    std::fs::remove_dir(&dir).ok();
}

criterion_group!(benches, bench_atlas);
criterion_main!(benches);
