//! Criterion bench: one matcher workload per dispatch rung of the
//! Hamming kernel ladder (scalar → popcnt → avx2 → avx512), pinned via
//! [`match_brute_force_with_kernel`] so the comparison is independent of
//! `ESLAM_MATCH_KERNEL` and of runtime auto-detection. Single-threaded
//! by construction: this measures the kernels, not the pool.
//!
//! Rungs the host CPU cannot run print a `<name>: skipped` line (on
//! stdout, where the bench-regression tool can see it) instead of a
//! timing, so the CI gate knows a missing entry is "unsupported here",
//! not "silently dropped". The bench-smoke job tracks these timings in
//! its regression baseline (see `crates/bench/src/regress.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eslam_features::matcher::{match_brute_force_with_kernel, MatchKernel};
use eslam_features::Descriptor;
use std::hint::black_box;

fn descriptors(n: usize, salt: u64) -> Vec<Descriptor> {
    (0..n)
        .map(|i| {
            let s = (i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15) ^ salt;
            Descriptor::from_words([
                s,
                s.rotate_left(17),
                s.rotate_left(31) ^ 0xabcdef,
                s.rotate_left(47),
            ])
        })
        .collect()
}

/// Runs one `group_name/<rung>` bench per supported dispatch rung,
/// printing a stdout skip marker (which `eslam_bench::regress` parses)
/// for rungs the host CPU cannot execute.
fn bench_kernel_group(c: &mut Criterion, group_name: &str, nq: usize, nt: usize, salt: u64) {
    let query = descriptors(nq, salt);
    let train = descriptors(nt, salt + 1);
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for kernel in MatchKernel::ALL {
        if !kernel.is_supported() {
            println!(
                "{group_name}/{}: skipped (kernel unsupported on this CPU)",
                kernel.name()
            );
            continue;
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name()),
            &kernel,
            |b, &kernel| {
                b.iter(|| {
                    black_box(match_brute_force_with_kernel(
                        kernel,
                        &query,
                        &train,
                        u32::MAX,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    // The paper's design point: 1024 features against a 2304-point map.
    bench_kernel_group(c, "matcher_kernel", 1024, 2304, 1);
}

fn bench_kernels_small_map(c: &mut Criterion) {
    // Small-map regime (bootstrap frames): reduction overhead per pair
    // weighs more here, so track it separately.
    bench_kernel_group(c, "matcher_kernel_small", 512, 576, 3);
}

criterion_group!(benches, bench_kernels, bench_kernels_small_map);
criterion_main!(benches);
