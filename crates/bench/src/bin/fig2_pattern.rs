//! Regenerates **Figure 2**: RS-BRIEF vs original BRIEF pattern
//! visualization, as PPM plots plus a quantitative symmetry check.

use eslam_bench::out_dir;
use eslam_features::pattern::{
    BriefPattern, PATCH_RADIUS, RS_SEED_PAIRS, RS_STEPS, RS_STEP_RADIANS,
};
use eslam_image::draw::{draw_circle, draw_line};
use eslam_image::RgbImage;

fn render(pattern: &BriefPattern, path: &std::path::Path) {
    let size = 512u32;
    let mut img = RgbImage::filled(size, size, [255, 255, 255]);
    let scale = (size as f64 / 2.0 - 10.0) / PATCH_RADIUS;
    let centre = size as i64 / 2;
    let to_px = |v: f64| (v * scale) as i64 + centre;
    draw_circle(
        &mut img,
        centre,
        centre,
        (PATCH_RADIUS * scale) as i64,
        [0, 0, 0],
    );
    for pair in pattern.pairs() {
        draw_line(
            &mut img,
            to_px(pair.s.x),
            to_px(pair.s.y),
            to_px(pair.d.x),
            to_px(pair.d.y),
            [50, 50, 200],
        );
    }
    img.save_ppm(path).expect("write pattern plot");
}

fn main() {
    let dir = out_dir();
    let rs = BriefPattern::rs_brief(42);
    let orig = BriefPattern::original(42);
    render(&rs, &dir.join("fig2_rs_brief.ppm"));
    render(&orig, &dir.join("fig2_brief.ppm"));
    println!(
        "wrote fig2_rs_brief.ppm / fig2_brief.ppm to {}",
        dir.display()
    );

    // Quantitative: RS-BRIEF is exactly 32-fold rotationally symmetric;
    // the original pattern is not.
    let sym_err = |p: &BriefPattern| -> f64 {
        let rotated = p.rotated(RS_STEP_RADIANS);
        let mut worst = 0.0f64;
        for k in 0..p.pairs().len() {
            let expect = p.pairs()[(k + RS_SEED_PAIRS) % p.pairs().len()];
            let got = rotated.pairs()[k];
            worst = worst
                .max((got.s.x - expect.s.x).abs())
                .max((got.s.y - expect.s.y).abs())
                .max((got.d.x - expect.d.x).abs())
                .max((got.d.y - expect.d.y).abs());
        }
        worst
    };
    println!("\n32-fold symmetry residual (max location error after one 11.25 deg step):");
    println!(
        "  RS-BRIEF : {:.2e} px (exact up to float rounding)",
        sym_err(&rs)
    );
    println!("  original : {:.2} px (no symmetry)", sym_err(&orig));
    println!(
        "\npattern stats: {} pairs = {} seed pairs x {} rotations · max radius {:.2} px (paper: 15 px patch)",
        rs.pairs().len(),
        RS_SEED_PAIRS,
        RS_STEPS,
        rs.max_radius()
    );
    assert!(sym_err(&rs) < 1e-9);
    assert!(sym_err(&orig) > 1.0);
}
