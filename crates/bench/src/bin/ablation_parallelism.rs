//! Ablation of the BRIEF Matcher **parallelism P** (DESIGN.md §5.4):
//! matching latency vs FPGA resources across Hamming-unit counts, and
//! the resulting system frame rate under the Fig. 7 schedule.

use eslam_hw::cpu::arm_cortex_a9;
use eslam_hw::matcher::{MatcherModel, NOMINAL_MAP_POINTS, NOMINAL_QUERIES};
use eslam_hw::resource::{eslam_total, XCZ7020, XCZ7045};
use eslam_hw::system::{eslam_stage_times, frame_timing, Schedule, StageTimesMs};

fn main() {
    let arm = arm_cortex_a9();
    let fe = eslam_stage_times().fe;

    println!("BRIEF Matcher parallelism sweep (1024 queries x {NOMINAL_MAP_POINTS} map points)\n");
    println!("   P | FM latency | N-frame period | N-fps | LUT total | fits 7045 | fits 7020");
    println!("-----+------------+----------------+-------+-----------+-----------+----------");
    for p in [1u32, 2, 4, 6, 8, 12, 16] {
        let model = MatcherModel {
            parallel_units: p,
            ..Default::default()
        };
        let fm = model
            .matching_timing(NOMINAL_QUERIES, NOMINAL_MAP_POINTS)
            .total_ms();
        let stages = StageTimesMs {
            fe,
            fm,
            pe: arm.pe_ms,
            po: arm.po_ms,
            mu: arm.mu_ms,
        };
        let ft = frame_timing(&stages, Schedule::EslamPipeline);
        let res = eslam_total(p);
        println!(
            "{:>4} | {:>7.2} ms | {:>11.2} ms | {:>5.2} | {:>9} | {:>9} | {:>8}",
            p,
            fm,
            ft.normal_ms,
            ft.normal_fps,
            res.lut,
            XCZ7045.utilization(res).fits,
            XCZ7020.utilization(res).fits,
        );
    }

    println!("\nObservations:");
    println!("  - P = 6 is the paper's design point: FM 4.0 ms, comfortably hidden under");
    println!("    the 17.9 ms ARM-bound normal-frame period (FE + FM = 13.1 < 17.9 ms).");
    println!("  - Raising P past 6 buys nothing at this workload: the period is ARM-bound.");
    println!("  - Lowering P to 2 still fits the key-frame budget and squeezes into XCZ7020.");

    // Self-check: the normal-frame period is ARM-bound for all P >= 4.
    for p in [4u32, 6, 8, 16] {
        let fm = MatcherModel {
            parallel_units: p,
            ..Default::default()
        }
        .matching_timing(NOMINAL_QUERIES, NOMINAL_MAP_POINTS)
        .total_ms();
        let stages = StageTimesMs {
            fe,
            fm,
            pe: arm.pe_ms,
            po: arm.po_ms,
            mu: arm.mu_ms,
        };
        let ft = frame_timing(&stages, Schedule::EslamPipeline);
        assert!(
            (ft.normal_ms - (arm.pe_ms + arm.po_ms)).abs() < 1e-9,
            "P={p} not ARM-bound"
        );
    }
}
