//! Regenerates **Figure 5**: the Image Cache 3-line ping-pong FSM
//! schedule, as an ASCII table.

use eslam_hw::cache::{CacheSizing, ImageCacheFsm, COLUMNS_PER_LINE};

fn main() {
    println!(
        "Image Cache FSM schedule (Fig. 5) — 640-column image, {COLUMNS_PER_LINE}-column blocks\n"
    );
    println!("state | line A    | line B    | line C    | sending");
    println!("------+-----------+-----------+-----------+---------");
    let mut fsm = ImageCacheFsm::new();
    fsm.initialize();
    println!("init  | blk 0     | blk 1     | -         | (pre-store 16 columns)");
    for step in 0..8 {
        let s = fsm.step();
        let cell = |i: usize| -> String {
            let tag = s.resident[i].map_or("-".to_string(), |b| format!("blk {b}"));
            if s.receiving == i {
                format!("{tag:<6}<-in")
            } else {
                format!("{tag:<9}")
            }
        };
        println!(
            "{:>5} | {} | {} | {} | {:?}",
            step + 1,
            cell(0),
            cell(1),
            cell(2),
            s.sending_blocks()
        );
    }

    let schedule = ImageCacheFsm::schedule(640);
    println!(
        "\nfull VGA row: {} FSM states cover 80 blocks (2 pre-stored)",
        schedule.len()
    );
    assert_eq!(schedule.len(), 78);
    // Invariants of the figure.
    for s in &schedule {
        assert_eq!(s.sending_blocks().len(), 2, "one receiver, two senders");
        let b = s.sending_blocks();
        assert_eq!(b[1], b[0] + 1, "senders hold consecutive blocks");
    }
    println!("invariants hold: 1 receiving line, 2 sending lines with consecutive blocks");

    let sizing = CacheSizing::default();
    println!(
        "\ncache capacity @480 rows: image {} Kb + smoothed {} Kb + score {} Kb = {} Kb total",
        sizing.image_cache_bits() / 1024,
        sizing.smoothed_cache_bits() / 1024,
        sizing.score_cache_bits() / 1024,
        sizing.total_bits() / 1024
    );
    println!(
        "vs a full VGA frame buffer: {} Kb — the rescheduled streaming design avoids it",
        sizing.full_frame_bits(640) / 1024
    );
}
