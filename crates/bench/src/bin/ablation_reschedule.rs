//! Ablation of the §3.1 **workflow rescheduling**: latency and on-chip
//! memory of the original (detect → filter → compute) vs rescheduled
//! (detect → compute → filter) extraction schedules, plus the measured
//! M − N descriptor overhead on real rendered frames.

use eslam_bench::{print_table, Row};
use eslam_dataset::sequence::SequenceSpec;
use eslam_features::orb::{OrbConfig, OrbExtractor, Workflow};
use eslam_hw::extractor::{ExtractionWorkload, ExtractorModel};

fn main() {
    let model = ExtractorModel::default();
    let workload = ExtractionWorkload::vga_nominal();

    let resched = model.extraction_timing(&workload, Workflow::Rescheduled);
    let orig = model.extraction_timing(&workload, Workflow::Original);
    let mem_r = model.memory_footprint(&workload, Workflow::Rescheduled);
    let mem_o = model.memory_footprint(&workload, Workflow::Original);

    let rows = vec![
        Row::text(
            "latency (rescheduled)",
            "9.1 ms",
            format!("{:.2} ms", resched.total_ms()),
        ),
        Row::text(
            "latency (original workflow)",
            "- (slower)",
            format!("{:.2} ms", orig.total_ms()),
        ),
        Row::text(
            "latency saving",
            "\"significant\"",
            format!(
                "{:.0}%",
                (1.0 - resched.total_ms() / orig.total_ms()) * 100.0
            ),
        ),
        Row::text(
            "on-chip buffer (rescheduled)",
            "streaming only",
            format!("{} Kb", mem_r.streaming_bits / 1024),
        ),
        Row::text(
            "on-chip buffer (original)",
            "\"amount of cache\"",
            format!(
                "{} Kb streaming + {} Kb frame buffer",
                mem_o.streaming_bits / 1024,
                mem_o.buffer_bits / 1024
            ),
        ),
    ];
    print_table("Ablation: workflow rescheduling (§3.1)", &rows);

    // Measured M vs N on a rendered frame: the price of streaming.
    let gray = SequenceSpec::paper_sequences(1, 0.5)[2]
        .build()
        .frame(0)
        .gray;
    let f = OrbExtractor::new(OrbConfig::default()).extract(&gray);
    println!(
        "\nmeasured on a rendered {}x{} desk frame: M = {} candidates, N = {} kept",
        gray.width(),
        gray.height(),
        f.stats.candidates,
        f.stats.kept
    );
    println!(
        "rescheduled workflow computes {} extra descriptors ({}% overhead) to eliminate idle states",
        f.stats.candidates.saturating_sub(f.stats.kept),
        (100 * f.stats.candidates.saturating_sub(f.stats.kept))
            .checked_div(f.stats.kept)
            .unwrap_or(0)
    );
    assert!(resched.total < orig.total);
}
