//! Regenerates **Table 2**: detailed runtime breakdown of eSLAM vs the
//! ARM Cortex-A9 and Intel i7 software baselines.

use eslam_bench::{max_abs_deviation, print_table, Row};
use eslam_hw::system::platform_reports;

fn main() {
    let [arm, i7, eslam] = platform_reports();

    let rows = vec![
        Row::numeric("Feature Extraction (eSLAM)", 9.1, eslam.stages.fe, "ms"),
        Row::numeric("Feature Extraction (ARM)", 291.6, arm.stages.fe, "ms"),
        Row::numeric("Feature Extraction (i7)", 32.5, i7.stages.fe, "ms"),
        Row::numeric("Feature Matching (eSLAM)", 4.0, eslam.stages.fm, "ms"),
        Row::numeric("Feature Matching (ARM)", 246.2, arm.stages.fm, "ms"),
        Row::numeric("Feature Matching (i7)", 19.7, i7.stages.fm, "ms"),
        Row::numeric("Pose Estimation (ARM host)", 9.2, eslam.stages.pe, "ms"),
        Row::numeric("Pose Estimation (i7)", 0.9, i7.stages.pe, "ms"),
        Row::numeric("Pose Optimization (ARM host)", 8.7, eslam.stages.po, "ms"),
        Row::numeric("Pose Optimization (i7)", 0.5, i7.stages.po, "ms"),
        Row::numeric("Map Updating (ARM host)", 9.9, eslam.stages.mu, "ms"),
        Row::numeric("Map Updating (i7)", 1.2, i7.stages.mu, "ms"),
    ];
    print_table("Table 2: runtime breakdown", &rows);
    assert!(max_abs_deviation(&rows) < 2.0, "runtime model drifted >2%");

    println!("\nSpeedups (paper: FE 3.6x/32x, FM 4.9x/61.6x vs i7/ARM):");
    println!(
        "  FE: {:.1}x vs i7, {:.1}x vs ARM",
        i7.stages.fe / eslam.stages.fe,
        arm.stages.fe / eslam.stages.fe
    );
    println!(
        "  FM: {:.1}x vs i7, {:.1}x vs ARM",
        i7.stages.fm / eslam.stages.fm,
        arm.stages.fm / eslam.stages.fm
    );
}
