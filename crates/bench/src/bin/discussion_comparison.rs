//! Regenerates the **§4.4 discussion** quantities: the comparison with
//! the prior FPGA ORB extractor \[4\] (39% lower latency despite 48% more
//! pixels) and the framing against Navion \[11\].

use eslam_bench::{print_table, Row};
use eslam_hw::system::{eslam_stage_times, platform_reports, PriorExtractorModel};
use eslam_image::pyramid::PyramidConfig;

fn main() {
    let four = PyramidConfig {
        levels: 4,
        scale_factor: 1.2,
    };
    let two = PyramidConfig {
        levels: 2,
        scale_factor: 1.2,
    };
    let px4 = four.total_pixels(640, 480) as f64;
    let px2 = two.total_pixels(640, 480) as f64;

    let ours = eslam_stage_times().fe;
    let prior = PriorExtractorModel::default();
    let prior_ms = prior.latency_ms(1024);

    let rows = vec![
        Row::numeric("pixels, 4-level pyramid", 771_112.0, px4, "px"),
        Row::numeric("pixel ratio vs [4] (2 levels)", 1.48, px4 / px2, "x"),
        Row::numeric("FE latency, eSLAM", 9.1, ours, "ms"),
        Row::text(
            "FE latency, [4] (model)",
            "~14.9 ms (implied)",
            format!("{prior_ms:.2} ms"),
        ),
        Row::numeric(
            "latency reduction vs [4]",
            39.0,
            (1.0 - ours / prior_ms) * 100.0,
            "%",
        ),
    ];
    print_table("§4.4: comparison with the FPGA ORB extractor [4]", &rows);
    println!("\n[4] model: 2-level pyramid, no ping-pong cache (2.7 cycles/px effective),");
    println!("no RS-BRIEF (serial 90-cycle descriptor phase) — see DESIGN.md.");

    println!("\n== Navion [11] framing ==");
    let [_, _, eslam] = platform_reports();
    println!(
        "  eSLAM: {:.2} fps (N) / {:.2} fps (K)  vs  Navion: 171 fps",
        eslam.frames.normal_fps, eslam.frames.keyframe_fps
    );
    println!("  gap is algorithmic: Navion's optical flow skips descriptors + matching,");
    println!(
        "  but fails under illumination change / large motion (the paper's robustness argument)."
    );
    assert!(eslam.frames.normal_fps < 171.0);
}
