//! End-to-end sequence report: runs the full SLAM pipeline on a
//! synthetic sequence and projects the per-frame workloads through the
//! three platform models (ARM / Intel i7 / eSLAM) under their respective
//! schedules — the sequence-level view of Table 3.

use eslam_core::{run_sequence, SlamConfig, Stage};
use eslam_dataset::sequence::SequenceSpec;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let (frames, scale) = if fast { (10, 0.25) } else { (30, 0.5) };
    let spec = &SequenceSpec::paper_sequences(frames, scale)[2]; // fr1/desk
    println!(
        "sequence report: {} · {} frames at {}x resolution\n",
        spec.name, frames, scale
    );

    let seq = spec.build();
    let result = run_sequence(&seq, SlamConfig::scaled_for_tests(1.0 / scale));

    let s = &result.stats;
    println!(
        "tracking   : {}/{} frames ok ({} keyframes, {} relocalizations)",
        s.tracked, s.frames, s.keyframes, s.relocalizations
    );
    println!(
        "workload   : mean M = {:.0} candidates, mean N = {:.0} kept, map {} (peak {})",
        s.mean_candidates, s.mean_kept, s.final_map_size, s.peak_map_size
    );
    println!(
        "matching   : mean {:.0} raw matches -> {:.0} inliers",
        s.mean_matches, s.mean_inliers
    );
    if let Some(ate) = result.ate_rmse_cm(Stage::Closed) {
        println!("accuracy   : ATE rmse {ate:.2} cm");
    }

    println!("\nplatform projection over this sequence (per-frame workloads through the models):");
    println!(
        "{:<10} {:>11} {:>12} {:>8} {:>12}",
        "platform", "total", "mean/frame", "fps", "energy"
    );
    for p in result.platform_timing() {
        println!(
            "{:<10} {:>9.1}ms {:>10.1}ms {:>8.2} {:>10.1}mJ",
            p.name, p.total_ms, p.mean_frame_ms, p.fps, p.energy_mj
        );
    }
    println!("\nNote: this projects the *actual* per-frame workloads (smaller frames, growing");
    println!("map) through the calibrated models, so absolute numbers differ from the");
    println!("VGA-nominal Table 3. At small frame sizes the ARM-hosted geometric stages");
    println!("(PE+PO+MU) dominate eSLAM's key-frame period, so the i7 can out-run it on");
    println!("runtime — the energy advantage is the robust claim, and the VGA workload");
    println!("restores the paper's full ordering (see table3_framerate_energy).");

    let [arm, i7, eslam] = result.platform_timing();
    // Robust invariants at any workload size: eSLAM beats the ARM host it
    // accelerates, and is the most energy-efficient platform.
    assert!(eslam.total_ms < arm.total_ms);
    assert!(eslam.energy_mj < arm.energy_mj && eslam.energy_mj < i7.energy_mj);
}
