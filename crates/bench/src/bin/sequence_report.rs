//! End-to-end sequence report: runs the full SLAM pipeline on a
//! synthetic sequence and projects the per-frame workloads through the
//! three platform models (ARM / Intel i7 / eSLAM) under their respective
//! schedules — the sequence-level view of Table 3. Runs with full
//! telemetry and appends the measured per-stage latency percentiles
//! (see TELEMETRY.md).

use eslam_core::telemetry::{events, TelemetryMode};
use eslam_core::{run_sequence, Overrides, SlamConfig, Stage};
use eslam_dataset::sequence::SequenceSpec;

fn main() {
    // Harness binary: validate the ESLAM_* environment up front and
    // surface library warnings on stderr as they happen.
    let overrides = Overrides::from_env();
    eprintln!("overrides: {}", overrides.report());
    events::mirror_to_stderr(true);

    let fast = std::env::args().any(|a| a == "--fast");
    let (frames, scale) = if fast { (10, 0.25) } else { (30, 0.5) };
    let spec = &SequenceSpec::paper_sequences(frames, scale)[2]; // fr1/desk
    println!(
        "sequence report: {} · {} frames at {}x resolution\n",
        spec.name, frames, scale
    );

    let seq = spec.build();
    let mut config = SlamConfig::scaled_for_tests(1.0 / scale);
    config.telemetry = config.telemetry.with_mode(TelemetryMode::Full);
    let result = run_sequence(&seq, config);

    let s = &result.stats;
    println!(
        "tracking   : {}/{} frames ok ({} keyframes, {} relocalizations)",
        s.tracked, s.frames, s.keyframes, s.relocalizations
    );
    println!(
        "workload   : mean M = {:.0} candidates, mean N = {:.0} kept, map {} (peak {})",
        s.mean_candidates, s.mean_kept, s.final_map_size, s.peak_map_size
    );
    println!(
        "matching   : mean {:.0} raw matches -> {:.0} inliers",
        s.mean_matches, s.mean_inliers
    );
    if let Some(ate) = result.ate_rmse_cm(Stage::Closed) {
        println!("accuracy   : ATE rmse {ate:.2} cm");
    }

    println!("\nplatform projection over this sequence (per-frame workloads through the models):");
    println!(
        "{:<10} {:>11} {:>12} {:>8} {:>12}",
        "platform", "total", "mean/frame", "fps", "energy"
    );
    for p in result.platform_timing() {
        println!(
            "{:<10} {:>9.1}ms {:>10.1}ms {:>8.2} {:>10.1}mJ",
            p.name, p.total_ms, p.mean_frame_ms, p.fps, p.energy_mj
        );
    }
    println!("\nNote: this projects the *actual* per-frame workloads (smaller frames, growing");
    println!("map) through the calibrated models, so absolute numbers differ from the");
    println!("VGA-nominal Table 3. At small frame sizes the ARM-hosted geometric stages");
    println!("(PE+PO+MU) dominate eSLAM's key-frame period, so the i7 can out-run it on");
    println!("runtime — the energy advantage is the robust claim, and the VGA workload");
    println!("restores the paper's full ordering (see table3_framerate_energy).");

    let [arm, i7, eslam] = result.platform_timing();
    // Robust invariants at any workload size: eSLAM beats the ARM host it
    // accelerates, and is the most energy-efficient platform.
    assert!(eslam.total_ms < arm.total_ms);
    assert!(eslam.energy_mj < arm.energy_mj && eslam.energy_mj < i7.energy_mj);

    // Measured (not modelled) per-stage latency distribution of this
    // host's run — the telemetry layer's summary view.
    if let Some(summary) = &result.telemetry {
        println!("\nmeasured stage latencies (telemetry, this host):");
        println!(
            "{:<20} {:>7} {:>9} {:>9} {:>9} {:>9}",
            "stage", "count", "p50", "p95", "p99", "max"
        );
        for s in &summary.stages {
            println!(
                "{:<20} {:>7} {:>7.3}ms {:>7.3}ms {:>7.3}ms {:>7.3}ms",
                s.stage.name(),
                s.count,
                s.p50_ms,
                s.p95_ms,
                s.p99_ms,
                s.max_ms
            );
        }
        if !summary.nonzero_counters().is_empty() {
            println!("\ncounters:");
            for (counter, value) in summary.nonzero_counters() {
                println!("  {:<28} {}", counter.name(), value);
            }
        }
    }
}
