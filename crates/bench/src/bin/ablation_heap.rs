//! Ablation of the **Heap capacity N** (DESIGN.md §5.5): how many
//! features the extractor keeps, and the downstream effect on matcher
//! latency, tracking inliers and spatial coverage.

use eslam_dataset::sequence::SequenceSpec;
use eslam_features::grid::coverage;
use eslam_features::orb::{OrbConfig, OrbExtractor};
use eslam_hw::matcher::{MatcherModel, NOMINAL_MAP_POINTS};

fn main() {
    let frame = SequenceSpec::paper_sequences(1, 0.5)[2].build().frame(0);
    println!(
        "Heap capacity sweep on a rendered {}x{} desk frame\n",
        frame.gray.width(),
        frame.gray.height()
    );
    println!("    N | kept | FM latency | grid occupancy (32px cells)");
    println!("------+------+------------+----------------------------");
    let matcher = MatcherModel::default();
    let mut previous_kept = 0;
    for n in [128usize, 256, 512, 1024, 2048] {
        let extractor = OrbExtractor::new(OrbConfig {
            max_features: n,
            ..Default::default()
        });
        let features = extractor.extract(&frame.gray);
        let fm = matcher
            .matching_timing(features.stats.kept as u64, NOMINAL_MAP_POINTS)
            .total_ms();
        let cov = coverage(&features.keypoints, 32);
        println!(
            "{:>5} | {:>4} | {:>7.2} ms | {:>5.1}% ({} cells, max {}/cell)",
            n,
            features.stats.kept,
            fm,
            cov.occupancy() * 100.0,
            cov.occupied_cells,
            cov.max_per_cell,
        );
        assert!(
            features.stats.kept >= previous_kept,
            "kept must grow with N"
        );
        previous_kept = features.stats.kept;
        assert!(features.stats.kept <= n);
    }

    println!("\nObservations:");
    println!("  - FM latency scales linearly with N (the matcher computes N x map pairs):");
    println!("    halving N to 512 halves matching time but sacrifices spatial coverage.");
    println!("  - N = 1024 (the paper's choice) saturates coverage on this scene while");
    println!("    keeping FM at 4 ms — consistent with the Fig. 7 budget analysis.");
}
