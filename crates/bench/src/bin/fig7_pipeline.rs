//! Regenerates **Figure 7**: the parallelized pipeline timelines for
//! normal and key frames, as ASCII Gantt charts.

use eslam_hw::system::{eslam_stage_times, frame_timing, pipeline_timeline, Schedule};

fn gantt(keyframe: bool) {
    let stages = eslam_stage_times();
    let timeline = pipeline_timeline(&stages, keyframe);
    let span = timeline.iter().fold(0.0f64, |m, e| m.max(e.end_ms));
    let width = 64.0;
    let scale = width / span;

    println!(
        "\n{} frame (total {:.1} ms):",
        if keyframe { "Key" } else { "Normal" },
        span
    );
    for lane in ["FPGA", "ARM"] {
        let mut line = vec![b' '; width as usize + 2];
        let mut labels = String::new();
        for e in timeline.iter().filter(|e| e.lane == lane) {
            let s = (e.start_ms * scale) as usize;
            let t = ((e.end_ms * scale) as usize).max(s + 1).min(line.len());
            for c in line.iter_mut().take(t).skip(s) {
                *c = b'#';
            }
            // Put the stage label at the start of its bar.
            labels.push_str(&format!("{}@{:.1}ms ", e.stage, e.start_ms));
        }
        println!(
            "  {:>4} |{}| {}",
            lane,
            String::from_utf8_lossy(&line),
            labels
        );
    }
}

fn main() {
    let stages = eslam_stage_times();
    println!(
        "stage times: FE {:.1} ms · FM {:.1} ms · PE {:.1} ms · PO {:.1} ms · MU {:.1} ms",
        stages.fe, stages.fm, stages.pe, stages.po, stages.mu
    );
    gantt(false);
    gantt(true);

    let ft = frame_timing(&stages, Schedule::EslamPipeline);
    println!(
        "\nresulting periods: normal {:.1} ms ({:.2} fps) · key {:.1} ms ({:.2} fps)",
        ft.normal_ms, ft.normal_fps, ft.keyframe_ms, ft.keyframe_fps
    );
    println!("paper: normal 17.9 ms (55.87 fps) · key 31.8 ms (31.45 fps)");
    assert!((ft.normal_ms - 17.9).abs() < 0.2);
    assert!((ft.keyframe_ms - 31.8).abs() < 0.3);
}
