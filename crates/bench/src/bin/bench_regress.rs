//! CI bench-regression gate.
//!
//! Reads the vendored-criterion harness output (a file or stdin),
//! writes the parsed timings as a JSON artifact, and compares them
//! against a checked-in baseline, failing (exit 1) when any tracked
//! bench regressed beyond the tolerance (default +25%, override with
//! `BENCH_REGRESS_TOLERANCE`, e.g. `0.40`) on **both** its median and
//! its minimum sample (one-sided spikes are runner noise — see
//! `eslam_bench::regress`). Baseline entries whose bench printed a
//! `: skipped` marker (kernel rung unsupported on the runner's CPU)
//! are ignored rather than failed.
//!
//! ```text
//! bench_regress --input bench_out.txt --out BENCH_ci.json \
//!     --baseline crates/bench/BENCH_baseline.json
//! bench_regress --input bench_out.txt --write-baseline crates/bench/BENCH_baseline.json
//! ```
//!
//! `--write-baseline` refreshes the baseline file instead of comparing —
//! run it (with the same quick-mode env knobs CI uses) after an
//! intentional performance change or a runner-hardware change.
//!
//! `--ratio <numerator>:<denominator>:<max>` (repeatable) additionally
//! gates the ratio of two benches **within the current run** — e.g.
//! `--ratio pipeline/run_sequence/telemetry_full:pipeline/run_sequence/telemetry_off:1.05`
//! fails when full-mode telemetry costs more than 5% over off. Being a
//! same-run ratio, it is immune to runner-speed drift that the absolute
//! baseline comparison has to tolerate.

use eslam_bench::regress::{
    compare, has_failures, parse_harness_output, parse_json, ratio_check, to_json, RatioVerdict,
    Verdict,
};

fn usage() -> ! {
    eprintln!(
        "usage: bench_regress --input <harness-output|-> [--out <artifact.json>] \
         [--ratio <numerator>:<denominator>:<max>]... \
         (--baseline <baseline.json> | --write-baseline <baseline.json>)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut ratios: Vec<(String, String, f64)> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--input" => input = it.next().cloned(),
            "--out" => out = it.next().cloned(),
            "--baseline" => baseline = it.next().cloned(),
            "--write-baseline" => write_baseline = it.next().cloned(),
            "--ratio" => {
                let Some(spec) = it.next() else { usage() };
                let parts: Vec<&str> = spec.rsplitn(2, ':').collect();
                // rsplitn so bench names may themselves contain ':'… they
                // don't today, but the max is always the last field.
                let (Some(max_str), Some(pair)) = (parts.first(), parts.get(1)) else {
                    usage()
                };
                let Some((num, den)) = pair.split_once(':') else {
                    usage()
                };
                let Ok(max) = max_str.parse::<f64>() else {
                    usage()
                };
                ratios.push((num.to_string(), den.to_string(), max));
            }
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };

    let text = if input == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        std::fs::read_to_string(&input).unwrap_or_else(|e| panic!("read {input}: {e}"))
    };

    let run = parse_harness_output(&text);
    if run.records.is_empty() {
        eprintln!("bench_regress: no benchmark lines found in {input}");
        std::process::exit(1);
    }
    println!(
        "parsed {} benchmark timings ({} skipped) from {input}",
        run.records.len(),
        run.skipped.len()
    );

    let note = format!(
        "[min_ns, median_ns]; quick mode BENCH_SAMPLE_MS={} BENCH_WARMUP_MS={}",
        std::env::var("BENCH_SAMPLE_MS").unwrap_or_else(|_| "default".into()),
        std::env::var("BENCH_WARMUP_MS").unwrap_or_else(|_| "default".into()),
    );
    let json = to_json(&run.records, &note);
    if let Some(out) = &out {
        std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
        println!("wrote artifact {out}");
    }

    // Same-run ratio gates apply even when refreshing the baseline —
    // a baseline refresh must not bless an over-budget ratio.
    let mut ratio_failed = false;
    for (num, den, max) in &ratios {
        match ratio_check(&run, num, den, *max) {
            RatioVerdict::Ok(min_r, med_r) => println!(
                "  ratio ok  {num} / {den} = {min_r:.3} (min), {med_r:.3} (median) <= {max}"
            ),
            RatioVerdict::Exceeded(min_r, med_r) => {
                println!(
                    "  RATIO EXCEEDED {num} / {den} = {min_r:.3} (min), {med_r:.3} (median) > {max}"
                );
                ratio_failed = true;
            }
            RatioVerdict::Missing(names) => {
                println!("  RATIO MISSING benches: {names}");
                ratio_failed = true;
            }
        }
    }

    if let Some(path) = &write_baseline {
        if ratio_failed {
            eprintln!("bench_regress: ratio gate failed; baseline not refreshed");
            std::process::exit(1);
        }
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("refreshed baseline {path}");
        return;
    }

    let Some(baseline_path) = baseline else {
        usage()
    };
    let baseline_text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline_records =
        parse_json(&baseline_text).unwrap_or_else(|| panic!("malformed baseline {baseline_path}"));

    let tolerance: f64 = std::env::var("BENCH_REGRESS_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);

    let verdicts = compare(&baseline_records, &run, tolerance);
    for (name, verdict) in &verdicts {
        match verdict {
            Verdict::Ok(min_r, med_r) => println!(
                "  ok        {name}  (min {:+.1}%, median {:+.1}%)",
                (min_r - 1.0) * 100.0,
                (med_r - 1.0) * 100.0
            ),
            Verdict::Regressed(min_r, med_r) => println!(
                "  REGRESSED {name}  (min {:+.1}%, median {:+.1}%)",
                (min_r - 1.0) * 100.0,
                (med_r - 1.0) * 100.0
            ),
            Verdict::Skipped => println!("  skipped   {name}  (kernel unsupported on this runner)"),
            Verdict::Missing => println!("  MISSING   {name}"),
            Verdict::New => println!("  new       {name}  (no baseline)"),
        }
    }
    if has_failures(&verdicts) || ratio_failed {
        eprintln!(
            "bench_regress: regression beyond +{:.0}% (or missing bench, or ratio gate) \
             vs {baseline_path}",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "all tracked benches within +{:.0}% of baseline ({} ratio gates ok)",
        tolerance * 100.0,
        ratios.len()
    );
}
