//! Regenerates **Table 3**: frame rate and energy-efficiency comparison
//! across ARM, Intel i7 and eSLAM, for normal and key frames.

use eslam_bench::{max_abs_deviation, print_table, Row};
use eslam_hw::system::platform_reports;

fn main() {
    let [arm, i7, eslam] = platform_reports();

    let rows = vec![
        Row::numeric("Runtime N-frame (ARM)", 555.7, arm.frames.normal_ms, "ms"),
        Row::numeric("Runtime N-frame (i7)", 53.6, i7.frames.normal_ms, "ms"),
        Row::numeric(
            "Runtime N-frame (eSLAM)",
            17.9,
            eslam.frames.normal_ms,
            "ms",
        ),
        Row::numeric("Runtime K-frame (ARM)", 565.6, arm.frames.keyframe_ms, "ms"),
        Row::numeric("Runtime K-frame (i7)", 54.8, i7.frames.keyframe_ms, "ms"),
        Row::numeric(
            "Runtime K-frame (eSLAM)",
            31.8,
            eslam.frames.keyframe_ms,
            "ms",
        ),
        Row::numeric("Rate N-frame (ARM)", 1.8, arm.frames.normal_fps, "fps"),
        Row::numeric("Rate N-frame (i7)", 18.66, i7.frames.normal_fps, "fps"),
        Row::numeric(
            "Rate N-frame (eSLAM)",
            55.87,
            eslam.frames.normal_fps,
            "fps",
        ),
        Row::numeric("Rate K-frame (ARM)", 1.77, arm.frames.keyframe_fps, "fps"),
        Row::numeric("Rate K-frame (i7)", 18.25, i7.frames.keyframe_fps, "fps"),
        Row::numeric(
            "Rate K-frame (eSLAM)",
            31.45,
            eslam.frames.keyframe_fps,
            "fps",
        ),
        Row::numeric("Power (ARM)", 1.574, arm.power_w, "W"),
        Row::numeric("Power (i7)", 47.0, i7.power_w, "W"),
        Row::numeric("Power (eSLAM)", 1.936, eslam.power_w, "W"),
        Row::numeric("Energy N-frame (ARM)", 875.0, arm.energy_normal_mj, "mJ"),
        Row::numeric("Energy N-frame (i7)", 2519.0, i7.energy_normal_mj, "mJ"),
        Row::numeric("Energy N-frame (eSLAM)", 35.0, eslam.energy_normal_mj, "mJ"),
        Row::numeric("Energy K-frame (ARM)", 890.0, arm.energy_keyframe_mj, "mJ"),
        Row::numeric("Energy K-frame (i7)", 2575.0, i7.energy_keyframe_mj, "mJ"),
        Row::numeric(
            "Energy K-frame (eSLAM)",
            62.0,
            eslam.energy_keyframe_mj,
            "mJ",
        ),
    ];
    print_table("Table 3: frame rate and energy efficiency", &rows);
    assert!(max_abs_deviation(&rows) < 3.0, "platform model drifted >3%");

    println!("\nHeadline ratios (paper: 1.7-3x vs i7, 17.8-31x vs ARM; 41-71x / 14-25x energy):");
    println!(
        "  frame rate : {:.2}x vs i7 (N), {:.2}x vs i7 (K), {:.1}x vs ARM (N), {:.1}x vs ARM (K)",
        eslam.frames.normal_fps / i7.frames.normal_fps,
        eslam.frames.keyframe_fps / i7.frames.keyframe_fps,
        eslam.frames.normal_fps / arm.frames.normal_fps,
        eslam.frames.keyframe_fps / arm.frames.keyframe_fps,
    );
    println!(
        "  energy     : {:.0}x vs i7 (N), {:.0}x vs i7 (K), {:.0}x vs ARM (N), {:.0}x vs ARM (K)",
        i7.energy_normal_mj / eslam.energy_normal_mj,
        i7.energy_keyframe_mj / eslam.energy_keyframe_mj,
        arm.energy_normal_mj / eslam.energy_normal_mj,
        arm.energy_keyframe_mj / eslam.energy_keyframe_mj,
    );
}
