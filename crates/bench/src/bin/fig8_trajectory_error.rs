//! Regenerates **Figure 8**: average trajectory error of the RS-BRIEF
//! SLAM implementation vs original ORB, across the five (synthetic
//! stand-in) TUM sequences.
//!
//! Full VGA frames are expensive; pass `--fast` to run at quarter scale,
//! or `--frames N` / `--scale S` to customize.

use eslam_bench::{print_table, Row};
use eslam_core::{Slam, SlamConfig};
use eslam_dataset::sequence::SequenceSpec;
use eslam_dataset::{absolute_trajectory_error, Trajectory};
use eslam_features::orb::DescriptorKind;

fn run(spec: &SequenceSpec, descriptor: DescriptorKind, image_scale: f64) -> Option<f64> {
    let seq = spec.build();
    let mut config = SlamConfig::scaled_for_tests(1.0 / image_scale);
    config.orb.descriptor = descriptor;
    let mut slam = Slam::builder().config(config).build();
    for frame in seq.frames() {
        slam.process(frame.timestamp, &frame.gray, &frame.depth);
    }
    // Ground truth rebased to the first frame (the SLAM world origin).
    let first = seq.trajectory.poses()[0].pose;
    let mut truth = Trajectory::new();
    for tp in seq.trajectory.poses() {
        truth.push(tp.timestamp, first.inverse().compose(&tp.pose));
    }
    absolute_trajectory_error(slam.trajectory(), &truth).map(|a| a.stats.rmse * 100.0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let frames = arg_value(&args, "--frames").unwrap_or(if fast { 12.0 } else { 30.0 }) as usize;
    let scale = arg_value(&args, "--scale").unwrap_or(if fast { 0.25 } else { 0.5 });

    println!("Fig. 8: average trajectory error — {frames} frames/seq at {scale}x resolution");
    // Paper per-sequence errors are read off Fig. 8's bar chart (cm):
    let paper_rs = [1.2, 2.1, 5.0, 9.5, 3.7];
    let paper_orig = [0.9, 1.7, 5.5, 8.9, 3.9];

    let specs = SequenceSpec::paper_sequences(frames, scale);
    let mut rows = Vec::new();
    let mut rs_sum = 0.0;
    let mut orig_sum = 0.0;
    let mut n = 0.0;
    for (i, spec) in specs.iter().enumerate() {
        let rs = run(spec, DescriptorKind::RsBrief, scale);
        let orig = run(spec, DescriptorKind::OriginalLut, scale);
        match (rs, orig) {
            (Some(rs), Some(orig)) => {
                rs_sum += rs;
                orig_sum += orig;
                n += 1.0;
                rows.push(Row::text(
                    format!("{} (RS-BRIEF)", spec.name),
                    format!("{:.1} cm*", paper_rs[i]),
                    format!("{rs:.2} cm"),
                ));
                rows.push(Row::text(
                    format!("{} (original)", spec.name),
                    format!("{:.1} cm*", paper_orig[i]),
                    format!("{orig:.2} cm"),
                ));
            }
            _ => rows.push(Row::text(spec.name.clone(), "-", "ATE unavailable")),
        }
    }
    rows.push(Row::text(
        "average (RS-BRIEF)",
        "4.30 cm",
        format!("{:.2} cm", rs_sum / n),
    ));
    rows.push(Row::text(
        "average (original ORB)",
        "4.16 cm",
        format!("{:.2} cm", orig_sum / n),
    ));
    print_table("Fig. 8: average trajectory error (ATE rmse)", &rows);
    println!(
        "* per-sequence paper values read off the bar chart; sequences are synthetic stand-ins,"
    );
    println!("  so only the *comparability* of RS-BRIEF vs original ORB is expected to reproduce.");

    let ratio = (rs_sum / n) / (orig_sum / n).max(1e-9);
    println!(
        "\nRS-BRIEF / original error ratio: {ratio:.2} (paper: 4.30/4.16 = 1.03 — comparable)"
    );
}

fn arg_value(args: &[String], key: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
