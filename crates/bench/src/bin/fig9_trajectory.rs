//! Regenerates **Figure 9**: estimated vs ground-truth trajectory on the
//! fr1/desk stand-in, as a PPM overlay plot and a CSV of both tracks.

use eslam_bench::out_dir;
use eslam_core::{Slam, SlamConfig};
use eslam_dataset::sequence::SequenceSpec;
use eslam_dataset::{absolute_trajectory_error, Trajectory};
use eslam_features::orb::DescriptorKind;
use eslam_image::draw::plot_polyline;
use eslam_image::RgbImage;
use std::io::Write;

fn track(descriptor: DescriptorKind, frames: usize, scale: f64) -> (Trajectory, Trajectory) {
    let spec = &SequenceSpec::paper_sequences(frames, scale)[2]; // fr1/desk
    let seq = spec.build();
    let mut config = SlamConfig::scaled_for_tests(1.0 / scale);
    config.orb.descriptor = descriptor;
    let mut slam = Slam::builder().config(config).build();
    for frame in seq.frames() {
        slam.process(frame.timestamp, &frame.gray, &frame.depth);
    }
    let first = seq.trajectory.poses()[0].pose;
    let mut truth = Trajectory::new();
    for tp in seq.trajectory.poses() {
        truth.push(tp.timestamp, first.inverse().compose(&tp.pose));
    }
    (slam.trajectory().clone(), truth)
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let (frames, scale) = if fast { (15, 0.25) } else { (40, 0.5) };
    println!("Fig. 9: fr1/desk trajectories ({frames} frames at {scale}x resolution)");

    let (est_rs, truth) = track(DescriptorKind::RsBrief, frames, scale);
    let (est_orig, _) = track(DescriptorKind::OriginalLut, frames, scale);

    let dir = out_dir();
    // CSV with all three tracks.
    let mut csv = std::fs::File::create(dir.join("fig9_trajectory.csv")).expect("csv");
    writeln!(csv, "t,gt_x,gt_y,gt_z,rs_x,rs_y,rs_z,orig_x,orig_y,orig_z").unwrap();
    for ((g, r), o) in truth
        .poses()
        .iter()
        .zip(est_rs.poses())
        .zip(est_orig.poses())
    {
        let (gt, rt, ot) = (g.pose.translation, r.pose.translation, o.pose.translation);
        writeln!(
            csv,
            "{:.4},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5}",
            g.timestamp, gt.x, gt.y, gt.z, rt.x, rt.y, rt.z, ot.x, ot.y, ot.z
        )
        .unwrap();
    }

    // Overlay plot in the x/z plane (the paper plots a 2-D slice).
    let mut canvas = RgbImage::filled(900, 700, [255, 255, 255]);
    let xy = |t: &Trajectory| -> Vec<(f64, f64)> {
        t.poses()
            .iter()
            .map(|p| (p.pose.translation.x, p.pose.translation.z))
            .collect()
    };
    plot_polyline(&mut canvas, &xy(&truth), [0, 0, 0], 40); // black: ground truth
    plot_polyline(&mut canvas, &xy(&est_rs), [220, 40, 40], 40); // red: RS-BRIEF
    plot_polyline(&mut canvas, &xy(&est_orig), [40, 90, 220], 40); // blue: original ORB
    canvas
        .save_ppm(dir.join("fig9_trajectory.ppm"))
        .expect("ppm");

    let ate_rs = absolute_trajectory_error(&est_rs, &truth).expect("ate");
    let ate_orig = absolute_trajectory_error(&est_orig, &truth).expect("ate");
    println!(
        "wrote fig9_trajectory.ppm / fig9_trajectory.csv to {}",
        dir.display()
    );
    println!(
        "ATE rmse: RS-BRIEF {:.2} cm · original ORB {:.2} cm (paper shows both hugging ground truth)",
        ate_rs.stats.rmse * 100.0,
        ate_orig.stats.rmse * 100.0
    );
}
