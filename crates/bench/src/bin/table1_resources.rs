//! Regenerates **Table 1**: FPGA resource utilization of eSLAM on the
//! Zynq XCZ7045.

use eslam_bench::{max_abs_deviation, print_table, Row};
use eslam_hw::resource::{eslam_total, DEFAULT_MATCHER_PARALLELISM, XCZ7020, XCZ7030, XCZ7045};

fn main() {
    let total = eslam_total(DEFAULT_MATCHER_PARALLELISM);
    let util = XCZ7045.utilization(total);

    let rows = vec![
        Row::numeric("LUT", 56954.0, total.lut as f64, ""),
        Row::numeric("LUT %", 26.0, util.percent[0], "%"),
        Row::numeric("FF", 67809.0, total.ff as f64, ""),
        Row::numeric("FF %", 15.5, util.percent[1], "%"),
        Row::numeric("DSP", 111.0, total.dsp as f64, ""),
        Row::numeric("DSP %", 12.3, util.percent[2], "%"),
        Row::numeric("BRAM", 78.0, total.bram as f64, ""),
        Row::numeric("BRAM %", 14.3, util.percent[3], "%"),
    ];
    print_table("Table 1: FPGA resource utilization (XCZ7045)", &rows);
    assert!(max_abs_deviation(&rows) < 1.0, "resource model drifted");

    println!("\nPer-unit breakdown:");
    use eslam_hw::units::*;
    for unit in [
        image_resizing(),
        fast_detection(),
        image_smoother(),
        nms_unit(),
        orientation_computing(),
        brief_computing(),
        brief_rotator(),
        heap_unit(),
        extractor_caches(),
        distance_computing(DEFAULT_MATCHER_PARALLELISM),
        comparator(),
        descriptor_cache(),
        axi_and_control(),
    ] {
        println!("  {:<24} {}", unit.name, unit.resources);
    }

    println!("\nSmaller-device check (the §4.1 claim):");
    for device in [XCZ7030, XCZ7020] {
        let u = device.utilization(total);
        println!(
            "  {:<9} fits={} (LUT {:.1}%, FF {:.1}%, DSP {:.1}%, BRAM {:.1}%)",
            device.name, u.fits, u.percent[0], u.percent[1], u.percent[2], u.percent[3]
        );
    }
    let reduced = eslam_total(2);
    println!(
        "  XCZ7020 with matcher parallelism 2: fits={}",
        XCZ7020.utilization(reduced).fits
    );
}
