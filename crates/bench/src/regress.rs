//! Bench-regression bookkeeping for the CI bench-smoke job.
//!
//! The vendored criterion harness prints one line per benchmark:
//!
//! ```text
//! group/bench          time:   [1.234 ms 1.456 ms 1.789 ms]   (10 samples x 4 iters)
//! ```
//!
//! and the kernel-pinned benches print `group/bench: skipped (...)` for
//! dispatch rungs the host CPU cannot run. [`parse_harness_output`]
//! lifts the timing lines into [`BenchRecord`]s and the skip markers
//! into a skip list; [`to_json`]/[`parse_json`] round-trip records
//! through the dependency-free JSON dialect used for the
//! `BENCH_ci.json` artifact and the checked-in baseline; [`compare`]
//! flags regressions. The `bench_regress` binary wires these together.
//!
//! # Gating statistic
//!
//! A benchmark fails only when **both** its median and its minimum
//! sample regressed beyond the tolerance. Wall-clock medians on shared
//! CI runners spike well past 25% with no code change (one noisy
//! sample out of 10–20 moves the median); the minimum is far more
//! stable, and any genuine slowdown raises the minimum and the median
//! together, so requiring both keeps the gate sensitive to real
//! regressions while ignoring one-sided noise.

use std::fmt::Write as _;

/// One benchmark's measured times, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark id (`group/bench`).
    pub name: String,
    /// Minimum sample time in nanoseconds.
    pub min_ns: f64,
    /// Median sample time in nanoseconds.
    pub median_ns: f64,
}

/// Everything parsed from one harness run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HarnessRun {
    /// Measured benchmarks.
    pub records: Vec<BenchRecord>,
    /// Benchmark ids reported as skipped (e.g. kernel rungs the host
    /// CPU cannot execute).
    pub skipped: Vec<String>,
}

/// Outcome of comparing one benchmark against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance of the baseline (ratios: min, median).
    Ok(f64, f64),
    /// Both min and median regressed beyond tolerance.
    Regressed(f64, f64),
    /// The current run declared this baseline entry skipped (kernel
    /// unsupported on this CPU) — informational, not a failure.
    Skipped,
    /// Present in the baseline but absent from the current run with no
    /// skip marker — treated as a failure so silently dropped benches
    /// are caught.
    Missing,
    /// New bench with no baseline entry (informational).
    New,
}

/// Parses a time value + unit as printed by the harness into ns.
fn time_to_ns(value: f64, unit: &str) -> Option<f64> {
    let scale = match unit {
        "ns" => 1.0,
        "µs" | "us" => 1e3,
        "ms" => 1e6,
        "s" => 1e9,
        _ => return None,
    };
    Some(value * scale)
}

/// Extracts records and skip markers from the harness's stdout.
/// Unparseable lines are ignored (the harness also prints narrative
/// output).
pub fn parse_harness_output(text: &str) -> HarnessRun {
    let mut run = HarnessRun::default();
    for line in text.lines() {
        if let Some((name, _)) = line.split_once(": skipped") {
            let name = name.trim();
            if !name.is_empty() && !name.contains(' ') {
                run.skipped.push(name.to_string());
            }
            continue;
        }
        let Some((name_part, rest)) = line.split_once("time:") else {
            continue;
        };
        let name = name_part.trim();
        if name.is_empty() || name.contains(' ') {
            continue;
        }
        // rest: "   [min-val min-unit median-val median-unit max-val max-unit] ..."
        let Some(open) = rest.find('[') else { continue };
        let Some(close) = rest.find(']') else {
            continue;
        };
        if close <= open {
            continue;
        }
        let fields: Vec<&str> = rest[open + 1..close].split_whitespace().collect();
        if fields.len() != 6 {
            continue;
        }
        let (Ok(min), Ok(median)) = (fields[0].parse::<f64>(), fields[2].parse::<f64>()) else {
            continue;
        };
        let (Some(min_ns), Some(median_ns)) =
            (time_to_ns(min, fields[1]), time_to_ns(median, fields[3]))
        else {
            continue;
        };
        run.records.push(BenchRecord {
            name: name.to_string(),
            min_ns,
            median_ns,
        });
    }
    run
}

/// Serialises records into the artifact/baseline JSON dialect
/// (`"name": [min_ns, median_ns]`).
pub fn to_json(records: &[BenchRecord], note: &str) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"note\": \"{}\",", note.replace('"', "'"));
    s.push_str("  \"benches\": {\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    \"{}\": [{:.1}, {:.1}]{}",
            r.name, r.min_ns, r.median_ns, comma
        );
    }
    s.push_str("  }\n}\n");
    s
}

/// Parses the dialect written by [`to_json`]. Returns `None` on any
/// structural surprise — the caller should fail loudly rather than
/// compare against garbage.
pub fn parse_json(text: &str) -> Option<Vec<BenchRecord>> {
    let (_, rest) = text.split_once("\"benches\"")?;
    let (_, body) = rest.split_once('{')?;
    let (body, _) = body.split_once('}')?;
    let mut out = Vec::new();
    // Entries look like `"name": [min, median],` — split on `]` so the
    // comma inside the array survives.
    for entry in body.split(']') {
        let entry = entry.trim().trim_start_matches(',').trim();
        if entry.is_empty() {
            continue;
        }
        let (name, values) = entry.split_once(':')?;
        let name = name.trim().trim_matches('"');
        let values = values.trim().strip_prefix('[')?;
        let (min, median) = values.split_once(',')?;
        let min_ns: f64 = min.trim().parse().ok()?;
        let median_ns: f64 = median.trim().parse().ok()?;
        if name.is_empty() {
            return None;
        }
        out.push(BenchRecord {
            name: name.to_string(),
            min_ns,
            median_ns,
        });
    }
    Some(out)
}

/// Compares the current run against the baseline. `tolerance` is the
/// allowed fractional slowdown (0.25 → fail past +25%); a bench fails
/// only when min **and** median both exceed it (see module docs).
pub fn compare(
    baseline: &[BenchRecord],
    current: &HarnessRun,
    tolerance: f64,
) -> Vec<(String, Verdict)> {
    let mut out = Vec::new();
    for b in baseline {
        let verdict = match current.records.iter().find(|c| c.name == b.name) {
            None if current.skipped.contains(&b.name) => Verdict::Skipped,
            None => Verdict::Missing,
            Some(c) => {
                let min_ratio = c.min_ns / b.min_ns;
                let median_ratio = c.median_ns / b.median_ns;
                if min_ratio > 1.0 + tolerance && median_ratio > 1.0 + tolerance {
                    Verdict::Regressed(min_ratio, median_ratio)
                } else {
                    Verdict::Ok(min_ratio, median_ratio)
                }
            }
        };
        out.push((b.name.clone(), verdict));
    }
    for c in &current.records {
        if !baseline.iter().any(|b| b.name == c.name) {
            out.push((c.name.clone(), Verdict::New));
        }
    }
    out
}

/// Whether any verdict should fail the CI job.
pub fn has_failures(verdicts: &[(String, Verdict)]) -> bool {
    verdicts
        .iter()
        .any(|(_, v)| matches!(v, Verdict::Regressed(..) | Verdict::Missing))
}

/// Outcome of a paired-bench ratio gate (e.g. telemetry full vs off).
#[derive(Debug, Clone, PartialEq)]
pub enum RatioVerdict {
    /// Within bound (ratios: min, median).
    Ok(f64, f64),
    /// Both the min ratio and the median ratio exceed the bound.
    Exceeded(f64, f64),
    /// One or both benches missing from the run — a gate that silently
    /// stops measuring must fail, not pass.
    Missing(String),
}

/// Gates the ratio `numerator / denominator` of two benches in the
/// same run against `max` (e.g. `1.05` → the numerator may cost at
/// most 5% more). Applies the same min-AND-median rule as [`compare`]:
/// the gate trips only when both statistics exceed the bound, so a
/// one-sided spike on a shared runner doesn't fail the job.
pub fn ratio_check(
    current: &HarnessRun,
    numerator: &str,
    denominator: &str,
    max: f64,
) -> RatioVerdict {
    let find = |name: &str| current.records.iter().find(|r| r.name == name);
    let (num, den) = match (find(numerator), find(denominator)) {
        (Some(n), Some(d)) => (n, d),
        (n, d) => {
            let mut missing = Vec::new();
            if n.is_none() {
                missing.push(numerator);
            }
            if d.is_none() {
                missing.push(denominator);
            }
            return RatioVerdict::Missing(missing.join(", "));
        }
    };
    let min_ratio = num.min_ns / den.min_ns;
    let median_ratio = num.median_ns / den.median_ns;
    if min_ratio > max && median_ratio > max {
        RatioVerdict::Exceeded(min_ratio, median_ratio)
    } else {
        RatioVerdict::Ok(min_ratio, median_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
matching/map_size/576                            time:   [810.000 µs 812.500 µs 990.000 µs]   (10 samples x 12 iters)
matcher model: 1024x576 -> 1.23 ms @100MHz
matcher_kernel/avx512                            time:   [1.287 ms 1.302 ms 1.341 ms]   (10 samples x 8 iters)
matcher_kernel/neon: skipped (kernel unsupported on this CPU)
bench_tiny                                       time:   [2.000 ns 3.000 ns 4.000 ns]   (20 samples x 1000 iters)
";

    #[test]
    fn parses_harness_lines_units_and_skips() {
        let run = parse_harness_output(SAMPLE);
        assert_eq!(run.records.len(), 3);
        assert_eq!(run.records[0].name, "matching/map_size/576");
        assert!((run.records[0].min_ns - 810_000.0).abs() < 1.0);
        assert!((run.records[0].median_ns - 812_500.0).abs() < 1.0);
        assert!((run.records[1].median_ns - 1_302_000.0).abs() < 1.0);
        assert!((run.records[2].min_ns - 2.0).abs() < 1e-9);
        assert_eq!(run.skipped, vec!["matcher_kernel/neon".to_string()]);
    }

    #[test]
    fn json_round_trips() {
        let run = parse_harness_output(SAMPLE);
        let json = to_json(&run.records, "unit test");
        let back = parse_json(&json).expect("round trip");
        assert_eq!(back.len(), run.records.len());
        for (a, b) in run.records.iter().zip(&back) {
            assert_eq!(a.name, b.name);
            assert!((a.min_ns - b.min_ns).abs() < 0.5, "{}", a.name);
            assert!((a.median_ns - b.median_ns).abs() < 0.5, "{}", a.name);
        }
    }

    fn rec(name: &str, min: f64, median: f64) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            min_ns: min,
            median_ns: median,
        }
    }

    #[test]
    fn compare_flags_regressions_missing_skipped_and_new() {
        let baseline = vec![
            rec("a", 100.0, 110.0),
            rec("b", 100.0, 110.0),
            rec("gone", 50.0, 55.0),
            rec("unsupported", 10.0, 11.0),
        ];
        let current = HarnessRun {
            records: vec![
                rec("a", 105.0, 115.0), // within tolerance
                rec("b", 140.0, 150.0), // both stats +27%+ → fail
                rec("fresh", 10.0, 11.0),
            ],
            skipped: vec!["unsupported".into()],
        };
        let verdicts = compare(&baseline, &current, 0.25);
        let get = |n: &str| &verdicts.iter().find(|(name, _)| name == n).unwrap().1;
        assert!(matches!(get("a"), Verdict::Ok(..)));
        assert!(matches!(get("b"), Verdict::Regressed(..)));
        assert!(matches!(get("gone"), Verdict::Missing));
        assert!(matches!(get("unsupported"), Verdict::Skipped));
        assert!(matches!(get("fresh"), Verdict::New));
        assert!(has_failures(&verdicts));
    }

    #[test]
    fn one_sided_noise_does_not_fail() {
        // Median spiked (+60%) but min is flat: noise, not regression.
        let baseline = vec![rec("a", 100.0, 105.0)];
        let current = HarnessRun {
            records: vec![rec("a", 101.0, 168.0)],
            skipped: vec![],
        };
        let verdicts = compare(&baseline, &current, 0.25);
        assert!(!has_failures(&verdicts));
    }

    #[test]
    fn within_tolerance_run_passes() {
        let baseline = vec![rec("a", 100.0, 110.0)];
        let current = HarnessRun {
            records: vec![rec("a", 80.0, 90.0), rec("new", 5.0, 6.0)],
            skipped: vec![],
        };
        let verdicts = compare(&baseline, &current, 0.25);
        assert!(!has_failures(&verdicts));
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(parse_json("not json").is_none());
        assert!(parse_json("{\"benches\": {\"x\": [1.0, oops]}}").is_none());
    }

    #[test]
    fn ratio_check_gates_paired_benches() {
        let run = HarnessRun {
            records: vec![
                rec("p/off", 100.0, 110.0),
                rec("p/full", 103.0, 113.0),  // ~3% — within 1.05
                rec("p/slow", 120.0, 130.0),  // ~20% on both — exceeds
                rec("p/noisy", 103.0, 160.0), // median spiked, min flat
            ],
            skipped: vec![],
        };
        assert!(matches!(
            ratio_check(&run, "p/full", "p/off", 1.05),
            RatioVerdict::Ok(..)
        ));
        assert!(matches!(
            ratio_check(&run, "p/slow", "p/off", 1.05),
            RatioVerdict::Exceeded(..)
        ));
        // One-sided noise passes, exactly like `compare`.
        assert!(matches!(
            ratio_check(&run, "p/noisy", "p/off", 1.05),
            RatioVerdict::Ok(..)
        ));
        // A vanished bench fails the gate instead of skipping it.
        let RatioVerdict::Missing(names) = ratio_check(&run, "p/gone", "p/off", 1.05) else {
            panic!("missing bench must be reported");
        };
        assert_eq!(names, "p/gone");
    }
}
