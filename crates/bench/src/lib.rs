//! Shared helpers for the eSLAM benchmark harness: table formatting and
//! paper-vs-measured comparison rows used by every `table*`/`fig*`
//! binary.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod regress;

use std::fmt::Display;
use std::path::PathBuf;

/// Output directory for generated artifacts (plots, TUM files, CSVs).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/eslam-out");
    std::fs::create_dir_all(&dir).expect("create output dir");
    dir
}

/// A paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Quantity name.
    pub label: String,
    /// Value reported by the paper.
    pub paper: String,
    /// Value this reproduction measures/models.
    pub measured: String,
    /// Relative deviation where meaningful.
    pub deviation: Option<f64>,
}

impl Row {
    /// Builds a numeric comparison row with automatic deviation.
    pub fn numeric(label: impl Display, paper: f64, measured: f64, unit: &str) -> Row {
        let deviation = if paper.abs() > 1e-12 {
            Some((measured - paper) / paper * 100.0)
        } else {
            None
        };
        Row {
            label: label.to_string(),
            paper: format!("{paper:.2} {unit}"),
            measured: format!("{measured:.2} {unit}"),
            deviation,
        }
    }

    /// Builds a textual row without deviation.
    pub fn text(label: impl Display, paper: impl Display, measured: impl Display) -> Row {
        Row {
            label: label.to_string(),
            paper: paper.to_string(),
            measured: measured.to_string(),
            deviation: None,
        }
    }
}

/// Prints a titled paper-vs-measured table.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:<34} {:>16} {:>16} {:>9}",
        "quantity", "paper", "measured", "dev"
    );
    println!("{}", "-".repeat(78));
    for row in rows {
        let dev = row
            .deviation
            .map(|d| format!("{d:+.1}%"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<34} {:>16} {:>16} {:>9}",
            row.label, row.paper, row.measured, dev
        );
    }
}

/// Largest absolute deviation across numeric rows (for self-checks).
pub fn max_abs_deviation(rows: &[Row]) -> f64 {
    rows.iter()
        .filter_map(|r| r.deviation)
        .fold(0.0, |m, d| m.max(d.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_row_computes_deviation() {
        let r = Row::numeric("x", 10.0, 11.0, "ms");
        assert!((r.deviation.unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_paper_value_has_no_deviation() {
        let r = Row::numeric("x", 0.0, 1.0, "ms");
        assert!(r.deviation.is_none());
    }

    #[test]
    fn max_deviation_scans_rows() {
        let rows = vec![
            Row::numeric("a", 10.0, 10.5, ""),
            Row::numeric("b", 10.0, 8.0, ""),
            Row::text("c", "x", "y"),
        ];
        assert!((max_abs_deviation(&rows) - 20.0).abs() < 1e-9);
    }
}
