//! Cycle-approximate simulator of the eSLAM FPGA accelerator.
//!
//! The paper's artifact is a Zynq XCZ7045 bitstream; this crate is its
//! transaction-level Rust model (see the substitution table in
//! DESIGN.md). Every block of Fig. 3/4/6 exists as a module with an
//! explicit timing contract, a resource estimate, and a functional model
//! that is **bit-exact** against the `eslam-features` software reference:
//!
//! * [`clock`] — the 100 MHz fabric / 767 MHz ARM clock domains;
//! * [`axi`] — burst-level AXI/SDRAM transfer timing;
//! * [`cache`] — the 3-line ping-pong Image Cache FSM of Fig. 5;
//! * [`units`] — per-unit latency/II/resource contracts (FAST, smoother,
//!   NMS, orientation, BRIEF, rotator, heap, matcher blocks);
//! * [`extractor`] — the ORB Extractor latency model, including the
//!   workflow-rescheduling ablation of §3.1;
//! * [`matcher`] — the BRIEF Matcher latency model (§3.2);
//! * [`resource`] — Table 1 (FPGA utilization);
//! * [`power`] — the Table 3 power/energy model;
//! * [`cpu`] — calibrated ARM Cortex-A9 / Intel i7 baselines (Table 2);
//! * [`system`] — the Fig. 7 heterogeneous pipeline and the full
//!   Table 2 / Table 3 reproduction.
//!
//! # Examples
//!
//! Regenerate the headline Table 3 numbers:
//!
//! ```
//! use eslam_hw::system::platform_reports;
//!
//! let [arm, i7, eslam] = platform_reports();
//! assert!((eslam.frames.normal_fps - 55.87).abs() < 0.5);
//! assert!(eslam.energy_normal_mj < arm.energy_normal_mj / 20.0);
//! assert!(i7.power_w > 40.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod axi;
pub mod cache;
pub mod clock;
pub mod cpu;
pub mod extractor;
pub mod matcher;
pub mod power;
pub mod resource;
pub mod stream;
pub mod system;
pub mod units;

pub use clock::{Cycles, ARM_CLOCK_HZ, FPGA_CLOCK_HZ};
pub use extractor::{simulate_extraction, ExtractorModel};
pub use matcher::{simulate_matching, MatcherModel};
pub use resource::Resources;
pub use system::{platform_reports, PlatformReport, StageTimesMs};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn axi_cycles_monotone_in_bytes(a in 0u64..100_000, b in 0u64..100_000) {
            let cfg = axi::AxiConfig::default();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(cfg.transfer_cycles(lo) <= cfg.transfer_cycles(hi));
        }

        #[test]
        fn extraction_latency_monotone_in_candidates(c1 in 0u64..10_000, c2 in 0u64..10_000) {
            let model = extractor::ExtractorModel::default();
            let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
            let mut wl = extractor::ExtractionWorkload::vga_nominal();
            wl.candidates = lo;
            let t_lo = model.extraction_timing(&wl, eslam_features::orb::Workflow::Rescheduled);
            wl.candidates = hi;
            let t_hi = model.extraction_timing(&wl, eslam_features::orb::Workflow::Rescheduled);
            prop_assert!(t_lo.total <= t_hi.total);
        }

        #[test]
        fn matcher_latency_scales_with_map(n in 1u64..2048, m1 in 1u64..4096, m2 in 1u64..4096) {
            let model = matcher::MatcherModel::default();
            let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
            prop_assert!(model.matching_timing(n, lo).total <= model.matching_timing(n, hi).total);
        }

        #[test]
        fn fsm_schedule_always_sends_consecutive_blocks(width in 24u32..2000) {
            for state in cache::ImageCacheFsm::schedule(width) {
                let blocks = state.sending_blocks();
                prop_assert_eq!(blocks.len(), 2);
                prop_assert_eq!(blocks[1], blocks[0] + 1);
            }
        }

        #[test]
        fn pipeline_never_slower_than_sequential(
            fe in 0.1..50.0f64, fm in 0.1..50.0f64, pe in 0.1..50.0f64,
            po in 0.1..50.0f64, mu in 0.1..50.0f64,
        ) {
            let stages = system::StageTimesMs { fe, fm, pe, po, mu };
            let seq = system::frame_timing(&stages, system::Schedule::Sequential);
            let pipe = system::frame_timing(&stages, system::Schedule::EslamPipeline);
            prop_assert!(pipe.normal_ms <= seq.normal_ms + 1e-9);
            prop_assert!(pipe.keyframe_ms <= seq.keyframe_ms + 1e-9);
        }
    }
}
