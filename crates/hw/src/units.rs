//! Datapath unit models of the ORB Extractor (Fig. 4) and BRIEF Matcher
//! (Fig. 6).
//!
//! Each unit carries:
//! * a **functional model** delegating to the bit-exact reference
//!   implementations in `eslam-features` (so the simulator's outputs are
//!   provably identical to software);
//! * a **timing contract** — pipeline depth (latency) and initiation
//!   interval (II);
//! * a **resource estimate** contributing to the Table 1 totals.

use crate::resource::Resources;
use eslam_features::descriptor::Descriptor;
use eslam_features::orientation::OrientationLut;

/// Timing contract of a pipelined hardware unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitTiming {
    /// Pipeline depth: cycles from input to the corresponding output.
    pub latency: u32,
    /// Initiation interval: cycles between successive inputs.
    pub initiation_interval: u32,
}

/// A named datapath unit with timing and resource estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unit {
    /// Unit name as in Fig. 4 / Fig. 6.
    pub name: &'static str,
    /// Timing contract.
    pub timing: UnitTiming,
    /// Resource estimate.
    pub resources: Resources,
}

/// The FAST Detection unit: 7×7 window in, corner flag + Harris score
/// out, fully pipelined at 1 pixel/cycle.
pub fn fast_detection() -> Unit {
    Unit {
        name: "FAST Detection",
        timing: UnitTiming {
            latency: 6,
            initiation_interval: 1,
        },
        resources: Resources {
            lut: 6800,
            ff: 7400,
            dsp: 48,
            bram: 0,
        },
    }
}

/// The Image Smoother: 7×7 fixed-point Gaussian, 1 pixel/cycle.
pub fn image_smoother() -> Unit {
    Unit {
        name: "Image Smoother",
        timing: UnitTiming {
            latency: 8,
            initiation_interval: 1,
        },
        resources: Resources {
            lut: 5200,
            ff: 6900,
            dsp: 14,
            bram: 0,
        },
    }
}

/// The NMS unit: 3×3 score comparison, 1 pixel/cycle.
pub fn nms_unit() -> Unit {
    Unit {
        name: "NMS",
        timing: UnitTiming {
            latency: 3,
            initiation_interval: 1,
        },
        resources: Resources {
            lut: 1900,
            ff: 2600,
            dsp: 0,
            bram: 0,
        },
    }
}

/// The Orientation Computing unit: circular-patch moments + v/u LUT.
/// Accepts one keypoint every 4 cycles (the column-parallel moment
/// accumulators reduce a 31-wide patch in 4 steps).
pub fn orientation_computing() -> Unit {
    Unit {
        name: "Orientation Computing",
        timing: UnitTiming {
            latency: 12,
            initiation_interval: 4,
        },
        resources: Resources {
            lut: 7400,
            ff: 9200,
            dsp: 22,
            bram: 2,
        },
    }
}

/// The BRIEF Computing unit: 256 comparators over the smoothened patch.
pub fn brief_computing() -> Unit {
    Unit {
        name: "BRIEF Computing",
        timing: UnitTiming {
            latency: 10,
            initiation_interval: 4,
        },
        resources: Resources {
            lut: 9800,
            ff: 11300,
            dsp: 0,
            bram: 4,
        },
    }
}

/// The BRIEF Rotator: a 256-bit barrel rotator in steps of 8 bits.
pub fn brief_rotator() -> Unit {
    Unit {
        name: "BRIEF Rotator",
        timing: UnitTiming {
            latency: 2,
            initiation_interval: 1,
        },
        resources: Resources {
            lut: 1300,
            ff: 1600,
            dsp: 0,
            bram: 0,
        },
    }
}

/// The Heap: 1024-entry max-heap insert engine.
pub fn heap_unit() -> Unit {
    Unit {
        name: "Heap",
        timing: UnitTiming {
            latency: 11,
            initiation_interval: 2,
        },
        resources: Resources {
            lut: 4200,
            ff: 5200,
            dsp: 0,
            bram: 8,
        },
    }
}

/// The Image Resizing module (nearest-neighbour downsampler).
pub fn image_resizing() -> Unit {
    Unit {
        name: "Image Resizing",
        timing: UnitTiming {
            latency: 4,
            initiation_interval: 1,
        },
        resources: Resources {
            lut: 2100,
            ff: 2800,
            dsp: 8,
            bram: 2,
        },
    }
}

/// The extractor-side caches (Image, Score, Smoothened Image).
pub fn extractor_caches() -> Unit {
    Unit {
        name: "Extractor Caches",
        timing: UnitTiming {
            latency: 1,
            initiation_interval: 1,
        },
        resources: Resources {
            lut: 3900,
            ff: 4700,
            dsp: 0,
            bram: 20,
        },
    }
}

/// The Distance Computing unit of the BRIEF Matcher: P parallel 256-bit
/// Hamming units (XOR + popcount tree), each II = 1.
pub fn distance_computing(parallel_units: u32) -> Unit {
    Unit {
        name: "Distance Computing",
        timing: UnitTiming {
            latency: 5,
            initiation_interval: 1,
        },
        resources: Resources {
            lut: 950 * parallel_units,
            ff: 1100 * parallel_units,
            dsp: 0,
            bram: 0,
        },
    }
}

/// The Comparator + Result Cache of the BRIEF Matcher.
pub fn comparator() -> Unit {
    Unit {
        name: "Comparator",
        timing: UnitTiming {
            latency: 3,
            initiation_interval: 1,
        },
        resources: Resources {
            lut: 1000,
            ff: 1400,
            dsp: 0,
            bram: 6,
        },
    }
}

/// The matcher Descriptor Cache.
pub fn descriptor_cache() -> Unit {
    Unit {
        name: "Descriptor Cache",
        timing: UnitTiming {
            latency: 1,
            initiation_interval: 1,
        },
        resources: Resources {
            lut: 0,
            ff: 0,
            dsp: 0,
            bram: 16,
        },
    }
}

/// AXI interface + control logic shared by both accelerators.
pub fn axi_and_control() -> Unit {
    Unit {
        name: "AXI + Control",
        timing: UnitTiming {
            latency: 1,
            initiation_interval: 1,
        },
        resources: Resources {
            lut: 7654,
            ff: 8109,
            dsp: 19,
            bram: 20,
        },
    }
}

/// Functional model of the BRIEF Rotator (§3.1): "moves the 8 × n bits
/// from the beginning of the descriptor to the end", where n is the
/// orientation label. Bit-exact with [`Descriptor::steer`].
pub fn rotator_behaviour(unsteered: Descriptor, orientation_label: u8) -> Descriptor {
    unsteered.rotate_bits(8 * orientation_label as usize)
}

/// Functional model of the Orientation Computing LUT stage: label from
/// the centroid numerators (u, v) — delegates to the shared
/// [`OrientationLut`] so hardware and software binning are identical.
pub fn orientation_behaviour(lut: &OrientationLut, u: i64, v: i64) -> u8 {
    lut.label(u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eslam_features::orientation::angle_to_label;

    #[test]
    fn pixel_pipeline_units_have_ii_one() {
        // The pixel-rate front of the datapath must sustain 1 px/cycle.
        for unit in [
            fast_detection(),
            image_smoother(),
            nms_unit(),
            image_resizing(),
        ] {
            assert_eq!(unit.timing.initiation_interval, 1, "{}", unit.name);
        }
    }

    #[test]
    fn keypoint_units_tolerate_higher_ii() {
        // Keypoints are sparse (≪ 1 per 4 pixels), so II = 4 never stalls
        // the pixel pipeline in practice.
        assert_eq!(orientation_computing().timing.initiation_interval, 4);
        assert_eq!(brief_computing().timing.initiation_interval, 4);
    }

    #[test]
    fn rotator_behaviour_matches_descriptor_steer() {
        let d = Descriptor::from_words([
            0xdeadbeef12345678,
            0x0f0f0f0f0f0f0f0f,
            0x1122334455667788,
            0xaabbccddeeff0011,
        ]);
        for label in 0..32u8 {
            assert_eq!(rotator_behaviour(d, label), d.steer(label));
        }
    }

    #[test]
    fn rotator_label_zero_passthrough() {
        let d = Descriptor::from_words([1, 2, 3, 4]);
        assert_eq!(rotator_behaviour(d, 0), d);
    }

    #[test]
    fn orientation_behaviour_matches_software_binning() {
        let lut = OrientationLut::new();
        for (u, v) in [(100i64, 0i64), (0, -50), (-73, 21), (13, 13), (-5, -99)] {
            let expect = angle_to_label((v as f64).atan2(u as f64));
            assert_eq!(orientation_behaviour(&lut, u, v), expect, "u={u} v={v}");
        }
    }

    #[test]
    fn distance_units_scale_with_parallelism() {
        let one = distance_computing(1);
        let eight = distance_computing(8);
        assert_eq!(eight.resources.lut, one.resources.lut * 8);
        assert_eq!(eight.timing.initiation_interval, 1);
    }

    #[test]
    fn all_units_have_nonzero_latency() {
        for unit in [
            fast_detection(),
            image_smoother(),
            nms_unit(),
            orientation_computing(),
            brief_computing(),
            brief_rotator(),
            heap_unit(),
            image_resizing(),
            extractor_caches(),
            distance_computing(8),
            comparator(),
            descriptor_cache(),
            axi_and_control(),
        ] {
            assert!(unit.timing.latency >= 1, "{}", unit.name);
            assert!(unit.timing.initiation_interval >= 1, "{}", unit.name);
        }
    }
}
