//! CPU baseline cost models (ARM Cortex-A9 and Intel i7).
//!
//! The paper's Table 2 reports per-stage runtimes measured on its
//! testbed. We reproduce the *model* behind those numbers: per-pixel and
//! per-descriptor-pair cycle costs calibrated once against Table 2 at the
//! nominal VGA workload (771 112 pyramid pixels, 1024 × 2304 descriptor
//! pairs — see DESIGN.md), plus fixed per-frame costs for the geometric
//! stages. The calibration derivation:
//!
//! | quantity | ARM | i7 |
//! |---|---|---|
//! | FE cycles/pixel | 291.6 ms × 767 MHz / 771 112 ≈ 290 | 32.5 ms × 2.4 GHz / 771 112 ≈ 101 |
//! | FM cycles/pair | 246.2 ms × 767 MHz / 2 359 296 ≈ 80 | 19.7 ms × 2.4 GHz / 2 359 296 ≈ 20 |
//!
//! With these constants the models regenerate Table 2 to within 1% and
//! extrapolate to other workload sizes (the crossover benches).

use crate::clock::{ARM_CLOCK_HZ, I7_CLOCK_HZ};

/// A calibrated CPU cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Platform name.
    pub name: &'static str,
    /// Core clock in Hz.
    pub clock_hz: u64,
    /// Package power draw in watts (Table 3).
    pub power_w: f64,
    /// Feature-extraction cycles per pyramid pixel.
    pub fe_cycles_per_pixel: f64,
    /// Feature-matching cycles per descriptor pair.
    pub fm_cycles_per_pair: f64,
    /// Pose-estimation time per frame, ms.
    pub pe_ms: f64,
    /// Pose-optimization time per frame, ms.
    pub po_ms: f64,
    /// Map-updating time per key frame, ms.
    pub mu_ms: f64,
}

/// The ARM Cortex-A9 host of the Zynq XCZ7045 at 767 MHz (§4.1),
/// 1.574 W (Table 3).
pub fn arm_cortex_a9() -> CpuModel {
    CpuModel {
        name: "ARM Cortex-A9",
        clock_hz: ARM_CLOCK_HZ,
        power_w: 1.574,
        fe_cycles_per_pixel: 290.0,
        fm_cycles_per_pair: 80.0,
        pe_ms: 9.2,
        po_ms: 8.7,
        mu_ms: 9.9,
    }
}

/// The Intel i7-4700MQ baseline \[9\] at its 2.4 GHz base clock, 47 W TDP
/// (Table 3).
pub fn intel_i7() -> CpuModel {
    CpuModel {
        name: "Intel i7-4700MQ",
        clock_hz: I7_CLOCK_HZ,
        power_w: 47.0,
        fe_cycles_per_pixel: 101.0,
        fm_cycles_per_pair: 20.0,
        pe_ms: 0.9,
        po_ms: 0.5,
        mu_ms: 1.2,
    }
}

impl CpuModel {
    /// Feature-extraction time for a pyramid of `pixels`, in ms.
    pub fn fe_ms(&self, pixels: u64) -> f64 {
        self.fe_cycles_per_pixel * pixels as f64 / self.clock_hz as f64 * 1e3
    }

    /// Feature-matching time for `n × m` descriptor pairs, in ms.
    pub fn fm_ms(&self, pairs: u64) -> f64 {
        self.fm_cycles_per_pair * pairs as f64 / self.clock_hz as f64 * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VGA_PIXELS: u64 = 771_112;
    const NOMINAL_PAIRS: u64 = 1024 * 2304;

    #[test]
    fn arm_fe_matches_table2() {
        let arm = arm_cortex_a9();
        let ms = arm.fe_ms(VGA_PIXELS);
        assert!((ms - 291.6).abs() < 3.0, "ARM FE {ms} ms vs 291.6 ms");
    }

    #[test]
    fn arm_fm_matches_table2() {
        let arm = arm_cortex_a9();
        let ms = arm.fm_ms(NOMINAL_PAIRS);
        assert!((ms - 246.2).abs() < 2.5, "ARM FM {ms} ms vs 246.2 ms");
    }

    #[test]
    fn i7_fe_matches_table2() {
        let i7 = intel_i7();
        let ms = i7.fe_ms(VGA_PIXELS);
        assert!((ms - 32.5).abs() < 0.4, "i7 FE {ms} ms vs 32.5 ms");
    }

    #[test]
    fn i7_fm_matches_table2() {
        let i7 = intel_i7();
        let ms = i7.fm_ms(NOMINAL_PAIRS);
        assert!((ms - 19.7).abs() < 0.3, "i7 FM {ms} ms vs 19.7 ms");
    }

    #[test]
    fn geometric_stage_times_match_table2() {
        let arm = arm_cortex_a9();
        let i7 = intel_i7();
        assert_eq!(arm.pe_ms, 9.2);
        assert_eq!(arm.po_ms, 8.7);
        assert_eq!(arm.mu_ms, 9.9);
        assert_eq!(i7.pe_ms, 0.9);
        assert_eq!(i7.po_ms, 0.5);
        assert_eq!(i7.mu_ms, 1.2);
    }

    #[test]
    fn costs_scale_linearly_with_workload() {
        let arm = arm_cortex_a9();
        assert!((arm.fe_ms(2 * VGA_PIXELS) - 2.0 * arm.fe_ms(VGA_PIXELS)).abs() < 1e-9);
        assert_eq!(arm.fm_ms(0), 0.0);
    }

    #[test]
    fn i7_is_faster_but_hungrier() {
        let arm = arm_cortex_a9();
        let i7 = intel_i7();
        assert!(i7.fe_ms(VGA_PIXELS) < arm.fe_ms(VGA_PIXELS));
        assert!(i7.power_w > arm.power_w * 20.0);
    }
}
