//! AXI bus / SDRAM transfer model.
//!
//! The ORB Extractor and BRIEF Matcher both read their inputs from SDRAM
//! and write results back via the AXI interface (§3.1, §3.2). This module
//! provides a transaction-level timing model: each burst pays a fixed
//! setup latency, then streams one bus word per cycle.

use crate::clock::Cycles;

/// AXI bus configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiConfig {
    /// Bus width in bytes per beat (64-bit AXI = 8 bytes).
    pub bus_bytes: u32,
    /// Maximum beats per burst (AXI4 INCR burst of 16).
    pub burst_beats: u32,
    /// Fixed setup cycles per burst (address phase + SDRAM latency).
    pub burst_setup: u32,
}

impl Default for AxiConfig {
    fn default() -> Self {
        AxiConfig {
            bus_bytes: 8,
            burst_beats: 16,
            burst_setup: 8,
        }
    }
}

impl AxiConfig {
    /// Cycles to transfer `bytes` as a sequence of maximal bursts.
    ///
    /// Zero bytes cost zero cycles.
    pub fn transfer_cycles(&self, bytes: u64) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let beats = bytes.div_ceil(self.bus_bytes as u64);
        let bursts = beats.div_ceil(self.burst_beats as u64);
        Cycles(beats + bursts * self.burst_setup as u64)
    }

    /// Effective bandwidth in bytes per cycle for a large transfer.
    pub fn effective_bandwidth(&self) -> f64 {
        let bytes = 1 << 20;
        bytes as f64 / self.transfer_cycles(bytes).0 as f64
    }
}

/// Accounting wrapper: tracks total bytes moved and cycles spent on the
/// bus, as the accelerator simulator executes transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AxiBus {
    /// Static configuration.
    pub config: AxiConfig,
    /// Total bytes read from SDRAM.
    pub bytes_read: u64,
    /// Total bytes written to SDRAM.
    pub bytes_written: u64,
    /// Total bus-occupied cycles.
    pub busy_cycles: Cycles,
}

impl AxiBus {
    /// Creates a bus with the given configuration.
    pub fn new(config: AxiConfig) -> Self {
        AxiBus {
            config,
            ..Default::default()
        }
    }

    /// Executes a read of `bytes`, returning its duration.
    pub fn read(&mut self, bytes: u64) -> Cycles {
        let c = self.config.transfer_cycles(bytes);
        self.bytes_read += bytes;
        self.busy_cycles += c;
        c
    }

    /// Executes a write of `bytes`, returning its duration.
    pub fn write(&mut self, bytes: u64) -> Cycles {
        let c = self.config.transfer_cycles(bytes);
        self.bytes_written += bytes;
        self.busy_cycles += c;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_transfer_is_free() {
        let cfg = AxiConfig::default();
        assert_eq!(cfg.transfer_cycles(0), Cycles::ZERO);
    }

    #[test]
    fn single_beat_costs_setup_plus_one() {
        let cfg = AxiConfig::default();
        // 1..=8 bytes = 1 beat, 1 burst.
        assert_eq!(cfg.transfer_cycles(1), Cycles(1 + 8));
        assert_eq!(cfg.transfer_cycles(8), Cycles(1 + 8));
        assert_eq!(cfg.transfer_cycles(9), Cycles(2 + 8));
    }

    #[test]
    fn full_burst_amortizes_setup() {
        let cfg = AxiConfig::default();
        // 128 bytes = 16 beats = exactly one burst.
        assert_eq!(cfg.transfer_cycles(128), Cycles(16 + 8));
        // 256 bytes = 2 bursts.
        assert_eq!(cfg.transfer_cycles(256), Cycles(32 + 16));
    }

    #[test]
    fn vga_row_transfer_time() {
        // One 640-pixel row: 80 beats = 5 bursts → 80 + 40 = 120 cycles.
        let cfg = AxiConfig::default();
        assert_eq!(cfg.transfer_cycles(640), Cycles(120));
    }

    #[test]
    fn effective_bandwidth_below_peak() {
        let cfg = AxiConfig::default();
        let bw = cfg.effective_bandwidth();
        // Peak is 8 B/cycle; setup overhead takes ~33% at burst 16/setup 8.
        assert!(bw < 8.0);
        assert!(bw > 5.0, "bandwidth {bw}");
    }

    #[test]
    fn bus_accounting_accumulates() {
        let mut bus = AxiBus::new(AxiConfig::default());
        let r = bus.read(1024);
        let w = bus.write(128);
        assert_eq!(bus.bytes_read, 1024);
        assert_eq!(bus.bytes_written, 128);
        assert_eq!(bus.busy_cycles, r + w);
    }
}
