//! FPGA resource model — regenerates Table 1.
//!
//! Every datapath unit in [`crate::units`] carries a resource estimate
//! (LUTs, flip-flops, DSP slices, BRAM tiles) derived from its datapath
//! width and replication count; this module sums them and reports
//! utilization against the Zynq XCZ7045 device limits, reproducing the
//! paper's Table 1.

use std::fmt;
use std::ops::{Add, AddAssign};

/// A bundle of FPGA resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// Look-up tables.
    pub lut: u32,
    /// Flip-flops (registers).
    pub ff: u32,
    /// DSP48 slices.
    pub dsp: u32,
    /// 36 Kb block-RAM tiles.
    pub bram: u32,
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            dsp: self.dsp + rhs.dsp,
            bram: self.bram + rhs.bram,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT {} / FF {} / DSP {} / BRAM {}",
            self.lut, self.ff, self.dsp, self.bram
        )
    }
}

/// Device resource limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Device {
    /// Device name.
    pub name: &'static str,
    /// Available resources.
    pub capacity: Resources,
}

/// The Zynq XCZ7045 used in the paper (§4.1): 218 600 LUTs, 437 200 FFs,
/// 900 DSP slices, 545 36Kb BRAM tiles.
pub const XCZ7045: Device = Device {
    name: "XCZ7045",
    capacity: Resources {
        lut: 218_600,
        ff: 437_200,
        dsp: 900,
        bram: 545,
    },
};

/// The smaller XCZ7020 the paper suggests as a cheaper target (§4.1).
pub const XCZ7020: Device = Device {
    name: "XCZ7020",
    capacity: Resources {
        lut: 53_200,
        ff: 106_400,
        dsp: 220,
        bram: 140,
    },
};

/// The mid-range XCZ7030.
pub const XCZ7030: Device = Device {
    name: "XCZ7030",
    capacity: Resources {
        lut: 78_600,
        ff: 157_200,
        dsp: 400,
        bram: 265,
    },
};

/// Utilization of a resource bundle against a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Used resources.
    pub used: Resources,
    /// Percent of each resource used (LUT, FF, DSP, BRAM).
    pub percent: [f64; 4],
    /// Whether the design fits the device.
    pub fits: bool,
}

impl Device {
    /// Computes utilization of `used` on this device.
    pub fn utilization(&self, used: Resources) -> Utilization {
        let percent = [
            100.0 * used.lut as f64 / self.capacity.lut as f64,
            100.0 * used.ff as f64 / self.capacity.ff as f64,
            100.0 * used.dsp as f64 / self.capacity.dsp as f64,
            100.0 * used.bram as f64 / self.capacity.bram as f64,
        ];
        Utilization {
            used,
            percent,
            fits: used.lut <= self.capacity.lut
                && used.ff <= self.capacity.ff
                && used.dsp <= self.capacity.dsp
                && used.bram <= self.capacity.bram,
        }
    }
}

/// Total eSLAM fabric resources: the sum of every unit in the design
/// (ORB Extractor datapath, BRIEF Matcher with `matcher_parallelism`
/// Hamming units, caches, AXI and control).
pub fn eslam_total(matcher_parallelism: u32) -> Resources {
    use crate::units::*;
    let mut total = Resources::default();
    for unit in [
        image_resizing(),
        fast_detection(),
        image_smoother(),
        nms_unit(),
        orientation_computing(),
        brief_computing(),
        brief_rotator(),
        heap_unit(),
        extractor_caches(),
        distance_computing(matcher_parallelism),
        comparator(),
        descriptor_cache(),
        axi_and_control(),
    ] {
        total += unit.resources;
    }
    total
}

/// The matcher parallelism of the reproduced design point (see DESIGN.md:
/// 6 parallel Hamming units against a 2304-point map reproduce the 4.0 ms
/// matching latency of Table 2).
pub const DEFAULT_MATCHER_PARALLELISM: u32 = 6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_reproduce_table1() {
        // Table 1: LUT 56954 (26.0%), FF 67809 (15.5%), DSP 111 (12.3%),
        // BRAM 78 (14.3%).
        let total = eslam_total(DEFAULT_MATCHER_PARALLELISM);
        assert_eq!(total.lut, 56_954);
        assert_eq!(total.ff, 67_809);
        assert_eq!(total.dsp, 111);
        assert_eq!(total.bram, 78);
    }

    #[test]
    fn utilization_percentages_match_table1() {
        let util = XCZ7045.utilization(eslam_total(DEFAULT_MATCHER_PARALLELISM));
        assert!(
            (util.percent[0] - 26.0).abs() < 0.1,
            "LUT {}",
            util.percent[0]
        );
        assert!(
            (util.percent[1] - 15.5).abs() < 0.1,
            "FF {}",
            util.percent[1]
        );
        assert!(
            (util.percent[2] - 12.3).abs() < 0.1,
            "DSP {}",
            util.percent[2]
        );
        assert!(
            (util.percent[3] - 14.3).abs() < 0.1,
            "BRAM {}",
            util.percent[3]
        );
        assert!(util.fits);
    }

    #[test]
    fn quarter_of_device_leaves_headroom() {
        // §4.1: "only about 1/4 resources are utilized", enabling smaller
        // parts. The dominant utilization axis is LUTs at ~26%.
        let util = XCZ7045.utilization(eslam_total(DEFAULT_MATCHER_PARALLELISM));
        let max_pct = util.percent.iter().cloned().fold(0.0, f64::max);
        assert!(max_pct < 27.0);
    }

    #[test]
    fn fits_smaller_devices_as_paper_claims() {
        // §4.1: "possible to prototype them onto SoCs with less resources
        // … such as XCZ7030/XCZ7020".
        let total = eslam_total(DEFAULT_MATCHER_PARALLELISM);
        assert!(XCZ7030.utilization(total).fits, "XCZ7030 should fit");
        // XCZ7020: LUT-tight (56954 > 53200) — the paper's claim holds
        // only with a reduced design point (e.g. fewer matcher units).
        assert!(!XCZ7020.utilization(total).fits);
        let reduced = eslam_total(2);
        assert!(
            XCZ7020.utilization(reduced).fits,
            "reduced design should fit XCZ7020: {}",
            reduced
        );
    }

    #[test]
    fn resources_add() {
        let a = Resources {
            lut: 1,
            ff: 2,
            dsp: 3,
            bram: 4,
        };
        let b = Resources {
            lut: 10,
            ff: 20,
            dsp: 30,
            bram: 40,
        };
        let c = a + b;
        assert_eq!(
            c,
            Resources {
                lut: 11,
                ff: 22,
                dsp: 33,
                bram: 44
            }
        );
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn overflow_detection() {
        let util = XCZ7020.utilization(Resources {
            lut: 100_000,
            ff: 0,
            dsp: 0,
            bram: 0,
        });
        assert!(!util.fits);
        assert!(util.percent[0] > 100.0);
    }

    #[test]
    fn display_formats() {
        let r = Resources {
            lut: 1,
            ff: 2,
            dsp: 3,
            bram: 4,
        };
        assert_eq!(r.to_string(), "LUT 1 / FF 2 / DSP 3 / BRAM 4");
    }
}
