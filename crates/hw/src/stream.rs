//! Fine-grained streaming simulation of the extractor front-end
//! (extension of the coarse model in [`crate::extractor`]).
//!
//! Models the column-stripe dataflow the Image Cache FSM implies (Fig. 5):
//! the datapath processes a sliding window of two resident 8-column
//! blocks while the AXI interface refills the third. The simulation
//! tracks block-level load/process overlap and reports stall cycles
//! explicitly.
//!
//! The coarse [`crate::extractor::ExtractorModel`] is *calibrated* to the
//! paper's measured 9.1 ms (its per-row overhead lumps SDRAM row
//! activation, turnaround, and control); the stream simulation is the
//! idealized lower bound. Tests assert the expected ordering and that
//! the two agree within a model-error band.

use crate::axi::AxiConfig;
use crate::cache::{ImageCacheFsm, COLUMNS_PER_LINE};
use crate::clock::Cycles;

/// Parameters of the streaming simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamModel {
    /// AXI configuration for block refills.
    pub axi: AxiConfig,
    /// Pipeline turnaround cycles at each stripe boundary (window
    /// realignment in the line buffers).
    pub stripe_turnaround: u32,
    /// Pipeline depth to flush at the end of a level.
    pub pipeline_flush: u32,
}

impl Default for StreamModel {
    fn default() -> Self {
        StreamModel {
            axi: AxiConfig::default(),
            stripe_turnaround: 8,
            pipeline_flush: 50,
        }
    }
}

/// Cycle accounting of one simulated level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamTiming {
    /// Cycles pre-filling the first two cache lines.
    pub prefill: Cycles,
    /// Active processing cycles (pixels + stripe turnaround).
    pub processing: Cycles,
    /// Cycles stalled waiting for AXI block refills.
    pub stall: Cycles,
    /// Pipeline flush at level end.
    pub flush: Cycles,
    /// Total latency of the level.
    pub total: Cycles,
    /// Number of stripes processed.
    pub stripes: u32,
}

impl StreamModel {
    /// Simulates one pyramid level of `width`×`height` pixels through the
    /// 3-line ping-pong cache, returning the cycle breakdown.
    ///
    /// Block-level discrete-event model: processing a stripe (one
    /// 8-column block against its resident right neighbour) takes
    /// `8 × height + turnaround` cycles; in parallel the AXI refills the
    /// next block in `transfer_cycles(8 × height)`. A stripe can start
    /// only when its blocks are resident, so slow memory surfaces as
    /// stall cycles.
    pub fn simulate_level(&self, width: u32, height: u32) -> StreamTiming {
        let blocks = width.div_ceil(COLUMNS_PER_LINE);
        let block_bytes = COLUMNS_PER_LINE as u64 * height as u64;
        let load = self.axi.transfer_cycles(block_bytes).0;
        let process_per_stripe =
            COLUMNS_PER_LINE as u64 * height as u64 + self.stripe_turnaround as u64;

        let mut t = StreamTiming::default();
        if blocks == 0 || height == 0 {
            return t;
        }
        // Fig. 5 initialization: lines A and B pre-filled sequentially.
        t.prefill = Cycles(2 * load);

        // Drive the FSM exactly as the hardware would; each step loads one
        // block while the previous stripe processes.
        let mut fsm = ImageCacheFsm::new();
        fsm.initialize();

        let mut now = t.prefill.0;
        let mut load_ready_at = now; // block for the upcoming stripe ready at...
        let stripes = blocks.saturating_sub(1); // sliding pairs (0,1), (1,2), ...
        for s in 0..stripes {
            // The stripe over blocks (s, s+1) needs block s+1 resident.
            if load_ready_at > now {
                t.stall += Cycles(load_ready_at - now);
                now = load_ready_at;
            }
            // Kick off the refill of block s+2 (if any) in parallel.
            if s + 2 < blocks {
                let _state = fsm.step();
                load_ready_at = now + load;
            }
            now += process_per_stripe;
            t.processing += Cycles(process_per_stripe);
        }
        t.flush = Cycles(self.pipeline_flush as u64);
        now += self.pipeline_flush as u64;
        t.stripes = stripes;
        t.total = Cycles(now);
        t
    }

    /// Simulates a whole pyramid (levels sized by nearest-neighbour ÷1.2
    /// like the Image Resizing module) and returns the per-level
    /// breakdowns.
    pub fn simulate_pyramid(&self, width: u32, height: u32, levels: usize) -> Vec<StreamTiming> {
        (0..levels)
            .map(|l| {
                let s = 1.2f64.powi(l as i32);
                let w = ((width as f64) / s).round().max(1.0) as u32;
                let h = ((height as f64) / s).round().max(1.0) as u32;
                self.simulate_level(w, h)
            })
            .collect()
    }

    /// Total cycles over a pyramid.
    pub fn pyramid_total(&self, width: u32, height: u32, levels: usize) -> Cycles {
        self.simulate_pyramid(width, height, levels)
            .into_iter()
            .map(|t| t.total)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::{ExtractionWorkload, ExtractorModel};
    use eslam_features::orb::Workflow;

    #[test]
    fn vga_level_has_no_stalls_with_default_axi() {
        // Loading an 8×480 block (720 cycles) hides fully under its
        // 3848-cycle stripe.
        let t = StreamModel::default().simulate_level(640, 480);
        assert_eq!(t.stall, Cycles::ZERO);
        assert_eq!(t.stripes, 79);
        assert!(t.total.0 > 0);
    }

    #[test]
    fn slow_axi_creates_stalls() {
        // Crank burst setup so a block load outlasts a stripe.
        let slow = StreamModel {
            axi: AxiConfig {
                bus_bytes: 1,
                burst_beats: 4,
                burst_setup: 64,
            },
            ..Default::default()
        };
        let t = slow.simulate_level(640, 480);
        assert!(t.stall.0 > 0, "expected stalls with slow memory");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let t = StreamModel::default().simulate_level(640, 480);
        assert_eq!(t.total, t.prefill + t.processing + t.stall + t.flush);
    }

    #[test]
    fn stream_sim_bounds_coarse_model_from_below() {
        // The calibrated coarse model includes real-system overheads the
        // idealized stream sim omits, so stream ≤ coarse, and they agree
        // within a 25% model-error band (no candidate stalls included in
        // either side here).
        let stream = StreamModel::default().pyramid_total(640, 480, 4);
        let mut workload = ExtractionWorkload::vga_nominal();
        workload.candidates = 0;
        workload.kept = 0;
        let coarse = ExtractorModel::default()
            .extraction_timing(&workload, Workflow::Rescheduled)
            .total;
        assert!(stream <= coarse, "stream {stream} vs coarse {coarse}");
        let ratio = stream.0 as f64 / coarse.0 as f64;
        assert!(ratio > 0.75, "models diverged: ratio {ratio}");
    }

    #[test]
    fn degenerate_sizes_are_safe() {
        let model = StreamModel::default();
        let t = model.simulate_level(0, 480);
        assert_eq!(t.total, Cycles::ZERO);
        let t = model.simulate_level(640, 0);
        assert_eq!(t.total, Cycles::ZERO);
        let t = model.simulate_level(7, 5); // single block → no stripes
        assert_eq!(t.stripes, 0);
    }

    #[test]
    fn pyramid_levels_shrink_in_time() {
        let sims = StreamModel::default().simulate_pyramid(640, 480, 4);
        assert_eq!(sims.len(), 4);
        for pair in sims.windows(2) {
            assert!(pair[1].total < pair[0].total);
        }
    }

    #[test]
    fn processing_scales_with_stripe_count() {
        let model = StreamModel::default();
        let narrow = model.simulate_level(320, 480);
        let wide = model.simulate_level(640, 480);
        assert!(wide.stripes > narrow.stripes);
        assert!(wide.processing > narrow.processing);
    }
}
