//! Clock domains and cycle/time conversion.
//!
//! The eSLAM accelerating modules run at 100 MHz on the Zynq XCZ7045
//! fabric; the host ARM Cortex-A9 runs at 767 MHz (§4.1).

/// Clock frequency of the FPGA accelerator fabric (§4.1).
pub const FPGA_CLOCK_HZ: u64 = 100_000_000;

/// Clock frequency of the host ARM Cortex-A9 (§4.1).
pub const ARM_CLOCK_HZ: u64 = 767_000_000;

/// Nominal clock of the Intel i7-4700MQ baseline (base frequency; the
/// paper's runtimes imply operation near base clock).
pub const I7_CLOCK_HZ: u64 = 2_400_000_000;

/// A cycle count in a specific clock domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Converts to seconds at the given clock frequency.
    ///
    /// # Panics
    /// Panics if `clock_hz` is zero.
    pub fn to_seconds(self, clock_hz: u64) -> f64 {
        assert!(clock_hz > 0, "clock frequency must be positive");
        self.0 as f64 / clock_hz as f64
    }

    /// Converts to milliseconds at the given clock frequency.
    pub fn to_millis(self, clock_hz: u64) -> f64 {
        self.to_seconds(clock_hz) * 1e3
    }

    /// Builds a cycle count from a duration in seconds (rounding up — a
    /// partial cycle still occupies the unit).
    pub fn from_seconds(seconds: f64, clock_hz: u64) -> Cycles {
        Cycles((seconds * clock_hz as f64).ceil().max(0.0) as u64)
    }
}

impl std::ops::Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl std::fmt::Display for Cycles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_time_conversion() {
        let c = Cycles(100_000_000);
        assert!((c.to_seconds(FPGA_CLOCK_HZ) - 1.0).abs() < 1e-12);
        assert!((c.to_millis(FPGA_CLOCK_HZ) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn fe_budget_matches_paper() {
        // 9.1 ms at 100 MHz = 910k cycles — the FE latency of Table 2.
        let c = Cycles::from_seconds(9.1e-3, FPGA_CLOCK_HZ);
        assert_eq!(c.0, 910_000);
    }

    #[test]
    fn from_seconds_rounds_up() {
        assert_eq!(Cycles::from_seconds(1.5e-8, FPGA_CLOCK_HZ).0, 2);
        assert_eq!(Cycles::from_seconds(0.0, FPGA_CLOCK_HZ).0, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Cycles(10) + Cycles(32);
        assert_eq!(a, Cycles(42));
        let s: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(s, Cycles(6));
    }

    #[test]
    #[should_panic(expected = "clock frequency")]
    fn zero_clock_panics() {
        let _ = Cycles(1).to_seconds(0);
    }
}
