//! On-chip caches, including the 3-line ping-pong Image Cache FSM of
//! Fig. 5.
//!
//! The Image Cache holds 3 cache lines of 8 pixel columns each. An FSM
//! rotates the roles: in every state one line *receives* streaming input
//! while the other two *send* buffered columns to the datapath. The FSM
//! initializes by pre-storing 16 columns (two lines) before processing
//! starts (§3.1).

/// Number of cache lines in the Image Cache (Fig. 5: lines A, B, C).
pub const CACHE_LINES: usize = 3;

/// Pixel columns per cache line (Fig. 5: "each square represents 8
/// columns of pixels").
pub const COLUMNS_PER_LINE: u32 = 8;

/// Role of a cache line in the current FSM state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineRole {
    /// The line is receiving streamed input columns.
    Receiving,
    /// The line is sending buffered columns to the datapath.
    Sending,
}

/// One step of the FSM schedule: which block each line holds and the
/// receiving line's index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsmState {
    /// Block id (8-column group index) resident in each line;
    /// `None` = not yet loaded.
    pub resident: [Option<u32>; CACHE_LINES],
    /// Index of the line currently receiving.
    pub receiving: usize,
}

/// The Image Cache ping-pong FSM.
///
/// # Examples
///
/// ```
/// use eslam_hw::cache::ImageCacheFsm;
/// let mut fsm = ImageCacheFsm::new();
/// fsm.initialize(); // pre-store blocks 0 and 1 (16 columns)
/// let state = fsm.step();
/// // While block 2 streams in, blocks 0 and 1 are sent to the datapath.
/// assert_eq!(state.sending_blocks(), vec![0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageCacheFsm {
    resident: [Option<u32>; CACHE_LINES],
    receiving: usize,
    next_block: u32,
    initialized: bool,
}

impl Default for ImageCacheFsm {
    fn default() -> Self {
        ImageCacheFsm::new()
    }
}

impl FsmState {
    /// The blocks being sent to the datapath this state, in ascending
    /// block order.
    pub fn sending_blocks(&self) -> Vec<u32> {
        let mut blocks: Vec<u32> = (0..CACHE_LINES)
            .filter(|&i| i != self.receiving)
            .filter_map(|i| self.resident[i])
            .collect();
        blocks.sort_unstable();
        blocks
    }
}

impl ImageCacheFsm {
    /// Creates an uninitialized FSM.
    pub fn new() -> Self {
        ImageCacheFsm {
            resident: [None; CACHE_LINES],
            receiving: 0,
            next_block: 0,
            initialized: false,
        }
    }

    /// Pre-stores 16 columns (blocks 0 and 1) into lines A and B, the
    /// initialization of Fig. 5.
    pub fn initialize(&mut self) {
        self.resident = [Some(0), Some(1), None];
        self.next_block = 2;
        self.receiving = 2; // line C receives first
        self.initialized = true;
    }

    /// Whether [`ImageCacheFsm::initialize`] ran.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Advances one FSM state: the receiving line loads the next block
    /// while the other two lines send. Returns the state that was just
    /// executed.
    ///
    /// # Panics
    /// Panics if the FSM was not initialized.
    pub fn step(&mut self) -> FsmState {
        assert!(self.initialized, "FSM must be initialized first");
        // Execute: load next block into the receiving line.
        self.resident[self.receiving] = Some(self.next_block);
        let executed = FsmState {
            resident: self.resident,
            receiving: self.receiving,
        };
        self.next_block += 1;
        // Rotate: the line holding the oldest block receives next.
        self.receiving = (self.receiving + 1) % CACHE_LINES;
        executed
    }

    /// Runs the FSM over an image of `width` columns and returns the
    /// executed schedule (one entry per 8-column block beyond the two
    /// pre-stored ones).
    pub fn schedule(width: u32) -> Vec<FsmState> {
        let blocks = width.div_ceil(COLUMNS_PER_LINE);
        let mut fsm = ImageCacheFsm::new();
        fsm.initialize();
        (2..blocks).map(|_| fsm.step()).collect()
    }
}

/// Capacity model of the three extractor caches (§3.1): the Image Cache,
/// Score Cache and Smoothened Image Cache, each sized for the streaming
/// window rather than the whole frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSizing {
    /// Image height in pixels (cache lines span full image height).
    pub image_height: u32,
    /// Harris score width in bits.
    pub score_bits: u32,
}

impl Default for CacheSizing {
    fn default() -> Self {
        CacheSizing {
            image_height: 480,
            score_bits: 32,
        }
    }
}

impl CacheSizing {
    /// Image Cache bits: 3 lines × 8 columns × height × 8-bit pixels.
    pub fn image_cache_bits(&self) -> u64 {
        (CACHE_LINES as u64) * (COLUMNS_PER_LINE as u64) * self.image_height as u64 * 8
    }

    /// Smoothened Image Cache bits (same geometry as the Image Cache).
    pub fn smoothed_cache_bits(&self) -> u64 {
        self.image_cache_bits()
    }

    /// Score Cache bits: 3 lines × 8 columns × height × score width.
    pub fn score_cache_bits(&self) -> u64 {
        (CACHE_LINES as u64)
            * (COLUMNS_PER_LINE as u64)
            * self.image_height as u64
            * self.score_bits as u64
    }

    /// Total streaming-cache bits.
    pub fn total_bits(&self) -> u64 {
        self.image_cache_bits() + self.smoothed_cache_bits() + self.score_cache_bits()
    }

    /// Bits a *frame buffer* would need for the same image (the cost the
    /// original, non-rescheduled workflow pays to hold the smoothened
    /// frame until filtering finishes — §3.1's memory argument).
    pub fn full_frame_bits(&self, width: u32) -> u64 {
        width as u64 * self.image_height as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initialization_prestores_two_blocks() {
        let mut fsm = ImageCacheFsm::new();
        assert!(!fsm.is_initialized());
        fsm.initialize();
        assert!(fsm.is_initialized());
        assert_eq!(fsm.resident[0], Some(0));
        assert_eq!(fsm.resident[1], Some(1));
        assert_eq!(fsm.resident[2], None);
    }

    #[test]
    #[should_panic(expected = "initialized")]
    fn step_before_init_panics() {
        ImageCacheFsm::new().step();
    }

    #[test]
    fn first_state_matches_figure5() {
        // Fig. 5 state 1: line C receives block 2; lines A, B send 0, 1.
        let mut fsm = ImageCacheFsm::new();
        fsm.initialize();
        let s = fsm.step();
        assert_eq!(s.receiving, 2);
        assert_eq!(s.resident[2], Some(2));
        assert_eq!(s.sending_blocks(), vec![0, 1]);
    }

    #[test]
    fn rotation_follows_figure5_order() {
        // Fig. 5: states rotate A→B→C receiving; the sent pair always
        // consists of the two most recent *other* blocks.
        let mut fsm = ImageCacheFsm::new();
        fsm.initialize();
        let s1 = fsm.step();
        let s2 = fsm.step();
        let s3 = fsm.step();
        assert_eq!(s1.sending_blocks(), vec![0, 1]);
        assert_eq!(s2.sending_blocks(), vec![1, 2]);
        assert_eq!(s3.sending_blocks(), vec![2, 3]);
        assert_eq!([s1.receiving, s2.receiving, s3.receiving], [2, 0, 1]);
    }

    #[test]
    fn every_state_has_one_receiver_two_senders() {
        for s in ImageCacheFsm::schedule(640) {
            assert!(s.receiving < CACHE_LINES);
            assert_eq!(s.sending_blocks().len(), 2);
        }
    }

    #[test]
    fn sent_blocks_are_consecutive() {
        // The datapath consumes a sliding window: the two sent blocks are
        // always consecutive 8-column groups.
        for s in ImageCacheFsm::schedule(640) {
            let blocks = s.sending_blocks();
            assert_eq!(blocks[1], blocks[0] + 1, "state {s:?}");
        }
    }

    #[test]
    fn schedule_covers_whole_width() {
        // 640 columns = 80 blocks; 2 pre-stored + 78 steps.
        let schedule = ImageCacheFsm::schedule(640);
        assert_eq!(schedule.len(), 78);
        // The last loaded block is 79.
        assert_eq!(
            schedule.last().unwrap().resident[schedule.last().unwrap().receiving],
            Some(79)
        );
    }

    #[test]
    fn cache_sizing_vga() {
        let sizing = CacheSizing::default();
        // 3 × 8 × 480 × 8 bits = 92160 bits ≈ 11.25 KiB per image cache.
        assert_eq!(sizing.image_cache_bits(), 92_160);
        assert_eq!(sizing.smoothed_cache_bits(), 92_160);
        assert_eq!(sizing.score_cache_bits(), 368_640);
        assert_eq!(sizing.total_bits(), 552_960);
    }

    #[test]
    fn streaming_cache_is_far_smaller_than_frame_buffer() {
        // §3.1: rescheduling reduces on-chip memory dramatically — the
        // streaming caches hold ~24 columns instead of a whole frame.
        let sizing = CacheSizing::default();
        let frame = sizing.full_frame_bits(640);
        assert!(sizing.image_cache_bits() * 10 < frame);
    }
}
