//! The heterogeneous frame pipeline (Fig. 7) and the full Table 2 /
//! Table 3 reproduction.
//!
//! * **Normal frames**: FE+FM (FPGA) for frame N+1 overlap PE+PO (ARM)
//!   for frame N, so the steady-state period is
//!   `max(FE + FM, PE + PO)`.
//! * **Key frames**: MU runs on the ARM after PE+PO, and FM must wait for
//!   MU (the map it matches against is being rewritten), so the period is
//!   `max(FE, PE + PO) + MU + FM`.
//! * **CPU baselines**: all five stages run sequentially.

use crate::cpu::{arm_cortex_a9, intel_i7, CpuModel};
use crate::extractor::{ExtractionWorkload, ExtractorModel};
use crate::matcher::{MatcherModel, NOMINAL_MAP_POINTS, NOMINAL_QUERIES};
use crate::power::{energy_per_frame_mj, eslam_power_w, ARM_POWER_W, I7_POWER_W};
use eslam_features::orb::Workflow;

/// Per-stage times in milliseconds (one frame).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTimesMs {
    /// Feature extraction.
    pub fe: f64,
    /// Feature matching.
    pub fm: f64,
    /// Pose estimation.
    pub pe: f64,
    /// Pose optimization.
    pub po: f64,
    /// Map updating (key frames only).
    pub mu: f64,
}

/// How a platform schedules the five stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// All stages sequential on one processor (the CPU baselines).
    Sequential,
    /// The eSLAM heterogeneous pipeline of Fig. 7.
    EslamPipeline,
}

/// Frame-level timing summary (the Table 3 runtime/frame-rate rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameTiming {
    /// Normal-frame period, ms.
    pub normal_ms: f64,
    /// Key-frame period, ms.
    pub keyframe_ms: f64,
    /// Normal-frame rate, fps.
    pub normal_fps: f64,
    /// Key-frame rate, fps.
    pub keyframe_fps: f64,
}

/// Computes frame timing from stage times under a schedule.
pub fn frame_timing(stages: &StageTimesMs, schedule: Schedule) -> FrameTiming {
    let (normal_ms, keyframe_ms) = match schedule {
        Schedule::Sequential => (
            stages.fe + stages.fm + stages.pe + stages.po,
            stages.fe + stages.fm + stages.pe + stages.po + stages.mu,
        ),
        Schedule::EslamPipeline => (
            (stages.fe + stages.fm).max(stages.pe + stages.po),
            (stages.fe).max(stages.pe + stages.po) + stages.mu + stages.fm,
        ),
    };
    FrameTiming {
        normal_ms,
        keyframe_ms,
        normal_fps: 1000.0 / normal_ms,
        keyframe_fps: 1000.0 / keyframe_ms,
    }
}

/// One platform column of Tables 2 and 3.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformReport {
    /// Platform name.
    pub name: &'static str,
    /// Stage runtimes (Table 2 column).
    pub stages: StageTimesMs,
    /// Frame timing (Table 3 runtime/frame-rate rows).
    pub frames: FrameTiming,
    /// Power draw, W (Table 3 power row).
    pub power_w: f64,
    /// Energy per normal frame, mJ.
    pub energy_normal_mj: f64,
    /// Energy per key frame, mJ.
    pub energy_keyframe_mj: f64,
}

fn report(
    name: &'static str,
    stages: StageTimesMs,
    schedule: Schedule,
    power_w: f64,
) -> PlatformReport {
    let frames = frame_timing(&stages, schedule);
    PlatformReport {
        name,
        stages,
        frames,
        power_w,
        energy_normal_mj: energy_per_frame_mj(frames.normal_ms, power_w),
        energy_keyframe_mj: energy_per_frame_mj(frames.keyframe_ms, power_w),
    }
}

/// Stage times of a CPU baseline at the nominal VGA workload.
pub fn cpu_stage_times(cpu: &CpuModel) -> StageTimesMs {
    let pixels = ExtractionWorkload::vga_nominal().total_pixels();
    let pairs = NOMINAL_QUERIES * NOMINAL_MAP_POINTS;
    StageTimesMs {
        fe: cpu.fe_ms(pixels),
        fm: cpu.fm_ms(pairs),
        pe: cpu.pe_ms,
        po: cpu.po_ms,
        mu: cpu.mu_ms,
    }
}

/// Stage times of eSLAM: FE/FM from the accelerator cycle models, the
/// geometric stages from the ARM host.
pub fn eslam_stage_times() -> StageTimesMs {
    let arm = arm_cortex_a9();
    let fe = ExtractorModel::default()
        .extraction_timing(&ExtractionWorkload::vga_nominal(), Workflow::Rescheduled)
        .total_ms();
    let fm = MatcherModel::default()
        .matching_timing(NOMINAL_QUERIES, NOMINAL_MAP_POINTS)
        .total_ms();
    StageTimesMs {
        fe,
        fm,
        pe: arm.pe_ms,
        po: arm.po_ms,
        mu: arm.mu_ms,
    }
}

/// The three platform reports of Tables 2 and 3 (ARM, Intel i7, eSLAM).
pub fn platform_reports() -> [PlatformReport; 3] {
    let arm = arm_cortex_a9();
    let i7 = intel_i7();
    [
        report(
            "ARM",
            cpu_stage_times(&arm),
            Schedule::Sequential,
            ARM_POWER_W,
        ),
        report(
            "Intel i7",
            cpu_stage_times(&i7),
            Schedule::Sequential,
            I7_POWER_W,
        ),
        report(
            "eSLAM",
            eslam_stage_times(),
            Schedule::EslamPipeline,
            eslam_power_w(),
        ),
    ]
}

/// One bar of the Fig. 7 pipeline timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Execution lane (`"FPGA"` or `"ARM"`).
    pub lane: &'static str,
    /// Stage label (`FE`, `FM`, `PE`, `PO`, `MU`).
    pub stage: &'static str,
    /// Start time, ms (relative to frame-processing start).
    pub start_ms: f64,
    /// End time, ms.
    pub end_ms: f64,
}

/// Builds the Fig. 7 schedule of one steady-state frame slot: while the
/// ARM processes frame N (PE, PO, and MU on key frames), the FPGA
/// processes frame N+1 (FE, then FM — delayed past MU on key frames).
pub fn pipeline_timeline(stages: &StageTimesMs, keyframe: bool) -> Vec<TimelineEntry> {
    let mut t = Vec::new();
    // ARM lane: frame N.
    t.push(TimelineEntry {
        lane: "ARM",
        stage: "PE",
        start_ms: 0.0,
        end_ms: stages.pe,
    });
    t.push(TimelineEntry {
        lane: "ARM",
        stage: "PO",
        start_ms: stages.pe,
        end_ms: stages.pe + stages.po,
    });
    // FPGA lane: frame N+1 feature extraction starts immediately.
    t.push(TimelineEntry {
        lane: "FPGA",
        stage: "FE",
        start_ms: 0.0,
        end_ms: stages.fe,
    });
    if keyframe {
        let mu_start = stages.pe + stages.po;
        let mu_end = mu_start + stages.mu;
        t.push(TimelineEntry {
            lane: "ARM",
            stage: "MU",
            start_ms: mu_start,
            end_ms: mu_end,
        });
        // FM must wait for both FE and MU.
        let fm_start = stages.fe.max(mu_end);
        t.push(TimelineEntry {
            lane: "FPGA",
            stage: "FM",
            start_ms: fm_start,
            end_ms: fm_start + stages.fm,
        });
    } else {
        t.push(TimelineEntry {
            lane: "FPGA",
            stage: "FM",
            start_ms: stages.fe,
            end_ms: stages.fe + stages.fm,
        });
    }
    t
}

/// Model of the prior FPGA ORB extractor \[4\] for the §4.4 comparison:
/// a 2-level pyramid design without the ping-pong cache (effective 2.7
/// cycles/pixel due to memory stalls) and without RS-BRIEF (a serial
/// post-detection descriptor phase at ~90 cycles/feature).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorExtractorModel {
    /// Effective cycles per pixel (memory-stall limited).
    pub cycles_per_pixel: f64,
    /// Descriptor cycles per kept feature (serial phase).
    pub cycles_per_descriptor: f64,
    /// Pyramid levels (\[4\] uses 2).
    pub levels: usize,
}

impl Default for PriorExtractorModel {
    fn default() -> Self {
        PriorExtractorModel {
            cycles_per_pixel: 2.7,
            cycles_per_descriptor: 90.0,
            levels: 2,
        }
    }
}

impl PriorExtractorModel {
    /// Extraction latency in ms at the FPGA clock for a VGA frame.
    pub fn latency_ms(&self, kept_features: u64) -> f64 {
        let cfg = eslam_image::pyramid::PyramidConfig {
            levels: self.levels,
            scale_factor: 1.2,
        };
        let pixels = cfg.total_pixels(640, 480) as f64;
        let cycles =
            pixels * self.cycles_per_pixel + kept_features as f64 * self.cycles_per_descriptor;
        cycles / crate::clock::FPGA_CLOCK_HZ as f64 * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eslam() -> PlatformReport {
        platform_reports()[2].clone()
    }
    fn arm() -> PlatformReport {
        platform_reports()[0].clone()
    }
    fn i7() -> PlatformReport {
        platform_reports()[1].clone()
    }

    #[test]
    fn table3_runtime_rows() {
        // eSLAM: N-frame 17.9 ms, K-frame 31.8 ms.
        let e = eslam();
        assert!(
            (e.frames.normal_ms - 17.9).abs() < 0.15,
            "eSLAM N {}",
            e.frames.normal_ms
        );
        assert!(
            (e.frames.keyframe_ms - 31.8).abs() < 0.25,
            "eSLAM K {}",
            e.frames.keyframe_ms
        );
        // ARM: 555.7 / 565.6 ms.
        let a = arm();
        assert!(
            (a.frames.normal_ms - 555.7).abs() < 5.0,
            "ARM N {}",
            a.frames.normal_ms
        );
        assert!(
            (a.frames.keyframe_ms - 565.6).abs() < 5.0,
            "ARM K {}",
            a.frames.keyframe_ms
        );
        // i7: 53.6 / 54.8 ms.
        let i = i7();
        assert!(
            (i.frames.normal_ms - 53.6).abs() < 0.7,
            "i7 N {}",
            i.frames.normal_ms
        );
        assert!(
            (i.frames.keyframe_ms - 54.8).abs() < 0.7,
            "i7 K {}",
            i.frames.keyframe_ms
        );
    }

    #[test]
    fn table3_frame_rates() {
        let e = eslam();
        assert!(
            (e.frames.normal_fps - 55.87).abs() < 0.5,
            "{}",
            e.frames.normal_fps
        );
        assert!(
            (e.frames.keyframe_fps - 31.45).abs() < 0.3,
            "{}",
            e.frames.keyframe_fps
        );
        let a = arm();
        assert!((a.frames.normal_fps - 1.8).abs() < 0.05);
        assert!((a.frames.keyframe_fps - 1.77).abs() < 0.05);
        let i = i7();
        assert!((i.frames.normal_fps - 18.66).abs() < 0.3);
        assert!((i.frames.keyframe_fps - 18.25).abs() < 0.3);
    }

    #[test]
    fn table3_energy_rows() {
        let e = eslam();
        assert!(
            (e.energy_normal_mj - 35.0).abs() < 1.0,
            "{}",
            e.energy_normal_mj
        );
        assert!(
            (e.energy_keyframe_mj - 62.0).abs() < 1.2,
            "{}",
            e.energy_keyframe_mj
        );
        let a = arm();
        assert!((a.energy_normal_mj - 875.0).abs() < 8.0);
        assert!((a.energy_keyframe_mj - 890.0).abs() < 8.0);
        let i = i7();
        assert!((i.energy_normal_mj - 2519.0).abs() < 30.0);
        assert!((i.energy_keyframe_mj - 2575.0).abs() < 30.0);
    }

    #[test]
    fn abstract_speedup_claims() {
        // Abstract: up to 3× / 31× frame rate vs i7 / ARM; up to 71× /
        // 25× energy efficiency.
        let e = eslam();
        let a = arm();
        let i = i7();
        let fps_vs_i7 = e.frames.normal_fps / i.frames.normal_fps;
        let fps_vs_arm = e.frames.normal_fps / a.frames.normal_fps;
        assert!((fps_vs_i7 - 3.0).abs() < 0.2, "vs i7 {fps_vs_i7}");
        assert!((fps_vs_arm - 31.0).abs() < 1.5, "vs ARM {fps_vs_arm}");
        let energy_vs_i7 = i.energy_normal_mj / e.energy_normal_mj;
        let energy_vs_arm = a.energy_normal_mj / e.energy_normal_mj;
        assert!(
            (energy_vs_i7 - 71.0).abs() < 4.0,
            "energy vs i7 {energy_vs_i7}"
        );
        assert!(
            (energy_vs_arm - 25.0).abs() < 1.5,
            "energy vs ARM {energy_vs_arm}"
        );
    }

    #[test]
    fn keyframe_identity_of_table2() {
        // §4.3: eSLAM K-frame runtime = FM + PE + PO + MU (FE hidden).
        let s = eslam_stage_times();
        let frames = frame_timing(&s, Schedule::EslamPipeline);
        assert!((frames.keyframe_ms - (s.fm + s.pe + s.po + s.mu)).abs() < 1e-9);
        // N-frame runtime = PE + PO (FE+FM hidden underneath).
        assert!((frames.normal_ms - (s.pe + s.po)).abs() < 1e-9);
    }

    #[test]
    fn normal_frame_timeline_overlaps() {
        let s = eslam_stage_times();
        let tl = pipeline_timeline(&s, false);
        let fe = tl.iter().find(|e| e.stage == "FE").unwrap();
        let pe = tl.iter().find(|e| e.stage == "PE").unwrap();
        // FE and PE start together (full overlap).
        assert_eq!(fe.start_ms, 0.0);
        assert_eq!(pe.start_ms, 0.0);
        assert!(tl.iter().all(|e| e.stage != "MU"));
    }

    #[test]
    fn keyframe_timeline_serializes_fm_after_mu() {
        let s = eslam_stage_times();
        let tl = pipeline_timeline(&s, true);
        let mu = tl.iter().find(|e| e.stage == "MU").unwrap();
        let fm = tl.iter().find(|e| e.stage == "FM").unwrap();
        assert!(fm.start_ms >= mu.end_ms - 1e-12, "FM must wait for MU");
        // Total span matches the key-frame period.
        let span = tl.iter().fold(0.0f64, |m, e| m.max(e.end_ms));
        let frames = frame_timing(&s, Schedule::EslamPipeline);
        assert!((span - frames.keyframe_ms).abs() < 1e-9);
    }

    #[test]
    fn prior_work_comparison_matches_discussion() {
        // §4.4: eSLAM FE ≈ 39% lower latency than [4] while processing
        // 48% more pixels.
        let ours = eslam_stage_times().fe;
        let prior = PriorExtractorModel::default().latency_ms(1024);
        let reduction = 1.0 - ours / prior;
        assert!(
            (reduction - 0.39).abs() < 0.03,
            "latency reduction {reduction:.3} (ours {ours:.2} ms vs [4] {prior:.2} ms)"
        );
    }

    #[test]
    fn navion_discussion_frame_rates() {
        // §4.4: eSLAM (55.87 / 31.45 fps) is below Navion's 171 fps —
        // the model must preserve that ordering (different algorithm).
        let e = eslam();
        assert!(e.frames.normal_fps < 171.0);
        assert!(e.frames.keyframe_fps < e.frames.normal_fps);
    }
}
