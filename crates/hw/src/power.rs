//! Power and energy model — the power column of Table 3.
//!
//! The paper measures 1.574 W for the ARM-only system and 1.936 W for
//! eSLAM (ARM + fabric): the accelerators add 0.362 W (+23%). This module
//! decomposes the fabric power into per-block contributions and computes
//! per-frame energy as `runtime × power`, exactly as Table 3 does.

/// Power draw of the ARM-only platform, watts (Table 3).
pub const ARM_POWER_W: f64 = 1.574;

/// Power draw of the Intel i7 platform, watts (Table 3).
pub const I7_POWER_W: f64 = 47.0;

/// Decomposition of the FPGA fabric power added by the accelerators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaPowerModel {
    /// Static (leakage + clocking) power of the programmable logic, W.
    pub static_w: f64,
    /// Dynamic power of the ORB Extractor datapath, W.
    pub extractor_w: f64,
    /// Dynamic power of the BRIEF Matcher, W.
    pub matcher_w: f64,
    /// Dynamic power of the AXI interconnect and BRAM traffic, W.
    pub axi_w: f64,
}

impl Default for FpgaPowerModel {
    fn default() -> Self {
        FpgaPowerModel {
            static_w: 0.120,
            extractor_w: 0.150,
            matcher_w: 0.060,
            axi_w: 0.032,
        }
    }
}

impl FpgaPowerModel {
    /// Total fabric power, W.
    pub fn total_w(&self) -> f64 {
        self.static_w + self.extractor_w + self.matcher_w + self.axi_w
    }
}

/// Total eSLAM platform power (ARM host + fabric), W.
pub fn eslam_power_w() -> f64 {
    ARM_POWER_W + FpgaPowerModel::default().total_w()
}

/// Energy per frame in millijoules: `runtime_ms × power_w`
/// (ms × W = mJ), the Table 3 energy rows.
pub fn energy_per_frame_mj(runtime_ms: f64, power_w: f64) -> f64 {
    runtime_ms * power_w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eslam_power_matches_table3() {
        let p = eslam_power_w();
        assert!((p - 1.936).abs() < 1e-9, "eSLAM power {p} W vs 1.936 W");
    }

    #[test]
    fn fabric_adds_23_percent() {
        // §4.3: "the power consumption of eSLAM is increased by about 23%
        // compared with the ARM processor".
        let increase = (eslam_power_w() - ARM_POWER_W) / ARM_POWER_W;
        assert!((increase - 0.23).abs() < 0.01, "increase {increase}");
    }

    #[test]
    fn energy_rows_of_table3() {
        // ARM: 555.7 ms × 1.574 W ≈ 875 mJ; 565.6 ms → ≈ 890 mJ.
        assert!((energy_per_frame_mj(555.7, ARM_POWER_W) - 875.0).abs() < 1.0);
        assert!((energy_per_frame_mj(565.6, ARM_POWER_W) - 890.0).abs() < 1.0);
        // i7: 53.6 ms × 47 W ≈ 2519 mJ; 54.8 ms → ≈ 2576 mJ.
        assert!((energy_per_frame_mj(53.6, I7_POWER_W) - 2519.0).abs() < 1.0);
        assert!((energy_per_frame_mj(54.8, I7_POWER_W) - 2575.0).abs() < 1.5);
        // eSLAM: 17.9 ms × 1.936 W ≈ 35 mJ; 31.8 ms → ≈ 62 mJ.
        assert!((energy_per_frame_mj(17.9, eslam_power_w()) - 35.0).abs() < 0.7);
        assert!((energy_per_frame_mj(31.8, eslam_power_w()) - 62.0).abs() < 0.7);
    }

    #[test]
    fn fabric_breakdown_sums() {
        let m = FpgaPowerModel::default();
        assert!((m.total_w() - 0.362).abs() < 1e-12);
        // Extractor dominates the dynamic share (largest datapath).
        assert!(m.extractor_w > m.matcher_w);
        assert!(m.extractor_w > m.axi_w);
    }
}
